//! The binary `/batch` plane, attacked and differentially pinned.
//!
//! Two properties, both over real TCP sockets:
//!
//! 1. **Robustness** (fuzz): arbitrary, truncated, and deliberately lying
//!    binary frames are answered with `400` — never a panic, never a hung
//!    connection — and the server keeps serving afterwards. The expected
//!    status is computed locally with the same `frame` codec the server
//!    uses, so the fuzz is differential too: the server accepts exactly
//!    the frames the codec accepts (modulo id range checks).
//!
//! 2. **Equivalence** (differential): for gnp, road-like, and
//!    disconnected multi-island graphs, the binary plane's `u64`
//!    distances equal the text plane's JSON distances equal the in-process
//!    `try_query_batch` answers — with `u64::MAX` as the wire sentinel
//!    for `∞` exactly where the text plane says `null`.

use std::sync::OnceLock;

use congested_clique::clique::Clique;
use congested_clique::graph::{generators, Graph};
use congested_clique::oracle::{DistanceOracle, OracleBuilder};
use congested_clique::serve::{frame, BlockingClient, Server, ServerConfig, ServerHandle};
use proptest::prelude::*;

fn build(g: &Graph, seed: u64) -> DistanceOracle {
    let mut clique = Clique::new(g.n());
    OracleBuilder::new().seed(seed).build(&mut clique, g).expect("oracle build")
}

fn start(oracle: DistanceOracle) -> ServerHandle {
    Server::start(&ServerConfig::default().with_addr("127.0.0.1:0"), oracle).expect("server start")
}

/// Parses `"distances":[...]` from a text-plane `/batch` response, with
/// `None` for JSON `null` (disconnected pairs).
fn parse_distances(body: &[u8]) -> Vec<Option<u64>> {
    let text = std::str::from_utf8(body).expect("utf-8 body");
    let rest = text.split_once("\"distances\":[").expect("distances key").1;
    let inner = rest.split_once(']').expect("array close").0;
    if inner.trim().is_empty() {
        return Vec::new();
    }
    inner
        .split(',')
        .map(|tok| {
            let tok = tok.trim();
            if tok == "null" {
                None
            } else {
                Some(tok.parse().expect("numeric distance"))
            }
        })
        .collect()
}

/// One query set, three answers: in-process backend, text plane, binary
/// plane. All three must agree, with `∞ ↔ null ↔ u64::MAX` aligned.
fn assert_planes_agree(oracle: &DistanceOracle, handle: &ServerHandle, pairs: &[(u32, u32)]) {
    let upairs: Vec<(usize, usize)> =
        pairs.iter().map(|&(u, v)| (u as usize, v as usize)).collect();
    let expected: Vec<u64> = oracle
        .try_query_batch(&upairs)
        .expect("in-range batch")
        .iter()
        .map(|d| d.value().unwrap_or(frame::UNREACHABLE))
        .collect();

    let mut client = BlockingClient::connect(handle.addr()).expect("connect");

    let (status, body) = client
        .post_with_content_type("/batch", frame::CONTENT_TYPE, &frame::encode_request(pairs))
        .expect("binary post");
    assert_eq!(status, 200, "binary batch must succeed");
    let binary = frame::decode_response(&body).expect("well-formed response frame");
    assert_eq!(binary, expected, "binary plane diverged from try_query_batch");

    let text_req: String = pairs.iter().map(|(u, v)| format!("{u} {v}\n")).collect();
    let (status, body) = client.post("/batch", text_req.as_bytes()).expect("text post");
    assert_eq!(status, 200, "text batch must succeed");
    let text: Vec<u64> =
        parse_distances(&body).iter().map(|d| d.unwrap_or(frame::UNREACHABLE)).collect();
    assert_eq!(text, expected, "text plane diverged from try_query_batch");
}

/// Every pair (u, v) with v sweeping the graph: diagonal, dense coverage.
fn coverage_pairs(n: u32) -> Vec<(u32, u32)> {
    let mut pairs: Vec<(u32, u32)> = Vec::new();
    for u in 0..n {
        pairs.push((u, u));
        for v in (0..n).step_by(3) {
            pairs.push((u, v));
        }
    }
    pairs
}

#[test]
fn binary_and_text_planes_match_the_backend_on_gnp() {
    let g = generators::gnp_weighted(40, 0.15, 30, 21).expect("graph");
    let oracle = build(&g, 21);
    let handle = start(oracle.clone());
    assert_planes_agree(&oracle, &handle, &coverage_pairs(40));
    handle.shutdown();
}

#[test]
fn binary_and_text_planes_match_the_backend_on_road_like() {
    let g = generators::road_like(5, 6, 40, 9).expect("graph");
    let oracle = build(&g, 9);
    let n = u32::try_from(g.n()).expect("small graph");
    let handle = start(oracle.clone());
    assert_planes_agree(&oracle, &handle, &coverage_pairs(n));
    handle.shutdown();
}

#[test]
fn binary_and_text_planes_match_the_backend_on_disconnected_islands() {
    use congested_clique::matrix::Dist;
    // Three islands: most pairs are ∞ and must serve as u64::MAX on the
    // binary plane, null on the text plane.
    let g =
        Graph::from_edges(12, [(0, 1, 3), (1, 2, 5), (4, 5, 2), (5, 6, 7), (6, 7, 1), (9, 10, 4)])
            .expect("graph");
    let oracle = build(&g, 3);
    assert_eq!(oracle.try_query(0, 4).expect("in range"), Dist::INF, "sanity: disconnected");
    let handle = start(oracle.clone());
    assert_planes_agree(&oracle, &handle, &coverage_pairs(12));

    // Pin the sentinel explicitly: a known-∞ pair is exactly u64::MAX.
    let mut client = BlockingClient::connect(handle.addr()).expect("connect");
    let (status, body) = client
        .post_with_content_type("/batch", frame::CONTENT_TYPE, &frame::encode_request(&[(0, 4)]))
        .expect("post");
    assert_eq!(status, 200);
    assert_eq!(frame::decode_response(&body).expect("frame"), vec![frame::UNREACHABLE]);
    handle.shutdown();
}

/// Node count of the long-lived fuzz target server.
const FUZZ_N: u32 = 24;

/// One server shared by all fuzz cases (static, so it outlives them all).
fn fuzz_server() -> &'static ServerHandle {
    static SERVER: OnceLock<ServerHandle> = OnceLock::new();
    SERVER.get_or_init(|| {
        let g = generators::gnp_weighted(FUZZ_N as usize, 0.2, 30, 5).expect("graph");
        start(build(&g, 5))
    })
}

/// Posts `bytes` as a binary frame and asserts the server stays healthy:
/// the status matches what the codec predicts, and a fresh `/healthz` on a
/// new connection still answers 200.
fn post_and_check(bytes: &[u8]) {
    let handle = fuzz_server();
    let mut client = BlockingClient::connect(handle.addr()).expect("connect");
    let (status, _body) =
        client.post_with_content_type("/batch", frame::CONTENT_TYPE, bytes).expect("post");
    let expected = match frame::decode_request(bytes) {
        Ok(pairs) if pairs.iter().all(|&(u, v)| u < FUZZ_N && v < FUZZ_N) => 200,
        _ => 400,
    };
    assert_eq!(status, expected, "frame bytes: {bytes:?}");
    let (status, body) = client.get("/healthz").expect("healthz");
    assert_eq!(status, 200, "server must keep serving after a hostile frame");
    assert_eq!(body, b"ok\n");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary bytes: accepted iff the codec accepts them and every id
    /// is in range; the server survives regardless.
    #[test]
    fn garbage_frames_never_panic_the_server(
        bytes in prop::collection::vec((0u16..256).prop_map(|b| b as u8), 0..64),
    ) {
        post_and_check(&bytes);
    }

    /// Valid frames cut anywhere (including to zero bytes) are 400s:
    /// truncation can never smuggle a shorter valid batch through.
    #[test]
    fn truncated_frames_are_rejected(
        pairs in prop::collection::vec((0u32..FUZZ_N, 0u32..FUZZ_N), 1..8),
        cut_frac in 0usize..10_000,
    ) {
        let full = frame::encode_request(&pairs);
        let cut = cut_frac * full.len() / 10_000; // 0 <= cut < full.len()
        post_and_check(&full[..cut]);
    }

    /// A count field that disagrees with the payload length is a 400 —
    /// including counts whose implied length dwarfs the body limit, which
    /// must be rejected by arithmetic, not by attempting the allocation.
    #[test]
    fn lying_count_fields_are_rejected(
        pairs in prop::collection::vec((0u32..FUZZ_N, 0u32..FUZZ_N), 1..8),
        lie in prop_oneof![
            3 => 0u32..16,
            1 => Just(1u32 << 20), // implies ~8 MiB: past the 1 MiB body cap
            1 => Just(u32::MAX),   // implies ~32 GiB: must not allocate
        ],
    ) {
        let mut bytes = frame::encode_request(&pairs);
        bytes[4..8].copy_from_slice(&lie.to_le_bytes());
        post_and_check(&bytes);
    }

    /// Requests built from response frames (wrong magic for the plane) are
    /// rejected: the two directions cannot be confused.
    #[test]
    fn response_frames_on_the_request_plane_are_rejected(
        distances in prop::collection::vec(0u64..1000, 1..8),
    ) {
        post_and_check(&frame::encode_response(&distances));
    }
}

#[test]
fn zero_pair_frames_are_rejected() {
    let mut bytes = Vec::from(frame::REQUEST_MAGIC);
    bytes.extend_from_slice(&0u32.to_le_bytes());
    post_and_check(&bytes);
}
