//! Golden-artifact regression: a committed CCOS snapshot that both
//! builders must reproduce **byte for byte**, forever.
//!
//! The differential suite (`build_equivalence.rs`) proves the two builders
//! agree with *each other*; this file pins them both to a fixed historical
//! artifact, so an accidental change to the build pipeline (a reordered
//! tie-break, a tweaked schedule constant, a serializer change) fails
//! loudly even if it changes both builders in lockstep.
//!
//! Regenerating (only after an *intentional* format/pipeline change):
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden_artifact
//! ```

use congested_clique::clique::Clique;
use congested_clique::graph::{generators, Graph};
use congested_clique::oracle::{serde, DirectBuilder, DistanceOracle, OracleBuilder};

const GOLDEN_PATH: &str =
    concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/road36_eps025_seed5.ccos");

/// The pinned configuration: a 6×6 road-like graph, default `k`, `ε = 0.25`,
/// landmark seed 5.
fn golden_graph() -> Graph {
    generators::road_like(6, 6, 25, 3).unwrap()
}

fn golden_direct_build() -> DistanceOracle {
    DirectBuilder::new().seed(5).build(&golden_graph()).unwrap()
}

/// Canonical bytes: `created_unix_secs` pinned to 0 so the snapshot is a
/// pure function of the build inputs. (The direct build records
/// `build_rounds = 0`, making the *entire* byte stream reproducible.)
fn canonical_bytes(oracle: &DistanceOracle) -> Vec<u8> {
    serde::to_bytes_created_at(oracle, 0)
}

fn read_golden() -> Vec<u8> {
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        let bytes = canonical_bytes(&golden_direct_build());
        std::fs::write(GOLDEN_PATH, &bytes).unwrap();
    }
    std::fs::read(GOLDEN_PATH).expect(
        "golden fixture missing; regenerate with UPDATE_GOLDEN=1 cargo test --test golden_artifact",
    )
}

#[test]
fn direct_builder_reproduces_the_golden_bytes_exactly() {
    assert_eq!(
        canonical_bytes(&golden_direct_build()),
        read_golden(),
        "direct build no longer reproduces the committed artifact"
    );
}

#[test]
fn clique_builder_reproduces_the_golden_build_id() {
    // The clique build differs only in the header-only build_rounds field,
    // so the comparison is the payload checksum (= build id), which covers
    // every landmark, ball, nearest-landmark row, and column byte.
    let golden = serde::peek_header(&read_golden()).unwrap();
    let g = golden_graph();
    let mut clique = Clique::new(g.n());
    let oracle = OracleBuilder::new().seed(5).build(&mut clique, &g).unwrap();
    assert_eq!(
        serde::payload_checksum(&oracle),
        golden.checksum,
        "clique build no longer reproduces the committed artifact"
    );
    let header = serde::peek_header(&canonical_bytes(&oracle)).unwrap();
    assert_eq!(header.build_id(), golden.build_id());
}

#[test]
fn golden_fixture_round_trips_and_serves() {
    let oracle = serde::from_bytes(&read_golden()).unwrap();
    assert_eq!(oracle.n(), 36);
    assert_eq!(oracle.seed(), 5);
    assert_eq!(oracle.epsilon().to_bits(), 0.25f64.to_bits());
    // The loaded artifact answers like the live build it snapshots.
    let live = golden_direct_build();
    for u in [0, 7, 35] {
        for v in 0..36 {
            assert_eq!(oracle.try_query(u, v).unwrap(), live.try_query(u, v).unwrap());
        }
    }
}
