//! The paper's algorithms are deterministic; the simulator must be too.
//! Same inputs ⇒ identical outputs *and* identical round counts, across
//! repeated runs in the same process (this catches accidental dependence on
//! hash-map iteration order inside the distributed algorithms).

use congested_clique::clique::Clique;
use congested_clique::core::{apsp, diameter, mssp, sssp};
use congested_clique::distance::k_nearest;
use congested_clique::graph::generators;

#[test]
fn k_nearest_is_deterministic() {
    let g = generators::gnp_weighted(48, 0.15, 30, 9).unwrap();
    let mut runs = Vec::new();
    for _ in 0..3 {
        let mut clique = Clique::new(48);
        let rows = k_nearest(&mut clique, &g, 8).unwrap();
        runs.push((rows, clique.rounds()));
    }
    assert_eq!(runs[0], runs[1]);
    assert_eq!(runs[1], runs[2]);
}

#[test]
fn apsp_is_deterministic() {
    let g = generators::gnp(32, 0.15, 4).unwrap();
    let mut runs = Vec::new();
    for _ in 0..2 {
        let mut clique = Clique::new(32);
        let run = apsp::unweighted_2eps(&mut clique, &g, 0.5).unwrap();
        runs.push((run.dist, run.rounds));
    }
    assert_eq!(runs[0], runs[1]);
}

#[test]
fn mssp_and_sssp_are_deterministic() {
    let g = generators::grid_weighted(6, 5, 12, 3).unwrap();
    let mut mssp_runs = Vec::new();
    let mut sssp_runs = Vec::new();
    for _ in 0..2 {
        let mut clique = Clique::new(30);
        let run = mssp::mssp(&mut clique, &g, &[0, 17], 0.5).unwrap();
        mssp_runs.push((run.dist, run.rounds));
        let mut clique = Clique::new(30);
        let run = sssp::exact_sssp(&mut clique, &g, 3).unwrap();
        sssp_runs.push((run.dist, run.rounds));
    }
    assert_eq!(mssp_runs[0], mssp_runs[1]);
    assert_eq!(sssp_runs[0], sssp_runs[1]);
}

#[test]
fn diameter_is_deterministic() {
    let g = generators::cycle(24).unwrap();
    let mut estimates = Vec::new();
    for _ in 0..2 {
        let mut clique = Clique::new(24);
        let run = diameter::diameter_approx(&mut clique, &g, 0.25).unwrap();
        estimates.push((run.estimate, run.rounds));
    }
    assert_eq!(estimates[0], estimates[1]);
}
