//! Cross-crate integration tests: every headline algorithm, run end-to-end
//! on the standard workload suite, checked against sequential ground truth
//! and its paper guarantee.

// Node-indexed loops over parallel per-node vectors are the domain idiom.
#![allow(clippy::needless_range_loop)]

use congested_clique::clique::Clique;
use congested_clique::core::{apsp, baselines, diameter, mssp, sssp, stretch};
use congested_clique::graph::{generators, reference, Graph};

fn suite(n: usize) -> Vec<(String, Graph)> {
    generators::standard_suite(n, 2026).expect("suite builds")
}

#[test]
fn unweighted_apsp_meets_guarantee_across_suite() {
    for (name, g) in suite(32) {
        if !g.is_unweighted() {
            continue;
        }
        let mut clique = Clique::new(g.n());
        let run =
            apsp::unweighted_2eps(&mut clique, &g, 0.5).unwrap_or_else(|e| panic!("{name}: {e}"));
        let exact = reference::all_pairs(&g);
        stretch::assert_sound(&run.dist, &exact);
        let worst = stretch::max_stretch(&run.dist, &exact);
        assert!(worst <= 2.5 + 1e-9, "{name}: stretch {worst} > 2.5");
    }
}

#[test]
fn weighted_apsp_meets_guarantee_across_suite() {
    for (name, g) in suite(32) {
        let mut clique = Clique::new(g.n());
        let run =
            apsp::weighted_2eps(&mut clique, &g, 0.5).unwrap_or_else(|e| panic!("{name}: {e}"));
        let exact = reference::all_pairs(&g);
        stretch::assert_sound(&run.dist, &exact);
        let worst = stretch::max_stretch(&run.dist, &exact);
        // (2+eps)d + (1+eps)W <= (3+2eps)d = 4d.
        assert!(worst <= 4.0 + 1e-9, "{name}: stretch {worst} > 4");
    }
}

#[test]
fn mssp_meets_guarantee_across_suite() {
    for (name, g) in suite(32) {
        let sources = [0, g.n() / 2, g.n() - 1];
        let mut clique = Clique::new(g.n());
        let run =
            mssp::mssp(&mut clique, &g, &sources, 0.5).unwrap_or_else(|e| panic!("{name}: {e}"));
        for (i, &s) in sources.iter().enumerate() {
            let exact = reference::dijkstra(&g, s);
            for v in 0..g.n() {
                match (exact[v], run.dist[v][i].value()) {
                    (Some(d), Some(e)) => assert!(
                        e >= d && e as f64 <= 1.5 * d as f64 + 1e-9,
                        "{name}: pair ({v},{s}) estimate {e} vs exact {d}"
                    ),
                    (None, None) => {}
                    (d, e) => panic!("{name}: reachability mismatch {d:?} vs {e:?}"),
                }
            }
        }
    }
}

#[test]
fn exact_sssp_is_exact_across_suite() {
    for (name, g) in suite(32) {
        let mut clique = Clique::new(g.n());
        let run = sssp::exact_sssp(&mut clique, &g, 0).unwrap_or_else(|e| panic!("{name}: {e}"));
        let exact = reference::dijkstra(&g, 0);
        for v in 0..g.n() {
            assert_eq!(run.dist[v].value(), exact[v], "{name}: node {v}");
        }
    }
}

#[test]
fn diameter_within_bounds_across_unweighted_suite() {
    for (name, g) in suite(32) {
        if !g.is_unweighted() {
            continue;
        }
        let Some(d) = reference::diameter(&g) else { continue };
        let mut clique = Clique::new(g.n());
        let run = diameter::diameter_approx(&mut clique, &g, 0.25)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(
            diameter::within_claim35(run.estimate, d, 0.25),
            "{name}: estimate {} vs true {d}",
            run.estimate
        );
    }
}

#[test]
fn approximate_apsp_agrees_with_exact_baseline() {
    let g = generators::gnp_weighted(32, 0.2, 20, 77).unwrap();
    let mut c1 = Clique::new(32);
    let exact_run = baselines::exact_apsp_squaring(&mut c1, &g).unwrap();
    let mut c2 = Clique::new(32);
    let approx_run = apsp::weighted_2eps(&mut c2, &g, 0.5).unwrap();
    for u in 0..32 {
        for v in 0..32 {
            let e = exact_run.dist[u][v];
            let a = approx_run.dist[u][v];
            assert!(a >= e, "approximation below exact for ({u},{v})");
        }
    }
}

#[test]
fn pipelines_share_one_clique_consistently() {
    // Run several algorithms on the same clique: metrics accumulate, and
    // results stay correct (no hidden global state).
    let g = generators::gnp_weighted(24, 0.2, 15, 5).unwrap();
    let mut clique = Clique::new(24);
    let r1 = sssp::exact_sssp(&mut clique, &g, 0).unwrap();
    let after_sssp = clique.rounds();
    let r2 = sssp::bellman_ford(&mut clique, &g, 0, None).unwrap();
    assert_eq!(
        r1.dist.iter().map(|d| d.value()).collect::<Vec<_>>(),
        r2.dist.iter().map(|d| d.value()).collect::<Vec<_>>(),
    );
    assert!(clique.rounds() > after_sssp);
    assert_eq!(r2.rounds, clique.rounds() - after_sssp);
}
