//! Deserialization fuzz-lite: `oracle::serde::from_bytes` fed bit-flipped
//! and truncated snapshots must either reject the bytes with an error or
//! produce an oracle that still *serves totally* — every query returns a
//! value (no panic, no abort), the diagonal stays zero, and the serving
//! layer's `try_query` still validates ranges.
//!
//! Since the format gained a checksummed header (v2), corruption anywhere
//! in the **payload** must be *rejected outright* — a flipped bit inside a
//! stored distance used to be able to silently change an answer while
//! leaving the structure valid; now it fails the checksum. Header flips in
//! pure-metadata fields (seed, build rounds, created-at) can still parse —
//! they change what the artifact *says about itself*, not the artifact —
//! so the serves-totally property remains the fallback for any mutation
//! that parses. The legacy (v1) decoder keeps the weaker guarantee and is
//! fuzzed separately.

use congested_clique::clique::Clique;
use congested_clique::graph::generators;
use congested_clique::oracle::{serde, DistanceOracle, OracleBuilder};
use proptest::prelude::*;
use std::sync::OnceLock;

/// One canonical snapshot, built once for the whole fuzz run.
fn snapshot() -> &'static [u8] {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| {
        let g = generators::gnp_weighted(30, 0.15, 40, 23).expect("graph");
        let mut clique = Clique::new(30);
        let oracle =
            OracleBuilder::new().epsilon(0.5).seed(23).build(&mut clique, &g).expect("build");
        serde::to_bytes(&oracle)
    })
}

/// Whatever deserialized must answer every pair without panicking, keep a
/// zero diagonal, and keep rejecting out-of-range ids through the fallible
/// API.
fn assert_serves_totally(oracle: &DistanceOracle) {
    let n = oracle.n();
    for u in 0..n {
        assert_eq!(oracle.query(u, u).value(), Some(0), "diagonal must stay zero");
        for v in 0..n {
            // Any returned value is acceptable — the property under attack
            // is that the call *returns* instead of panicking/aborting.
            let _ = oracle.query(u, v);
        }
    }
    assert!(oracle.try_query(n, 0).is_err(), "edge validation must survive");
    let pairs: Vec<(usize, usize)> = (0..n).map(|i| (i, (i * 7 + 1) % n)).collect();
    assert_eq!(oracle.try_query_batch(&pairs).expect("in-range batch").len(), n);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bit_flips_never_panic_the_decoder_or_the_queries(
        at_frac in 0usize..10_000,
        bit in 0usize..8,
    ) {
        let bytes = snapshot();
        let mut mutated = bytes.to_vec();
        let at = at_frac * bytes.len() / 10_000;
        mutated[at] ^= 1 << bit;
        match serde::from_bytes(&mutated) {
            Err(_) => {} // rejection is the common, correct outcome
            Ok(oracle) => assert_serves_totally(&oracle),
        }
    }

    #[test]
    fn payload_bit_flips_are_always_rejected_by_the_checksum(
        at_frac in 0usize..10_000,
        bit in 0usize..8,
    ) {
        let bytes = snapshot();
        let payload_len = bytes.len() - serde::HEADER_LEN;
        let at = serde::HEADER_LEN + at_frac * payload_len / 10_000;
        let mut mutated = bytes.to_vec();
        mutated[at] ^= 1 << bit;
        // No payload corruption may survive v2 validation, not even one
        // that keeps the structure parseable (e.g. inside a distance).
        prop_assert!(
            serde::from_bytes(&mutated).is_err(),
            "payload flip at byte {at} bit {bit} must be rejected"
        );
    }

    #[test]
    fn legacy_decoder_never_panics_on_bit_flips(
        at_frac in 0usize..10_000,
        bit in 0usize..8,
    ) {
        // v1 has no checksum: structurally-valid corruption can parse, so
        // the guarantee is the weaker serves-totally one.
        static LEGACY: OnceLock<Vec<u8>> = OnceLock::new();
        let bytes = LEGACY.get_or_init(|| {
            let oracle = serde::from_bytes(snapshot()).expect("clean snapshot");
            serde::to_bytes_legacy(&oracle)
        });
        let mut mutated = bytes.clone();
        let at = at_frac * bytes.len() / 10_000;
        mutated[at] ^= 1 << bit;
        match serde::from_bytes_legacy(&mutated) {
            Err(_) => {}
            Ok(oracle) => assert_serves_totally(&oracle),
        }
    }

    #[test]
    fn multi_byte_corruption_never_panics(
        seed in 0u64..1_000_000,
        flips in 1usize..16,
    ) {
        let bytes = snapshot();
        let mut mutated = bytes.to_vec();
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
        for _ in 0..flips {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let at = (state as usize) % mutated.len();
            mutated[at] = (state >> 24) as u8;
        }
        match serde::from_bytes(&mutated) {
            Err(_) => {}
            Ok(oracle) => assert_serves_totally(&oracle),
        }
    }

    #[test]
    fn truncations_are_always_rejected(cut_frac in 0usize..10_000) {
        let bytes = snapshot();
        let cut = cut_frac * bytes.len() / 10_000;
        // Every strict prefix is invalid: the decoder either hits the hard
        // length checks or the trailing-bytes check, never a panic.
        prop_assert!(
            serde::from_bytes(&bytes[..cut]).is_err(),
            "strict prefix of {cut} bytes must be rejected"
        );
    }

    #[test]
    fn extensions_are_always_rejected(extra in 1usize..64, fill in 0usize..256) {
        let bytes = snapshot();
        let mut extended = bytes.to_vec();
        extended.extend(std::iter::repeat_n(fill as u8, extra));
        prop_assert!(serde::from_bytes(&extended).is_err(), "trailing bytes must be rejected");
    }
}
