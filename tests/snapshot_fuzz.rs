//! Deserialization fuzz-lite: `oracle::serde::from_bytes` fed bit-flipped
//! and truncated snapshots must either reject the bytes with an error or
//! produce an oracle that still *serves totally* — every query returns a
//! value (no panic, no abort), the diagonal stays zero, and the serving
//! layer's `try_query` still validates ranges.
//!
//! Since the format gained a checksummed header (v2), corruption anywhere
//! in the **payload** must be *rejected outright* — a flipped bit inside a
//! stored distance used to be able to silently change an answer while
//! leaving the structure valid; now it fails the checksum. Header flips in
//! pure-metadata fields (seed, build rounds, created-at) can still parse —
//! they change what the artifact *says about itself*, not the artifact —
//! so the serves-totally property remains the fallback for any mutation
//! that parses.
//!
//! The legacy (v1) decoder was removed after its one-release migration
//! window: any byte stream opening with the v1 magic must now fail with
//! `OracleError::LegacySnapshot`, never parse and never panic.
//!
//! **Per-shard snapshots** (magic `CCSH`) get the same treatment plus
//! their own attack surface: the shard checksum covers the shard
//! index/count/set-id fields, so a flip there is a checksum rejection, a
//! forged-but-recomputed header hits the recomputed-plan validation, shard
//! files in the wrong slots are `ShardIndexMismatch`, and sets mixing
//! `n`/`k`/`ε`/set-id are `ShardSetMismatch` — all errors, never panics.

use congested_clique::clique::Clique;
use congested_clique::graph::generators;
use congested_clique::oracle::shard::validate_set;
use congested_clique::oracle::{
    serde, DistanceOracle, OracleBuilder, OracleError, ShardRouter, ShardedArtifact,
};
use proptest::prelude::*;
use std::sync::OnceLock;

/// One canonical snapshot, built once for the whole fuzz run.
fn snapshot() -> &'static [u8] {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| {
        let g = generators::gnp_weighted(30, 0.15, 40, 23).expect("graph");
        let mut clique = Clique::new(30);
        let oracle =
            OracleBuilder::new().epsilon(0.5).seed(23).build(&mut clique, &g).expect("build");
        serde::to_bytes(&oracle)
    })
}

/// Whatever deserialized must answer every pair without panicking, keep a
/// zero diagonal, and keep rejecting out-of-range ids through the fallible
/// API.
fn assert_serves_totally(oracle: &DistanceOracle) {
    let n = oracle.n();
    for u in 0..n {
        assert_eq!(oracle.try_query(u, u).unwrap().value(), Some(0), "diagonal must stay zero");
        for v in 0..n {
            // Any returned value is acceptable — the property under attack
            // is that the call *returns* instead of panicking/aborting.
            let _ = oracle.try_query(u, v).unwrap();
        }
    }
    assert!(oracle.try_query(n, 0).is_err(), "edge validation must survive");
    let pairs: Vec<(usize, usize)> = (0..n).map(|i| (i, (i * 7 + 1) % n)).collect();
    assert_eq!(oracle.try_query_batch(&pairs).expect("in-range batch").len(), n);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bit_flips_never_panic_the_decoder_or_the_queries(
        at_frac in 0usize..10_000,
        bit in 0usize..8,
    ) {
        let bytes = snapshot();
        let mut mutated = bytes.to_vec();
        let at = at_frac * bytes.len() / 10_000;
        mutated[at] ^= 1 << bit;
        match serde::from_bytes(&mutated) {
            Err(_) => {} // rejection is the common, correct outcome
            Ok(oracle) => assert_serves_totally(&oracle),
        }
    }

    #[test]
    fn payload_bit_flips_are_always_rejected_by_the_checksum(
        at_frac in 0usize..10_000,
        bit in 0usize..8,
    ) {
        let bytes = snapshot();
        let payload_len = bytes.len() - serde::HEADER_LEN;
        let at = serde::HEADER_LEN + at_frac * payload_len / 10_000;
        let mut mutated = bytes.to_vec();
        mutated[at] ^= 1 << bit;
        // No payload corruption may survive v2 validation, not even one
        // that keeps the structure parseable (e.g. inside a distance).
        prop_assert!(
            serde::from_bytes(&mutated).is_err(),
            "payload flip at byte {at} bit {bit} must be rejected"
        );
    }

    #[test]
    fn legacy_v1_bytes_always_fail_with_the_dedicated_error(
        len in 0usize..4_096,
        fill_seed in 0u64..1_000_000,
    ) {
        // The v1 reader is gone: any stream opening with the v1 magic is
        // rejected by magic alone — whatever follows, however long.
        let mut bytes = b"CCO1".to_vec();
        let mut state = fill_seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
        for _ in 0..len {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            bytes.push((state >> 24) as u8);
        }
        prop_assert!(matches!(serde::from_bytes(&bytes), Err(OracleError::LegacySnapshot)));
        prop_assert!(matches!(serde::peek_header(&bytes), Err(OracleError::LegacySnapshot)));
        prop_assert!(matches!(
            serde::from_shard_bytes(&bytes),
            Err(OracleError::LegacySnapshot)
        ));
    }

    #[test]
    fn multi_byte_corruption_never_panics(
        seed in 0u64..1_000_000,
        flips in 1usize..16,
    ) {
        let bytes = snapshot();
        let mut mutated = bytes.to_vec();
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
        for _ in 0..flips {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let at = (state as usize) % mutated.len();
            mutated[at] = (state >> 24) as u8;
        }
        match serde::from_bytes(&mutated) {
            Err(_) => {}
            Ok(oracle) => assert_serves_totally(&oracle),
        }
    }

    #[test]
    fn truncations_are_always_rejected(cut_frac in 0usize..10_000) {
        let bytes = snapshot();
        let cut = cut_frac * bytes.len() / 10_000;
        // Every strict prefix is invalid: the decoder either hits the hard
        // length checks or the trailing-bytes check, never a panic.
        prop_assert!(
            serde::from_bytes(&bytes[..cut]).is_err(),
            "strict prefix of {cut} bytes must be rejected"
        );
    }

    #[test]
    fn extensions_are_always_rejected(extra in 1usize..64, fill in 0usize..256) {
        let bytes = snapshot();
        let mut extended = bytes.to_vec();
        extended.extend(std::iter::repeat_n(fill as u8, extra));
        prop_assert!(serde::from_bytes(&extended).is_err(), "trailing bytes must be rejected");
    }

    #[test]
    fn shard_bit_flips_never_panic_and_owned_lookups_survive(
        shard_pick in 0usize..3,
        at_frac in 0usize..10_000,
        bit in 0usize..8,
    ) {
        let bytes = shard_snapshot(shard_pick);
        let mut mutated = bytes.to_vec();
        let at = at_frac * bytes.len() / 10_000;
        mutated[at] ^= 1 << bit;
        match serde::from_shard_bytes(&mutated) {
            Err(_) => {} // rejection is the common, correct outcome
            Ok(shard) => {
                // Only pure-metadata header flips (seed, rounds, created)
                // can get here; the slice itself must still answer every
                // owned half-query without panicking.
                for near in shard.owned() {
                    for far in 0..shard.n() {
                        let _ = shard.half_query(near, far);
                    }
                }
            }
        }
    }

    #[test]
    fn shard_field_and_payload_flips_are_always_rejected(
        shard_pick in 0usize..3,
        at_frac in 0usize..10_000,
        bit in 0usize..8,
    ) {
        // The shard checksum covers everything from byte 80 on — the shard
        // index, shard count, set id, and the payload. No flip there may
        // parse, including one that would re-slot the shard.
        let bytes = shard_snapshot(shard_pick);
        let covered = bytes.len() - 80;
        let at = 80 + at_frac * covered / 10_000;
        let mut mutated = bytes.to_vec();
        mutated[at] ^= 1 << bit;
        prop_assert!(
            matches!(
                serde::from_shard_bytes(&mutated),
                Err(OracleError::SnapshotChecksumMismatch { .. })
            ),
            "shard flip at byte {at} bit {bit} must fail the checksum"
        );
    }

    #[test]
    fn shard_truncations_and_extensions_are_always_rejected(
        shard_pick in 0usize..3,
        cut_frac in 0usize..10_000,
        extra in 1usize..64,
    ) {
        let bytes = shard_snapshot(shard_pick);
        let cut = cut_frac * bytes.len() / 10_000;
        prop_assert!(serde::from_shard_bytes(&bytes[..cut]).is_err());
        let mut extended = bytes.to_vec();
        extended.extend(std::iter::repeat_n(0xA5u8, extra));
        prop_assert!(serde::from_shard_bytes(&extended).is_err());
    }
}

/// Per-shard snapshots of the canonical oracle, split 3 ways, built once.
fn shard_snapshot(index: usize) -> &'static [u8] {
    static BYTES: OnceLock<Vec<Vec<u8>>> = OnceLock::new();
    &BYTES.get_or_init(|| {
        let oracle = serde::from_bytes(snapshot()).expect("clean snapshot");
        ShardedArtifact::partition(&oracle, 3)
            .expect("partition")
            .shards()
            .iter()
            .map(serde::to_shard_bytes)
            .collect()
    })[index]
}

/// A second, unrelated artifact set (different graph seed), for mixing
/// attacks.
fn other_oracle() -> &'static DistanceOracle {
    static ORACLE: OnceLock<DistanceOracle> = OnceLock::new();
    ORACLE.get_or_init(|| {
        let g = generators::gnp_weighted(30, 0.15, 40, 99).expect("graph");
        let mut clique = Clique::new(30);
        OracleBuilder::new().epsilon(0.5).seed(99).build(&mut clique, &g).expect("build")
    })
}

#[test]
fn loading_shard_i_as_slot_j_is_a_named_index_mismatch() {
    let shards: Vec<_> =
        (0..3).map(|i| serde::from_shard_bytes(shard_snapshot(i)).expect("clean shard")).collect();
    // Every wrong permutation fails on its first mis-slotted file.
    for (a, b, c, bad_slot, found) in
        [(1usize, 0usize, 2usize, 0u32, 1u32), (0, 2, 1, 1, 2), (2, 1, 0, 0, 2)]
    {
        let set = vec![shards[a].clone(), shards[b].clone(), shards[c].clone()];
        match ShardRouter::assemble(set) {
            Err(OracleError::ShardIndexMismatch { expected, found: f }) => {
                assert_eq!((expected, f), (bad_slot, found), "permutation ({a},{b},{c})");
            }
            other => panic!("permutation ({a},{b},{c}) must be an index mismatch, got {other:?}"),
        }
    }
    // The correct order still assembles and serves.
    assert!(ShardRouter::assemble(shards).is_ok());
}

#[test]
fn mixed_shard_sets_are_named_set_mismatches() {
    let base = serde::from_bytes(snapshot()).expect("clean snapshot");
    let ours = ShardedArtifact::partition(&base, 3).expect("partition").into_shards();

    // Same shape, different artifact generation: the set ids disagree.
    let theirs = ShardedArtifact::partition(other_oracle(), 3).expect("partition").into_shards();
    let mixed = vec![ours[0].clone(), theirs[1].clone(), ours[2].clone()];
    match validate_set(&mixed) {
        Err(OracleError::ShardSetMismatch { what }) => {
            assert!(what.contains("set id"), "must name the field: {what}");
        }
        other => panic!("mixed set ids must be rejected, got {other:?}"),
    }

    // Different epsilon: same graph family, different build parameters.
    let g = generators::gnp_weighted(30, 0.15, 40, 23).expect("graph");
    let mut clique = Clique::new(30);
    let reparam =
        OracleBuilder::new().epsilon(0.25).seed(23).build(&mut clique, &g).expect("build");
    let reparam_shards = ShardedArtifact::partition(&reparam, 3).expect("partition").into_shards();
    let mixed = vec![ours[0].clone(), ours[1].clone(), reparam_shards[2].clone()];
    match validate_set(&mixed) {
        Err(OracleError::ShardSetMismatch { .. }) => {}
        other => panic!("mixed build parameters must be rejected, got {other:?}"),
    }

    // An incomplete set is rejected, never a panic.
    assert!(matches!(validate_set(&ours[..2]), Err(OracleError::ShardSetMismatch { .. })));
}

#[test]
fn forged_shard_headers_behind_recomputed_checksums_are_still_rejected() {
    let fnv = |bytes: &[u8]| -> u64 {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for &b in bytes {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash
    };
    let reseal = |bytes: &mut [u8]| {
        let sum = fnv(&bytes[80..]);
        bytes[72..80].copy_from_slice(&sum.to_le_bytes());
    };

    // Forge shard_index = shard_count (out of range) behind a recomputed
    // checksum: the recomputed-plan validation must reject it.
    let mut forged = shard_snapshot(0).to_vec();
    forged[80..84].copy_from_slice(&3u32.to_le_bytes());
    reseal(&mut forged);
    assert!(matches!(serde::from_shard_bytes(&forged), Err(OracleError::CorruptSnapshot { .. })));

    // Forge an impossible plan (count > n).
    let mut forged = shard_snapshot(0).to_vec();
    forged[84..88].copy_from_slice(&31u32.to_le_bytes());
    reseal(&mut forged);
    let err = serde::from_shard_bytes(&forged).expect_err("impossible plan");
    assert!(err.to_string().contains("impossible shard plan"), "{err}");

    // Forge a *valid but different* count: the owned-range size no longer
    // matches the payload's rows — structural rejection, no panic.
    let mut forged = shard_snapshot(0).to_vec();
    forged[84..88].copy_from_slice(&5u32.to_le_bytes());
    reseal(&mut forged);
    assert!(serde::from_shard_bytes(&forged).is_err());

    // Forge the set id: the file parses (it is self-consistent) but can no
    // longer join its siblings.
    let mut forged = shard_snapshot(0).to_vec();
    forged[88..96].copy_from_slice(&0xDEAD_BEEFu64.to_le_bytes());
    reseal(&mut forged);
    let alien = serde::from_shard_bytes(&forged).expect("self-consistent forgery parses");
    let mut set = vec![alien];
    for i in 1..3 {
        set.push(serde::from_shard_bytes(shard_snapshot(i)).expect("clean shard"));
    }
    assert!(matches!(validate_set(&set), Err(OracleError::ShardSetMismatch { .. })));
}
