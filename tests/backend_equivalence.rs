//! The serving-contract suite for the [`QueryBackend`] trait: dispatching
//! through `Box<dyn QueryBackend>` over every in-repo tier — monolithic
//! oracle, cached monolith, shard router, cached router — must be
//! **bit-identical** to calling the concrete type directly, for every
//! pair of every standard graph family (gnp, road_like, disconnected
//! multi-island), including ∞ for disconnected pairs and the
//! `MAX_FINITE_DISTANCE` clamp for landmark sums that brush `u64::MAX`.
//!
//! This is the safety net under the serving-plane redesign: `cc-serve`
//! holds exactly one `Box<dyn QueryBackend>`, so if erasure, caching, or
//! routing perturbed a single bit, it would change wire answers. It never
//! may.

// Node-indexed loops over parallel per-node vectors are the domain idiom.
#![allow(clippy::needless_range_loop)]

use congested_clique::clique::Clique;
use congested_clique::graph::{generators, Graph};
use congested_clique::matrix::Dist;
use congested_clique::oracle::{
    CachingOracle, DistanceOracle, OracleBuilder, QueryBackend, ShardedArtifact,
    MAX_FINITE_DISTANCE,
};

fn build(g: &Graph, seed: u64) -> DistanceOracle {
    let mut clique = Clique::new(g.n());
    OracleBuilder::new().epsilon(0.25).seed(seed).build(&mut clique, g).expect("oracle build")
}

/// Every in-repo backend arrangement over `oracle`, type-erased, with the
/// label used in failure messages. Shard count 3 keeps same-shard,
/// adjacent-shard and far-shard pairs in play.
fn erased_backends(oracle: &DistanceOracle) -> Vec<(&'static str, Box<dyn QueryBackend>)> {
    let count = 3.min(oracle.n());
    let router = || {
        ShardedArtifact::partition(oracle, count)
            .expect("partition")
            .into_router()
            .expect("assemble")
    };
    vec![
        ("mono", Box::new(oracle.clone())),
        ("cached-mono", Box::new(CachingOracle::new(oracle.clone(), 4096))),
        // A zero-capacity (pass-through) cache must also be transparent.
        ("uncached-mono", Box::new(CachingOracle::new(oracle.clone(), 0))),
        ("router", Box::new(router())),
        ("cached-router", Box::new(CachingOracle::new(router(), 4096))),
    ]
}

/// Every pair, twice (the second pass hits the caches), plus the batch
/// path and out-of-range rejection: erased answers must equal the
/// monolith's direct answers exactly.
fn check_dispatch_is_bit_identical(oracle: &DistanceOracle) {
    let n = oracle.n();
    for (label, backend) in erased_backends(oracle) {
        assert_eq!(backend.n(), n, "{label}");
        for pass in 0..2 {
            for u in 0..n {
                for v in 0..n {
                    assert_eq!(
                        backend.try_query(u, v).unwrap(),
                        oracle.try_query(u, v).unwrap(),
                        "({u},{v}) via {label}, pass {pass}"
                    );
                }
            }
        }
        let pairs: Vec<(usize, usize)> = (0..2 * n).map(|i| (i % n, (i * 7 + 3) % n)).collect();
        assert_eq!(
            backend.try_query_batch(&pairs).unwrap(),
            oracle.try_query_batch(&pairs).unwrap(),
            "batch via {label}"
        );
        // Validation is part of the contract: same error, same fields.
        assert!(
            matches!(
                backend.try_query(0, n),
                Err(congested_clique::oracle::OracleError::QueryOutOfRange { u: 0, v, n: got })
                    if v == n && got == n
            ),
            "{label} must reject out-of-range pairs"
        );
        let mut bad = pairs;
        bad.push((n, 0));
        assert!(backend.try_query_batch(&bad).is_err(), "{label} must reject bad batches");
        // The descriptor agrees with the artifact on the basics.
        let desc = backend.descriptor();
        assert_eq!(desc.n, n, "{label}");
        assert_eq!(desc.k, oracle.k(), "{label}");
        assert_eq!(desc.landmark_count, oracle.landmarks().len(), "{label}");
    }
}

#[test]
fn gnp_graphs_dispatch_bit_identically() {
    for (n, p, w, seed) in [(24usize, 0.2, 30u64, 7u64), (33, 0.12, 50, 11)] {
        let g = generators::gnp_weighted(n, p, w, seed).expect("graph");
        check_dispatch_is_bit_identical(&build(&g, seed));
    }
}

#[test]
fn road_like_graphs_dispatch_bit_identically() {
    let g = generators::road_like(5, 6, 40, 9).expect("graph");
    check_dispatch_is_bit_identical(&build(&g, 9));
}

#[test]
fn disconnected_graphs_dispatch_bit_identically_including_infinity() {
    // Three islands: most pairs are ∞, and every backend must say so.
    let g =
        Graph::from_edges(12, [(0, 1, 3), (1, 2, 5), (4, 5, 2), (5, 6, 7), (6, 7, 1), (9, 10, 4)])
            .expect("graph");
    let oracle = build(&g, 3);
    // Sanity: the graph really is disconnected as seen by the oracle.
    assert_eq!(oracle.try_query(0, 4).unwrap(), Dist::INF);
    assert_eq!(oracle.try_query(3, 11).unwrap(), Dist::INF);
    check_dispatch_is_bit_identical(&oracle);
}

/// The hand-crafted near-`u64::MAX` path artifact from the monolithic
/// clamp regression tests: `0 — 1 — 2` with weights near the sentinel,
/// `k = 1`, node 1 the only landmark. The clamped sum must come out of
/// every erased backend bit-identically — and equal to the documented
/// clamp value, not ∞.
#[test]
fn near_max_clamped_sums_survive_every_backend() {
    let w = u64::MAX - 3;
    let bytes = near_max_snapshot(w, w);
    let oracle = congested_clique::oracle::serde::from_bytes(&bytes).expect("snapshot");
    assert_eq!(oracle.try_query(0, 2).unwrap(), Dist::fin(MAX_FINITE_DISTANCE));
    check_dispatch_is_bit_identical(&oracle);

    // The exact-sentinel collision (sum == u64::MAX with no overflow).
    let collide = congested_clique::oracle::serde::from_bytes(&near_max_snapshot(
        u64::MAX / 2,
        u64::MAX / 2 + 1,
    ))
    .expect("snapshot");
    assert_eq!(collide.try_query(0, 2).unwrap(), Dist::fin(MAX_FINITE_DISTANCE));
    check_dispatch_is_bit_identical(&collide);
}

/// Serializes the 3-node near-MAX path artifact through the documented
/// snapshot byte format (mirroring `tests/shard_equivalence.rs`), so the
/// hand-crafted oracle flows through the same loader a server would use.
fn near_max_snapshot(w01: u64, w12: u64) -> Vec<u8> {
    let mut payload = Vec::new();
    // landmarks: [1]
    payload.extend_from_slice(&1u32.to_le_bytes());
    // nearest landmark per node: (0, w01), (0, 0), (0, w12)
    for d in [w01, 0, w12] {
        payload.extend_from_slice(&0u32.to_le_bytes());
        payload.extend_from_slice(&d.to_le_bytes());
    }
    // balls: each node's singleton {self: 0}
    for id in 0u32..3 {
        payload.extend_from_slice(&1u64.to_le_bytes());
        payload.extend_from_slice(&id.to_le_bytes());
        payload.extend_from_slice(&0u64.to_le_bytes());
    }
    // columns (3×1): w01, 0, w12
    for c in [w01, 0, w12] {
        payload.extend_from_slice(&c.to_le_bytes());
    }

    let mut bytes = Vec::with_capacity(80 + payload.len());
    bytes.extend_from_slice(b"CCOS");
    bytes.extend_from_slice(&2u32.to_le_bytes());
    for field in [3u64, 1, 0.25f64.to_bits(), 1, 0, 0, 0, payload.len() as u64, fnv1a64(&payload)] {
        bytes.extend_from_slice(&field.to_le_bytes());
    }
    bytes.extend_from_slice(&payload);
    bytes
}

/// Independent FNV-1a 64 implementation (not the crate's), so a checksum
/// bug cannot hide by agreeing with itself.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}
