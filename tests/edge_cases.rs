//! Degenerate-size and boundary-condition tests: the whole pipeline on
//! cliques of 1–4 nodes, extreme parameters, and parameter boundaries.
//! Theory papers assume `n` large; a library must also survive `n` tiny.

// Node-indexed loops over parallel per-node vectors are the domain idiom.
#![allow(clippy::needless_range_loop)]

use congested_clique::clique::Clique;
use congested_clique::core::{apsp, baselines, diameter, mssp, paths, sssp};
use congested_clique::distance::{distance_through_sets, hitting_set, k_nearest};
use congested_clique::graph::{generators, reference, Graph};
use congested_clique::hopset::{build_hopset, HopsetConfig};
use congested_clique::matmul::{dense_multiply, filtered_multiply, sparse_multiply};
use congested_clique::matrix::{Dist, MinPlus, SparseMatrix};

#[test]
fn single_node_clique_runs_everything() {
    let g = Graph::empty(1);
    let mut clique = Clique::new(1);
    let near = k_nearest(&mut clique, &g, 1).unwrap();
    assert_eq!(near[0].nnz(), 1); // itself
    let run = sssp::exact_sssp(&mut clique, &g, 0).unwrap();
    assert_eq!(run.dist[0], Dist::ZERO);
    let run = apsp::weighted_2eps(&mut clique, &g, 0.5).unwrap();
    assert_eq!(run.dist[0][0], Dist::ZERO);
    let h = build_hopset(&mut clique, &g, HopsetConfig::new(0.5)).unwrap();
    assert!(h.edges.is_empty());
}

#[test]
fn single_node_matmul() {
    let mut clique = Clique::new(1);
    let m = SparseMatrix::<Dist>::identity::<MinPlus>(1);
    let p = sparse_multiply::<MinPlus>(&mut clique, m.rows(), m.rows(), 1).unwrap();
    assert_eq!(SparseMatrix::from_rows(p), m);
    let p = filtered_multiply::<MinPlus>(&mut clique, m.rows(), m.rows(), 1).unwrap();
    assert_eq!(SparseMatrix::from_rows(p), m);
    let p = dense_multiply::<MinPlus>(&mut clique, m.rows(), m.rows()).unwrap();
    assert_eq!(SparseMatrix::from_rows(p), m);
}

#[test]
fn two_node_graph_full_pipeline() {
    let g = Graph::from_edges(2, [(0, 1, 7)]).unwrap();
    let mut clique = Clique::new(2);
    let run = mssp::mssp(&mut clique, &g, &[0], 0.5).unwrap();
    assert_eq!(run.dist[1][0].value(), Some(7));
    let run = apsp::weighted_2eps(&mut clique, &g, 0.5).unwrap();
    assert_eq!(run.dist[0][1].value(), Some(7));
    let run = diameter::diameter_approx(&mut clique, &g, 0.5).unwrap();
    assert!(run.estimate >= 7);
    let tables = paths::exact_apsp_paths(&mut clique, &g).unwrap();
    assert_eq!(tables.path(0, 1), Some(vec![0, 1]));
}

#[test]
fn four_node_cycle_everything_exact() {
    let g = generators::cycle(4).unwrap();
    let exact = reference::all_pairs(&g);
    let mut clique = Clique::new(4);
    let run = apsp::unweighted_2eps(&mut clique, &g, 0.5).unwrap();
    for u in 0..4 {
        for v in 0..4 {
            // Tiny graphs are covered exactly by the ball phase.
            assert_eq!(run.dist[u][v].value(), exact[u][v]);
        }
    }
}

#[test]
fn k_equals_n_nearest_is_whole_graph() {
    let g = generators::gnp_weighted(12, 0.3, 9, 2).unwrap();
    let mut clique = Clique::new(12);
    let near = k_nearest(&mut clique, &g, 12).unwrap();
    let exact = reference::all_pairs(&g);
    for v in 0..12 {
        let reachable = exact[v].iter().flatten().count();
        assert_eq!(near[v].nnz(), reachable);
        for (u, a) in near[v].iter() {
            assert_eq!(Some(a.dist), exact[v][u as usize]);
        }
    }
}

#[test]
fn k_larger_than_n_is_clamped() {
    let g = generators::path(6).unwrap();
    let mut clique = Clique::new(6);
    let near = k_nearest(&mut clique, &g, 1000).unwrap();
    assert_eq!(near[0].nnz(), 6);
}

#[test]
fn empty_graph_distances_are_all_infinite() {
    let g = Graph::empty(8);
    let mut clique = Clique::new(8);
    let run = sssp::bellman_ford(&mut clique, &g, 3, None).unwrap();
    for v in 0..8 {
        if v == 3 {
            assert_eq!(run.dist[v], Dist::ZERO);
        } else {
            assert_eq!(run.dist[v], Dist::INF);
        }
    }
    let run = baselines::exact_apsp_squaring(&mut clique, &g).unwrap();
    assert_eq!(run.dist[0][1], Dist::INF);
}

#[test]
fn zero_weight_edges_are_supported() {
    // The paper allows non-negative weights; zero-weight edges must work.
    let g = Graph::from_edges(5, [(0, 1, 0), (1, 2, 3), (2, 3, 0), (3, 4, 2)]).unwrap();
    let exact = reference::dijkstra(&g, 0);
    assert_eq!(exact[4], Some(5));
    let mut clique = Clique::new(5);
    let run = sssp::exact_sssp(&mut clique, &g, 0).unwrap();
    for v in 0..5 {
        assert_eq!(run.dist[v].value(), exact[v]);
    }
    let mut clique = Clique::new(5);
    let run = apsp::weighted_2eps(&mut clique, &g, 0.5).unwrap();
    congested_clique::core::stretch::assert_sound(&run.dist, &reference::all_pairs(&g));
}

#[test]
fn huge_weights_do_not_overflow() {
    let big = 1u64 << 40;
    let g = Graph::from_edges(4, [(0, 1, big), (1, 2, big), (2, 3, big)]).unwrap();
    let mut clique = Clique::new(4);
    let run = sssp::exact_sssp(&mut clique, &g, 0).unwrap();
    assert_eq!(run.dist[3].value(), Some(3 * big));
    let mut clique = Clique::new(4);
    let run = apsp::weighted_3eps(&mut clique, &g, 0.5).unwrap();
    assert!(run.dist[0][3].value().unwrap() >= 3 * big);
}

#[test]
fn hitting_set_with_k_exceeding_set_sizes() {
    // k larger than every set: sampling probability 1 would be used, but
    // the repair path must still guarantee coverage.
    let sets = vec![vec![1], vec![2], vec![3], vec![0]];
    let mut clique = Clique::new(4);
    let hs = hitting_set(&mut clique, &sets, 100, 3).unwrap();
    for set in &sets {
        assert!(set.iter().any(|&w| hs.contains(w)));
    }
}

#[test]
fn through_sets_with_self_referential_sets() {
    // Sets containing the node itself at distance 0.
    let sets: Vec<Vec<(usize, Dist)>> = (0..4).map(|v| vec![(v, Dist::ZERO)]).collect();
    let mut clique = Clique::new(4);
    let rows = distance_through_sets(&mut clique, &sets).unwrap();
    for v in 0..4 {
        assert_eq!(rows[v].get(v as u32), Some(&Dist::ZERO));
        assert_eq!(rows[v].nnz(), 1);
    }
}

#[test]
fn epsilon_extremes() {
    let g = generators::gnp_weighted(16, 0.2, 9, 5).unwrap();
    // Very large epsilon: still sound, just loose.
    let mut clique = Clique::new(16);
    let run = mssp::mssp(&mut clique, &g, &[0], 8.0).unwrap();
    let exact = reference::dijkstra(&g, 0);
    for v in 0..16 {
        let e = run.dist[v][0].value().unwrap();
        let d = exact[v].unwrap();
        assert!(e >= d && e as f64 <= 9.0 * d as f64 + 1e-9);
    }
    // Tiny epsilon: beta saturates at n, results effectively exact.
    let mut clique = Clique::new(16);
    let run = mssp::mssp(&mut clique, &g, &[0], 1e-6).unwrap();
    for v in 0..16 {
        assert_eq!(run.dist[v][0].value(), exact[v]);
    }
}
