//! Property-based tests over random graphs and matrices: the distributed
//! algorithms agree with sequential references on arbitrary inputs, and the
//! paper's invariants hold.

// Node-indexed loops over parallel per-node vectors are the domain idiom.
#![allow(clippy::needless_range_loop)]

use congested_clique::clique::Clique;
use congested_clique::core::{mssp, sssp};
use congested_clique::distance::k_nearest;
use congested_clique::graph::{reference, Graph};
use congested_clique::matmul::{filtered_multiply, sparse_multiply_auto};
use congested_clique::matrix::{Dist, Entry, MinPlus, SparseMatrix};
use proptest::prelude::*;

/// Arbitrary connected weighted graph on exactly `n` nodes.
fn arb_graph(n: usize) -> impl Strategy<Value = Graph> {
    let extra = prop::collection::vec((0..n, 0..n, 1u64..50), 0..3 * n);
    let spine = prop::collection::vec(1u64..50, n - 1);
    (extra, spine).prop_map(move |(extra, spine)| {
        let mut g = Graph::empty(n);
        for (i, w) in spine.into_iter().enumerate() {
            g.add_edge(i, i + 1, w).expect("spine edges valid");
        }
        for (u, v, w) in extra {
            if u != v {
                g.add_edge(u, v, w).expect("extra edges valid");
            }
        }
        g
    })
}

fn arb_matrix(n: usize, max_entries: usize) -> impl Strategy<Value = SparseMatrix<Dist>> {
    prop::collection::vec((0..n as u32, 0..n as u32, 1u64..500), 0..max_entries).prop_map(
        move |entries| {
            SparseMatrix::from_entries::<MinPlus>(
                n,
                entries.into_iter().map(|(r, c, w)| Entry::new(r, c, Dist::fin(w))),
            )
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn sparse_multiply_auto_matches_reference(
        s in arb_matrix(12, 50),
        t in arb_matrix(12, 50),
    ) {
        let mut clique = Clique::new(12);
        let t_cols = t.transpose();
        let (rows, _) =
            sparse_multiply_auto::<MinPlus>(&mut clique, s.rows(), t_cols.rows()).unwrap();
        prop_assert_eq!(SparseMatrix::from_rows(rows), s.multiply::<MinPlus>(&t));
    }

    #[test]
    fn filtered_multiply_matches_filtered_reference(
        s in arb_matrix(10, 60),
        t in arb_matrix(10, 60),
        rho in 1usize..5,
    ) {
        let mut clique = Clique::new(10);
        let t_cols = t.transpose();
        let rows =
            filtered_multiply::<MinPlus>(&mut clique, s.rows(), t_cols.rows(), rho).unwrap();
        let expected = s.multiply::<MinPlus>(&t).filtered::<MinPlus>(rho);
        prop_assert_eq!(SparseMatrix::from_rows(rows), expected);
    }

    #[test]
    fn k_nearest_matches_dijkstra_prefix(g in arb_graph(14), k in 1usize..8) {
        let mut clique = Clique::new(14);
        let got = k_nearest(&mut clique, &g, k).unwrap();
        for v in 0..14 {
            let expected = reference::k_nearest(&g, v, k);
            let mut items: Vec<(u64, u32, usize)> =
                got[v].iter().map(|(c, a)| (a.dist, a.hops, c as usize)).collect();
            items.sort_unstable();
            let got_v: Vec<(usize, u64, u32)> =
                items.into_iter().map(|(d, h, u)| (u, d, h)).collect();
            prop_assert_eq!(got_v, expected);
        }
    }

    #[test]
    fn exact_sssp_matches_dijkstra(g in arb_graph(16), source in 0usize..16) {
        let mut clique = Clique::new(16);
        let run = sssp::exact_sssp(&mut clique, &g, source).unwrap();
        let exact = reference::dijkstra(&g, source);
        for v in 0..16 {
            prop_assert_eq!(run.dist[v].value(), exact[v]);
        }
    }

    #[test]
    fn mssp_never_underestimates_and_meets_stretch(g in arb_graph(16)) {
        let mut clique = Clique::new(16);
        let run = mssp::mssp(&mut clique, &g, &[0, 8], 0.5).unwrap();
        for (i, &s) in [0usize, 8].iter().enumerate() {
            let exact = reference::dijkstra(&g, s);
            for v in 0..16 {
                let d = exact[v].expect("spine keeps the graph connected");
                let e = run.dist[v][i].value().expect("connected");
                prop_assert!(e >= d);
                prop_assert!(e as f64 <= 1.5 * d as f64 + 1e-9);
            }
        }
    }
}
