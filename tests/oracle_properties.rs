//! Property tests for the serving-layer oracle: on random graphs from two
//! families (`gnp` and `road_like`), every answer is sound (never below the
//! true distance) and within the documented stretch bound of the Dijkstra
//! ground truth; builds are deterministic in the seed; and the byte
//! snapshot round-trips to an identical artifact.

// Node-indexed loops over parallel per-node vectors are the domain idiom.
#![allow(clippy::needless_range_loop)]

use congested_clique::clique::Clique;
use congested_clique::graph::{generators, reference, Graph};
use congested_clique::oracle::{serde, DistanceOracle, OracleBuilder};
use proptest::prelude::*;

fn build(g: &Graph, k: usize, epsilon: f64, seed: u64) -> DistanceOracle {
    let mut clique = Clique::new(g.n());
    OracleBuilder::new()
        .k(k)
        .epsilon(epsilon)
        .seed(seed)
        .build(&mut clique, g)
        .expect("oracle build")
}

/// Every pair: `d(u,v) ≤ query(u,v) ≤ 3(1+ε)·d(u,v)`, with reachability
/// agreeing exactly.
fn check_sound_and_bounded(g: &Graph, oracle: &DistanceOracle) {
    let bound = oracle.stretch_bound();
    for u in 0..g.n() {
        let exact = reference::dijkstra(g, u);
        for v in 0..g.n() {
            match (exact[v], oracle.try_query(u, v).unwrap().value()) {
                (Some(d), Some(est)) => {
                    assert!(est >= d, "underestimate: query({u},{v}) = {est} < {d}");
                    assert!(
                        est as f64 <= bound * d as f64 + 1e-9,
                        "stretch violated: query({u},{v}) = {est} > {bound} * {d}"
                    );
                }
                (None, None) => {}
                (d, est) => panic!("reachability mismatch for ({u},{v}): {d:?} vs {est:?}"),
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn gnp_answers_sound_and_within_stretch(
        seed in 0u64..100_000,
        k in 4usize..12,
        dense in 0u64..2,
    ) {
        let p = if dense == 1 { 0.3 } else { 0.1 };
        let g = generators::gnp_weighted(28, p, 40, seed).expect("gnp");
        let oracle = build(&g, k, 0.25, seed ^ 0xA5A5);
        check_sound_and_bounded(&g, &oracle);
    }

    #[test]
    fn road_like_answers_sound_and_within_stretch(
        seed in 0u64..100_000,
        k in 4usize..10,
    ) {
        let g = generators::road_like(6, 5, 25, seed).expect("road_like");
        let oracle = build(&g, k, 0.5, seed.wrapping_mul(3));
        check_sound_and_bounded(&g, &oracle);
    }

    #[test]
    fn builds_are_deterministic_and_snapshots_round_trip(seed in 0u64..100_000) {
        let g = generators::road_like(5, 5, 30, seed).expect("road_like");
        let a = build(&g, 6, 0.25, seed);
        let b = build(&g, 6, 0.25, seed);
        prop_assert_eq!(&a, &b, "same seed must rebuild the identical artifact");

        let bytes = serde::to_bytes(&a);
        let reloaded = serde::from_bytes(&bytes).expect("round trip");
        prop_assert_eq!(&reloaded, &a, "snapshot must reload to an identical artifact");
        // And the reloaded artifact serves identical answers.
        for u in 0..g.n() {
            for v in 0..g.n() {
                prop_assert_eq!(reloaded.try_query(u, v).unwrap(), a.try_query(u, v).unwrap());
            }
        }
    }

    #[test]
    fn batch_and_cache_agree_with_raw_queries(seed in 0u64..100_000) {
        let g = generators::gnp(24, 0.15, seed).expect("gnp");
        let oracle = build(&g, 5, 0.25, seed);
        let pairs: Vec<(usize, usize)> =
            (0..24 * 24).map(|i| (i % 24, (i / 24) % 24)).collect();
        let batch = oracle.try_query_batch(&pairs).unwrap();
        let cached = congested_clique::oracle::CachingOracle::new(oracle.clone(), 64);
        for (i, &(u, v)) in pairs.iter().enumerate() {
            prop_assert_eq!(batch[i], oracle.try_query(u, v).unwrap());
            prop_assert_eq!(cached.try_query(u, v).unwrap(), oracle.try_query(u, v).unwrap());
        }
    }
}
