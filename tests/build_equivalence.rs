//! The direct builder's bit-identity contract, enforced differentially:
//! for every graph family × seed × ε × k configuration,
//! [`DirectBuilder`](cc_oracle::DirectBuilder) must produce the **same
//! snapshot payload bytes** as the clique
//! [`OracleBuilder`](cc_oracle::OracleBuilder) — same balls, same
//! landmarks, same nearest-landmark picks, same `(1+ε)` columns, same
//! build id. `cc_oracle::testkit::assert_same_artifact` panics with the
//! first divergent section otherwise.
//!
//! This suite is the *proof* behind `docs/BUILDERS.md`: the direct path is
//! not "approximately the clique build, but faster" — it is the clique
//! build, with the simulator removed.

use congested_clique::clique::Clique;
use congested_clique::graph::{generators, Graph};
use congested_clique::oracle::{testkit, DirectBuilder, DistanceOracle, OracleBuilder};

/// Builds the same configuration through both pipelines and asserts the
/// artifacts are byte-identical.
fn assert_builders_agree(name: &str, g: &Graph, epsilon: f64, seed: u64, k: Option<usize>) {
    let mut clique = Clique::new(g.n());
    let mut via_clique = OracleBuilder::new().epsilon(epsilon).seed(seed);
    let mut direct = DirectBuilder::new().epsilon(epsilon).seed(seed);
    if let Some(k) = k {
        via_clique = via_clique.k(k);
        direct = direct.k(k);
    }
    let reference = via_clique
        .build(&mut clique, g)
        .unwrap_or_else(|e| panic!("clique build failed on {name}: {e}"));
    let candidate =
        direct.build(g).unwrap_or_else(|e| panic!("direct build failed on {name}: {e}"));
    eprintln!("case {name}: eps={epsilon} seed={seed} k={k:?} n={}", g.n());
    testkit::assert_same_artifact(&candidate, &reference);
}

/// The tentpole sweep: every standard-suite family × 3 seeds × 2 ε × 2 k.
#[test]
fn direct_builder_is_bit_identical_across_the_standard_suite() {
    for seed in [1, 29, 77] {
        let suite = generators::standard_suite(24, seed).unwrap();
        for (name, g) in &suite {
            for epsilon in [0.25, 0.5] {
                for k in [None, Some(4)] {
                    assert_builders_agree(name, g, epsilon, seed, k);
                }
            }
        }
    }
}

/// Larger spot checks at n = 72, where the hopset schedule and landmark
/// counts differ meaningfully from n = 24. A representative slice of the
/// suite (sparse random, heavy-tailed, grid-like, path) keeps the debug
/// run fast; the full sweep above covers every family.
#[test]
fn direct_builder_is_bit_identical_at_larger_n() {
    let suite = generators::standard_suite(72, 5).unwrap();
    for (name, g) in &suite {
        if ["gnp-sparse", "road-like", "ba", "path"].contains(&name.as_str()) {
            assert_builders_agree(name, g, 0.25, 11, None);
        }
    }
}

/// Disconnected graphs: three islands of different sizes (including a
/// singleton). Balls stay island-local, cross-island columns are the ∞
/// sentinel — both builders must agree on every one of them.
#[test]
fn direct_builder_matches_on_disconnected_islands() {
    // Island A: a 5-path (0..=4). Island B: a weighted triangle (5..=7).
    // Island C: the singleton 8.
    let g = Graph::from_edges(
        9,
        [(0, 1, 2), (1, 2, 1), (2, 3, 4), (3, 4, 1), (5, 6, 3), (6, 7, 2), (5, 7, 9)],
    )
    .unwrap();
    for seed in [0, 3] {
        for k in [None, Some(2), Some(4)] {
            assert_builders_agree("three-islands", &g, 0.5, seed, k);
        }
    }
}

/// Near-sentinel weights: one edge carries almost the largest weight the
/// build can sum without overflowing (`Dist::checked_add` panics past
/// `u64::MAX`; both builders share that contract, so the heaviest usable
/// edge is just under `u64::MAX / 2` — build-time relaxations may sum two
/// path distances that each contain it once). The artifact must carry the
/// huge distances exactly.
#[test]
fn direct_builder_matches_on_near_max_finite_weights() {
    let huge = u64::MAX / 2 - 64;
    let g = Graph::from_edges(4, [(0, 1, 1), (1, 2, huge), (2, 3, 3)]).unwrap();
    for k in [None, Some(1), Some(2)] {
        assert_builders_agree("near-max-weights", &g, 0.25, 2, k);
    }
    // Sanity: the huge distance survives into query answers unclamped.
    let direct = DirectBuilder::new().seed(2).build(&g).unwrap();
    assert_eq!(direct.try_query(0, 3).unwrap().value(), Some(huge + 4));
}

/// `k = n` makes every ball the whole component and every query exact —
/// a degenerate configuration worth pinning on both pipelines.
#[test]
fn direct_builder_matches_with_maximal_k() {
    let g = generators::cliques_with_bridges(4, 6, 13).unwrap();
    assert_builders_agree("cliques-with-bridges", &g, 0.5, 7, Some(g.n()));
}

/// The differential guarantee extends through serialization: same payload
/// checksum means same `build_id` in the snapshot header.
#[test]
fn direct_and_clique_builds_share_a_build_id() {
    use congested_clique::oracle::serde;
    let g = generators::road_like(6, 6, 25, 3).unwrap();
    let mut clique = Clique::new(g.n());
    let via_clique = OracleBuilder::new().seed(5).build(&mut clique, &g).unwrap();
    let direct: DistanceOracle = DirectBuilder::new().seed(5).build(&g).unwrap();
    let id_of = |o: &DistanceOracle| serde::peek_header(&serde::to_bytes(o)).unwrap().build_id();
    assert_eq!(id_of(&direct), id_of(&via_clique));
}
