//! The sharding contract, pinned bit-for-bit: for every graph in the
//! standard families (gnp and road_like, several seeds), every shard count
//! in {1, 2, 3, 7}, and **every** node pair, the [`ShardRouter`] assembled
//! from a partitioned oracle answers exactly what the monolithic
//! [`DistanceOracle`] answers — the same finite values, the same ∞ for
//! disconnected pairs, and the same clamped value for landmark sums that
//! brush `u64::MAX`. Per-shard snapshots are deterministic and round-trip
//! to an identical, identically-answering router.
//!
//! This suite is the reason the sharded router tier may call itself a
//! drop-in replacement for the monolithic tier.

// Node-indexed loops over parallel per-node vectors are the domain idiom.
#![allow(clippy::needless_range_loop)]

use congested_clique::clique::Clique;
use congested_clique::graph::{generators, Graph};
use congested_clique::oracle::{
    serde, DistanceOracle, OracleBuilder, ShardRouter, ShardedArtifact,
};
use proptest::prelude::*;

const SHARD_COUNTS: [usize; 4] = [1, 2, 3, 7];

fn build(g: &Graph, k: usize, epsilon: f64, seed: u64) -> DistanceOracle {
    let mut clique = Clique::new(g.n());
    OracleBuilder::new()
        .k(k)
        .epsilon(epsilon)
        .seed(seed)
        .build(&mut clique, g)
        .expect("oracle build")
}

/// Every pair, every shard count: the router's `Dist` must equal the
/// monolith's `Dist` exactly — not within stretch, not up to rounding,
/// *equal* (which also pins ∞ ↔ ∞).
fn check_bit_identical(oracle: &DistanceOracle) {
    let n = oracle.n();
    for count in SHARD_COUNTS {
        if count > n {
            continue;
        }
        let router = ShardedArtifact::partition(oracle, count)
            .expect("partition")
            .into_router()
            .expect("assemble");
        for u in 0..n {
            for v in 0..n {
                assert_eq!(
                    router.try_query(u, v).unwrap(),
                    oracle.try_query(u, v).unwrap(),
                    "({u},{v}) with {count} shards"
                );
            }
        }
        // The batch path routes pair-by-pair through the same combine.
        let pairs: Vec<(usize, usize)> = (0..n * 2).map(|i| (i % n, (i * 7 + 3) % n)).collect();
        assert_eq!(
            router.try_query_batch(&pairs).expect("in-range batch"),
            oracle.try_query_batch(&pairs).unwrap(),
            "batch with {count} shards"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    #[test]
    fn gnp_router_answers_are_bit_identical(
        seed in 0u64..100_000,
        k in 4usize..12,
        dense in 0u64..2,
    ) {
        let p = if dense == 1 { 0.3 } else { 0.1 };
        let g = generators::gnp_weighted(28, p, 40, seed).expect("gnp");
        check_bit_identical(&build(&g, k, 0.25, seed ^ 0xA5A5));
    }

    #[test]
    fn road_like_router_answers_are_bit_identical(
        seed in 0u64..100_000,
        k in 4usize..10,
    ) {
        let g = generators::road_like(6, 5, 25, seed).expect("road_like");
        check_bit_identical(&build(&g, k, 0.5, seed.wrapping_mul(3)));
    }

    #[test]
    fn disconnected_graphs_report_infinity_identically(seed in 0u64..100_000) {
        // Three islands: most pairs are ∞, and the router must say so for
        // exactly the same pairs the monolith does.
        let mut edges: Vec<(usize, usize, u64)> = Vec::new();
        for island in 0..3usize {
            let base = island * 7;
            for i in 0..6 {
                edges.push((base + i, base + i + 1, (seed % 30) + 1 + i as u64));
            }
        }
        let g = Graph::from_edges(21, edges).expect("islands");
        check_bit_identical(&build(&g, 3, 0.25, seed));
    }

    #[test]
    fn shard_snapshots_are_deterministic_and_round_trip(seed in 0u64..100_000) {
        let g = generators::road_like(5, 5, 30, seed).expect("road_like");
        let oracle = build(&g, 6, 0.25, seed);
        for count in [2usize, 3] {
            let shards = ShardedArtifact::partition(&oracle, count)
                .expect("partition")
                .into_shards();

            let mut reloaded = Vec::with_capacity(count);
            for shard in &shards {
                // Same shard + same timestamp ⇒ byte-identical snapshot
                // (content-addressed artifact stores depend on this).
                let bytes = serde::to_shard_bytes_created_at(shard, 1_753_000_000);
                prop_assert_eq!(
                    &bytes,
                    &serde::to_shard_bytes_created_at(shard, 1_753_000_000),
                    "shard serialization must be deterministic"
                );
                // The write timestamp changes the header, not the identity.
                let header = serde::peek_shard_header(&bytes).expect("header");
                let later = serde::peek_shard_header(
                    &serde::to_shard_bytes_created_at(shard, 1_999_999_999),
                ).expect("header");
                prop_assert_eq!(header.build_id(), later.build_id());
                let back = serde::from_shard_bytes(&bytes).expect("round trip");
                prop_assert_eq!(&back, shard, "shard must round-trip identically");
                reloaded.push(back);
            }

            // The round-tripped set assembles and answers identically.
            let router = ShardRouter::assemble(reloaded).expect("assemble");
            for u in 0..g.n() {
                for v in 0..g.n() {
                    prop_assert_eq!(router.try_query(u, v).unwrap(), oracle.try_query(u, v).unwrap());
                }
            }
        }
    }
}

/// FNV-1a 64, as specified in `docs/SNAPSHOT_FORMAT.md` — implemented here
/// independently so the hand-crafted snapshot below really exercises the
/// documented format, not a re-export of the implementation.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Builds the v2 snapshot bytes for the 3-node path `0 — 1 — 2` with both
/// edge weights `w` (near `u64::MAX`), `k = 1` and node 1 the only
/// landmark: the only route for the pair `(0, 2)` is the landmark sum
/// `w + w`, which overflows and must clamp to `MAX_FINITE_DISTANCE`.
fn near_max_snapshot(w: u64) -> Vec<u8> {
    let mut payload = Vec::new();
    // landmarks: [1]
    payload.extend_from_slice(&1u32.to_le_bytes());
    // nearest landmark per node: (0, w), (0, 0), (0, w)
    for d in [w, 0, w] {
        payload.extend_from_slice(&0u32.to_le_bytes());
        payload.extend_from_slice(&d.to_le_bytes());
    }
    // balls: each node's singleton {self: 0}
    for id in 0u32..3 {
        payload.extend_from_slice(&1u64.to_le_bytes());
        payload.extend_from_slice(&id.to_le_bytes());
        payload.extend_from_slice(&0u64.to_le_bytes());
    }
    // columns (3×1): w, 0, w
    for c in [w, 0, w] {
        payload.extend_from_slice(&c.to_le_bytes());
    }

    let mut bytes = Vec::with_capacity(80 + payload.len());
    bytes.extend_from_slice(b"CCOS");
    bytes.extend_from_slice(&2u32.to_le_bytes());
    for field in [3u64, 1, 0.25f64.to_bits(), 1, 0, 0, 0, payload.len() as u64, fnv1a(&payload)] {
        bytes.extend_from_slice(&field.to_le_bytes());
    }
    bytes.extend_from_slice(&payload);
    bytes
}

#[test]
fn near_max_weights_clamp_identically_through_the_router() {
    use congested_clique::matrix::Dist;
    use congested_clique::oracle::MAX_FINITE_DISTANCE;

    for w in [u64::MAX - 3, u64::MAX / 2, u64::MAX / 2 + 1] {
        let oracle = serde::from_bytes(&near_max_snapshot(w)).expect("crafted snapshot");
        // Sanity: the monolith clamps the overflowing landmark sum.
        let expect = w.checked_add(w).map_or(MAX_FINITE_DISTANCE, |s| s.min(MAX_FINITE_DISTANCE));
        assert_eq!(oracle.try_query(0, 2).unwrap(), Dist::fin(expect), "w = {w}");

        for count in [1usize, 2, 3] {
            let router = ShardedArtifact::partition(&oracle, count)
                .expect("partition")
                .into_router()
                .expect("assemble");
            for u in 0..3 {
                for v in 0..3 {
                    assert_eq!(
                        router.try_query(u, v).unwrap(),
                        oracle.try_query(u, v).unwrap(),
                        "({u},{v}) with {count} shards, w = {w}"
                    );
                }
            }
        }
    }
}
