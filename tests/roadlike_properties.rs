//! Properties of the large-scale `road_like` generator — the workload the
//! direct builder's `10⁵`–`10⁶`-node artifacts are built from.
//!
//! Pinned here (and promised in the generator's docs): determinism in the
//! seed, connectivity at every size, weight bounds, and edge-count scaling.
//! The small-n properties run under proptest; the large-n cases are
//! deterministic one-shots (a `1000 × 1000` sweep per proptest case would
//! be wasteful), with the million-node case `#[ignore]`d for on-demand runs
//! — CI exercises that scale through the release-mode smoke job instead.

use congested_clique::graph::{generators, reference, Graph};
use proptest::prelude::*;

/// Union-find-free connectivity check that avoids `reference::bfs`'s
/// recursion-free but `O(n)`-allocating per-source shape being run n times:
/// one BFS from node 0 must reach everyone (the graph is undirected).
fn is_connected(g: &Graph) -> bool {
    reference::bfs(g, 0).iter().all(Option::is_some)
}

fn weights_bounded(g: &Graph, max_weight: u64) -> bool {
    g.edges().all(|(_, _, w)| w >= 1 && w <= max_weight.max(2))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn road_like_is_deterministic_connected_and_bounded(
        w in 2usize..28,
        h in 2usize..28,
        max_weight in 1u64..60,
        seed in 0u64..1000,
    ) {
        let g = generators::road_like(w, h, max_weight, seed).unwrap();
        prop_assert_eq!(g.n(), w * h);
        prop_assert!(is_connected(&g));
        prop_assert!(weights_bounded(&g, max_weight));
        // Pure function of the inputs: a rebuild is edge-for-edge identical.
        let again = generators::road_like(w, h, max_weight, seed).unwrap();
        prop_assert_eq!(g.m(), again.m());
        prop_assert!(g.edges().eq(again.edges()));
        // Scaling: at least the spanning grid, at most grid + all diagonals
        // + all chords.
        let grid_edges = 2 * w * h - w - h;
        prop_assert!(g.m() >= grid_edges);
        prop_assert!(g.m() <= grid_edges + (w - 1) * (h - 1) + (w * h / 16).max(1));
    }
}

/// `n = 10⁵`: the size the CI smoke job builds and serves. Generation must
/// stay fast (this whole test runs in debug mode), deterministic, and
/// connected.
#[test]
fn road_like_at_1e5_nodes_is_connected_and_deterministic() {
    let g = generators::road_like(400, 250, 30, 42).unwrap();
    assert_eq!(g.n(), 100_000);
    assert!(is_connected(&g));
    assert!(weights_bounded(&g, 30));
    let again = generators::road_like(400, 250, 30, 42).unwrap();
    assert_eq!(g.m(), again.m());
    assert!(g.edges().eq(again.edges()));
    // Bounded degree: grid(4) + diagonals(2) + a few chords. A generous cap
    // catches accidental hub formation.
    assert!((0..g.n()).all(|v| g.degree(v) <= 16));
}

/// `n = 10⁶`: the artifact ceiling this PR unlocks. Ignored by default —
/// run with `cargo test --release -- --ignored` (debug-mode generation
/// alone is tens of seconds).
#[test]
#[ignore = "million-node generation; run explicitly in release mode"]
fn road_like_at_1e6_nodes_is_connected() {
    let g = generators::road_like(1000, 1000, 30, 7).unwrap();
    assert_eq!(g.n(), 1_000_000);
    assert!(is_connected(&g));
    assert!(weights_bounded(&g, 30));
}
