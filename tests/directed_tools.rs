//! The §3 distance tools on *directed* graphs — the paper states they work
//! for directed weighted graphs even though the headline algorithms are
//! undirected; these tests hold the matrix-level entry points to that.

// Node-indexed loops over parallel per-node vectors are the domain idiom.
#![allow(clippy::needless_range_loop)]

use congested_clique::clique::Clique;
use congested_clique::distance::{
    k_nearest_matrix, source_detection_all_matrix, source_detection_k_matrix,
};
use congested_clique::graph::{dijkstra_directed, gnp_directed, hop_bounded_directed, DiGraph};

#[test]
fn directed_k_nearest_matches_directed_dijkstra() {
    let g = gnp_directed(24, 0.08, 20, 5).unwrap();
    let w = g.augmented_weight_matrix();
    for k in [1usize, 3, 8] {
        let mut clique = Clique::new(24);
        let near = k_nearest_matrix(&mut clique, &w, k).unwrap();
        for v in 0..24 {
            let mut expected: Vec<(u64, u32, usize)> = dijkstra_directed(&g, v)
                .into_iter()
                .enumerate()
                .filter_map(|(u, o)| o.map(|(d, h)| (d, h, u)))
                .collect();
            expected.sort_unstable();
            expected.truncate(k);
            let mut got: Vec<(u64, u32, usize)> =
                near[v].iter().map(|(c, a)| (a.dist, a.hops, c as usize)).collect();
            got.sort_unstable();
            assert_eq!(got, expected, "node {v}, k={k}");
        }
    }
}

#[test]
fn directed_source_detection_respects_orientation() {
    // One-way path: only downstream nodes see the source.
    let g = DiGraph::from_arcs(8, (0..7).map(|v| (v, v + 1, 2))).unwrap();
    let w = g.augmented_weight_matrix();
    let mut clique = Clique::new(8);
    let rows = source_detection_all_matrix(&mut clique, &w, &[3], 8).unwrap();
    for v in 0..8 {
        // rows[v] holds distances FROM v TO the sources along arcs.
        let expected = dijkstra_directed(&g, v)[3].map(|(d, _)| d);
        assert_eq!(rows[v].get(3).map(|a| a.dist), expected, "node {v}");
    }
}

#[test]
fn directed_source_detection_hop_budget() {
    let g = gnp_directed(20, 0.06, 9, 7).unwrap();
    let w = g.augmented_weight_matrix();
    for d in [1usize, 2, 4] {
        let mut clique = Clique::new(20);
        let rows = source_detection_all_matrix(&mut clique, &w, &[0, 5], d).unwrap();
        for &s in &[0usize, 5] {
            // hop_bounded_directed gives d(s -> v); we need d(v -> s), so
            // check against per-node forward exploration on the reverse
            // graph: equivalently run hop-bounded from each v.
            for v in (0..20).step_by(3) {
                let mut forward = DiGraph::empty(20);
                for (a, b, wt) in g.arcs() {
                    forward.add_arc(a, b, wt).unwrap();
                }
                let expected = hop_bounded_directed(&forward, v, d)[s];
                assert_eq!(rows[v].get(s as u32).map(|a| a.dist), expected, "v={v}, s={s}, d={d}");
            }
        }
    }
}

#[test]
fn directed_k_source_selection() {
    let g = gnp_directed(16, 0.1, 9, 9).unwrap();
    let w = g.augmented_weight_matrix();
    let sources = vec![1, 5, 9, 13];
    let mut clique = Clique::new(16);
    let rows = source_detection_k_matrix(&mut clique, &w, &sources, 16, 2).unwrap();
    for v in 0..16 {
        assert!(rows[v].nnz() <= 2);
        // Selected sources must be the nearest by (dist, hops, id).
        let mut all: Vec<(u64, u32, usize)> = sources
            .iter()
            .filter_map(|&s| dijkstra_directed(&g, v)[s].map(|(d, h)| (d, h, s)))
            .collect();
        all.sort_unstable();
        let expected: Vec<usize> = all.into_iter().take(2).map(|(_, _, s)| s).collect();
        let got: Vec<usize> = rows[v].iter().map(|(c, _)| c as usize).collect();
        let mut got_sorted = got.clone();
        got_sorted.sort_by_key(|&s| {
            let (d, h) = dijkstra_directed(&g, v)[s].expect("selected source reachable");
            (d, h, s)
        });
        assert_eq!(got_sorted, expected, "node {v}");
    }
}
