//! # Congested Clique shortest paths
//!
//! Facade crate re-exporting the full reproduction of *Fast Approximate
//! Shortest Paths in the Congested Clique* (Censor-Hillel, Dory, Korhonen,
//! Leitersdorf; PODC 2019, arXiv:1903.05956).
//!
//! The workspace implements, from scratch:
//!
//! * a message-accurate **Congested Clique simulator** ([`clique`]),
//! * **semirings and sparse matrices** ([`matrix`]),
//! * **output-sensitive sparse matrix multiplication** (Theorem 8) and
//!   **filtered multiplication** (Theorem 14) ([`matmul`]),
//! * the paper's **distance tools**: `k`-nearest, source detection, distance
//!   through sets, hitting sets ([`distance`]),
//! * deterministic **hopsets** (Theorem 25) ([`hopset`]),
//! * and the headline algorithms: **MSSP** (Theorem 3), three **APSP**
//!   approximations (Theorems 28, 31 and the `(3+eps)` variant), **exact
//!   SSSP** (Theorem 33), **diameter approximation**, witnessed products
//!   with **shortest-path reconstruction** (§3.1), and the Bellman-Ford /
//!   dense-squaring / spanner baselines ([`core`]),
//! * a **build-once / query-many distance oracle** on top of the paper's
//!   substrates ([`oracle`]): one distributed build extracts a purely local
//!   Thorup–Zwick-style artifact that then serves distance queries with
//!   zero clique rounds,
//! * **`cc-serve`**, an HTTP/1.1 network front-end over that oracle
//!   ([`serve`]): snapshot loading, a bounded worker pool on `std::net`,
//!   and request validation at the edge via the oracle's fallible
//!   `try_query` API (malformed requests are `400`s, never panics).
//!
//! # Quickstart: one-shot computation
//!
//! ```
//! use congested_clique::clique::Clique;
//! use congested_clique::core::apsp;
//! use congested_clique::graph::generators;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let g = generators::gnp(32, 0.15, 7)?;
//! let mut clique = Clique::new(32);
//! let run = apsp::unweighted_2eps(&mut clique, &g, 0.5)?;
//! println!("rounds used: {}", run.rounds);
//! # Ok(())
//! # }
//! ```
//!
//! # Quickstart: build once, query many
//!
//! Re-running an `O(log² n/ε)`-round algorithm per distance request is
//! exactly backwards for serving workloads. The [`oracle`] subsystem splits
//! the cost: the **build phase** pays the distributed rounds once, the
//! **query phase** is local, lock-free and `O(log k)` per request (exact
//! inside each node's `k`-nearest ball, `≤ 3(1+ε)·d` via the nearest
//! landmark otherwise).
//!
//! ```
//! use congested_clique::clique::Clique;
//! use congested_clique::graph::generators;
//! use congested_clique::oracle::OracleBuilder;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let g = generators::gnp(32, 0.15, 7)?;
//! let mut clique = Clique::new(32);
//! let oracle = OracleBuilder::new().epsilon(0.25).build(&mut clique, &g)?;
//! // The clique is done; queries cost zero rounds from here on.
//! let d = oracle.try_query(0, 31)?;
//! let snapshot = congested_clique::oracle::serde::to_bytes(&oracle);
//! let reloaded = congested_clique::oracle::serde::from_bytes(&snapshot)?;
//! assert_eq!(reloaded.try_query(0, 31)?, d);
//! # Ok(())
//! # }
//! ```
//!
//! Unsafe code is forbidden (`#![forbid(unsafe_code)]`) here and in every
//! algorithmic crate; the one exception in the workspace is `cc-reactor`'s
//! confined, individually-annotated `epoll`/`eventfd` syscall shim (and the
//! matching SIGHUP hook in the `cc-serve` binary), which the serving tier's
//! event-driven transport is built on.

#![forbid(unsafe_code)]

pub use cc_clique as clique;
pub use cc_core as core;
pub use cc_distance as distance;
pub use cc_graph as graph;
pub use cc_hopset as hopset;
pub use cc_matmul as matmul;
pub use cc_matrix as matrix;
pub use cc_oracle as oracle;
pub use cc_server as serve;
