//! # Congested Clique shortest paths
//!
//! Facade crate re-exporting the full reproduction of *Fast Approximate
//! Shortest Paths in the Congested Clique* (Censor-Hillel, Dory, Korhonen,
//! Leitersdorf; PODC 2019, arXiv:1903.05956).
//!
//! The workspace implements, from scratch:
//!
//! * a message-accurate **Congested Clique simulator** ([`clique`]),
//! * **semirings and sparse matrices** ([`matrix`]),
//! * **output-sensitive sparse matrix multiplication** (Theorem 8) and
//!   **filtered multiplication** (Theorem 14) ([`matmul`]),
//! * the paper's **distance tools**: `k`-nearest, source detection, distance
//!   through sets, hitting sets ([`distance`]),
//! * deterministic **hopsets** (Theorem 25) ([`hopset`]),
//! * and the headline algorithms: **MSSP** (Theorem 3), three **APSP**
//!   approximations (Theorems 28, 31 and the `(3+eps)` variant), **exact
//!   SSSP** (Theorem 33), **diameter approximation**, witnessed products
//!   with **shortest-path reconstruction** (§3.1), and the Bellman-Ford /
//!   dense-squaring / spanner baselines ([`core`]).
//!
//! # Quickstart
//!
//! ```
//! use congested_clique::clique::Clique;
//! use congested_clique::core::apsp;
//! use congested_clique::graph::generators;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let g = generators::gnp(32, 0.15, 7)?;
//! let mut clique = Clique::new(32);
//! let run = apsp::unweighted_2eps(&mut clique, &g, 0.5)?;
//! println!("rounds used: {}", run.rounds);
//! # Ok(())
//! # }
//! ```
pub use cc_clique as clique;
pub use cc_core as core;
pub use cc_distance as distance;
pub use cc_graph as graph;
pub use cc_hopset as hopset;
pub use cc_matmul as matmul;
pub use cc_matrix as matrix;
