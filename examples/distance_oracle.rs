//! Walkthrough of the build-once / query-many distance oracle: pay the
//! distributed rounds once, then serve distance traffic locally — raw,
//! batched, cached, and snapshot/reload.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example distance_oracle
//! ```

use std::time::Instant;

use congested_clique::clique::Clique;
use congested_clique::graph::{generators, reference};
use congested_clique::oracle::{CachingOracle, OracleBuilder};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 256;
    let epsilon = 0.25;
    println!("== Distance oracle: build once in the clique, query forever ==");
    let g = generators::road_like(16, 16, 30, 11)?;
    println!("graph: road-like {n} nodes, {} edges, eps = {epsilon}\n", g.m());

    // Build phase: k-nearest balls (Thm 18) + hitting-set landmarks
    // (Lemma 4) + MSSP columns from the landmarks (Thm 3).
    let mut clique = Clique::new(n);
    let t = Instant::now();
    let oracle = OracleBuilder::new().epsilon(epsilon).seed(3).build(&mut clique, &g)?;
    println!("build phase (runs once):");
    println!("  clique rounds      : {}", oracle.build_rounds());
    println!("  landmarks          : {} of {n} nodes", oracle.landmarks().len());
    println!("  artifact size      : {} KiB", oracle.artifact_bytes() / 1024);
    println!("  wall time          : {:.1} ms", t.elapsed().as_secs_f64() * 1e3);

    // Query phase: purely local. The clique's round counter proves it.
    let rounds_after_build = clique.rounds();
    let sample: Vec<(usize, usize)> = (0..n).map(|i| (i, (i * 97 + 13) % n)).collect();
    let t = Instant::now();
    let answers = oracle.try_query_batch(&sample).unwrap();
    println!("\nquery phase ({} queries):", sample.len());
    println!("  clique rounds      : {} (still {rounds_after_build})", clique.rounds());
    println!("  wall time          : {:.1} us", t.elapsed().as_secs_f64() * 1e6);

    // Quality: compare against the sequential ground truth.
    let mut worst: f64 = 1.0;
    let mut exact_count = 0;
    for (i, &(u, v)) in sample.iter().enumerate() {
        let d = reference::dijkstra(&g, u)[v].expect("road network is connected");
        let est = answers[i].value().expect("connected pair");
        assert!(est >= d, "oracle must never underestimate");
        if est == d {
            exact_count += 1;
        }
        worst = worst.max(est as f64 / d as f64);
    }
    println!("\nquality over the sample:");
    println!("  exact answers      : {exact_count}/{} (ball hits)", sample.len());
    println!("  worst stretch      : {worst:.3} (guarantee: <= {:.3})", oracle.stretch_bound());

    // Serving: put a bounded LRU cache in front for skewed traffic.
    let cached = CachingOracle::new(oracle.clone(), 4096);
    for rep in 0..3 {
        for &(u, v) in sample.iter().take(64) {
            let _ = cached.try_query(u, v).unwrap();
        }
        let s = cached.stats();
        println!(
            "  cache pass {rep}       : {} hits / {} misses (rate {:.2})",
            s.hits,
            s.misses,
            s.hit_rate()
        );
    }

    // Snapshot: ship the artifact to a serving process, no clique needed.
    let bytes = congested_clique::oracle::serde::to_bytes(&oracle);
    let reloaded = congested_clique::oracle::serde::from_bytes(&bytes)?;
    assert_eq!(reloaded, oracle);
    println!("\nsnapshot round-trip: {} bytes, reloaded artifact identical", bytes.len());
    println!("example query d(0, {}) ~= {}", n - 1, reloaded.try_query(0, n - 1).unwrap());
    Ok(())
}
