//! Landmark routing on a scale-free network: the paper's multi-source
//! shortest paths (Theorem 3) as the backbone of a landmark-based
//! distance-oracle service.
//!
//! Scenario: a social-network-like overlay (Barabási–Albert, hubs and all)
//! selects `≈ √n` landmark nodes; every node learns `(1+ε)`-approximate
//! distances to every landmark in polylogarithmic rounds, after which any
//! pair can estimate its distance as `min_l d(u,l) + d(l,v)` without any
//! further communication — the classic landmark (a.k.a. beacon) oracle.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example landmark_routing
//! ```

use congested_clique::clique::Clique;
use congested_clique::core::mssp::mssp;
use congested_clique::distance::{hitting_set, k_nearest};
use congested_clique::graph::{generators, reference};
use congested_clique::matrix::Dist;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 128;
    let epsilon = 0.25;
    println!("== Landmark routing oracle on a scale-free overlay ==");
    let g = generators::barabasi_albert(n, 3, 7)?;
    println!("n = {n}, m = {}, eps = {epsilon}", g.m());

    let mut clique = Clique::new(n);

    // Landmark selection: a hitting set of the Θ(√n·log n)-balls (Lemma 4),
    // so every node has a landmark among its nearest neighbours while the
    // landmark count stays ~√n.
    let k = ((n as f64).sqrt() * (n as f64).ln()).ceil() as usize;
    let near = k_nearest(&mut clique, &g, k)?;
    let sets: Vec<Vec<usize>> =
        near.iter().map(|r| r.iter().map(|(c, _)| c as usize).collect()).collect();
    let landmarks = hitting_set(&mut clique, &sets, k, 0xBEAC07)?;
    println!("landmarks: {} nodes (hitting set of the {k}-balls)", landmarks.len());

    // Theorem 3: (1+eps) distances from everyone to all landmarks.
    let run = mssp(&mut clique, &g, &landmarks.members, epsilon)?;
    println!("MSSP rounds: {} (total so far: {})", run.rounds, clique.rounds());

    // Offline oracle: estimate d(u, v) through the best landmark.
    let oracle = |u: usize, v: usize| -> Option<u64> {
        (0..landmarks.len())
            .filter_map(|i| {
                let a = run.dist[u][i].value()?;
                let b = run.dist[v][i].value()?;
                Some(a + b)
            })
            .min()
    };

    // Quality over a sample of pairs.
    let mut worst: f64 = 1.0;
    let mut sum = 0.0;
    let mut count = 0;
    for u in (0..n).step_by(7) {
        let exact = reference::bfs(&g, u);
        for v in (1..n).step_by(11) {
            if u == v {
                continue;
            }
            let (Some(d), Some(est)) = (exact[v], oracle(u, v)) else { continue };
            let ratio = est as f64 / d as f64;
            worst = worst.max(ratio);
            sum += ratio;
            count += 1;
        }
    }
    println!("\noracle quality over {count} sampled pairs:");
    println!("  worst stretch : {worst:.3} (theory: <= 3(1+eps) via triangle routing)");
    println!("  mean stretch  : {:.3}", sum / count as f64);

    // Per-query cost after the one-off MSSP: zero rounds.
    let q = oracle(0, n - 1).map(Dist::fin);
    println!("\nexample query d(0, {}) ~= {}", n - 1, q.unwrap_or(Dist::INF));
    println!("queries are local: 0 additional rounds after the MSSP build");
    Ok(())
}
