//! `cc-serve` end to end, in one process: build an oracle in the simulated
//! clique, snapshot it to disk, serve the snapshot over HTTP/1.1 on a real
//! loopback socket, and talk to it like any other client would.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example oracle_server
//! ```

use std::time::Instant;

use congested_clique::clique::Clique;
use congested_clique::graph::generators;
use congested_clique::oracle::OracleBuilder;
use congested_clique::serve::{BlockingClient, Server, ServerConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 128;
    println!("== cc-serve: snapshot-serving front-end over the distance oracle ==\n");

    // 1. Build once in the clique (this is the only distributed step).
    let g = generators::road_like(16, 8, 30, 11)?;
    let mut clique = Clique::new(n);
    let oracle = OracleBuilder::new().epsilon(0.25).seed(3).build(&mut clique, &g)?;
    println!(
        "build: {} clique rounds, {} landmarks, {} KiB artifact",
        oracle.build_rounds(),
        oracle.landmarks().len(),
        oracle.artifact_bytes() / 1024
    );

    // 2. Snapshot to disk and reload, exactly like a serving deployment.
    //    Snapshots are versioned and checksummed; the loader reports what
    //    it validated.
    let path = std::env::temp_dir().join("cc-serve-example.snap");
    congested_clique::serve::source::write_snapshot(&oracle, &path)?;
    let loaded = congested_clique::serve::source::load_snapshot(&path)?;
    println!(
        "snapshot: {} bytes on disk (format v{}, build {}), reloads identically\n",
        std::fs::metadata(&path)?.len(),
        loaded.info.version,
        loaded.info.build_id,
    );

    // 3. Serve it over a real socket (ephemeral port). Keeping the file
    //    around as the reload source lets us hot-swap below.
    let config = ServerConfig::default().with_reload_path(&path);
    let handle = Server::start_with_info(&config, loaded.oracle, loaded.info)?;
    println!("serving on http://{}", handle.addr());

    // 4. Talk to it over HTTP.
    let mut client = BlockingClient::connect(handle.addr())?;
    for (u, v) in [(0usize, n - 1), (5, 77), (3, 3)] {
        let (status, body) = client.get(&format!("/distance?u={u}&v={v}"))?;
        println!("  GET /distance?u={u}&v={v:<3}  -> {status} {}", String::from_utf8(body)?);
    }

    // Validation happens at the edge: bad input is a 400, not a panic.
    let (status, body) = client.get(&format!("/distance?u=0&v={n}"))?;
    println!("  GET /distance?u=0&v={n}  -> {status} {}", String::from_utf8(body)?);
    let (status, body) = client.get("/distance?u=zero&v=1")?;
    println!("  GET /distance?u=zero&v=1 -> {status} {}", String::from_utf8(body)?);

    // Batch traffic through the sharded batch path.
    let pairs: String = (0..64).map(|i| format!("{} {}\n", i % n, (i * 31 + 9) % n)).collect();
    let t = Instant::now();
    let (status, body) = client.post("/batch", pairs.as_bytes())?;
    println!(
        "\n  POST /batch (64 pairs)   -> {status}, {} bytes in {:.1} us",
        body.len(),
        t.elapsed().as_secs_f64() * 1e6
    );

    let (_, stats) = client.get("/stats")?;
    println!("  GET /stats               -> {}", String::from_utf8(stats)?);
    let (_, artifact) = client.get("/artifact")?;
    println!("  GET /artifact            -> {}", String::from_utf8(artifact)?);

    // 5. Hot reload: rebuild with a different seed, overwrite the snapshot
    //    file, and swap it in without restarting — in-flight traffic keeps
    //    being answered throughout.
    let mut clique = Clique::new(n);
    let rebuilt = OracleBuilder::new().epsilon(0.25).seed(4).build(&mut clique, &g)?;
    congested_clique::serve::source::write_snapshot(&rebuilt, &path)?;
    let (status, body) = client.post("/reload", b"")?;
    println!("\n  POST /reload             -> {status} {}", String::from_utf8(body)?);
    std::fs::remove_file(&path).ok();

    handle.shutdown();
    println!("\nserver drained and shut down cleanly");
    Ok(())
}
