//! Direct use of the paper's matrix-multiplication engine: output-sensitive
//! sparse products (Theorem 8), filtered products (Theorem 14) and the
//! dense 3D baseline, with round accounting.
//!
//! This is the "library" view of the reproduction: the multiplication
//! primitives are useful beyond shortest paths (triangle counting,
//! reachability, semiring dynamic programs).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example sparse_matmul
//! ```

use congested_clique::clique::Clique;
use congested_clique::matmul::{dense_multiply, filtered_multiply, sparse_multiply};
use congested_clique::matrix::{Dist, MinPlus, SparseMatrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_sparse(n: usize, rho: usize, seed: u64) -> SparseMatrix<Dist> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut m = SparseMatrix::zeros(n);
    for _ in 0..rho * n {
        let r = rng.gen_range(0..n);
        let c = rng.gen_range(0..n);
        m.set_in::<MinPlus>(r, c, Dist::fin(rng.gen_range(1..1000)));
    }
    m
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 256;
    println!("== Sparse matrix multiplication in the Congested Clique ==");
    println!("n = {n}\n");

    for rho in [2usize, 8, 32] {
        let s = random_sparse(n, rho, 1);
        let t = random_sparse(n, rho, 2);
        let t_cols = t.transpose();
        let reference = s.multiply::<MinPlus>(&t);

        // Theorem 8, with the true output density as the hint.
        let mut clique = Clique::new(n);
        let p =
            sparse_multiply::<MinPlus>(&mut clique, s.rows(), t_cols.rows(), reference.density())?;
        assert_eq!(SparseMatrix::from_rows(p), reference);
        let sparse_rounds = clique.rounds();

        // Dense 3D baseline on the same inputs.
        let mut clique = Clique::new(n);
        let p = dense_multiply::<MinPlus>(&mut clique, s.rows(), t_cols.rows())?;
        assert_eq!(SparseMatrix::from_rows(p), reference);
        let dense_rounds = clique.rounds();

        // Theorem 14: only the 4 smallest entries per output row.
        let mut clique = Clique::new(n);
        let p = filtered_multiply::<MinPlus>(&mut clique, s.rows(), t_cols.rows(), 4)?;
        assert_eq!(SparseMatrix::from_rows(p), reference.filtered::<MinPlus>(4));
        let filtered_rounds = clique.rounds();

        println!(
            "rho_S = rho_T = {rho:<3} rho_out = {:<4} | Thm 8: {sparse_rounds:>4} rounds | dense 3D: {dense_rounds:>4} | Thm 14 (rho=4): {filtered_rounds:>4}",
            reference.density(),
        );
    }

    // Fully dense inputs: here the 3D baseline pays its n^{1/3} load while
    // Theorem 8 (told the truth about the output density) organises the
    // same work with sparse-aware balancing.
    let s = random_sparse(n, n, 5);
    let t = random_sparse(n, n, 6);
    let t_cols = t.transpose();
    let mut clique = Clique::new(n);
    dense_multiply::<MinPlus>(&mut clique, s.rows(), t_cols.rows())?;
    println!("\nfully dense inputs     | dense 3D: {:>4} rounds", clique.rounds());

    println!("\nTheorem 8 tracks (rho_S*rho_T*rho_out)^(1/3)/n^(2/3)+1; the dense");
    println!("baseline pays ~n^(1/3) loads on dense inputs; Theorem 14 trades a");
    println!("log W binary-search additive term for output sparsification. At");
    println!("n=256 the constant overheads (~30 rounds of partitioning and");
    println!("balancing) still dominate — the asymptotic separation is the");
    println!("subject of experiment E1 in EXPERIMENTS.md.");
    Ok(())
}
