//! Exact single-source shortest paths and diameter estimation on a weighted
//! grid — a road-network-style workload (bounded degree, high diameter,
//! heterogeneous weights).
//!
//! This exercises the two "hard regime" results of the paper: Theorem 33's
//! exact SSSP (whose `Õ(n^{1/6})` rounds beat Bellman-Ford's `O(SPD)` on
//! high-diameter graphs) and the §7.2 near-3/2 diameter approximation.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example road_network
//! ```

// Node-indexed loops over parallel per-node vectors are the domain idiom.
#![allow(clippy::needless_range_loop)]

use congested_clique::clique::Clique;
use congested_clique::core::diameter::{diameter_approx, within_claim35};
use congested_clique::core::sssp::{bellman_ford, exact_sssp};
use congested_clique::graph::{generators, reference};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (w, h) = (16, 16);
    let n = w * h;
    println!("== Road network: {w}x{h} weighted grid ==");
    let g = generators::grid_weighted(w, h, 30, 99)?;
    let spd = reference::shortest_path_diameter(&g);
    println!("n = {n}, m = {}, shortest-path diameter = {spd}\n", g.m());

    // Exact SSSP from the north-west corner: Theorem 33 vs Bellman-Ford.
    let source = 0;
    let exact = reference::dijkstra(&g, source);

    let mut clique_bf = Clique::new(n);
    let bf = bellman_ford(&mut clique_bf, &g, source, None)?;
    let mut clique_fast = Clique::new(n);
    let fast = exact_sssp(&mut clique_fast, &g, source)?;

    for v in 0..n {
        assert_eq!(bf.dist[v].value(), exact[v], "BF must be exact");
        assert_eq!(fast.dist[v].value(), exact[v], "Theorem 33 must be exact");
    }
    println!("single-source distances from node {source} (both algorithms exact):");
    println!("  Bellman-Ford rounds     : {:>6} (= SPD + termination check)", bf.rounds);
    println!("  shortcut SSSP rounds    : {:>6} (k-nearest + short Bellman-Ford)", fast.rounds);
    println!("  far corner distance     : {}", fast.dist[n - 1]);

    // Diameter estimation.
    let true_d = reference::diameter(&g).expect("grid is connected");
    let mut clique_d = Clique::new(n);
    let eps = 0.25;
    let d_run = diameter_approx(&mut clique_d, &g, eps)?;
    println!("\ndiameter:");
    println!("  true                    : {true_d}");
    println!("  estimate                : {} ({} rounds)", d_run.estimate, d_run.rounds);
    println!(
        "  within Claim 35 bounds  : {}",
        within_claim35(d_run.estimate, true_d, eps)
            || d_run.estimate as f64 >= (2.0 * true_d as f64 / 3.0 - g.max_weight() as f64)
    );
    println!("  (weighted graphs allow an extra additive max-weight slack)");
    Ok(())
}
