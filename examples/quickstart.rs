//! Quickstart: `(2+ε)`-approximate all-pairs shortest paths on a random
//! unweighted graph, with round accounting and quality measurement.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use congested_clique::clique::Clique;
use congested_clique::core::{apsp, stretch};
use congested_clique::graph::{generators, reference};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 128;
    let epsilon = 0.5;
    println!("== Congested Clique quickstart: (2+eps)-APSP on G(n, p) ==");
    println!("n = {n}, eps = {epsilon}\n");

    // A connected unweighted Erdős–Rényi graph.
    let g = generators::gnp(n, 0.08, 42)?;
    println!("graph: {} nodes, {} edges", g.n(), g.m());

    // One clique = one simulated deployment; all communication it performs
    // is counted in rounds/messages/words.
    let mut clique = Clique::new(n);
    let run = apsp::unweighted_2eps(&mut clique, &g, epsilon)?;

    // Compare against sequential ground truth.
    let exact = reference::all_pairs(&g);
    stretch::assert_sound(&run.dist, &exact);
    let max = stretch::max_stretch(&run.dist, &exact);
    let mean = stretch::mean_stretch(&run.dist, &exact);

    println!("\nresults");
    println!("  rounds used        : {}", run.rounds);
    println!("  guarantee          : stretch <= 2 + {epsilon}");
    println!("  measured max       : {max:.4}");
    println!("  measured mean      : {mean:.4}");

    // Aggregate the detailed per-primitive metrics to top-level phases.
    println!("\nphase breakdown (rounds):");
    let mut top: std::collections::BTreeMap<String, u64> = std::collections::BTreeMap::new();
    for (phase, stats) in &run.report.phases {
        let key = phase.split('/').take(2).collect::<Vec<_>>().join("/");
        *top.entry(key).or_default() += stats.rounds;
    }
    for (phase, rounds) in top {
        if rounds > 0 {
            println!("  {phase:<40} {rounds}");
        }
    }

    // A few sample distances.
    println!("\nsample pairs (estimate vs exact):");
    for (u, v) in [(0usize, n - 1), (1, n / 2), (3, 2 * n / 3)] {
        println!(
            "  d({u:>3}, {v:>3}) = {} vs {:?}",
            run.dist[u][v],
            exact[u][v].unwrap_or(u64::MAX)
        );
    }
    Ok(())
}
