//! A small, panic-free Rust lexer.
//!
//! cc-lint cannot use `syn` (the build image has no registry access), and it
//! does not need to: every rule in the catalog is expressible over a token
//! stream that understands strings, char literals, lifetimes and comments.
//! The lexer therefore produces exactly that — a flat `Vec<Token>` with line
//! numbers, comments consumed (never tokenized), and `// cc-lint: allow(...)`
//! comments extracted as structured [`Allow`] records.
//!
//! The input is arbitrary bytes: invalid UTF-8, unterminated strings and
//! stray quotes must all lex to *something* without panicking (see the
//! property tests in `tests/lexer_props.rs`).

/// What kind of token this is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`fn`, `u64`, `saturating_add`, ...).
    Ident,
    /// A numeric literal (`0`, `0xFF`, `1_000`); the fractional part of a
    /// float lexes as a separate `.`+`Number` pair, which is fine for the
    /// token patterns the rules match.
    Number,
    /// A string literal: `"..."`, `r"..."`, `r#"..."#`, `b"..."`.
    Str,
    /// A char literal: `'a'`, `'\n'`, `b'x'`.
    Char,
    /// A lifetime: `'a`, `'static`.
    Lifetime,
    /// Punctuation, with common multi-char operators joined (`::`, `==`,
    /// `!=`, `<=`, `>=`, `->`, `=>`, `&&`, `||`, `..`, `+=`, ...).
    Punct,
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Token {
    /// The token kind.
    pub kind: TokenKind,
    /// The token text. For `Str`/`Char` this is the raw source slice
    /// including quotes, so rules never mistake literal *content* for code.
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Token {
    /// True if this is an identifier with exactly the text `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    /// True if this is punctuation with exactly the text `s`.
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokenKind::Punct && self.text == s
    }
}

/// A `// cc-lint: allow(rule, ...) -- reason` comment.
#[derive(Debug, Clone)]
pub struct Allow {
    /// 1-based line the comment sits on. The allow suppresses findings on
    /// this line and on the next line (so it works both trailing and as a
    /// standalone comment above the offending statement).
    pub line: u32,
    /// The rule names listed inside `allow(...)`.
    pub rules: Vec<String>,
    /// The text after `--`, if present and non-empty.
    pub reason: Option<String>,
    /// True if the comment matched the full `allow(...)` grammar; malformed
    /// `cc-lint:` comments are reported by the `allow_hygiene` rule.
    pub well_formed: bool,
}

/// The result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// The token stream, comments and whitespace removed.
    pub tokens: Vec<Token>,
    /// All `// cc-lint:` comments found, well-formed or not.
    pub allows: Vec<Allow>,
    /// 1-based lines of comments that open a safety justification
    /// (`// SAFETY: ...`). The `unsafe_audit` rule requires one of these
    /// within a few lines above every `unsafe` site.
    pub safety_lines: Vec<u32>,
}

/// Lexes `src` into tokens. Never panics, whatever the input.
pub fn lex(src: &str) -> Lexed {
    Lexer { chars: src.chars().collect(), pos: 0, line: 1, out: Lexed::default() }.run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Lexed,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0);
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn push(&mut self, kind: TokenKind, text: String, line: u32) {
        self.out.tokens.push(Token { kind, text, line });
    }

    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string(line),
                'r' | 'b' if self.starts_raw_or_byte_literal() => self.raw_or_byte(line),
                '\'' => self.char_or_lifetime(line),
                c if c.is_alphabetic() || c == '_' => self.ident(line),
                c if c.is_ascii_digit() => self.number(line),
                _ => self.punct(line),
            }
        }
        self.out
    }

    fn line_comment(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        // `//`, `///`, `//!` prefixes all stripped the same way.
        let body = text.trim_start_matches('/').trim_start_matches('!').trim();
        if let Some(rest) = body.strip_prefix("cc-lint:") {
            self.out.allows.push(parse_allow(rest.trim(), line));
        } else if body.starts_with("SAFETY:") {
            self.out.safety_lines.push(line);
        }
    }

    fn block_comment(&mut self) {
        self.bump();
        self.bump();
        let mut depth = 1u32;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    depth += 1;
                    self.bump();
                    self.bump();
                }
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    self.bump();
                    self.bump();
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break, // unterminated: swallow to EOF
            }
        }
    }

    fn string(&mut self, line: u32) {
        let mut text = String::new();
        text.push(self.bump().unwrap_or('"'));
        while let Some(c) = self.bump() {
            text.push(c);
            match c {
                '\\' => {
                    if let Some(esc) = self.bump() {
                        text.push(esc);
                    }
                }
                '"' => break,
                _ => {}
            }
        }
        self.push(TokenKind::Str, text, line);
    }

    /// True if the cursor sits on `r"`, `r#...#"`, `b"`, `br"`, `b'`...
    fn starts_raw_or_byte_literal(&self) -> bool {
        let mut i = 1;
        if self.peek(0) == Some('b') {
            match self.peek(1) {
                Some('"') | Some('\'') => return true,
                Some('r') => i = 2,
                _ => return false,
            }
        }
        // `r` or `br`: zero or more `#` then `"`.
        loop {
            match self.peek(i) {
                Some('#') => i += 1,
                Some('"') => return true,
                _ => return false,
            }
        }
    }

    fn raw_or_byte(&mut self, line: u32) {
        let mut text = String::new();
        if self.peek(0) == Some('b') {
            text.push(self.bump().unwrap_or('b'));
        }
        if self.peek(0) == Some('\'') {
            // b'x' byte char: delegate to the char scanner, keep the prefix.
            self.char_literal(&mut text);
            self.push(TokenKind::Char, text, line);
            return;
        }
        let raw = self.peek(0) == Some('r');
        if raw {
            text.push(self.bump().unwrap_or('r'));
        }
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            text.push(self.bump().unwrap_or('#'));
            hashes += 1;
        }
        if self.peek(0) != Some('"') {
            // `r#foo` raw identifier: lex the rest as an ident.
            while let Some(c) = self.peek(0) {
                if c.is_alphanumeric() || c == '_' {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            self.push(TokenKind::Ident, text, line);
            return;
        }
        text.push(self.bump().unwrap_or('"'));
        if raw {
            // Raw string: no escapes; ends at `"` followed by `hashes` #s.
            loop {
                match self.bump() {
                    None => break,
                    Some('"') => {
                        text.push('"');
                        let mut seen = 0usize;
                        while seen < hashes && self.peek(0) == Some('#') {
                            text.push(self.bump().unwrap_or('#'));
                            seen += 1;
                        }
                        if seen == hashes {
                            break;
                        }
                    }
                    Some(c) => text.push(c),
                }
            }
        } else {
            // b"...": ordinary escape rules.
            while let Some(c) = self.bump() {
                text.push(c);
                match c {
                    '\\' => {
                        if let Some(esc) = self.bump() {
                            text.push(esc);
                        }
                    }
                    '"' => break,
                    _ => {}
                }
            }
        }
        self.push(TokenKind::Str, text, line);
    }

    fn char_or_lifetime(&mut self, line: u32) {
        // `'a` / `'static` are lifetimes when the quote is followed by an
        // ident char that is not itself closed by a quote (`'a'` is a char).
        let is_lifetime = matches!(self.peek(1), Some(c) if c.is_alphabetic() || c == '_')
            && self.peek(2) != Some('\'');
        if is_lifetime {
            let mut text = String::new();
            text.push(self.bump().unwrap_or('\''));
            while let Some(c) = self.peek(0) {
                if c.is_alphanumeric() || c == '_' {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            self.push(TokenKind::Lifetime, text, line);
        } else {
            let mut text = String::new();
            self.char_literal(&mut text);
            self.push(TokenKind::Char, text, line);
        }
    }

    fn char_literal(&mut self, text: &mut String) {
        text.push(self.bump().unwrap_or('\''));
        match self.bump() {
            None => {}
            Some('\\') => {
                text.push('\\');
                if let Some(esc) = self.bump() {
                    text.push(esc);
                    // \u{...} escapes run until the closing brace.
                    if esc == 'u' && self.peek(0) == Some('{') {
                        while let Some(c) = self.bump() {
                            text.push(c);
                            if c == '}' {
                                break;
                            }
                        }
                    }
                }
                if self.peek(0) == Some('\'') {
                    text.push(self.bump().unwrap_or('\''));
                }
            }
            Some(c) => {
                text.push(c);
                if c != '\'' && self.peek(0) == Some('\'') {
                    text.push(self.bump().unwrap_or('\''));
                }
            }
        }
    }

    fn ident(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokenKind::Ident, text, line);
    }

    fn number(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokenKind::Number, text, line);
    }

    fn punct(&mut self, line: u32) {
        const JOINED: &[&str] = &[
            "..=", "==", "!=", "<=", ">=", "::", "->", "=>", "&&", "||", "..", "+=", "-=", "*=",
            "/=", "%=", "<<", ">>", "&=", "|=", "^=",
        ];
        for op in JOINED {
            let chars: Vec<char> = op.chars().collect();
            if (0..chars.len()).all(|i| self.peek(i) == Some(chars[i])) {
                for _ in 0..chars.len() {
                    self.bump();
                }
                self.push(TokenKind::Punct, (*op).to_owned(), line);
                return;
            }
        }
        if let Some(c) = self.bump() {
            self.push(TokenKind::Punct, c.to_string(), line);
        }
    }
}

/// Parses the body after `cc-lint:`, e.g. `allow(no_panic) -- startup path`.
fn parse_allow(body: &str, line: u32) -> Allow {
    let (spec, reason) = match body.split_once("--") {
        Some((s, r)) => (s.trim(), Some(r.trim().to_owned()).filter(|r| !r.is_empty())),
        None => (body.trim(), None),
    };
    let rules: Vec<String> = spec
        .strip_prefix("allow(")
        .and_then(|rest| rest.strip_suffix(')'))
        .map(|names| {
            names.split(',').map(|n| n.trim().to_owned()).filter(|n| !n.is_empty()).collect()
        })
        .unwrap_or_default();
    let well_formed = !rules.is_empty();
    Allow { line, rules, reason, well_formed }
}

/// Marks tokens that live inside `#[cfg(test)]` modules or functions, so
/// rules only fire on production code. Returns one flag per token.
pub fn test_code_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].is_punct("#") && tokens.get(i + 1).is_some_and(|t| t.is_punct("[")) {
            let close = match matching_bracket(tokens, i + 1, "[", "]") {
                Some(c) => c,
                None => break,
            };
            if attr_is_cfg_test(&tokens[i + 2..close]) {
                // Skip any further attributes between the cfg and the item.
                let mut j = close + 1;
                while j < tokens.len()
                    && tokens[j].is_punct("#")
                    && tokens.get(j + 1).is_some_and(|t| t.is_punct("["))
                {
                    match matching_bracket(tokens, j + 1, "[", "]") {
                        Some(c) => j = c + 1,
                        None => return mask,
                    }
                }
                // Mark everything to the end of the item's brace block.
                let open = (j..tokens.len()).find(|&k| tokens[k].is_punct("{"));
                if let Some(open) = open {
                    let end = matching_bracket(tokens, open, "{", "}").unwrap_or(tokens.len() - 1);
                    for flag in mask.iter_mut().take(end + 1).skip(i) {
                        *flag = true;
                    }
                    i = end + 1;
                    continue;
                }
            }
            i = close + 1;
            continue;
        }
        i += 1;
    }
    mask
}

/// True if the attribute tokens (between `#[` and `]`) are a `cfg(test)`.
fn attr_is_cfg_test(attr: &[Token]) -> bool {
    attr.first().is_some_and(|t| t.is_ident("cfg")) && attr.iter().any(|t| t.is_ident("test"))
}

/// Index of the bracket closing `tokens[open]`, for nesting-aware pairs.
pub fn matching_bracket(
    tokens: &[Token],
    open: usize,
    open_s: &str,
    close_s: &str,
) -> Option<usize> {
    let mut depth = 0i64;
    for (k, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct(open_s) {
            depth += 1;
        } else if t.is_punct(close_s) {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).tokens.into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn joins_multi_char_operators() {
        assert_eq!(texts("a == u64::MAX"), vec!["a", "==", "u64", "::", "MAX"]);
        assert_eq!(texts("x += 1"), vec!["x", "+=", "1"]);
        assert_eq!(texts("0..n"), vec!["0", "..", "n"]);
    }

    #[test]
    fn strings_and_comments_hide_their_content() {
        let lexed = lex("let s = \"a.unwrap() // not code\"; // .unwrap()\n/* .expect( */ call();");
        assert!(!lexed.tokens.iter().any(|t| t.kind == TokenKind::Ident && t.text == "unwrap"));
        assert!(!lexed.tokens.iter().any(|t| t.is_ident("expect")));
        assert!(lexed.tokens.iter().any(|t| t.is_ident("call")));
    }

    #[test]
    fn raw_strings_and_byte_strings() {
        let lexed = lex(r##"let a = r#"u64::MAX "quoted""#; let b = b"panic!";"##);
        let strs: Vec<_> = lexed.tokens.iter().filter(|t| t.kind == TokenKind::Str).collect();
        assert_eq!(strs.len(), 2);
        assert!(!lexed.tokens.iter().any(|t| t.is_ident("panic")));
    }

    #[test]
    fn lifetimes_are_not_chars() {
        let lexed = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        assert!(lexed.tokens.iter().any(|t| t.kind == TokenKind::Lifetime && t.text == "'a"));
        assert!(lexed.tokens.iter().any(|t| t.kind == TokenKind::Char && t.text == "'x'"));
    }

    #[test]
    fn allow_comments_are_extracted_with_reason() {
        let lexed = lex("x(); // cc-lint: allow(no_panic, sentinel) -- startup only\n");
        assert_eq!(lexed.allows.len(), 1);
        let a = &lexed.allows[0];
        assert_eq!(a.rules, vec!["no_panic", "sentinel"]);
        assert_eq!(a.reason.as_deref(), Some("startup only"));
        assert!(a.well_formed);
    }

    #[test]
    fn allow_without_reason_or_rules_is_flagged_malformed() {
        let a = &lex("// cc-lint: allow(no_panic)\n").allows[0];
        assert_eq!(a.reason, None);
        assert!(a.well_formed);
        let b = &lex("// cc-lint: allow() -- why\n").allows[0];
        assert!(!b.well_formed);
    }

    #[test]
    fn cfg_test_mod_is_masked() {
        let src = "fn prod() { x.unwrap(); }\n#[cfg(test)]\nmod tests { fn t() { y.unwrap(); } }";
        let lexed = lex(src);
        let mask = test_code_mask(&lexed.tokens);
        let unwraps: Vec<bool> = lexed
            .tokens
            .iter()
            .zip(&mask)
            .filter(|(t, _)| t.is_ident("unwrap"))
            .map(|(_, m)| *m)
            .collect();
        assert_eq!(unwraps, vec![false, true]);
    }

    #[test]
    fn line_numbers_survive_multiline_constructs() {
        let src = "let a = \"line\none\";\nlet b = 1;\n";
        let lexed = lex(src);
        let b = lexed.tokens.iter().find(|t| t.is_ident("b")).map(|t| t.line);
        assert_eq!(b, Some(3));
    }

    #[test]
    fn never_panics_on_garbage() {
        for src in ["\"unterminated", "r#\"open", "'", "b", "/* open", "\\'\\'\\'", "#!["] {
            let _ = lex(src);
        }
    }
}
