//! The `cc-lint` binary: walks the workspace (or explicit paths, or the
//! files changed since `HEAD`), runs the token and workspace rule
//! catalogs, prints human or JSON reports, and exits nonzero on any
//! deny-level finding. `--check-fixtures` runs the tool against its own
//! known-bad corpus — the CI step that proves the gate still fires — and
//! `--budget-ms` fails the run if the analyzer itself got slow.

#![forbid(unsafe_code)]

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Instant;

use cc_lint::findings::Severity;
use cc_lint::{check_fixtures, known_rule, lint_workspace, rules, walk, Config, LintOptions};

const USAGE: &str = "\
cc-lint: workspace invariant checker

USAGE:
    cc-lint [--workspace | --changed-only | PATH...] [OPTIONS]

OPTIONS:
    --workspace          lint every production source file under the
                         workspace root (found by walking up from cwd)
    --changed-only       lint only files changed since HEAD (git diff +
                         untracked); the call-graph rules still see the
                         whole workspace, only reporting is narrowed.
                         Falls back to --workspace outside a git repo
    --root DIR           use DIR as the workspace root
    --deny RULE[,RULE]   treat RULE (or `all`) as deny (the default)
    --warn RULE[,RULE]   treat RULE (or `all`) as warn (never fails)
    --json               machine-readable output
    --budget-ms N        fail (exit 1) if the lint pass itself takes
                         longer than N milliseconds
    --list-rules         print the rule catalog and exit
    --check-fixtures     run the rules against their known-bad fixture
                         corpus and fail unless every rule fires
    -h, --help           this text

Exit codes: 0 clean, 1 deny-level findings (or fixture/budget failures), 2 usage.
";

struct Cli {
    workspace: bool,
    changed_only: bool,
    root: Option<PathBuf>,
    paths: Vec<PathBuf>,
    config: Config,
    json: bool,
    budget_ms: Option<u64>,
    list_rules: bool,
    fixtures: bool,
}

fn parse_args(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli {
        workspace: false,
        changed_only: false,
        root: None,
        paths: Vec::new(),
        config: Config::deny_all(),
        json: false,
        budget_ms: None,
        list_rules: false,
        fixtures: false,
    };
    let mut i = 0;
    while i < args.len() {
        let arg = args[i].as_str();
        match arg {
            "--workspace" => cli.workspace = true,
            "--changed-only" => cli.changed_only = true,
            "--json" => cli.json = true,
            "--list-rules" => cli.list_rules = true,
            "--check-fixtures" => cli.fixtures = true,
            "--root" | "--deny" | "--warn" | "--budget-ms" => {
                i += 1;
                let value = args.get(i).ok_or_else(|| format!("{arg} needs a value"))?;
                match arg {
                    "--root" => cli.root = Some(PathBuf::from(value)),
                    "--budget-ms" => {
                        cli.budget_ms =
                            Some(value.parse().map_err(|_| format!("bad --budget-ms `{value}`"))?);
                    }
                    _ => {
                        let severity =
                            if arg == "--deny" { Severity::Deny } else { Severity::Warn };
                        for rule in value.split(',').map(str::trim).filter(|r| !r.is_empty()) {
                            if rule != "all" && !known_rule(rule) {
                                return Err(format!("unknown rule `{rule}`"));
                            }
                            cli.config.set(rule, severity);
                        }
                    }
                }
            }
            "-h" | "--help" => return Err(String::new()),
            _ if arg.starts_with('-') => return Err(format!("unknown flag `{arg}`")),
            _ => cli.paths.push(PathBuf::from(arg)),
        }
        i += 1;
    }
    Ok(cli)
}

/// Walks up from `start` to the directory whose `Cargo.toml` declares the
/// workspace.
fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Files changed since HEAD (tracked modifications plus untracked files),
/// as workspace-relative paths — or `None` when git is unavailable or the
/// root is not a repository (the caller falls back to a full walk).
fn changed_files(root: &Path) -> Option<Vec<PathBuf>> {
    let run = |args: &[&str]| -> Option<Vec<String>> {
        let out = std::process::Command::new("git").args(args).current_dir(root).output().ok()?;
        if !out.status.success() {
            return None;
        }
        Some(
            String::from_utf8_lossy(&out.stdout)
                .lines()
                .map(str::trim)
                .filter(|l| !l.is_empty())
                .map(str::to_owned)
                .collect(),
        )
    };
    let mut names = run(&["diff", "--name-only", "HEAD"])?;
    // Untracked production files are usually exactly what is being edited.
    names.extend(run(&["ls-files", "--others", "--exclude-standard"]).unwrap_or_default());
    names.sort();
    names.dedup();
    Some(
        names
            .into_iter()
            .filter(|n| n.ends_with(".rs"))
            .map(PathBuf::from)
            .filter(|p| walk::is_production_path(p) && root.join(p).is_file())
            .collect(),
    )
}

fn main() -> ExitCode {
    let started = Instant::now();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_args(&args) {
        Ok(cli) => cli,
        Err(msg) => {
            if msg.is_empty() {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("cc-lint: {msg}");
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };

    if cli.list_rules {
        for rule in rules::all_rules() {
            println!("{:<18} {}", rule.name(), rule.summary());
        }
        for rule in rules::workspace_rules() {
            println!("{:<18} {}", rule.name(), rule.summary());
        }
        println!(
            "{:<18} allow-comments must be well-formed with a stated reason",
            cc_lint::ALLOW_HYGIENE
        );
        return ExitCode::SUCCESS;
    }

    if cli.fixtures {
        let fixtures = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
        let (log, ok) = check_fixtures(&fixtures);
        print!("{log}");
        return if ok { ExitCode::SUCCESS } else { ExitCode::from(1) };
    }

    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let root = match cli.root.clone().or_else(|| find_workspace_root(&cwd)) {
        Some(root) => root,
        None => {
            eprintln!("cc-lint: no workspace root found (run inside the repo or pass --root)");
            return ExitCode::from(2);
        }
    };

    // The IR set is always the full workspace (the call-graph rules need
    // every edge); `report_files` narrows which findings are *reported*.
    let all_files = walk::workspace_files(&root);
    let mut opts = LintOptions::default();
    if cli.changed_only {
        match changed_files(&root) {
            Some(changed) => {
                opts.report_files = Some(
                    changed
                        .iter()
                        .map(|p| p.to_string_lossy().into_owned())
                        .collect::<BTreeSet<_>>(),
                );
            }
            None => eprintln!("cc-lint: not a git checkout; falling back to --workspace"),
        }
    } else if !cli.workspace && !cli.paths.is_empty() {
        let scoped: BTreeSet<String> = cli
            .paths
            .iter()
            .map(|p| {
                // Accept both workspace-relative and cwd-relative paths.
                if root.join(p).exists() {
                    p.clone()
                } else {
                    cwd.join(p)
                        .strip_prefix(&root)
                        .map(Path::to_path_buf)
                        .unwrap_or_else(|_| p.clone())
                }
            })
            .map(|p| p.to_string_lossy().replace('\\', "/"))
            .collect();
        opts.report_files = Some(scoped);
    }
    // Unused allows are only decidable when every finding was in scope.
    opts.enforce_unused_allows = opts.report_files.is_none();

    let report = lint_workspace(&root, &all_files, &cli.config, &opts);
    if cli.json {
        println!("{}", report.render_json());
    } else {
        print!("{}", report.render_human());
    }
    let elapsed = started.elapsed();
    if let Some(budget) = cli.budget_ms {
        if elapsed.as_millis() > u128::from(budget) {
            eprintln!(
                "cc-lint: run took {}ms, over the {budget}ms budget — the analyzer may not \
                 become the slowest CI stage",
                elapsed.as_millis()
            );
            return ExitCode::from(1);
        }
    }
    if report.deny_count() > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
