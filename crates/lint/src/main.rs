//! The `cc-lint` binary: walks the workspace (or explicit paths), runs the
//! rule catalog, prints human or JSON reports, and exits nonzero on any
//! deny-level finding. `--check-fixtures` runs the tool against its own
//! known-bad corpus — the CI step that proves the gate still fires.

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use cc_lint::findings::Severity;
use cc_lint::{check_fixtures, known_rule, lint_paths, rules, walk, Config};

const USAGE: &str = "\
cc-lint: workspace invariant checker

USAGE:
    cc-lint [--workspace | PATH...] [OPTIONS]

OPTIONS:
    --workspace          lint every production source file under the
                         workspace root (found by walking up from cwd)
    --root DIR           use DIR as the workspace root
    --deny RULE[,RULE]   treat RULE (or `all`) as deny (the default)
    --warn RULE[,RULE]   treat RULE (or `all`) as warn (never fails)
    --json               machine-readable output
    --list-rules         print the rule catalog and exit
    --check-fixtures     run the rules against their known-bad fixture
                         corpus and fail unless every rule fires
    -h, --help           this text

Exit codes: 0 clean, 1 deny-level findings (or fixture failures), 2 usage.
";

struct Cli {
    workspace: bool,
    root: Option<PathBuf>,
    paths: Vec<PathBuf>,
    config: Config,
    json: bool,
    list_rules: bool,
    fixtures: bool,
}

fn parse_args(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli {
        workspace: false,
        root: None,
        paths: Vec::new(),
        config: Config::deny_all(),
        json: false,
        list_rules: false,
        fixtures: false,
    };
    let mut i = 0;
    while i < args.len() {
        let arg = args[i].as_str();
        match arg {
            "--workspace" => cli.workspace = true,
            "--json" => cli.json = true,
            "--list-rules" => cli.list_rules = true,
            "--check-fixtures" => cli.fixtures = true,
            "--root" | "--deny" | "--warn" => {
                i += 1;
                let value = args.get(i).ok_or_else(|| format!("{arg} needs a value"))?;
                match arg {
                    "--root" => cli.root = Some(PathBuf::from(value)),
                    _ => {
                        let severity =
                            if arg == "--deny" { Severity::Deny } else { Severity::Warn };
                        for rule in value.split(',').map(str::trim).filter(|r| !r.is_empty()) {
                            if rule != "all" && !known_rule(rule) {
                                return Err(format!("unknown rule `{rule}`"));
                            }
                            cli.config.set(rule, severity);
                        }
                    }
                }
            }
            "-h" | "--help" => return Err(String::new()),
            _ if arg.starts_with('-') => return Err(format!("unknown flag `{arg}`")),
            _ => cli.paths.push(PathBuf::from(arg)),
        }
        i += 1;
    }
    Ok(cli)
}

/// Walks up from `start` to the directory whose `Cargo.toml` declares the
/// workspace.
fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_args(&args) {
        Ok(cli) => cli,
        Err(msg) => {
            if msg.is_empty() {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("cc-lint: {msg}");
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };

    if cli.list_rules {
        for rule in rules::all_rules() {
            println!("{:<18} {}", rule.name(), rule.summary());
        }
        println!(
            "{:<18} allow-comments must be well-formed with a stated reason",
            cc_lint::ALLOW_HYGIENE
        );
        return ExitCode::SUCCESS;
    }

    if cli.fixtures {
        let fixtures = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
        let (log, ok) = check_fixtures(&fixtures);
        print!("{log}");
        return if ok { ExitCode::SUCCESS } else { ExitCode::from(1) };
    }

    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let root = match cli.root.clone().or_else(|| find_workspace_root(&cwd)) {
        Some(root) => root,
        None => {
            eprintln!("cc-lint: no workspace root found (run inside the repo or pass --root)");
            return ExitCode::from(2);
        }
    };

    let files: Vec<PathBuf> = if cli.workspace || cli.paths.is_empty() {
        walk::workspace_files(&root)
    } else {
        cli.paths
            .iter()
            .map(|p| {
                // Accept both workspace-relative and cwd-relative paths.
                if root.join(p).exists() {
                    p.clone()
                } else {
                    cwd.join(p)
                        .strip_prefix(&root)
                        .map(Path::to_path_buf)
                        .unwrap_or_else(|_| p.clone())
                }
            })
            .collect()
    };

    let report = lint_paths(&root, &files, &cli.config, None);
    if cli.json {
        println!("{}", report.render_json());
    } else {
        print!("{}", report.render_human());
    }
    if report.deny_count() > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
