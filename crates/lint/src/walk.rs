//! Workspace file discovery.
//!
//! The walker enumerates every production `.rs` file under the workspace
//! root, skipping build output, vendored shims, lint fixtures, and test-only
//! trees (`tests/`, `benches/`, `examples/` — integration tests may use
//! whatever idioms they like; the rules police shipping code).

use std::fs;
use std::path::{Path, PathBuf};

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &[".git", "target", "shim", "fixtures", "tests", "benches", "examples"];

/// Collects workspace source files, returning workspace-relative paths with
/// `/` separators (stable across platforms for rule scoping and output).
pub fn workspace_files(root: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    collect(root, root, &mut files);
    files.sort();
    files
}

fn collect(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) {
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(_) => return,
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_ref()) {
                collect(root, &path, out);
            }
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(normalize(rel));
            }
        }
    }
}

/// True if a workspace-relative path is production source the walker
/// would have visited (no path component in the skip list): the
/// `--changed-only` filter for git-reported paths.
pub fn is_production_path(rel: &Path) -> bool {
    rel.components().all(|c| {
        let name = c.as_os_str().to_string_lossy();
        !SKIP_DIRS.contains(&name.as_ref())
    })
}

/// Rewrites a relative path to use `/` separators.
fn normalize(rel: &Path) -> PathBuf {
    let joined = rel
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/");
    PathBuf::from(joined)
}

/// Reads a source file leniently: invalid UTF-8 is replaced, not fatal.
pub fn read_source(root: &Path, rel: &Path) -> std::io::Result<String> {
    let bytes = fs::read(root.join(rel))?;
    Ok(String::from_utf8_lossy(&bytes).into_owned())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walker_skips_shims_fixtures_and_tests() {
        // The crate's own manifest dir sits inside the workspace; walk two
        // levels up (the workspace root) and check the exclusions hold.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let files = workspace_files(&root);
        assert!(files.iter().any(|f| f.to_string_lossy() == "crates/lint/src/walk.rs"));
        assert!(!files.iter().any(|f| f.to_string_lossy().contains("shim/")));
        assert!(!files.iter().any(|f| f.to_string_lossy().contains("fixtures/")));
        assert!(!files.iter().any(|f| f.to_string_lossy().contains("/tests/")));
        assert!(!files.iter().any(|f| f.to_string_lossy().contains("target/")));
    }
}
