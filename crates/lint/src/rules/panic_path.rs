//! Rule `panic_path`: a serving-set entry point never *reaches* a panic.
//!
//! `no_panic` bans panicking expressions in the serving files themselves;
//! this rule closes the transitive hole: a handler calling into
//! `cache.rs` or `registry.rs` (files `no_panic` does not scan) still
//! dies if the callee `.expect(...)`s — and if it dies holding a shard
//! or registry lock, the poison takes the whole path down. Every
//! function defined in the serving files is a root; any panic fact in a
//! function *reached through at least one call* is a finding, anchored
//! at the panic site with the call chain in the message. Depth-zero
//! panics (in a root's own body, with no call edge leading in) are
//! `no_panic`'s beat and are not re-reported — but a root used as a
//! helper by another root is reported like any other callee, so a panic
//! inside a serving file can still surface here when it is reached
//! through a call. An existing `// cc-lint: allow(no_panic)` at the panic
//! site also suppresses this rule (the engine treats `no_panic` as an
//! alias), so a justified startup-path panic needs one comment, not two.

use super::{WorkspaceRule, WsFinding, SERVING_FILES};
use crate::graph::WorkspaceIr;

pub struct PanicPath;

impl WorkspaceRule for PanicPath {
    fn name(&self) -> &'static str {
        "panic_path"
    }

    fn summary(&self) -> &'static str {
        "serving entry points must not reach a panicking function anywhere in the call graph"
    }

    fn check(&self, ws: &WorkspaceIr) -> Vec<WsFinding> {
        let roots = ws.fns_in_files(SERVING_FILES);
        // Seeded from root *callees*: everything reached arrived through a
        // call, so a root's own body (no_panic's beat) is never re-reported.
        let reached = ws.reachable_via_call(&roots);
        let mut out = Vec::new();
        let mut seen: std::collections::BTreeSet<(String, u32)> = std::collections::BTreeSet::new();
        for &id in reached.keys() {
            let f = ws.fn_item(id);
            for p in &f.panics {
                let file = ws.fn_path(id).to_owned();
                if !seen.insert((file.clone(), p.line)) {
                    continue;
                }
                let chain = ws.chain_to(&reached, id);
                out.push(WsFinding {
                    file,
                    line: p.line,
                    message: format!(
                        "{} can panic and is reachable from serving entry `{}` (call chain \
                         {}); a panic here kills a worker — and poisons any lock held — \
                         return an error or recover with `PoisonError::into_inner`",
                        p.what,
                        chain.first().cloned().unwrap_or_default(),
                        chain.join(" -> ")
                    ),
                });
            }
        }
        out
    }
}
