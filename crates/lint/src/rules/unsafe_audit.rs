//! Rule `unsafe_audit`: every `unsafe` site sits in an allowlisted module
//! and carries a `// SAFETY:` comment.
//!
//! The workspace is `#![deny(unsafe_code)]` everywhere; the two sanctioned
//! exceptions are the raw epoll/eventfd syscall surface
//! (`crates/reactor/src/sys.rs`) and the SIGHUP handler installation in
//! `cc-serve`'s `main.rs` (`mod sighup`). Unsafe anywhere else is a
//! finding, and even inside the allowlist each site must state the
//! invariant that makes it sound in a `// SAFETY:` comment within a few
//! lines above (attributes like `#[allow(unsafe_code)]` may sit between
//! the comment and the `unsafe` token).

use super::{WorkspaceRule, WsFinding};
use crate::graph::WorkspaceIr;

/// Allowlisted homes for `unsafe`: a file, optionally narrowed to one
/// `mod` inside it.
const ALLOWLIST: &[(&str, Option<&str>)] =
    &[("crates/reactor/src/sys.rs", None), ("crates/server/src/main.rs", Some("sighup"))];

/// How many lines above an `unsafe` token a `// SAFETY:` comment may
/// start (multi-line justifications plus an interleaved attribute).
const SAFETY_WINDOW: u32 = 6;

pub struct UnsafeAudit;

impl WorkspaceRule for UnsafeAudit {
    fn name(&self) -> &'static str {
        "unsafe_audit"
    }

    fn summary(&self) -> &'static str {
        "unsafe only in allowlisted modules (reactor sys, sighup) and always under a SAFETY: comment"
    }

    fn check(&self, ws: &WorkspaceIr) -> Vec<WsFinding> {
        let mut out = Vec::new();
        for file in &ws.files {
            for &line in &file.unsafe_lines {
                let allowed = ALLOWLIST.iter().any(|(path, module)| {
                    file.path == *path
                        && module.is_none_or(|m| {
                            file.mods.iter().any(|span| {
                                span.name == m && span.start_line <= line && line <= span.end_line
                            })
                        })
                });
                if !allowed {
                    out.push(WsFinding {
                        file: file.path.clone(),
                        line,
                        message: "`unsafe` outside the audited allowlist (reactor `sys.rs`, \
                                  serve `mod sighup`); wrap the operation in a safe API in an \
                                  allowlisted module or extend the allowlist in a reviewed \
                                  change"
                            .to_owned(),
                    });
                }
                let justified = file
                    .safety_lines
                    .iter()
                    .any(|&s| s <= line && line.saturating_sub(s) <= SAFETY_WINDOW);
                if !justified {
                    out.push(WsFinding {
                        file: file.path.clone(),
                        line,
                        message: "`unsafe` without a `// SAFETY:` comment; state the invariant \
                                  that makes this sound directly above the site"
                            .to_owned(),
                    });
                }
            }
        }
        out
    }
}
