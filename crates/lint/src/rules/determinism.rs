//! Rule `determinism`: query kernels read no clocks.
//!
//! The shard-equivalence suites pin router answers bit-identical to the
//! monolith; that only holds while a query's result is a pure function of
//! the artifact and the input pair. `Instant::now` / `SystemTime::now` in a
//! kernel file is either dead weight or a time-dependent answer waiting to
//! happen. Build-phase tracing in the same files uses the allow escape
//! hatch with a stated reason.

use super::{path_in, FileContext, RawFinding, Rule, KERNEL_FILES};

pub struct Determinism;

impl Rule for Determinism {
    fn name(&self) -> &'static str {
        "determinism"
    }

    fn summary(&self) -> &'static str {
        "no Instant::now/SystemTime::now in query-kernel files"
    }

    fn applies_to(&self, path: &str) -> bool {
        path_in(path, KERNEL_FILES)
    }

    fn check(&self, ctx: &FileContext<'_>) -> Vec<RawFinding> {
        let mut out = Vec::new();
        let toks = ctx.tokens;
        for i in 0..toks.len() {
            if !ctx.is_code(i) {
                continue;
            }
            let t = &toks[i];
            let clock = (t.is_ident("Instant") || t.is_ident("SystemTime"))
                && toks.get(i + 1).is_some_and(|n| n.is_punct("::"))
                && toks.get(i + 2).is_some_and(|n| n.is_ident("now"));
            if clock {
                out.push(RawFinding {
                    line: t.line,
                    message: format!(
                        "`{}::now()` in a query-kernel file breaks answer determinism \
                         (router/monolith bit-equivalence); move timing to the caller or \
                         annotate build-phase tracing",
                        t.text
                    ),
                });
            }
        }
        out
    }
}
