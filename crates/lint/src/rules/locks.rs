//! Rule `lock_discipline`: one function, one acquisition per lock.
//!
//! Originating bug (PR 2): the query cache did `if !map.lock().contains(k)`
//! then `map.lock().insert(k, v)` — a check-then-insert across two separate
//! acquisitions, so two threads could both miss and both compute. The shape
//! generalizes: any second `.lock()`/`.read()`/`.write()` on the same
//! binding inside one function means the state observed under the first
//! guard may be stale by the second. Hold one guard across the whole
//! decision, or annotate why the re-acquisition is benign.

use super::{receiver_key, FileContext, RawFinding, Rule};
use crate::lexer::matching_bracket;
use std::collections::HashMap;

/// Guard-returning methods, matched only with empty argument lists so
/// `io::Read::read(&mut buf)` and friends never false-positive.
const LOCK_METHODS: &[&str] = &["lock", "read", "write"];

pub struct LockDiscipline;

impl Rule for LockDiscipline {
    fn name(&self) -> &'static str {
        "lock_discipline"
    }

    fn summary(&self) -> &'static str {
        "no second .lock()/.read()/.write() on the same binding within one function"
    }

    fn applies_to(&self, _path: &str) -> bool {
        true
    }

    fn check(&self, ctx: &FileContext<'_>) -> Vec<RawFinding> {
        let mut out = Vec::new();
        let toks = ctx.tokens;
        let mut i = 0;
        while i < toks.len() {
            if !toks[i].is_ident("fn") || !ctx.is_code(i) {
                i += 1;
                continue;
            }
            // Find the body's opening brace; a `;` first means a bodyless
            // trait-method signature.
            let open = toks
                .iter()
                .enumerate()
                .skip(i + 1)
                .take_while(|(_, t)| !t.is_punct(";"))
                .find(|(_, t)| t.is_punct("{"))
                .map(|(j, _)| j);
            let Some(open) = open else {
                i += 1;
                continue;
            };
            let end = matching_bracket(toks, open, "{", "}").unwrap_or(toks.len() - 1);
            out.extend(scan_body(ctx, open, end));
            i = end + 1;
        }
        out
    }
}

/// Counts guard acquisitions per receiver key within one function body.
fn scan_body(ctx: &FileContext<'_>, open: usize, end: usize) -> Vec<RawFinding> {
    let toks = ctx.tokens;
    // receiver key -> (line of first acquisition, acquisitions so far)
    let mut seen: HashMap<String, (u32, u32)> = HashMap::new();
    let mut out = Vec::new();
    for j in open..=end {
        if !ctx.is_code(j) {
            continue;
        }
        let is_lock = LOCK_METHODS.contains(&toks[j].text.as_str())
            && toks[j].kind == crate::lexer::TokenKind::Ident
            && j > 0
            && toks[j - 1].is_punct(".")
            && toks.get(j + 1).is_some_and(|t| t.is_punct("("))
            && toks.get(j + 2).is_some_and(|t| t.is_punct(")"));
        if !is_lock {
            continue;
        }
        let (key, _) = receiver_key(toks, j.saturating_sub(2));
        if key.is_empty() {
            continue;
        }
        let entry = seen.entry(key.clone()).or_insert((toks[j].line, 0));
        entry.1 += 1;
        let (first_line, count) = *entry;
        if count > 1 {
            out.push(RawFinding {
                line: toks[j].line,
                message: format!(
                    "second `.{}()` on `{key}` in one function (first at line {first_line}) — \
                     the check-then-act state may be stale (PR 2 cache race); hold one guard \
                     across the decision",
                    toks[j].text
                ),
            });
        }
    }
    out
}
