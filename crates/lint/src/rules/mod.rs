//! The rule trait, the rule registry, and shared token-pattern helpers.
//!
//! Every rule is named after the bug class it makes unwritable (see
//! `docs/LINTS.md` for the catalog with the originating PRs). Rules see one
//! file at a time as a [`FileContext`]: the token stream, a mask of
//! `#[cfg(test)]` regions, and the file's workspace-relative path for
//! scoping decisions.

mod atomics;
mod determinism;
mod distance_arith;
mod lock_order;
mod locks;
mod no_panic;
mod panic_path;
mod reactor_blocking;
mod sentinel;
mod unsafe_audit;

use crate::graph::WorkspaceIr;
use crate::lexer::{Token, TokenKind};

/// Everything a rule gets to look at for one file.
pub struct FileContext<'a> {
    /// Workspace-relative path with `/` separators.
    pub path: &'a str,
    /// The token stream (comments already stripped by the lexer).
    pub tokens: &'a [Token],
    /// One flag per token: true when inside `#[cfg(test)]` code.
    pub test_mask: &'a [bool],
}

impl FileContext<'_> {
    /// True when token `i` is production (non-test) code.
    pub fn is_code(&self, i: usize) -> bool {
        !self.test_mask.get(i).copied().unwrap_or(false)
    }
}

/// A violation before severity assignment and allow filtering.
#[derive(Debug)]
pub struct RawFinding {
    /// 1-based line of the offending token.
    pub line: u32,
    /// Human explanation, including what to write instead.
    pub message: String,
}

/// One named, individually-suppressible invariant.
pub trait Rule {
    /// Stable rule name, used in `--deny`/`--warn` and allow-comments.
    fn name(&self) -> &'static str;
    /// One-line description for `--list-rules`.
    fn summary(&self) -> &'static str;
    /// Whether this rule scans the given workspace-relative file.
    fn applies_to(&self, path: &str) -> bool;
    /// Scans one file.
    fn check(&self, ctx: &FileContext<'_>) -> Vec<RawFinding>;
}

/// The full rule registry, in catalog order.
pub fn all_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(distance_arith::DistanceArith),
        Box::new(sentinel::Sentinel),
        Box::new(no_panic::NoPanic),
        Box::new(atomics::AtomicsOrdering),
        Box::new(locks::LockDiscipline),
        Box::new(determinism::Determinism),
    ]
}

/// A violation found by a workspace rule (it knows its own file).
#[derive(Debug)]
pub struct WsFinding {
    /// Workspace-relative path the finding anchors to.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human explanation, including the cross-function evidence.
    pub message: String,
}

/// A rule that runs once over the whole workspace IR instead of one file
/// at a time — the call-graph rules.
pub trait WorkspaceRule {
    /// Stable rule name, used in `--deny`/`--warn` and allow-comments.
    fn name(&self) -> &'static str;
    /// One-line description for `--list-rules`.
    fn summary(&self) -> &'static str;
    /// Scans the assembled workspace.
    fn check(&self, ws: &WorkspaceIr) -> Vec<WsFinding>;
}

/// The workspace-rule registry, in catalog order.
pub fn workspace_rules() -> Vec<Box<dyn WorkspaceRule>> {
    vec![
        Box::new(lock_order::LockOrder),
        Box::new(reactor_blocking::ReactorBlocking),
        Box::new(unsafe_audit::UnsafeAudit),
        Box::new(panic_path::PanicPath),
    ]
}

/// Macros that unconditionally panic when reached (shared by `no_panic`,
/// `panic_path` and the parser's fact extraction).
pub const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// The serving-path files: `no_panic` polices their bodies directly and
/// `panic_path` treats every function defined in them as a root that must
/// not *reach* a panic.
pub const SERVING_FILES: &[&str] = &[
    "crates/server/src/handlers.rs",
    "crates/server/src/pool.rs",
    "crates/server/src/reload.rs",
    "crates/server/src/reactor.rs",
    "crates/oracle/src/oracle.rs",
    "crates/reactor/src/poller.rs",
    "crates/reactor/src/frame.rs",
];

/// The oracle's build/query/combine/shard kernels: the files where distance
/// arithmetic happens and where outputs must be pure functions of their
/// inputs (the direct builder's bit-identity contract rides on this).
pub const KERNEL_FILES: &[&str] = &[
    "crates/oracle/src/oracle.rs",
    "crates/oracle/src/shard.rs",
    "crates/oracle/src/cache.rs",
    "crates/oracle/src/direct.rs",
];

/// True if `path` is one of the listed workspace-relative files.
pub fn path_in(path: &str, list: &[&str]) -> bool {
    list.contains(&path)
}

/// True if any `_`-separated segment of `name` (lowercased) is in `pats`,
/// or contains `"dist"` (so `to_landmark` and `best_dist` match while
/// `columns` and `landmarks_len` do not accidentally over-match).
pub fn segment_match(name: &str, pats: &[&str]) -> bool {
    name.to_lowercase().split('_').any(|seg| pats.contains(&seg) || seg.contains("dist"))
}

/// Resolves the operand *ending* at token `end` (exclusive of the operator
/// at `end + 1`) to a representative identifier: the last identifier of the
/// postfix chain. `self.balls.len()` resolves to `len` (a count, not a
/// distance); `to_landmark` resolves to itself.
pub fn prev_operand_ident(tokens: &[Token], end: usize) -> Option<String> {
    let mut j = end as isize;
    let t = tokens.get(j as usize)?;
    if t.is_punct(")") || t.is_punct("]") {
        let (open, close) = if t.text == ")" { ("(", ")") } else { ("[", "]") };
        j = matching_bracket_rev(tokens, j as usize, open, close)? as isize - 1;
    }
    let t = tokens.get(usize::try_from(j).ok()?)?;
    (t.kind == TokenKind::Ident).then(|| t.text.clone())
}

/// Resolves the operand *starting* at token `start` to the last identifier
/// of its member chain: `self.nearest_landmark.len` resolves to `len`,
/// `col` to `col`.
pub fn next_operand_ident(tokens: &[Token], start: usize) -> Option<String> {
    let mut j = start;
    while tokens.get(j).is_some_and(|t| t.is_punct("&") || t.is_punct("*") || t.is_punct("(")) {
        j += 1;
    }
    let first = tokens.get(j)?;
    if first.kind != TokenKind::Ident {
        return None;
    }
    let mut last = j;
    while tokens.get(last + 1).is_some_and(|t| t.is_punct(".") || t.is_punct("::"))
        && tokens.get(last + 2).is_some_and(|t| t.kind == TokenKind::Ident)
    {
        last += 2;
    }
    Some(tokens[last].text.clone())
}

/// Walks a receiver expression backward from its last token, producing a
/// normalized key (`self.shards[]`) and the name of its final field
/// (`shards`). Call and index argument lists collapse to `()` / `[]` so two
/// locks of `shards[i]` and `shards[j]` compare equal (conservatively).
pub fn receiver_key(tokens: &[Token], end: usize) -> (String, Option<String>) {
    let mut parts: Vec<String> = Vec::new();
    let mut field: Option<String> = None;
    let mut j = end as isize;
    while j >= 0 {
        let t = &tokens[j as usize];
        if t.is_punct(")") || t.is_punct("]") {
            let (open, close) = if t.text == ")" { ("(", ")") } else { ("[", "]") };
            match matching_bracket_rev(tokens, j as usize, open, close) {
                Some(o) => {
                    parts.push(if close == ")" { "()".into() } else { "[]".into() });
                    j = o as isize - 1;
                }
                None => break,
            }
        } else if t.kind == TokenKind::Ident {
            if field.is_none() {
                field = Some(t.text.clone());
            }
            parts.push(t.text.clone());
            let sep = j >= 1
                && (tokens[(j - 1) as usize].is_punct(".")
                    || tokens[(j - 1) as usize].is_punct("::"));
            if sep {
                parts.push(tokens[(j - 1) as usize].text.clone());
                j -= 2;
            } else {
                break;
            }
        } else {
            break;
        }
    }
    parts.reverse();
    (parts.join(""), field)
}

/// Index of the bracket opening the one at `close_idx`, scanning backward.
fn matching_bracket_rev(
    tokens: &[Token],
    close_idx: usize,
    open: &str,
    close: &str,
) -> Option<usize> {
    let mut depth = 0i64;
    for k in (0..=close_idx).rev() {
        if tokens[k].is_punct(close) {
            depth += 1;
        } else if tokens[k].is_punct(open) {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn operand_resolution_takes_the_last_postfix_ident() {
        let toks = lex("self.nearest_landmark.len() + to_landmark").tokens;
        let plus = toks.iter().position(|t| t.is_punct("+")).unwrap();
        assert_eq!(prev_operand_ident(&toks, plus - 1).as_deref(), Some("len"));
        assert_eq!(next_operand_ident(&toks, plus + 1).as_deref(), Some("to_landmark"));
    }

    #[test]
    fn receiver_keys_collapse_index_arguments() {
        let toks = lex("self.shards[(key % N) as usize].lock()").tokens;
        let lock = toks.iter().position(|t| t.is_ident("lock")).unwrap();
        let (key, field) = receiver_key(&toks, lock - 2);
        assert_eq!(key, "self.shards[]");
        assert_eq!(field.as_deref(), Some("shards"));
    }

    #[test]
    fn segment_matching_is_exact_per_segment() {
        assert!(segment_match("to_landmark", &["landmark"]));
        assert!(segment_match("best_dist", &[]));
        assert!(!segment_match("landmarks", &["landmark"]));
        assert!(!segment_match("columns", &["col"]));
    }
}
