//! Rule `no_panic`: the serving paths never panic.
//!
//! `cc-serve`'s contract (PR 2) is that malformed input is a `400` and
//! overload is a `503` — never a worker falling over. A panic in a handler
//! kills a pool thread; a panic while a reload lock is held poisons it and
//! takes the whole reload path down with it. `.unwrap()`, `.expect(...)`
//! and the panicking macros are therefore banned in the request handlers,
//! the worker pool, the reload plumbing, and the oracle query kernel.
//! Genuinely-unreachable startup-time cases use the allow escape hatch with
//! a stated reason.

use super::{path_in, FileContext, RawFinding, Rule, PANIC_MACROS, SERVING_FILES};

pub struct NoPanic;

impl Rule for NoPanic {
    fn name(&self) -> &'static str {
        "no_panic"
    }

    fn summary(&self) -> &'static str {
        "no .unwrap()/.expect()/panic! in serving paths (handlers, pool, reload, reactor, query kernel, frame codec)"
    }

    fn applies_to(&self, path: &str) -> bool {
        path_in(path, SERVING_FILES)
    }

    fn check(&self, ctx: &FileContext<'_>) -> Vec<RawFinding> {
        let mut out = Vec::new();
        let toks = ctx.tokens;
        for i in 0..toks.len() {
            if !ctx.is_code(i) {
                continue;
            }
            let t = &toks[i];
            // `.unwrap()` / `.expect(`: exact method names only, so
            // `unwrap_or` / `unwrap_or_else` stay legal.
            let panicking_method = (t.is_ident("unwrap") || t.is_ident("expect"))
                && i > 0
                && toks[i - 1].is_punct(".")
                && toks.get(i + 1).is_some_and(|n| n.is_punct("("));
            if panicking_method {
                out.push(RawFinding {
                    line: t.line,
                    message: format!(
                        "`.{}(...)` can panic on a serving path (poisoning locks, killing \
                         pool workers); return an error, use `unwrap_or_else`, or recover \
                         from poison with `PoisonError::into_inner`",
                        t.text
                    ),
                });
                continue;
            }
            let panicking_macro = PANIC_MACROS.contains(&t.text.as_str())
                && toks.get(i + 1).is_some_and(|n| n.is_punct("!"));
            if panicking_macro {
                out.push(RawFinding {
                    line: t.line,
                    message: format!(
                        "`{}!` panics on a serving path; degrade to an error response instead",
                        t.text
                    ),
                });
            }
        }
        out
    }
}
