//! Rule `sentinel`: no literal `u64::MAX` / `u64::MAX - 1` comparisons
//! outside the canonical constants modules.
//!
//! The ∞ sentinel is defined exactly twice: `Dist::INF` in
//! `crates/matrix/src/elem.rs` and `MAX_FINITE_DISTANCE` in
//! `crates/oracle/src/oracle.rs`. Everywhere else, comparing against the
//! literal restates the encoding inline — which is how the PR 2 saturation
//! bug hid in plain sight: the clamp boundary and the sentinel were the
//! same magic number in two files. Compare against the named constants
//! (`Dist::INF.raw()`, `MAX_FINITE_DISTANCE`) or a locally-documented
//! `const` marker instead.

use super::{path_in, FileContext, RawFinding, Rule};

/// The two modules allowed to spell the sentinel literally: where it is
/// defined.
const CANONICAL: &[&str] = &["crates/matrix/src/elem.rs", "crates/oracle/src/oracle.rs"];

/// Operators that make an adjacent `u64::MAX` a comparison (match arms
/// count: `u64::MAX => ...` is a comparison in disguise).
const COMPARISONS: &[&str] = &["==", "!=", "<", "<=", ">", ">=", "=>"];

pub struct Sentinel;

impl Rule for Sentinel {
    fn name(&self) -> &'static str {
        "sentinel"
    }

    fn summary(&self) -> &'static str {
        "no literal u64::MAX comparisons outside the canonical constants modules"
    }

    fn applies_to(&self, path: &str) -> bool {
        !path_in(path, CANONICAL)
    }

    fn check(&self, ctx: &FileContext<'_>) -> Vec<RawFinding> {
        let mut out = Vec::new();
        let toks = ctx.tokens;
        for i in 0..toks.len() {
            if !ctx.is_code(i) || !toks[i].is_ident("u64") {
                continue;
            }
            let is_max = toks.get(i + 1).is_some_and(|t| t.is_punct("::"))
                && toks.get(i + 2).is_some_and(|t| t.is_ident("MAX"));
            if !is_max {
                continue;
            }
            // Extend over an optional `- 1` so `u64::MAX - 1 == x` is seen
            // as one literal.
            let mut end = i + 2;
            if toks.get(end + 1).is_some_and(|t| t.is_punct("-"))
                && toks.get(end + 2).is_some_and(|t| t.text == "1")
            {
                end += 2;
            }
            let before = i.checked_sub(1).and_then(|j| toks.get(j));
            let after = toks.get(end + 1);
            let compared = [before, after]
                .into_iter()
                .flatten()
                .any(|t| COMPARISONS.contains(&t.text.as_str()));
            if compared {
                out.push(RawFinding {
                    line: toks[i].line,
                    message: "comparison against literal `u64::MAX` restates the infinity \
                              encoding inline; compare against `Dist::INF.raw()`, \
                              `MAX_FINITE_DISTANCE`, or a named local sentinel const"
                        .to_owned(),
                });
            }
        }
        out
    }
}
