//! Rule `distance_arith`: distance arithmetic in the oracle kernels must be
//! `checked_add` + `MAX_FINITE_DISTANCE` clamp.
//!
//! Originating bug (PR 2): `to_landmark.saturating_add(col)` saturated two
//! near-`u64::MAX` finite distances to exactly `u64::MAX` — the ∞ sentinel —
//! so connected pairs were reported unreachable. `saturating_add`,
//! `wrapping_add`, and bare `+` on distance-typed operands are all banned in
//! the kernels; overflow must clamp to `MAX_FINITE_DISTANCE`, never reach
//! the sentinel.

use super::{
    next_operand_ident, path_in, prev_operand_ident, segment_match, FileContext, RawFinding, Rule,
    KERNEL_FILES,
};

/// Identifier segments that mark an operand as distance-typed.
const DISTANCE_SEGMENTS: &[&str] = &[
    "dist",
    "distance",
    "distances",
    "weight",
    "weights",
    "landmark",
    "col",
    "via",
    "best",
    "d",
    "w",
];

pub struct DistanceArith;

impl Rule for DistanceArith {
    fn name(&self) -> &'static str {
        "distance_arith"
    }

    fn summary(&self) -> &'static str {
        "no saturating/wrapping/bare `+` on distances in oracle kernels; use checked_add + MAX_FINITE_DISTANCE clamp"
    }

    fn applies_to(&self, path: &str) -> bool {
        path_in(path, KERNEL_FILES)
    }

    fn check(&self, ctx: &FileContext<'_>) -> Vec<RawFinding> {
        let mut out = Vec::new();
        for (i, tok) in ctx.tokens.iter().enumerate() {
            if !ctx.is_code(i) {
                continue;
            }
            let method_banned = (tok.is_ident("saturating_add") || tok.is_ident("wrapping_add"))
                && i > 0
                && ctx.tokens[i - 1].is_punct(".");
            if method_banned {
                out.push(RawFinding {
                    line: tok.line,
                    message: format!(
                        "`{}` on a distance saturates into the `u64::MAX` infinity sentinel \
                         (the PR 2 bug); use `checked_add(..).map_or(MAX_FINITE_DISTANCE, \
                         |s| s.min(MAX_FINITE_DISTANCE))`",
                        tok.text
                    ),
                });
                continue;
            }
            if tok.is_punct("+") || tok.is_punct("+=") {
                let lhs = (i > 0).then(|| prev_operand_ident(ctx.tokens, i - 1)).flatten();
                let rhs = next_operand_ident(ctx.tokens, i + 1);
                let culprit = [lhs, rhs]
                    .into_iter()
                    .flatten()
                    .find(|name| segment_match(name, DISTANCE_SEGMENTS));
                if let Some(name) = culprit {
                    out.push(RawFinding {
                        line: tok.line,
                        message: format!(
                            "bare `{}` on distance-typed operand `{name}` can overflow into \
                             the infinity sentinel; use `checked_add` with a \
                             `MAX_FINITE_DISTANCE` clamp",
                            tok.text
                        ),
                    });
                }
            }
        }
        out
    }
}
