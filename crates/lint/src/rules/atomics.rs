//! Rule `atomics_ordering`: control-flow atomics don't get `Relaxed`.
//!
//! Originating bug (PR 6): the pool's queue-depth gauge was incremented
//! *after* `try_send`, so a worker could decrement first and a scrape read
//! −1. The fix reordered the operations — but the reason the race was easy
//! to write is that `Relaxed` on a control-flow-ish atomic (a depth, a
//! shutdown flag, a "done" latch) *looks* fine locally. This rule flags
//! `Ordering::Relaxed` whenever the atomic's name matches a control-flow /
//! depth / shutdown pattern; plain counters (hits, misses, bytes) stay
//! unflagged. Where `Relaxed` is genuinely right, the allow-comment states
//! why.

use super::{receiver_key, segment_match, FileContext, RawFinding, Rule};

/// Atomic methods that take an `Ordering` argument.
const ATOMIC_METHODS: &[&str] = &[
    "load",
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_or",
    "fetch_and",
    "fetch_xor",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
];

/// Name segments that mark an atomic as control-flow-bearing.
const CONTROL_SEGMENTS: &[&str] = &[
    "depth", "queue", "shutdown", "stop", "stopping", "stopped", "closed", "closing", "done",
    "running", "alive", "drain", "draining", "exit", "halt", "pending", "inflight",
];

pub struct AtomicsOrdering;

impl Rule for AtomicsOrdering {
    fn name(&self) -> &'static str {
        "atomics_ordering"
    }

    fn summary(&self) -> &'static str {
        "no Ordering::Relaxed on control-flow/depth/shutdown atomics without an annotation"
    }

    fn applies_to(&self, _path: &str) -> bool {
        true
    }

    fn check(&self, ctx: &FileContext<'_>) -> Vec<RawFinding> {
        let mut out = Vec::new();
        let toks = ctx.tokens;
        for i in 0..toks.len() {
            if !ctx.is_code(i) || !toks[i].is_ident("Ordering") {
                continue;
            }
            let relaxed = toks.get(i + 1).is_some_and(|t| t.is_punct("::"))
                && toks.get(i + 2).is_some_and(|t| t.is_ident("Relaxed"));
            if !relaxed {
                continue;
            }
            // Walk back to the atomic method this ordering is an argument
            // of, stopping at a statement boundary.
            let mut method = None;
            for j in (0..i).rev() {
                let t = &toks[j];
                if t.is_punct(";") || t.is_punct("{") || t.is_punct("}") {
                    break;
                }
                if t.kind == crate::lexer::TokenKind::Ident
                    && ATOMIC_METHODS.contains(&t.text.as_str())
                    && j > 0
                    && toks[j - 1].is_punct(".")
                {
                    method = Some(j);
                    break;
                }
            }
            let Some(m) = method else { continue };
            let (_, field) = receiver_key(toks, m.saturating_sub(2));
            let Some(name) = field else { continue };
            if segment_match(&name, CONTROL_SEGMENTS) {
                out.push(RawFinding {
                    line: toks[i].line,
                    message: format!(
                        "`Ordering::Relaxed` on control-flow atomic `{name}` (the PR 6 \
                         gauge-race shape); use Acquire/Release/SeqCst, or annotate why \
                         Relaxed is safe here"
                    ),
                });
            }
        }
        out
    }
}
