//! Rule `lock_order`: no conflicting lock-acquisition order anywhere in
//! the call graph.
//!
//! `lock_discipline` catches the per-function, per-binding double
//! acquisition; it is blind to the classic deadlock where thread 1 runs
//! `fn ab` (alpha, then beta) while thread 2 runs `fn ba` (beta, then
//! alpha) — each function is individually well-behaved. This rule builds
//! the global lock-order graph (an edge `A -> B` whenever some function
//! acquires `B` directly or through a callee while holding `A`) and
//! reports every cycle with the full path: which functions, which files,
//! which lines, and through which calls the conflicting orders arise.
//! Same-key self-edges are excluded — index-collapsed keys like
//! `shards[]` make `shards[i]` then `shards[j]` look identical, and
//! single-key re-acquisition is `lock_discipline`'s beat.

use super::{WorkspaceRule, WsFinding};
use crate::graph::{find_lock_cycles, WorkspaceIr};

pub struct LockOrder;

impl WorkspaceRule for LockOrder {
    fn name(&self) -> &'static str {
        "lock_order"
    }

    fn summary(&self) -> &'static str {
        "no conflicting lock-acquisition cycles across the call graph (cross-function deadlocks)"
    }

    fn check(&self, ws: &WorkspaceIr) -> Vec<WsFinding> {
        let graph = ws.lock_order_edges();
        find_lock_cycles(&graph)
            .into_iter()
            .map(|cycle| {
                let path = cycle.keys.join(" -> ");
                let legs: Vec<String> = cycle
                    .witnesses
                    .iter()
                    .zip(cycle.keys.windows(2))
                    .map(|(w, pair)| {
                        let via = w
                            .via
                            .as_deref()
                            .map(|v| format!(" via call to `{v}`"))
                            .unwrap_or_default();
                        format!(
                            "`{}` holds {} then takes {}{} ({}:{})",
                            w.func, pair[0], pair[1], via, w.file, w.line
                        )
                    })
                    .collect();
                let first = cycle.witnesses.first();
                WsFinding {
                    file: first.map(|w| w.file.clone()).unwrap_or_default(),
                    line: first.map_or(0, |w| w.line),
                    message: format!(
                        "lock-order cycle {path}: {}; two threads interleaving these \
                         orders deadlock — pick one global order",
                        legs.join("; ")
                    ),
                }
            })
            .collect()
    }
}
