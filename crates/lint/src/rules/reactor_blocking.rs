//! Rule `reactor_blocking`: the reactor thread never blocks.
//!
//! The epoll transport's whole value is that one thread multiplexes the
//! listener and every parked keep-alive connection; a single
//! `thread::sleep`, unbounded `.recv()`, `.join()`, or a `.wait(...)`
//! made with a lock guard in hand stalls *every* connection at once (the
//! PR 9 overload backoff slept the reactor for up to a second per
//! overloaded accept). This rule takes every function defined in the
//! reactor files as a root and walks the resolved call graph: any
//! blocking fact in a reachable function is a finding, with the call
//! chain from the root named in the message. Worker-pool handler bodies
//! are closures and closures get no incoming edges, so work the reactor
//! merely *schedules* is not "reachable from the reactor".

use super::{WorkspaceRule, WsFinding};
use crate::graph::WorkspaceIr;

/// The files whose functions make up the reactor dispatch path.
pub const REACTOR_FILES: &[&str] =
    &["crates/server/src/reactor.rs", "crates/reactor/src/poller.rs"];

pub struct ReactorBlocking;

impl WorkspaceRule for ReactorBlocking {
    fn name(&self) -> &'static str {
        "reactor_blocking"
    }

    fn summary(&self) -> &'static str {
        "no sleep/unbounded recv/join/lock-held wait reachable from the reactor dispatch loop"
    }

    fn check(&self, ws: &WorkspaceIr) -> Vec<WsFinding> {
        let roots = ws.fns_in_files(REACTOR_FILES);
        let reached = ws.reachable(&roots);
        let mut out = Vec::new();
        let mut seen: std::collections::BTreeSet<(String, u32)> = std::collections::BTreeSet::new();
        for &id in reached.keys() {
            let f = ws.fn_item(id);
            for b in &f.blocking {
                let file = ws.fn_path(id).to_owned();
                if !seen.insert((file.clone(), b.line)) {
                    continue;
                }
                let chain = ws.chain_to(&reached, id);
                let route = if chain.len() > 1 {
                    format!("reachable from the reactor via {}", chain.join(" -> "))
                } else {
                    format!("on the reactor thread in `{}`", chain[0])
                };
                out.push(WsFinding {
                    file,
                    line: b.line,
                    message: format!(
                        "{} — {}; every parked connection stalls while the reactor is \
                         blocked (defer with a deadline and return to the event loop \
                         instead)",
                        b.kind.describe(),
                        route
                    ),
                });
            }
        }
        out
    }
}
