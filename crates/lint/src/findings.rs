//! Findings, severities and report rendering (human and JSON).

use cc_telemetry::{Json, JsonObject};

/// How a finding is treated at exit time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Counts toward a nonzero exit.
    Deny,
    /// Printed but never fails the run.
    Warn,
}

impl Severity {
    /// The lowercase display name.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Deny => "deny",
            Severity::Warn => "warn",
        }
    }
}

/// One rule violation at a specific location.
#[derive(Debug, Clone)]
pub struct Finding {
    /// The rule that fired (e.g. `distance_arith`).
    pub rule: &'static str,
    /// Path of the offending file, relative to the workspace root.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// What is wrong and what to do instead.
    pub message: String,
    /// Severity after CLI `--deny`/`--warn` overrides.
    pub severity: Severity,
}

/// An allow-comment that actually suppressed at least one finding, or was
/// recorded for the summary.
#[derive(Debug, Clone)]
pub struct UsedAllow {
    /// File containing the comment, relative to the workspace root.
    pub file: String,
    /// 1-based line of the comment.
    pub line: u32,
    /// Rules it lists.
    pub rules: Vec<String>,
    /// The stated reason.
    pub reason: String,
    /// How many findings it suppressed this run.
    pub suppressed: usize,
}

/// A whole lint run: findings (post-suppression) plus the allows in effect.
#[derive(Debug, Default)]
pub struct Report {
    /// Surviving findings, in walk order.
    pub findings: Vec<Finding>,
    /// Allow-comments seen in scanned files.
    pub allows: Vec<UsedAllow>,
    /// Number of files scanned.
    pub files_checked: usize,
}

impl Report {
    /// Number of deny-severity findings (drives the exit code).
    pub fn deny_count(&self) -> usize {
        self.findings.iter().filter(|f| f.severity == Severity::Deny).count()
    }

    /// Renders the human-readable report.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&format!(
                "{}:{}: {}[{}] {}\n",
                f.file,
                f.line,
                f.severity.name(),
                f.rule,
                f.message
            ));
        }
        let warns = self.findings.len() - self.deny_count();
        out.push_str(&format!(
            "cc-lint: {} files checked, {} deny, {} warn\n",
            self.files_checked,
            self.deny_count(),
            warns
        ));
        if !self.allows.is_empty() {
            out.push_str("allows in effect:\n");
            for a in &self.allows {
                out.push_str(&format!(
                    "  {}:{} allow({}) -- {} [{} suppressed]\n",
                    a.file,
                    a.line,
                    a.rules.join(", "),
                    a.reason,
                    a.suppressed
                ));
            }
        }
        out
    }

    /// Renders the machine-readable report via `cc-telemetry`'s JSON writer.
    pub fn render_json(&self) -> String {
        let findings: Vec<Json> = self
            .findings
            .iter()
            .map(|f| {
                let mut o = JsonObject::new();
                o.set("rule", f.rule)
                    .set("file", f.file.as_str())
                    .set("line", u64::from(f.line))
                    .set("severity", f.severity.name())
                    .set("message", f.message.as_str());
                Json::from(o)
            })
            .collect();
        let allows: Vec<Json> = self
            .allows
            .iter()
            .map(|a| {
                let mut o = JsonObject::new();
                o.set("file", a.file.as_str())
                    .set("line", u64::from(a.line))
                    .set(
                        "rules",
                        a.rules.iter().map(|r| Json::from(r.as_str())).collect::<Vec<_>>(),
                    )
                    .set("reason", a.reason.as_str())
                    .set("suppressed", a.suppressed);
                Json::from(o)
            })
            .collect();
        let mut o = JsonObject::new();
        o.set("files_checked", self.files_checked)
            .set("deny", self.deny_count())
            .set("warn", self.findings.len() - self.deny_count())
            .set("findings", findings)
            .set("allows", allows);
        o.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        Report {
            findings: vec![Finding {
                rule: "sentinel",
                file: "crates/x/src/a.rs".into(),
                line: 7,
                message: "literal `u64::MAX` comparison".into(),
                severity: Severity::Deny,
            }],
            allows: vec![UsedAllow {
                file: "crates/x/src/b.rs".into(),
                line: 3,
                rules: vec!["no_panic".into()],
                reason: "startup".into(),
                suppressed: 1,
            }],
            files_checked: 2,
        }
    }

    #[test]
    fn human_report_names_rule_file_line_and_allows() {
        let text = sample().render_human();
        assert!(text.contains("crates/x/src/a.rs:7: deny[sentinel]"));
        assert!(text.contains("2 files checked, 1 deny, 0 warn"));
        assert!(text.contains("allow(no_panic) -- startup [1 suppressed]"));
    }

    #[test]
    fn json_report_is_well_formed() {
        let json = sample().render_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains(r#""rule":"sentinel""#));
        assert!(json.contains(r#""files_checked":2"#));
        assert!(json.contains(r#""suppressed":1"#));
    }
}
