//! The workspace IR: call resolution, reachability, effective lock sets
//! and lock-order cycle detection — the back half of the analyzer the
//! four call-graph rules run on.
//!
//! Resolution is deliberately conservative in both directions. Method
//! calls with std-collection names (`insert`, `get`, `next`, ...) never
//! resolve to workspace functions (see [`crate::parser::STD_METHODS`]),
//! `drop` never resolves (a `drop(pool)` would otherwise wire the
//! reactor to the pool's joining destructor), and `self.method(...)`
//! resolves within the receiver's own impl before falling back to a
//! name-wide search. Unresolved calls simply contribute no edges: the
//! graph under-approximates cross-crate dispatch and over-approximates
//! same-name dispatch, which is the right trade for deny-by-default
//! rules — every edge it does draw corresponds to a real possible call.

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};

use crate::parser::{FileIr, FnItem, STD_METHODS};

/// A function's address in the workspace IR.
pub type FnId = usize;

/// The assembled workspace: every file's IR plus the resolved call graph.
pub struct WorkspaceIr {
    /// Per-file IR, in input order.
    pub files: Vec<FileIr>,
    /// Flat function table: `(file index, fn index within file)`.
    pub fn_table: Vec<(usize, usize)>,
    /// Resolved call edges: for each fn, the (callee, call-site line,
    /// lock keys held at the call) triples.
    pub edges: Vec<Vec<Edge>>,
}

/// One resolved call edge.
#[derive(Debug, Clone)]
pub struct Edge {
    /// Callee function id.
    pub to: FnId,
    /// 1-based line of the call site in the caller's file.
    pub line: u32,
    /// Lock keys held at the call site.
    pub held: Vec<String>,
}

impl WorkspaceIr {
    /// Assembles the IR and resolves every call site.
    pub fn build(files: Vec<FileIr>) -> WorkspaceIr {
        let mut fn_table: Vec<(usize, usize)> = Vec::new();
        for (fi, file) in files.iter().enumerate() {
            for (ji, _) in file.fns.iter().enumerate() {
                fn_table.push((fi, ji));
            }
        }
        // Name and (owner, name) indexes over non-closure fns.
        let mut by_name: HashMap<&str, Vec<FnId>> = HashMap::new();
        let mut by_owner: HashMap<(&str, &str), Vec<FnId>> = HashMap::new();
        for (id, &(fi, ji)) in fn_table.iter().enumerate() {
            let f = &files[fi].fns[ji];
            if f.is_closure {
                continue;
            }
            by_name.entry(f.name.as_str()).or_default().push(id);
            if let Some(owner) = &f.owner {
                by_owner.entry((owner.as_str(), f.name.as_str())).or_default().push(id);
            }
        }
        let mut edges: Vec<Vec<Edge>> = vec![Vec::new(); fn_table.len()];
        for (id, &(fi, ji)) in fn_table.iter().enumerate() {
            let caller = &files[fi].fns[ji];
            for call in &caller.calls {
                let targets: Vec<FnId> = if let Some(q) = &call.qualifier {
                    // `Foo::bar(...)`: the impl index if the qualifier is a
                    // workspace type; `module::bar(...)` (lowercase path
                    // segment) falls back to a name-wide search. Foreign
                    // types (`Instant::now`) resolve to nothing.
                    match by_owner.get(&(q.as_str(), call.name.as_str())) {
                        Some(ids) => ids.clone(),
                        None if q.chars().next().is_some_and(char::is_lowercase) => {
                            by_name.get(call.name.as_str()).cloned().unwrap_or_default()
                        }
                        None => Vec::new(),
                    }
                } else if call.method {
                    if STD_METHODS.contains(&call.name.as_str()) {
                        Vec::new()
                    } else if call.recv_self {
                        // `self.bar(...)`: prefer the receiver's own impl.
                        caller
                            .owner
                            .as_deref()
                            .and_then(|o| by_owner.get(&(o, call.name.as_str())))
                            .or_else(|| by_name.get(call.name.as_str()))
                            .cloned()
                            .unwrap_or_default()
                    } else {
                        by_name.get(call.name.as_str()).cloned().unwrap_or_default()
                    }
                } else {
                    by_name.get(call.name.as_str()).cloned().unwrap_or_default()
                };
                for to in targets {
                    edges[id].push(Edge { to, line: call.line, held: call.held.clone() });
                }
            }
        }
        WorkspaceIr { files, fn_table, edges }
    }

    /// The function behind an id.
    pub fn fn_item(&self, id: FnId) -> &FnItem {
        let (fi, ji) = self.fn_table[id];
        &self.files[fi].fns[ji]
    }

    /// The file path a function lives in.
    pub fn fn_path(&self, id: FnId) -> &str {
        &self.files[self.fn_table[id].0].path
    }

    /// Ids of every non-closure fn whose file is in `paths`.
    pub fn fns_in_files(&self, paths: &[&str]) -> Vec<FnId> {
        (0..self.fn_table.len())
            .filter(|&id| !self.fn_item(id).is_closure && paths.contains(&self.fn_path(id)))
            .collect()
    }

    /// BFS from `roots` over call edges. Returns, for each reached fn, the
    /// (parent fn, call-site line) it was first discovered through — roots
    /// map to `None`. Closures are never *entered* via edges (resolution
    /// gives them no incoming edges), but a root that is a closure still
    /// explores its own calls.
    pub fn reachable(&self, roots: &[FnId]) -> BTreeMap<FnId, Option<(FnId, u32)>> {
        let mut seen: BTreeMap<FnId, Option<(FnId, u32)>> = BTreeMap::new();
        let mut queue: VecDeque<FnId> = VecDeque::new();
        for &r in roots {
            if seen.insert(r, None).is_none() {
                queue.push_back(r);
            }
        }
        while let Some(id) = queue.pop_front() {
            for e in &self.edges[id] {
                if let std::collections::btree_map::Entry::Vacant(slot) = seen.entry(e.to) {
                    slot.insert(Some((id, e.line)));
                    queue.push_back(e.to);
                }
            }
        }
        seen
    }

    /// BFS seeded from the *callees* of `roots` rather than the roots
    /// themselves. Every reached fn therefore has a parent — including a
    /// root that some other root calls — which is what `panic_path` needs:
    /// a root's own body is out of scope, but a root used as a helper is
    /// back in. (With multiple seeds the parent pointers can form a loop
    /// between mutually-recursive roots; `chain_to` guards against that.)
    pub fn reachable_via_call(&self, roots: &[FnId]) -> BTreeMap<FnId, Option<(FnId, u32)>> {
        let mut seen: BTreeMap<FnId, Option<(FnId, u32)>> = BTreeMap::new();
        let mut queue: VecDeque<FnId> = VecDeque::new();
        for &r in roots {
            for e in &self.edges[r] {
                if let std::collections::btree_map::Entry::Vacant(slot) = seen.entry(e.to) {
                    slot.insert(Some((r, e.line)));
                    queue.push_back(e.to);
                }
            }
        }
        while let Some(id) = queue.pop_front() {
            for e in &self.edges[id] {
                if let std::collections::btree_map::Entry::Vacant(slot) = seen.entry(e.to) {
                    slot.insert(Some((id, e.line)));
                    queue.push_back(e.to);
                }
            }
        }
        seen
    }

    /// The call chain from a BFS root to `id`, as qualified fn names.
    pub fn chain_to(&self, parents: &BTreeMap<FnId, Option<(FnId, u32)>>, id: FnId) -> Vec<String> {
        let mut chain = vec![self.fn_item(id).qualified_name()];
        let mut cur = id;
        let mut visited: BTreeSet<FnId> = BTreeSet::new();
        visited.insert(id);
        while let Some(Some((parent, _))) = parents.get(&cur) {
            if !visited.insert(*parent) {
                break;
            }
            chain.push(self.fn_item(*parent).qualified_name());
            cur = *parent;
        }
        chain.reverse();
        chain
    }

    /// Every lock key a function may acquire, directly or via any callee
    /// (memoized; cycles contribute their partial sets).
    pub fn effective_locks(&self) -> Vec<BTreeSet<String>> {
        let n = self.fn_table.len();
        let mut memo: Vec<Option<BTreeSet<String>>> = vec![None; n];
        let mut visiting = vec![false; n];
        for id in 0..n {
            self.locks_of(id, &mut memo, &mut visiting);
        }
        memo.into_iter().map(Option::unwrap_or_default).collect()
    }

    fn locks_of(
        &self,
        id: FnId,
        memo: &mut Vec<Option<BTreeSet<String>>>,
        visiting: &mut Vec<bool>,
    ) -> BTreeSet<String> {
        if let Some(set) = &memo[id] {
            return set.clone();
        }
        if visiting[id] {
            return BTreeSet::new(); // recursion: break the cycle with ∅
        }
        visiting[id] = true;
        let mut set: BTreeSet<String> =
            self.fn_item(id).locks.iter().map(|l| l.key.clone()).collect();
        let callees: Vec<FnId> = self.edges[id].iter().map(|e| e.to).collect();
        for to in callees {
            set.extend(self.locks_of(to, memo, visiting));
        }
        visiting[id] = false;
        memo[id] = Some(set.clone());
        set
    }

    /// Builds the lock-order graph: an edge `A -> B` means some function
    /// acquires `B` (directly or transitively) while holding `A`. Each
    /// edge carries a witness describing where.
    pub fn lock_order_edges(&self) -> BTreeMap<String, BTreeMap<String, LockWitness>> {
        let effective = self.effective_locks();
        let mut graph: BTreeMap<String, BTreeMap<String, LockWitness>> = BTreeMap::new();
        let mut add = |a: &str, b: &str, w: LockWitness| {
            if a != b {
                graph.entry(a.to_owned()).or_default().entry(b.to_owned()).or_insert(w);
            }
        };
        for id in 0..self.fn_table.len() {
            let f = self.fn_item(id);
            let path = self.fn_path(id);
            // Direct: a later acquisition while an earlier guard is held.
            for acq in &f.locks {
                for held in &acq.held {
                    add(
                        held,
                        &acq.key,
                        LockWitness {
                            func: f.qualified_name(),
                            file: path.to_owned(),
                            line: acq.line,
                            via: None,
                        },
                    );
                }
            }
            // Transitive: calling into code that acquires, guard in hand.
            for e in &self.edges[id] {
                if e.held.is_empty() {
                    continue;
                }
                let callee = self.fn_item(e.to);
                for inner in &effective[e.to] {
                    for held in &e.held {
                        add(
                            held,
                            inner,
                            LockWitness {
                                func: f.qualified_name(),
                                file: path.to_owned(),
                                line: e.line,
                                via: Some(callee.qualified_name()),
                            },
                        );
                    }
                }
            }
        }
        graph
    }
}

/// Where a lock-order edge was observed.
#[derive(Debug, Clone)]
pub struct LockWitness {
    /// Qualified name of the function holding the first lock.
    pub func: String,
    /// Its file.
    pub file: String,
    /// Line of the second acquisition (or of the call that leads to it).
    pub line: u32,
    /// The callee the second acquisition happens through, if transitive.
    pub via: Option<String>,
}

/// A lock-order cycle: the key sequence (first repeated at the end) and
/// one witness per edge.
#[derive(Debug)]
pub struct LockCycle {
    /// Keys along the cycle, `[A, B, ..., A]`.
    pub keys: Vec<String>,
    /// Witness for each consecutive edge.
    pub witnesses: Vec<LockWitness>,
}

/// Finds every elementary cycle in the lock-order graph, deduplicated by
/// rotation (each cycle reported once, starting from its smallest key).
pub fn find_lock_cycles(graph: &BTreeMap<String, BTreeMap<String, LockWitness>>) -> Vec<LockCycle> {
    let mut cycles: Vec<LockCycle> = Vec::new();
    let mut seen: BTreeSet<Vec<String>> = BTreeSet::new();
    // DFS from each node; a back edge onto the current stack is a cycle.
    for start in graph.keys() {
        let mut stack: Vec<&str> = vec![start];
        let mut iters: Vec<Box<dyn Iterator<Item = &String>>> = vec![Box::new(graph[start].keys())];
        while let Some(it) = iters.last_mut() {
            match it.next() {
                None => {
                    stack.pop();
                    iters.pop();
                }
                Some(next) => {
                    if let Some(pos) = stack.iter().position(|&k| k == next.as_str()) {
                        // Cycle: stack[pos..] + next. Canonicalize by
                        // rotating the smallest key to the front.
                        let cyc: Vec<String> =
                            stack[pos..].iter().map(|s| (*s).to_owned()).collect();
                        let min_at = cyc
                            .iter()
                            .enumerate()
                            .min_by_key(|(_, k)| k.as_str())
                            .map_or(0, |(i, _)| i);
                        let canon: Vec<String> =
                            (0..cyc.len()).map(|i| cyc[(min_at + i) % cyc.len()].clone()).collect();
                        if seen.insert(canon.clone()) {
                            let mut keys = canon.clone();
                            keys.push(canon[0].clone());
                            let witnesses = keys
                                .windows(2)
                                .filter_map(|w| {
                                    graph.get(&w[0]).and_then(|m| m.get(&w[1])).cloned()
                                })
                                .collect();
                            cycles.push(LockCycle { keys, witnesses });
                        }
                    } else if graph.contains_key(next.as_str()) && stack.len() < 16 {
                        stack.push(next.as_str());
                        iters.push(Box::new(graph[next.as_str()].keys()));
                    }
                }
            }
        }
    }
    cycles
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{lex, test_code_mask};
    use crate::parser::parse_file;

    fn build(files: &[(&str, &str)]) -> WorkspaceIr {
        let irs = files
            .iter()
            .map(|(path, src)| {
                let lexed = lex(src);
                let mask = test_code_mask(&lexed.tokens);
                parse_file(path, &lexed, &mask)
            })
            .collect();
        WorkspaceIr::build(irs)
    }

    #[test]
    fn self_method_calls_resolve_within_the_owner_impl() {
        let ws = build(&[(
            "a.rs",
            "impl A { fn outer(&self) { self.inner(); } fn inner(&self) {} }\n\
             impl B { fn inner(&self) {} }",
        )]);
        let outer = (0..ws.fn_table.len()).find(|&id| ws.fn_item(id).name == "outer").unwrap();
        let targets: Vec<String> =
            ws.edges[outer].iter().map(|e| ws.fn_item(e.to).qualified_name()).collect();
        assert_eq!(targets, vec!["A::inner"]);
    }

    #[test]
    fn std_method_names_never_resolve() {
        let ws = build(&[(
            "a.rs",
            "fn caller(m: M) { m.insert(1); } impl M { fn insert(&mut self, k: u32) { x.unwrap(); } }",
        )]);
        let caller = (0..ws.fn_table.len()).find(|&id| ws.fn_item(id).name == "caller").unwrap();
        assert!(ws.edges[caller].is_empty());
    }

    #[test]
    fn reachability_follows_transitive_chains() {
        let ws = build(&[("a.rs", "fn a() { b(); } fn b() { c(); } fn c() {} fn lone() {}")]);
        let a = (0..ws.fn_table.len()).find(|&id| ws.fn_item(id).name == "a").unwrap();
        let reached = ws.reachable(&[a]);
        let names: Vec<&str> = reached.keys().map(|&id| ws.fn_item(id).name.as_str()).collect();
        assert_eq!(names.len(), 3);
        assert!(!names.contains(&"lone"));
        let c = (0..ws.fn_table.len()).find(|&id| ws.fn_item(id).name == "c").unwrap();
        assert_eq!(ws.chain_to(&reached, c), vec!["a", "b", "c"]);
    }

    #[test]
    fn transitive_lock_edges_and_cycles() {
        let ws = build(&[(
            "a.rs",
            "impl S {\n\
             fn ab(&self) { let a = self.alpha.lock(); self.take_beta(); }\n\
             fn take_beta(&self) { let b = self.beta.lock(); }\n\
             fn ba(&self) { let b = self.beta.lock(); let a = self.alpha.lock(); }\n\
             }",
        )]);
        let graph = ws.lock_order_edges();
        let cycles = find_lock_cycles(&graph);
        assert_eq!(cycles.len(), 1, "graph: {graph:?}");
        assert_eq!(cycles[0].keys, vec!["S::self.alpha", "S::self.beta", "S::self.alpha"]);
    }

    #[test]
    fn consistent_order_has_no_cycle() {
        let ws = build(&[(
            "a.rs",
            "impl S {\n\
             fn x(&self) { let a = self.alpha.lock(); let b = self.beta.lock(); }\n\
             fn y(&self) { let a = self.alpha.lock(); let b = self.beta.lock(); }\n\
             }",
        )]);
        assert!(find_lock_cycles(&ws.lock_order_edges()).is_empty());
    }
}
