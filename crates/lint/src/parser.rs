//! Item recovery over the token stream: the front half of the workspace
//! analyzer.
//!
//! A lightweight recursive-descent pass walks one file's tokens and
//! recovers the items the workspace rules care about — `fn`s (with their
//! `impl`/`trait` owner), `mod` spans, `unsafe` sites — and, per function,
//! the facts the call-graph rules consume: every call made (with the lock
//! guards held at the call site), every lock acquisition and its guard
//! scope, blocking calls (`thread::sleep`, unbounded `recv`, `join`,
//! `wait` under a lock), and panic sites (`.unwrap()`, `.expect(`, the
//! panicking macros).
//!
//! Like the lexer it feeds on, the parser is total: any token soup parses
//! to *some* `FileIr` without panicking (see `tests/parser_props.rs`).
//! Two masks carve regions out of the IR entirely:
//!
//! - `#[cfg(test)]` items (the lexer's existing test mask), and
//! - platform-negated items (`#[cfg(not(unix))]`, `#[cfg(not(target_os =
//!   "linux"))]` ...): fallback stand-ins that never run on the deployment
//!   target and would otherwise wire false edges into the call graph (the
//!   off-unix `reactor_loop` calls the sleep-polling `accept_loop`).
//!
//! Closures get a deliberate carve-out: a `|...| { ... }` block becomes a
//! *separate* anonymous function item with no incoming call edges, because
//! the code inside runs on whatever thread invokes the closure, not on the
//! thread that constructed it. This is what keeps the worker-pool handler
//! closure built inside `reactor_loop` from making the whole serving stack
//! "reachable from the reactor".

use crate::lexer::{matching_bracket, Lexed, Token, TokenKind};

/// One lock acquisition inside a function body.
#[derive(Debug, Clone)]
pub struct LockAcq {
    /// Normalized, qualified lock key (`Owner::self.field[]` for fields of
    /// `self`, `fn_name::local` for locals — see [`FnItem::locks`]).
    pub key: String,
    /// 1-based line of the acquisition.
    pub line: u32,
    /// Keys of the guards already held when this lock was taken, in
    /// acquisition order. Non-empty entries are lock-order edges.
    pub held: Vec<String>,
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct Call {
    /// The called name (`serve_ready`, `lock`, `try_query`, ...).
    pub name: String,
    /// `Foo` in `Foo::bar(...)`, `imp` in `imp::bar(...)`; `None` for bare
    /// and method calls.
    pub qualifier: Option<String>,
    /// True for `.name(...)` method syntax.
    pub method: bool,
    /// True for a direct `self.name(...)` call (resolves within the owner
    /// type first).
    pub recv_self: bool,
    /// 1-based line of the call.
    pub line: u32,
    /// Lock keys held at the call site (these propagate ordering edges
    /// into the callee's effective lock set).
    pub held: Vec<String>,
}

/// Why a call is considered blocking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockingKind {
    /// `thread::sleep(...)` / `std::thread::sleep(...)`.
    Sleep,
    /// A no-argument `.recv()` — unbounded channel wait (`try_recv` and
    /// `recv_timeout` are fine).
    RecvUnbounded,
    /// A no-argument `.join()` — waits for another thread.
    Join,
    /// A `.wait(...)` call made while a lock guard is held.
    WaitWhileLocked,
}

impl BlockingKind {
    /// Short human name for messages.
    pub fn describe(self) -> &'static str {
        match self {
            BlockingKind::Sleep => "`thread::sleep` blocks the thread",
            BlockingKind::RecvUnbounded => "unbounded `.recv()` blocks until a sender acts",
            BlockingKind::Join => "`.join()` blocks until another thread exits",
            BlockingKind::WaitWhileLocked => "`.wait(...)` called while a lock guard is held",
        }
    }
}

/// A blocking fact inside a function body.
#[derive(Debug, Clone)]
pub struct BlockingSite {
    /// What kind of blocking call this is.
    pub kind: BlockingKind,
    /// 1-based line.
    pub line: u32,
}

/// A potential panic inside a function body.
#[derive(Debug, Clone)]
pub struct PanicSite {
    /// 1-based line.
    pub line: u32,
    /// What panics (`.unwrap()`, `` `panic!` ``, ...), for messages.
    pub what: String,
}

/// One recovered function (or carved-out closure body).
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The function name; closures get `{closure@<line>}`.
    pub name: String,
    /// The `impl`/`trait` type the fn is defined on, if any.
    pub owner: Option<String>,
    /// 1-based line of the `fn` keyword (or closure opening).
    pub line: u32,
    /// True for carved-out closure bodies: they exist in the IR (their
    /// facts are real code) but receive no incoming call edges.
    pub is_closure: bool,
    /// Calls made in the body, in source order.
    pub calls: Vec<Call>,
    /// Lock acquisitions in the body, in source order.
    pub locks: Vec<LockAcq>,
    /// Blocking facts in the body.
    pub blocking: Vec<BlockingSite>,
    /// Panic facts in the body.
    pub panics: Vec<PanicSite>,
    /// Lines of `unsafe` tokens in the body.
    pub unsafe_lines: Vec<u32>,
}

impl FnItem {
    /// `Owner::name` or plain `name`, for messages.
    pub fn qualified_name(&self) -> String {
        match &self.owner {
            Some(owner) => format!("{owner}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// A `mod name { ... }` span, for module-scoped allowlists.
#[derive(Debug, Clone)]
pub struct ModSpan {
    /// The module name.
    pub name: String,
    /// First line of the module item.
    pub start_line: u32,
    /// Line of the closing brace.
    pub end_line: u32,
}

/// Everything the parser recovers from one file.
#[derive(Debug, Default)]
pub struct FileIr {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// All recovered functions, including carved-out closures.
    pub fns: Vec<FnItem>,
    /// Lines of every production (non-test, non-platform-negated)
    /// `unsafe` token, whether inside a fn or not.
    pub unsafe_lines: Vec<u32>,
    /// Lines of `// SAFETY:` comments (from the lexer).
    pub safety_lines: Vec<u32>,
    /// `mod` spans, outermost first.
    pub mods: Vec<ModSpan>,
}

/// Item keywords the body scanner must not mistake for calls.
const KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "break", "continue", "let", "fn",
    "impl", "mod", "trait", "struct", "enum", "union", "use", "pub", "unsafe", "move", "as", "in",
    "where", "const", "static", "extern", "crate", "super", "Self", "self", "dyn", "ref", "mut",
    "type", "async", "await",
];

/// Method names that belong to std types; method calls with these names
/// never resolve to workspace functions (they would wire false edges from
/// every `map.insert(...)` to an unrelated workspace `insert`). Workspace
/// functions may still *define* these names — they are only skipped as
/// resolution targets of method syntax.
pub const STD_METHODS: &[&str] = &[
    "drop",
    "clone",
    "fmt",
    "default",
    "from",
    "into",
    "len",
    "is_empty",
    "push",
    "pop",
    "insert",
    "get",
    "get_mut",
    "remove",
    "contains",
    "contains_key",
    "iter",
    "iter_mut",
    "into_iter",
    "next",
    "collect",
    "map",
    "filter",
    "find",
    "position",
    "any",
    "all",
    "fold",
    "rev",
    "zip",
    "chain",
    "and_then",
    "or_else",
    "map_or",
    "map_err",
    "ok",
    "err",
    "ok_or",
    "ok_or_else",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "is_some",
    "is_none",
    "is_ok",
    "is_err",
    "as_ref",
    "as_mut",
    "as_str",
    "as_bytes",
    "as_slice",
    "to_owned",
    "to_string",
    "to_vec",
    "split",
    "splitn",
    "trim",
    "starts_with",
    "ends_with",
    "parse",
    "push_str",
    "extend",
    "clear",
    "take",
    "replace",
    "entry",
    "or_insert",
    "or_insert_with",
    "keys",
    "values",
    "drain",
    "sort",
    "sort_by",
    "sort_by_key",
    "min",
    "max",
    "sum",
    "count",
    "last",
    "first",
    "eq",
    "ne",
    "cmp",
    "partial_cmp",
    "hash",
    "load",
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "compare_exchange",
    "lock",
    "try_lock",
    "read",
    "write",
    "recv",
    "try_recv",
    "recv_timeout",
    "send",
    "wait",
    "wait_timeout",
    "join",
    "sleep",
    "spawn",
    "abs",
    "floor",
    "ceil",
    "sqrt",
    "saturating_add",
    "saturating_sub",
    "checked_add",
    "checked_sub",
    "wrapping_add",
    "min_by_key",
    "max_by_key",
    "flush",
    "write_all",
    "write_fmt",
    "read_exact",
    "read_to_end",
    "read_to_string",
    "rem_euclid",
    "unwrap",
    "expect",
    "elapsed",
    "duration_since",
    "saturating_duration_since",
    "chunks",
    "chunks_mut",
    "windows",
    "copy_from_slice",
    "clone_from_slice",
    "to_le_bytes",
    "to_be_bytes",
    "to_ne_bytes",
    "get_or_insert_with",
    "retain",
    "truncate",
    "resize",
    "reserve",
    "is_char_boundary",
];

/// Parses one lexed file into its IR. `test_mask` is the lexer's
/// `#[cfg(test)]` mask; platform-negated regions are masked here.
pub fn parse_file(path: &str, lexed: &Lexed, test_mask: &[bool]) -> FileIr {
    let toks = &lexed.tokens;
    let negated = platform_negated_mask(toks);
    let skip: Vec<bool> =
        (0..toks.len()).map(|i| test_mask.get(i).copied().unwrap_or(false) || negated[i]).collect();
    let mut ir = FileIr {
        path: path.to_owned(),
        safety_lines: lexed.safety_lines.clone(),
        ..FileIr::default()
    };
    for (i, t) in toks.iter().enumerate() {
        if t.is_ident("unsafe") && !skip[i] {
            ir.unsafe_lines.push(t.line);
        }
    }
    let mut p = Parser { toks, skip: &skip, ir: &mut ir };
    p.items(0, toks.len(), None);
    ir
}

struct Parser<'a> {
    toks: &'a [Token],
    skip: &'a [bool],
    ir: &'a mut FileIr,
}

impl Parser<'_> {
    fn masked(&self, i: usize) -> bool {
        self.skip.get(i).copied().unwrap_or(false)
    }

    /// Walks an item-position region (file top level, `mod`/`impl` body),
    /// recovering fns and recursing into containers.
    fn items(&mut self, start: usize, end: usize, owner: Option<&str>) {
        let mut i = start;
        while i < end {
            let t = &self.toks[i];
            if self.masked(i) {
                i += 1;
                continue;
            }
            if t.is_ident("impl") || t.is_ident("trait") {
                // `impl<T> Foo<T> { ... }` / `impl Trait for Foo { ... }` /
                // `trait Name { ... }`: recover the owner type, recurse.
                let Some(open) = self.find_body_open(i + 1, end) else {
                    i += 1;
                    continue;
                };
                let close = matching_bracket(self.toks, open, "{", "}").unwrap_or(end - 1);
                let name = impl_owner(&self.toks[i + 1..open]);
                self.items(open + 1, close.min(end), name.as_deref());
                i = close.min(end) + 1;
            } else if t.is_ident("mod") {
                let name = self.toks.get(i + 1).filter(|n| n.kind == TokenKind::Ident);
                let Some(name) = name.map(|n| n.text.clone()) else {
                    i += 1;
                    continue;
                };
                match self.toks.get(i + 2) {
                    Some(b) if b.is_punct("{") => {
                        let close = matching_bracket(self.toks, i + 2, "{", "}").unwrap_or(end - 1);
                        self.ir.mods.push(ModSpan {
                            name,
                            start_line: t.line,
                            end_line: self.toks[close.min(end - 1)].line,
                        });
                        // Module fns are free fns: owner resets.
                        self.items(i + 3, close.min(end), None);
                        i = close.min(end) + 1;
                    }
                    _ => i += 2,
                }
            } else if t.is_ident("fn") {
                i = self.fn_item(i, end, owner);
            } else {
                i += 1;
            }
        }
    }

    /// First `{` from `from` that is not preceded by a `;` (an `impl`/`fn`
    /// body opener, stepping over where-clauses).
    fn find_body_open(&self, from: usize, end: usize) -> Option<usize> {
        (from..end)
            .find(|&k| self.toks[k].is_punct("{"))
            .filter(|&k| !(from..k).any(|j| self.toks[j].is_punct(";")))
    }

    /// Parses `fn name ... { body }` starting at the `fn` keyword; returns
    /// the index to resume scanning at.
    fn fn_item(&mut self, fn_idx: usize, end: usize, owner: Option<&str>) -> usize {
        let name_tok = self.toks.get(fn_idx + 1);
        let Some(name_tok) = name_tok.filter(|t| t.kind == TokenKind::Ident) else {
            return fn_idx + 1; // `fn(` pointer type or truncated stream
        };
        // Body opens at the first `{` unless a `;` ends the item first
        // (trait method / extern declaration: no body, no facts).
        let mut j = fn_idx + 2;
        while j < end && !self.toks[j].is_punct("{") && !self.toks[j].is_punct(";") {
            j += 1;
        }
        if j >= end || self.toks[j].is_punct(";") {
            return j + 1;
        }
        let close = matching_bracket(self.toks, j, "{", "}").unwrap_or(end - 1);
        let mut item = FnItem {
            name: name_tok.text.clone(),
            owner: owner.map(str::to_owned),
            line: self.toks[fn_idx].line,
            is_closure: false,
            calls: Vec::new(),
            locks: Vec::new(),
            blocking: Vec::new(),
            panics: Vec::new(),
            unsafe_lines: Vec::new(),
        };
        self.body(j + 1, close.min(end), &mut item, owner);
        self.ir.fns.push(item);
        close.min(end) + 1
    }

    /// Scans one function body for facts, carving out nested fns and
    /// block-bodied closures as separate items.
    fn body(&mut self, start: usize, end: usize, item: &mut FnItem, owner: Option<&str>) {
        let toks = self.toks;
        // Guards currently held: (lock key, brace depth at acquisition,
        // true when the guard is a statement temporary dying at `;`).
        let mut guards: Vec<(String, i64, bool)> = Vec::new();
        let mut depth: i64 = 0;
        // Inside a `let` statement (between `let` and its `;`): guards
        // acquired here are block-scoped bindings, not temporaries.
        let mut in_let: bool = false;
        let mut let_underscore = false;
        let mut i = start;
        while i < end {
            if self.masked(i) {
                i += 1;
                continue;
            }
            let t = &toks[i];
            if t.is_punct("{") {
                depth += 1;
                i += 1;
                continue;
            }
            if t.is_punct("}") {
                depth -= 1;
                guards.retain(|g| g.1 <= depth);
                i += 1;
                continue;
            }
            if t.is_punct(";") {
                guards.retain(|g| !(g.2 && g.1 == depth));
                in_let = false;
                i += 1;
                continue;
            }
            // Nested fn item: its body is separate facts.
            if t.is_ident("fn") {
                i = self.fn_item(i, end, owner);
                continue;
            }
            // Closure carve-out: `|params| { ... }` / `move || { ... }`.
            if (t.is_punct("|") || t.is_punct("||")) && closure_position(toks, i) {
                if let Some(body_open) = closure_block(toks, i, end) {
                    let close = matching_bracket(toks, body_open, "{", "}").unwrap_or(end - 1);
                    let mut closure = FnItem {
                        name: format!("{{closure@{}}}", t.line),
                        owner: None,
                        line: t.line,
                        is_closure: true,
                        calls: Vec::new(),
                        locks: Vec::new(),
                        blocking: Vec::new(),
                        panics: Vec::new(),
                        unsafe_lines: Vec::new(),
                    };
                    self.body(body_open + 1, close.min(end), &mut closure, owner);
                    self.ir.fns.push(closure);
                    i = close.min(end) + 1;
                    continue;
                }
                // Expression-bodied closure: scan inline (short, and the
                // facts still belong to whoever runs the expression).
                i += 1;
                continue;
            }
            if t.is_ident("let") {
                in_let = true;
                let_underscore = toks.get(i + 1).is_some_and(|n| n.is_ident("_"))
                    && toks.get(i + 2).is_some_and(|n| n.is_punct("="));
                i += 1;
                continue;
            }
            if t.is_ident("unsafe") {
                item.unsafe_lines.push(t.line);
                i += 1;
                continue;
            }
            // Lock acquisition: `.lock()` / `.read()` / `.write()` with
            // empty argument lists.
            let is_acq = (t.is_ident("lock") || t.is_ident("read") || t.is_ident("write"))
                && i > 0
                && toks[i - 1].is_punct(".")
                && toks.get(i + 1).is_some_and(|n| n.is_punct("("))
                && toks.get(i + 2).is_some_and(|n| n.is_punct(")"));
            if is_acq && i >= 2 {
                let (raw, _field) = crate::rules::receiver_key(toks, i - 2);
                if !raw.is_empty() {
                    let key = qualify_lock_key(&raw, owner, &item.name);
                    item.locks.push(LockAcq {
                        key: key.clone(),
                        line: t.line,
                        held: guards.iter().map(|g| g.0.clone()).collect(),
                    });
                    // A `let`-bound guard lives to the end of its block; a
                    // `let _ =` or expression temporary dies at the `;`.
                    let temporary = !in_let || let_underscore;
                    guards.push((key, depth, temporary));
                }
                i += 3;
                continue;
            }
            // Blocking facts.
            if t.is_ident("sleep")
                && i >= 2
                && toks[i - 1].is_punct("::")
                && toks[i - 2].is_ident("thread")
                && toks.get(i + 1).is_some_and(|n| n.is_punct("("))
            {
                item.blocking.push(BlockingSite { kind: BlockingKind::Sleep, line: t.line });
                i += 1;
                continue;
            }
            let empty_call = |name: &str| {
                t.is_ident(name)
                    && i > 0
                    && toks[i - 1].is_punct(".")
                    && toks.get(i + 1).is_some_and(|n| n.is_punct("("))
                    && toks.get(i + 2).is_some_and(|n| n.is_punct(")"))
            };
            if empty_call("recv") {
                item.blocking
                    .push(BlockingSite { kind: BlockingKind::RecvUnbounded, line: t.line });
                i += 1;
                continue;
            }
            if empty_call("join") {
                item.blocking.push(BlockingSite { kind: BlockingKind::Join, line: t.line });
                i += 1;
                continue;
            }
            if t.is_ident("wait")
                && i > 0
                && toks[i - 1].is_punct(".")
                && toks.get(i + 1).is_some_and(|n| n.is_punct("("))
                && !guards.is_empty()
            {
                item.blocking
                    .push(BlockingSite { kind: BlockingKind::WaitWhileLocked, line: t.line });
                i += 1;
                continue;
            }
            // Panic facts: exact `.unwrap()` / `.expect(` methods plus the
            // always-panicking macros.
            let panicking_method = (t.is_ident("unwrap") || t.is_ident("expect"))
                && i > 0
                && toks[i - 1].is_punct(".")
                && toks.get(i + 1).is_some_and(|n| n.is_punct("("));
            if panicking_method {
                item.panics.push(PanicSite { line: t.line, what: format!("`.{}(...)`", t.text) });
                i += 1;
                continue;
            }
            if crate::rules::PANIC_MACROS.contains(&t.text.as_str())
                && toks.get(i + 1).is_some_and(|n| n.is_punct("!"))
            {
                item.panics.push(PanicSite { line: t.line, what: format!("`{}!`", t.text) });
                i += 2;
                continue;
            }
            // Calls: `name(...)` where name is not a keyword or macro.
            if t.kind == TokenKind::Ident
                && toks.get(i + 1).is_some_and(|n| n.is_punct("("))
                && !KEYWORDS.contains(&t.text.as_str())
                && t.text != "drop"
            {
                let method = i > 0 && toks[i - 1].is_punct(".");
                let qualifier = (!method
                    && i >= 2
                    && toks[i - 1].is_punct("::")
                    && toks[i - 2].kind == TokenKind::Ident)
                    .then(|| toks[i - 2].text.clone());
                let recv_self = method && i >= 2 && toks[i - 2].is_ident("self");
                item.calls.push(Call {
                    name: t.text.clone(),
                    qualifier,
                    method,
                    recv_self,
                    line: t.line,
                    held: guards.iter().map(|g| g.0.clone()).collect(),
                });
                i += 1;
                continue;
            }
            i += 1;
        }
    }
}

/// Owner type of an `impl`/`trait` header (tokens between the keyword and
/// the body `{`): the ident after `for` if present, else the first ident
/// outside a generic parameter list.
fn impl_owner(header: &[Token]) -> Option<String> {
    let mut angle: i64 = 0;
    let mut fallback: Option<String> = None;
    let mut after_for = false;
    for t in header {
        match t.text.as_str() {
            "<" => angle += 1,
            ">" => angle -= 1,
            "<<" => angle += 2,
            ">>" => angle -= 2,
            _ => {}
        }
        if t.kind == TokenKind::Ident && angle <= 0 {
            if after_for {
                return Some(t.text.clone());
            }
            if t.is_ident("for") {
                after_for = true;
            } else if fallback.is_none() && t.text != "dyn" {
                fallback = Some(t.text.clone());
            }
        }
    }
    fallback
}

/// True if the `|` at `i` opens a closure rather than a binary-or: it must
/// follow a token that can only precede an expression.
fn closure_position(toks: &[Token], i: usize) -> bool {
    if i == 0 {
        return false;
    }
    let p = &toks[i - 1];
    p.is_ident("move")
        || p.is_ident("return")
        || p.is_punct("(")
        || p.is_punct(",")
        || p.is_punct("=")
        || p.is_punct("{")
        || p.is_punct(";")
        || p.is_punct(":")
        || p.is_punct("=>")
        || p.is_punct("&&")
        || p.is_punct("||")
}

/// For a closure opening at `i`, finds its block body: returns the index
/// of the opening brace when the closure body is a `{ ... }` block, `None`
/// for expression-bodied closures (scanned inline).
fn closure_block(toks: &[Token], i: usize, end: usize) -> Option<usize> {
    // Find the closing `|` of the parameter list.
    let params_end = if toks[i].is_punct("||") {
        i
    } else {
        let mut j = i + 1;
        loop {
            if j >= end {
                return None;
            }
            if toks[j].is_punct("|") {
                break j;
            }
            if toks[j].is_punct("{") || toks[j].is_punct(";") {
                return None; // not a closure after all
            }
            j += 1;
        }
    };
    // Optional `-> Type` before the block.
    let mut k = params_end + 1;
    if toks.get(k).is_some_and(|t| t.is_punct("->")) {
        while k < end && !toks[k].is_punct("{") {
            if toks[k].is_punct(";") {
                return None;
            }
            k += 1;
        }
    }
    toks.get(k).filter(|t| t.is_punct("{")).map(|_| k)
}

/// Qualifies a raw receiver key: `self.*` keys attach to the owner type
/// (shared across every method of the type), everything else is local to
/// the function.
fn qualify_lock_key(raw: &str, owner: Option<&str>, fn_name: &str) -> String {
    if raw == "self" || raw.starts_with("self.") {
        format!("{}::{raw}", owner.unwrap_or(fn_name))
    } else {
        format!("{fn_name}::{raw}")
    }
}

/// Masks items behind platform-negated cfgs (`#[cfg(not(unix))]`, `#[cfg(
/// not(target_os = "linux"))]`): dead code on the deployment target that
/// must not contribute call-graph edges. `cfg(not(test))` and friends are
/// deliberately NOT masked — only negations naming a platform.
pub fn platform_negated_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].is_punct("#") && tokens.get(i + 1).is_some_and(|t| t.is_punct("[")) {
            let Some(close) = matching_bracket(tokens, i + 1, "[", "]") else { break };
            if attr_is_platform_negated(&tokens[i + 2..close]) {
                // Skip further attributes, then mask to the item's block end.
                let mut j = close + 1;
                while j < tokens.len()
                    && tokens[j].is_punct("#")
                    && tokens.get(j + 1).is_some_and(|t| t.is_punct("["))
                {
                    match matching_bracket(tokens, j + 1, "[", "]") {
                        Some(c) => j = c + 1,
                        None => return mask,
                    }
                }
                let open = (j..tokens.len()).find(|&k| tokens[k].is_punct("{"));
                if let Some(open) = open {
                    let end = matching_bracket(tokens, open, "{", "}").unwrap_or(tokens.len() - 1);
                    for flag in mask.iter_mut().take(end + 1).skip(i) {
                        *flag = true;
                    }
                    i = end + 1;
                    continue;
                }
            }
            i = close + 1;
            continue;
        }
        i += 1;
    }
    mask
}

/// True for attrs like `cfg(not(unix))`: a `cfg` whose tokens contain
/// `not` alongside a platform name.
fn attr_is_platform_negated(attr: &[Token]) -> bool {
    const PLATFORMS: &[&str] = &["unix", "windows", "linux", "macos", "target_os", "target_arch"];
    attr.first().is_some_and(|t| t.is_ident("cfg"))
        && attr.iter().any(|t| t.is_ident("not"))
        && attr.iter().any(|t| {
            PLATFORMS.contains(&t.text.as_str())
                || (t.kind == TokenKind::Str && PLATFORMS.iter().any(|p| t.text.contains(p)))
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{lex, test_code_mask};

    fn parse(src: &str) -> FileIr {
        let lexed = lex(src);
        let mask = test_code_mask(&lexed.tokens);
        parse_file("test.rs", &lexed, &mask)
    }

    #[test]
    fn recovers_fns_with_impl_owner() {
        let ir = parse("impl Foo { fn a(&self) {} }\nfn free() {}\nimpl X for Bar { fn b() {} }");
        let names: Vec<String> = ir.fns.iter().map(FnItem::qualified_name).collect();
        assert_eq!(names, vec!["Foo::a", "free", "Bar::b"]);
    }

    #[test]
    fn records_calls_with_held_locks() {
        let ir = parse(
            "impl S { fn f(&self) { let g = self.m.lock(); helper(); } fn g(&self) { other(); } }",
        );
        let f = &ir.fns[0];
        assert_eq!(f.locks.len(), 1);
        assert_eq!(f.locks[0].key, "S::self.m");
        let call = f.calls.iter().find(|c| c.name == "helper").unwrap();
        assert_eq!(call.held, vec!["S::self.m"]);
        let g = &ir.fns[1];
        assert!(g.calls.iter().find(|c| c.name == "other").unwrap().held.is_empty());
    }

    #[test]
    fn statement_temporary_guard_dies_at_semicolon() {
        let ir = parse("fn f(m: M) { m.lock().bump(); after(); }");
        let f = &ir.fns[0];
        let after = f.calls.iter().find(|c| c.name == "after").unwrap();
        assert!(after.held.is_empty(), "temporary guard must not survive its statement");
    }

    #[test]
    fn closures_are_carved_out() {
        let ir = parse("fn f() { run(move |x| { x.unwrap(); }); tail(); }");
        let f = ir.fns.iter().find(|f| f.name == "f").unwrap();
        assert!(f.panics.is_empty(), "closure panic must not attach to the builder fn");
        assert!(f.calls.iter().any(|c| c.name == "tail"));
        let closure = ir.fns.iter().find(|f| f.is_closure).unwrap();
        assert_eq!(closure.panics.len(), 1);
    }

    #[test]
    fn platform_negated_items_are_invisible() {
        let src = "#[cfg(not(unix))]\nfn fallback() { std::thread::sleep(d); }\nfn real() {}";
        let ir = parse(src);
        assert!(ir.fns.iter().all(|f| f.name != "fallback"));
        assert!(ir.fns.iter().any(|f| f.name == "real"));
    }

    #[test]
    fn blocking_and_panic_facts_are_recorded() {
        let ir = parse(
            "fn f(rx: R, h: H) { std::thread::sleep(d); let v = rx.recv(); h.join(); x.expect(\"m\"); panic!(\"no\"); }",
        );
        let f = &ir.fns[0];
        let kinds: Vec<BlockingKind> = f.blocking.iter().map(|b| b.kind).collect();
        assert_eq!(
            kinds,
            vec![BlockingKind::Sleep, BlockingKind::RecvUnbounded, BlockingKind::Join]
        );
        assert_eq!(f.panics.len(), 2);
    }

    #[test]
    fn wait_is_blocking_only_under_a_guard() {
        let free = parse("fn f(p: P) { p.wait(e); }");
        assert!(free.fns[0].blocking.is_empty());
        let held = parse("fn f(&self, p: P) { let g = self.m.lock(); p.wait(e); }");
        assert_eq!(held.fns[0].blocking.len(), 1);
        assert_eq!(held.fns[0].blocking[0].kind, BlockingKind::WaitWhileLocked);
    }

    #[test]
    fn mod_spans_and_unsafe_lines() {
        let src = "mod sys {\n fn f() {\n // SAFETY: fine\n unsafe { x() }\n }\n}";
        let ir = parse(src);
        assert_eq!(ir.mods.len(), 1);
        assert_eq!(ir.mods[0].name, "sys");
        assert_eq!(ir.unsafe_lines, vec![4]);
        assert_eq!(ir.safety_lines, vec![3]);
    }
}
