//! # cc-lint — the workspace invariant checker
//!
//! Every headline bugfix this codebase has shipped was an instance of a
//! mechanically-detectable pattern: the saturating-add that turned connected
//! pairs into the ∞ sentinel (PR 2), the cache's check-then-insert
//! double-lock race (PR 2), the queue-depth gauge racing its own decrement
//! (PR 6). cc-lint encodes those invariants as named, individually
//! suppressible rules over a hand-rolled token stream (no `syn`; the build
//! image has no registry access) so the next occurrence fails CI instead of
//! shipping.
//!
//! See `docs/LINTS.md` for the rule catalog and
//! `crates/lint/fixtures/` for the known-bad corpus each rule is proven
//! against (including the literal pre-fix PR 2 and PR 6 code).
//!
//! Unsafe code is forbidden (`#![forbid(unsafe_code)]`), as across the
//! whole workspace.

#![forbid(unsafe_code)]

pub mod findings;
pub mod lexer;
pub mod rules;
pub mod walk;

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use findings::{Finding, Report, Severity, UsedAllow};
use lexer::{lex, test_code_mask, Allow};
use rules::{FileContext, Rule};

/// Name of the built-in rule that polices allow-comments themselves.
pub const ALLOW_HYGIENE: &str = "allow_hygiene";

/// Per-rule severity configuration (default: everything denies).
#[derive(Debug, Default, Clone)]
pub struct Config {
    overrides: BTreeMap<String, Severity>,
}

impl Config {
    /// Everything at deny — the CI posture.
    pub fn deny_all() -> Config {
        Config::default()
    }

    /// Sets one rule (or `"all"`) to the given severity.
    pub fn set(&mut self, rule: &str, severity: Severity) {
        self.overrides.insert(rule.to_owned(), severity);
    }

    /// Effective severity for a rule.
    pub fn severity(&self, rule: &str) -> Severity {
        self.overrides
            .get(rule)
            .or_else(|| self.overrides.get("all"))
            .copied()
            .unwrap_or(Severity::Deny)
    }
}

/// True if `name` is a known rule name (including the allow-hygiene rule).
pub fn known_rule(name: &str) -> bool {
    name == ALLOW_HYGIENE || rules::all_rules().iter().any(|r| r.name() == name)
}

/// Lints a set of workspace-relative files under `root`.
///
/// `only` restricts the registry to one rule and ignores its path scoping —
/// the fixture runner uses this to point a single rule at a bad snippet.
pub fn lint_paths(root: &Path, files: &[PathBuf], config: &Config, only: Option<&str>) -> Report {
    let registry = rules::all_rules();
    let mut report = Report::default();
    for rel in files {
        let Ok(src) = walk::read_source(root, rel) else {
            continue;
        };
        let path = rel.to_string_lossy().into_owned();
        report.files_checked += 1;
        lint_source(&path, &src, &registry, config, only, &mut report);
    }
    report
}

/// Lints one in-memory source file and appends into `report`.
pub fn lint_source(
    path: &str,
    src: &str,
    registry: &[Box<dyn Rule>],
    config: &Config,
    only: Option<&str>,
    report: &mut Report,
) {
    let lexed = lex(src);
    let mask = test_code_mask(&lexed.tokens);
    let ctx = FileContext { path, tokens: &lexed.tokens, test_mask: &mask };

    let mut raw: Vec<Finding> = Vec::new();
    for rule in registry {
        let in_scope = match only {
            Some(name) => rule.name() == name, // forced scope for fixtures
            None => rule.applies_to(path),
        };
        if !in_scope {
            continue;
        }
        for f in rule.check(&ctx) {
            raw.push(Finding {
                rule: rule.name(),
                file: path.to_owned(),
                line: f.line,
                message: f.message,
                severity: config.severity(rule.name()),
            });
        }
    }

    // Apply allow-comments: a well-formed allow suppresses listed rules on
    // its own line and the next (trailing or standalone-above placement).
    let mut suppressed = vec![0usize; lexed.allows.len()];
    raw.retain(|f| {
        for (ai, a) in lexed.allows.iter().enumerate() {
            let covers_line = f.line == a.line || f.line == a.line + 1;
            if a.well_formed && covers_line && a.rules.iter().any(|r| r == f.rule) {
                suppressed[ai] += 1;
                return false;
            }
        }
        true
    });
    report.findings.extend(raw);

    // The allow-hygiene rule: every cc-lint comment must be well-formed,
    // name known rules, and state a reason.
    for (ai, a) in lexed.allows.iter().enumerate() {
        if let Some(problem) = allow_problem(a) {
            report.findings.push(Finding {
                rule: ALLOW_HYGIENE,
                file: path.to_owned(),
                line: a.line,
                message: problem,
                severity: config.severity(ALLOW_HYGIENE),
            });
        } else {
            report.allows.push(UsedAllow {
                file: path.to_owned(),
                line: a.line,
                rules: a.rules.clone(),
                reason: a.reason.clone().unwrap_or_default(),
                suppressed: suppressed[ai],
            });
        }
    }
}

/// Why an allow-comment is unacceptable, if it is.
fn allow_problem(a: &Allow) -> Option<String> {
    if !a.well_formed {
        return Some(
            "malformed cc-lint comment; expected `// cc-lint: allow(rule, ...) -- reason`"
                .to_owned(),
        );
    }
    if let Some(unknown) = a.rules.iter().find(|r| !known_rule(r)) {
        return Some(format!("allow names unknown rule `{unknown}`"));
    }
    if a.reason.is_none() {
        return Some("allow-comment without a reason; append `-- <why this is safe>`".to_owned());
    }
    None
}

/// Runs every rule against its fixture corpus under `fixtures_dir`.
///
/// Layout: `fixtures/<rule>/bad_*.rs` must each produce at least one
/// `<rule>` finding; `fixtures/<rule>/good_*.rs` must produce none. Returns
/// a log plus overall success — the gate that tests the gate.
pub fn check_fixtures(fixtures_dir: &Path) -> (String, bool) {
    let mut log = String::new();
    let mut ok = true;
    let mut cases = 0usize;
    let mut dirs: Vec<PathBuf> = std::fs::read_dir(fixtures_dir)
        .map(|rd| rd.flatten().map(|e| e.path()).filter(|p| p.is_dir()).collect())
        .unwrap_or_default();
    dirs.sort();
    let registry = rules::all_rules();
    for dir in dirs {
        let rule = dir.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default();
        if !known_rule(&rule) {
            log.push_str(&format!("FAIL {rule}: fixture dir names no known rule\n"));
            ok = false;
            continue;
        }
        let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
            .map(|rd| {
                rd.flatten()
                    .map(|e| e.path())
                    .filter(|p| p.extension().is_some_and(|e| e == "rs"))
                    .collect()
            })
            .unwrap_or_default();
        files.sort();
        for file in files {
            let name =
                file.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default();
            let Ok(bytes) = std::fs::read(&file) else {
                log.push_str(&format!("FAIL {rule}/{name}: unreadable\n"));
                ok = false;
                continue;
            };
            let src = String::from_utf8_lossy(&bytes);
            let mut report = Report::default();
            // Force exactly this rule; allow_hygiene always runs.
            let only = (rule != ALLOW_HYGIENE).then_some(rule.as_str());
            lint_source(&name, &src, &registry, &Config::deny_all(), only, &mut report);
            let hits = report.findings.iter().filter(|f| f.rule == rule).count();
            let want_bad = name.starts_with("bad_");
            let pass = if want_bad { hits > 0 } else { hits == 0 };
            cases += 1;
            if pass {
                log.push_str(&format!("ok   {rule}/{name} ({hits} findings)\n"));
            } else {
                ok = false;
                log.push_str(&format!(
                    "FAIL {rule}/{name}: expected {} findings, got {hits}\n",
                    if want_bad { "\u{2265}1" } else { "0" }
                ));
                for f in report.findings.iter().filter(|f| f.rule == rule) {
                    log.push_str(&format!("     {}:{} {}\n", f.file, f.line, f.message));
                }
            }
        }
    }
    log.push_str(&format!(
        "cc-lint fixtures: {cases} cases, {}\n",
        if ok { "all passed" } else { "FAILURES" }
    ));
    (log, ok)
}
