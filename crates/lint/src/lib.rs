//! # cc-lint — the workspace invariant checker
//!
//! Every headline bugfix this codebase has shipped was an instance of a
//! mechanically-detectable pattern: the saturating-add that turned connected
//! pairs into the ∞ sentinel (PR 2), the cache's check-then-insert
//! double-lock race (PR 2), the queue-depth gauge racing its own decrement
//! (PR 6), the reactor thread sleeping through an overloaded accept (PR 9).
//! cc-lint encodes those invariants as named, individually suppressible
//! rules (no `syn`; the build image has no registry access) so the next
//! occurrence fails CI instead of shipping.
//!
//! Two analysis tiers share one lexer:
//!
//! - **Token rules** ([`rules::Rule`]) see one file's token stream at a
//!   time — pattern bans like `distance_arith` or `no_panic`.
//! - **Workspace rules** ([`rules::WorkspaceRule`]) run over the whole
//!   workspace IR: the parser ([`parser`]) recovers items and per-function
//!   facts, the graph layer ([`graph`]) resolves calls, and the rules walk
//!   reachability and lock order across function boundaries
//!   (`lock_order`, `reactor_blocking`, `unsafe_audit`, `panic_path`).
//!
//! See `docs/LINTS.md` for the catalog and `crates/lint/fixtures/` for the
//! known-bad corpus each rule is proven against.
//!
//! Unsafe code is forbidden (`#![forbid(unsafe_code)]`) — the checker
//! practices what `unsafe_audit` preaches.

#![forbid(unsafe_code)]

pub mod findings;
pub mod graph;
pub mod lexer;
pub mod parser;
pub mod rules;
pub mod walk;

use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

use findings::{Finding, Report, Severity, UsedAllow};
use graph::WorkspaceIr;
use lexer::{lex, test_code_mask, Allow, Lexed};
use rules::{FileContext, Rule};

/// Name of the built-in rule that polices allow-comments themselves.
pub const ALLOW_HYGIENE: &str = "allow_hygiene";

/// Per-rule severity configuration (default: everything denies).
#[derive(Debug, Default, Clone)]
pub struct Config {
    overrides: BTreeMap<String, Severity>,
}

impl Config {
    /// Everything at deny — the CI posture.
    pub fn deny_all() -> Config {
        Config::default()
    }

    /// Sets one rule (or `"all"`) to the given severity.
    pub fn set(&mut self, rule: &str, severity: Severity) {
        self.overrides.insert(rule.to_owned(), severity);
    }

    /// Effective severity for a rule.
    pub fn severity(&self, rule: &str) -> Severity {
        self.overrides
            .get(rule)
            .or_else(|| self.overrides.get("all"))
            .copied()
            .unwrap_or(Severity::Deny)
    }
}

/// True if `name` is a known rule name (token, workspace, or hygiene).
pub fn known_rule(name: &str) -> bool {
    name == ALLOW_HYGIENE
        || rules::all_rules().iter().any(|r| r.name() == name)
        || rules::workspace_rules().iter().any(|r| r.name() == name)
}

/// How a workspace lint run is scoped.
#[derive(Debug, Default)]
pub struct LintOptions {
    /// When set, only findings anchored in these files are reported (the
    /// `--changed-only` / explicit-path modes). The workspace IR is still
    /// built from every file passed in, so call-graph rules see the whole
    /// picture and only the *reporting* is narrowed.
    pub report_files: Option<BTreeSet<String>>,
    /// Flag well-formed allow-comments that suppressed nothing this run.
    /// Only meaningful on full-workspace runs — a narrowed run cannot
    /// know whether an allow is globally unused.
    pub enforce_unused_allows: bool,
}

/// Lints a set of workspace-relative files under `root`: token rules per
/// file, then the workspace rules over the assembled IR of *all* files.
pub fn lint_workspace(
    root: &Path,
    files: &[PathBuf],
    config: &Config,
    opts: &LintOptions,
) -> Report {
    let registry = rules::all_rules();
    let mut report = Report::default();
    let in_scope = |path: &str| opts.report_files.as_ref().is_none_or(|s| s.contains(path));

    // Lex every file once; token rules only on in-scope files.
    let mut preps: Vec<(String, Lexed, Vec<bool>)> = Vec::new();
    let mut raw: Vec<Finding> = Vec::new();
    for rel in files {
        let Ok(src) = walk::read_source(root, rel) else {
            continue;
        };
        let path = rel.to_string_lossy().into_owned();
        let lexed = lex(&src);
        let mask = test_code_mask(&lexed.tokens);
        if in_scope(&path) {
            report.files_checked += 1;
            let ctx = FileContext { path: &path, tokens: &lexed.tokens, test_mask: &mask };
            for rule in &registry {
                if !rule.applies_to(&path) {
                    continue;
                }
                for f in rule.check(&ctx) {
                    raw.push(Finding {
                        rule: rule.name(),
                        file: path.clone(),
                        line: f.line,
                        message: f.message,
                        severity: config.severity(rule.name()),
                    });
                }
            }
        }
        preps.push((path, lexed, mask));
    }

    // Workspace pass: parse everything, assemble the graph, run the
    // call-graph rules, narrow the *reporting* to in-scope files.
    let irs: Vec<parser::FileIr> =
        preps.iter().map(|(path, lexed, mask)| parser::parse_file(path, lexed, mask)).collect();
    let ws = WorkspaceIr::build(irs);
    for rule in rules::workspace_rules() {
        for f in rule.check(&ws) {
            if in_scope(&f.file) {
                raw.push(Finding {
                    rule: rule.name(),
                    file: f.file,
                    line: f.line,
                    message: f.message,
                    severity: config.severity(rule.name()),
                });
            }
        }
    }

    let allows: Vec<(String, Vec<Allow>)> =
        preps.into_iter().map(|(path, lexed, _)| (path, lexed.allows)).collect();
    settle(raw, &allows, config, opts.enforce_unused_allows, &in_scope, &mut report);
    report
}

/// True if an allow listing `allowed` suppresses a finding for `rule`.
/// `panic_path` honors `no_panic` allows: a justified panic site needs one
/// comment, not one per analysis tier.
fn allow_covers(allowed: &[String], rule: &str) -> bool {
    allowed.iter().any(|a| a == rule)
        || (rule == "panic_path" && allowed.iter().any(|a| a == "no_panic"))
}

/// Applies allow-comments to raw findings, then reports allow hygiene:
/// malformed/unknown/reasonless allows always, unused allows when
/// `enforce_unused` (with the file:line span, so they are removable
/// one-click).
fn settle(
    mut raw: Vec<Finding>,
    allows: &[(String, Vec<Allow>)],
    config: &Config,
    enforce_unused: bool,
    in_scope: &dyn Fn(&str) -> bool,
    report: &mut Report,
) {
    let mut suppressed: BTreeMap<(usize, usize), usize> = BTreeMap::new();
    raw.retain(|f| {
        for (fi, (path, file_allows)) in allows.iter().enumerate() {
            if *path != f.file {
                continue;
            }
            for (ai, a) in file_allows.iter().enumerate() {
                let covers_line = f.line == a.line || f.line == a.line + 1;
                if a.well_formed && covers_line && allow_covers(&a.rules, f.rule) {
                    *suppressed.entry((fi, ai)).or_default() += 1;
                    return false;
                }
            }
        }
        true
    });
    report.findings.extend(raw);

    for (fi, (path, file_allows)) in allows.iter().enumerate() {
        if !in_scope(path) {
            continue;
        }
        for (ai, a) in file_allows.iter().enumerate() {
            if let Some(problem) = allow_problem(a) {
                report.findings.push(Finding {
                    rule: ALLOW_HYGIENE,
                    file: path.clone(),
                    line: a.line,
                    message: problem,
                    severity: config.severity(ALLOW_HYGIENE),
                });
                continue;
            }
            let count = suppressed.get(&(fi, ai)).copied().unwrap_or(0);
            if enforce_unused && count == 0 {
                report.findings.push(Finding {
                    rule: ALLOW_HYGIENE,
                    file: path.clone(),
                    line: a.line,
                    message: format!(
                        "unused allow({}) at {path}:{} — it suppressed nothing this run; \
                         delete the comment",
                        a.rules.join(", "),
                        a.line
                    ),
                    severity: config.severity(ALLOW_HYGIENE),
                });
            }
            report.allows.push(UsedAllow {
                file: path.clone(),
                line: a.line,
                rules: a.rules.clone(),
                reason: a.reason.clone().unwrap_or_default(),
                suppressed: count,
            });
        }
    }
}

/// Lints one in-memory source file with the token rules and appends into
/// `report`. `only` restricts the registry to one rule and ignores its
/// path scoping — the fixture runner uses this to point a single rule at
/// a bad snippet. Workspace rules do not run here; see
/// [`lint_source_workspace`].
pub fn lint_source(
    path: &str,
    src: &str,
    registry: &[Box<dyn Rule>],
    config: &Config,
    only: Option<&str>,
    report: &mut Report,
) {
    lint_source_opts(path, src, registry, config, only, false, report);
}

/// [`lint_source`] plus unused-allow enforcement (the allow-hygiene
/// fixture corpus exercises it).
fn lint_source_opts(
    path: &str,
    src: &str,
    registry: &[Box<dyn Rule>],
    config: &Config,
    only: Option<&str>,
    enforce_unused: bool,
    report: &mut Report,
) {
    let lexed = lex(src);
    let mask = test_code_mask(&lexed.tokens);
    let ctx = FileContext { path, tokens: &lexed.tokens, test_mask: &mask };

    let mut raw: Vec<Finding> = Vec::new();
    for rule in registry {
        let in_scope = match only {
            Some(name) => rule.name() == name, // forced scope for fixtures
            None => rule.applies_to(path),
        };
        if !in_scope {
            continue;
        }
        for f in rule.check(&ctx) {
            raw.push(Finding {
                rule: rule.name(),
                file: path.to_owned(),
                line: f.line,
                message: f.message,
                severity: config.severity(rule.name()),
            });
        }
    }
    let allows = vec![(path.to_owned(), lexed.allows)];
    settle(raw, &allows, config, enforce_unused, &|_| true, report);
}

/// Runs one workspace rule against a single in-memory file (fixture
/// mode): the file parses into a one-file workspace IR, so call-graph
/// rules exercise their whole pipeline on a minimized corpus entry.
pub fn lint_source_workspace(
    path: &str,
    src: &str,
    rule_name: &str,
    config: &Config,
    report: &mut Report,
) {
    let lexed = lex(src);
    let mask = test_code_mask(&lexed.tokens);
    let ir = parser::parse_file(path, &lexed, &mask);
    let ws = WorkspaceIr::build(vec![ir]);
    let mut raw: Vec<Finding> = Vec::new();
    for rule in rules::workspace_rules() {
        if rule.name() != rule_name {
            continue;
        }
        for f in rule.check(&ws) {
            raw.push(Finding {
                rule: rule.name(),
                file: f.file,
                line: f.line,
                message: f.message,
                severity: config.severity(rule.name()),
            });
        }
    }
    let allows = vec![(path.to_owned(), lexed.allows)];
    settle(raw, &allows, config, false, &|_| true, report);
}

/// Why an allow-comment is unacceptable, if it is.
fn allow_problem(a: &Allow) -> Option<String> {
    if !a.well_formed {
        return Some(
            "malformed cc-lint comment; expected `// cc-lint: allow(rule, ...) -- reason`"
                .to_owned(),
        );
    }
    if let Some(unknown) = a.rules.iter().find(|r| !known_rule(r)) {
        return Some(format!("allow names unknown rule `{unknown}`"));
    }
    if a.reason.is_none() {
        return Some("allow-comment without a reason; append `-- <why this is safe>`".to_owned());
    }
    None
}

/// A fixture may point path-scoped rules at a real workspace location via
/// a magic first comment: `// cc-lint-fixture-path: crates/...`.
fn fixture_path_override(src: &str) -> Option<String> {
    src.lines()
        .find_map(|l| l.trim().strip_prefix("// cc-lint-fixture-path:"))
        .map(|s| s.trim().to_owned())
        .filter(|s| !s.is_empty())
}

/// Runs every rule against its fixture corpus under `fixtures_dir`.
///
/// Layout: `fixtures/<rule>/bad_*.rs` must each produce at least one
/// `<rule>` finding; `fixtures/<rule>/good_*.rs` must produce none.
/// Workspace-rule directories run through the parser/IR pipeline; a
/// `// cc-lint-fixture-path:` comment lets a fixture impersonate a real
/// workspace path for path-scoped rules (serving roots, the unsafe
/// allowlist). Returns a log plus overall success — the gate that tests
/// the gate.
pub fn check_fixtures(fixtures_dir: &Path) -> (String, bool) {
    let mut log = String::new();
    let mut ok = true;
    let mut cases = 0usize;
    let mut dirs: Vec<PathBuf> = std::fs::read_dir(fixtures_dir)
        .map(|rd| rd.flatten().map(|e| e.path()).filter(|p| p.is_dir()).collect())
        .unwrap_or_default();
    dirs.sort();
    let registry = rules::all_rules();
    let ws_rules: Vec<&'static str> = rules::workspace_rules().iter().map(|r| r.name()).collect();
    for dir in dirs {
        let rule = dir.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default();
        if !known_rule(&rule) {
            log.push_str(&format!("FAIL {rule}: fixture dir names no known rule\n"));
            ok = false;
            continue;
        }
        let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
            .map(|rd| {
                rd.flatten()
                    .map(|e| e.path())
                    .filter(|p| p.extension().is_some_and(|e| e == "rs"))
                    .collect()
            })
            .unwrap_or_default();
        files.sort();
        for file in files {
            let name =
                file.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default();
            let Ok(bytes) = std::fs::read(&file) else {
                log.push_str(&format!("FAIL {rule}/{name}: unreadable\n"));
                ok = false;
                continue;
            };
            let src = String::from_utf8_lossy(&bytes);
            let path = fixture_path_override(&src).unwrap_or_else(|| name.clone());
            let mut report = Report::default();
            if ws_rules.contains(&rule.as_str()) {
                lint_source_workspace(&path, &src, &rule, &Config::deny_all(), &mut report);
            } else {
                // Force exactly this rule; allow_hygiene always runs (and,
                // in its own corpus, also enforces unused allows).
                let only = (rule != ALLOW_HYGIENE).then_some(rule.as_str());
                let enforce_unused = rule == ALLOW_HYGIENE;
                lint_source_opts(
                    &path,
                    &src,
                    &registry,
                    &Config::deny_all(),
                    only,
                    enforce_unused,
                    &mut report,
                );
            }
            let hits = report.findings.iter().filter(|f| f.rule == rule).count();
            let want_bad = name.starts_with("bad_");
            let pass = if want_bad { hits > 0 } else { hits == 0 };
            cases += 1;
            if pass {
                log.push_str(&format!("ok   {rule}/{name} ({hits} findings)\n"));
            } else {
                ok = false;
                log.push_str(&format!(
                    "FAIL {rule}/{name}: expected {} findings, got {hits}\n",
                    if want_bad { "\u{2265}1" } else { "0" }
                ));
                for f in report.findings.iter().filter(|f| f.rule == rule) {
                    log.push_str(&format!("     {}:{} {}\n", f.file, f.line, f.message));
                }
            }
        }
    }
    log.push_str(&format!(
        "cc-lint fixtures: {cases} cases, {}\n",
        if ok { "all passed" } else { "FAILURES" }
    ));
    (log, ok)
}
