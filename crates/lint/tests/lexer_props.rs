//! Property tests for the lexer and the rule pipeline.
//!
//! The lexer is the one component every rule trusts; these pin the two
//! properties the tool's soundness rests on: it never panics, whatever
//! bytes it is fed, and rule-looking text *inside* strings and comments
//! never produces findings.

use cc_lint::findings::Report;
use cc_lint::lexer::{lex, test_code_mask};
use cc_lint::{lint_source, rules, Config};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn lexing_arbitrary_bytes_never_panics(
        bytes in prop::collection::vec(0u16..256, 0usize..400),
    ) {
        let bytes: Vec<u8> = bytes.into_iter().map(|b| b as u8).collect();
        let src = String::from_utf8_lossy(&bytes).into_owned();
        let lexed = lex(&src);
        // The mask pass walks the same stream; it must be total too.
        let _ = test_code_mask(&lexed.tokens);
    }

    #[test]
    fn lexing_rust_flavored_soup_never_panics(
        picks in prop::collection::vec(0usize..16, 0usize..60),
    ) {
        // Adversarial fragments: quote states, raw-string fences, escapes.
        const FRAGMENTS: &[&str] = &[
            "\"", "r#\"", "\"#", "'", "\\", "//", "/*", "*/", "b\"",
            "u64::MAX", ".unwrap()", "fn f() {", "}", "'a", "'x'", "\n",
        ];
        let src: String = picks.iter().map(|&i| FRAGMENTS[i]).collect();
        let lexed = lex(&src);
        let _ = test_code_mask(&lexed.tokens);
    }

    #[test]
    fn rule_text_inside_strings_and_comments_is_invisible(
        which in 0usize..6,
        quoted in 0usize..2,
    ) {
        // Each payload would fire a rule if it were code; entombed in a
        // string literal or a comment it must produce zero findings.
        const PAYLOADS: &[&str] = &[
            "x.unwrap()",
            "d == u64::MAX",
            "a.saturating_add(b)",
            "Ordering::Relaxed",
            "Instant::now()",
            "m.lock() m.lock()",
        ];
        let payload = PAYLOADS[which];
        let src = if quoted == 0 {
            format!("fn f() {{ let s = \"{payload}\"; use_it(s); }}\n")
        } else {
            format!("fn f() {{ // {payload}\n    use_it();\n}}\n")
        };
        let registry = rules::all_rules();
        let mut report = Report::default();
        // Force every rule in turn so path scoping can't mask a leak.
        for rule in &registry {
            lint_source(
                "crates/oracle/src/oracle.rs",
                &src,
                &registry,
                &Config::deny_all(),
                Some(rule.name()),
                &mut report,
            );
        }
        prop_assert_eq!(report.findings.len(), 0, "findings from literal text: {:?}", report.findings);
    }
}

#[test]
fn tokens_reconstruct_known_kernel_shapes() {
    // A smoke check that the real fixed kernel shape lexes the way the
    // distance rule expects: checked_add present, no banned method tokens.
    let src = "let via = to_landmark.checked_add(col).map_or(MAX, |s| s.min(MAX));";
    let lexed = lex(src);
    assert!(lexed.tokens.iter().any(|t| t.is_ident("checked_add")));
    assert!(!lexed.tokens.iter().any(|t| t.is_ident("saturating_add")));
}
