//! Property tests for the item parser and the workspace pipeline.
//!
//! The parser is recovery-oriented: it walks raw tokens with no grammar to
//! fall back on, so its two load-bearing properties are pinned the same way
//! the lexer's are. It must be total — arbitrary bytes, half-open braces,
//! and quote soup never panic it — and it must actually *recover*: every
//! `fn` item in well-formed input shows up in the IR by name, with its
//! impl owner attached, no matter how the surrounding items are shuffled.

use cc_lint::lexer::{lex, test_code_mask};
use cc_lint::parser::parse_file;
use proptest::prelude::*;

fn parse(src: &str) -> cc_lint::parser::FileIr {
    let lexed = lex(src);
    let mask = test_code_mask(&lexed.tokens);
    parse_file("crates/x/src/lib.rs", &lexed, &mask)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn parsing_arbitrary_bytes_never_panics(
        bytes in prop::collection::vec(0u16..256, 0usize..400),
    ) {
        let bytes: Vec<u8> = bytes.into_iter().map(|b| b as u8).collect();
        let src = String::from_utf8_lossy(&bytes).into_owned();
        let _ = parse(&src);
    }

    #[test]
    fn parsing_rust_flavored_soup_never_panics(
        picks in prop::collection::vec(0usize..20, 0usize..80),
    ) {
        // Adversarial fragments: item keywords in broken positions,
        // unbalanced braces, closures, guard idioms, attribute openers.
        const FRAGMENTS: &[&str] = &[
            "fn", "impl", "mod", "unsafe", "{", "}", "(", ")", "||", "|x|",
            ".lock()", ".unwrap()", "let g =", ";", "#[cfg(not(unix))]",
            "move", "for", "Self::", "\"fn f(){\"", "\n",
        ];
        let src: String = picks.iter().map(|&i| FRAGMENTS[i]).collect::<Vec<_>>().join(" ");
        let _ = parse(&src);
    }

    #[test]
    fn parser_recovers_every_fn_by_name(
        order in prop::collection::vec(0usize..5, 1usize..6),
        impl_flag in 0usize..2,
    ) {
        let with_impl = impl_flag == 1;
        // Distinct item bodies with deliberately messy interiors; whatever
        // subset and order they appear in, each must be recovered by name
        // exactly where its `fn` keyword sits.
        const ITEMS: &[(&str, &str)] = &[
            ("alpha", "fn alpha() { let g = m.lock(); g.touch(); }"),
            ("beta", "fn beta(x: u64) -> u64 { x.checked_add(1).unwrap_or(0) }"),
            ("gamma", "fn gamma() { helper(|| { inner.call(); }); }"),
            ("delta", "fn delta() { if a { b() } else { c() } }"),
            ("epsilon", "fn epsilon() { loop { break; } }"),
        ];
        let mut picked: Vec<usize> = order;
        picked.sort_unstable();
        picked.dedup();
        let mut src = String::new();
        if with_impl {
            src.push_str("impl Widget {\n");
        }
        for &i in &picked {
            src.push_str(ITEMS[i].1);
            src.push('\n');
        }
        if with_impl {
            src.push_str("}\n");
        }
        let ir = parse(&src);
        let named: Vec<&str> = ir
            .fns
            .iter()
            .filter(|f| !f.is_closure)
            .map(|f| f.name.as_str())
            .collect();
        for &i in &picked {
            prop_assert!(
                named.contains(&ITEMS[i].0),
                "fn `{}` not recovered; got {named:?} from:\n{src}",
                ITEMS[i].0
            );
            if with_impl {
                let f = ir
                    .fns
                    .iter()
                    .find(|f| f.name == ITEMS[i].0)
                    .expect("present per assertion above");
                prop_assert_eq!(
                    f.owner.as_deref(),
                    Some("Widget"),
                    "fn `{}` lost its impl owner",
                    ITEMS[i].0
                );
            }
        }
        // Recovery is exact, not merely inclusive: no phantom named items.
        prop_assert_eq!(named.len(), picked.len(), "phantom fns in {named:?}");
    }

    #[test]
    fn unbalanced_braces_cannot_leak_items_past_eof(
        extra_open in 0usize..4,
        extra_close in 0usize..4,
    ) {
        // Truncated or over-closed files (mid-edit saves) must still parse
        // and still find the one well-formed fn.
        let mut src = String::new();
        for _ in 0..extra_open {
            src.push_str("{ ");
        }
        src.push_str("fn solo() { body.call(); }\n");
        for _ in 0..extra_close {
            src.push_str("} ");
        }
        let ir = parse(&src);
        prop_assert!(ir.fns.iter().any(|f| f.name == "solo"), "solo not recovered");
    }
}
