//! The gate tests the gate: every rule must fire on its known-bad corpus
//! (including the literal pre-fix PR 2 and PR 6 code) and stay silent on
//! the minimized fixed versions. CI runs the same check via
//! `cc-lint --check-fixtures`.

use std::path::Path;

#[test]
fn every_rule_fires_on_bad_and_stays_silent_on_good() {
    let fixtures = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    let (log, ok) = cc_lint::check_fixtures(&fixtures);
    assert!(ok, "fixture corpus failed:\n{log}");
}

#[test]
fn every_rule_has_both_bad_and_good_fixtures() {
    let fixtures = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    for rule in cc_lint::rules::all_rules() {
        let dir = fixtures.join(rule.name());
        let names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap_or_else(|e| panic!("no fixture dir for rule `{}`: {e}", rule.name()))
            .flatten()
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .collect();
        assert!(
            names.iter().any(|n| n.starts_with("bad_")),
            "rule `{}` has no known-bad fixture",
            rule.name()
        );
        assert!(
            names.iter().any(|n| n.starts_with("good_")),
            "rule `{}` has no known-good fixture",
            rule.name()
        );
    }
}
