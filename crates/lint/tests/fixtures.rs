//! The gate tests the gate: every rule must fire on its known-bad corpus
//! (including the literal pre-fix PR 2 and PR 6 code) and stay silent on
//! the minimized fixed versions. CI runs the same check via
//! `cc-lint --check-fixtures`.

use std::path::Path;

#[test]
fn every_rule_fires_on_bad_and_stays_silent_on_good() {
    let fixtures = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    let (log, ok) = cc_lint::check_fixtures(&fixtures);
    assert!(ok, "fixture corpus failed:\n{log}");
}

#[test]
fn every_rule_has_both_bad_and_good_fixtures() {
    let fixtures = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    let mut names: Vec<&'static str> =
        cc_lint::rules::all_rules().iter().map(|r| r.name()).collect();
    names.extend(cc_lint::rules::workspace_rules().iter().map(|r| r.name()));
    for rule in names {
        let dir = fixtures.join(rule);
        let files: Vec<String> = std::fs::read_dir(&dir)
            .unwrap_or_else(|e| panic!("no fixture dir for rule `{rule}`: {e}"))
            .flatten()
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .collect();
        assert!(
            files.iter().any(|n| n.starts_with("bad_")),
            "rule `{rule}` has no known-bad fixture"
        );
        assert!(
            files.iter().any(|n| n.starts_with("good_")),
            "rule `{rule}` has no known-good fixture"
        );
    }
}

/// Regression pin for the lock-order analysis: the hand-built AB/BA cycle
/// fixture must produce a `lock_order` finding whose message spells out the
/// full cycle — both functions and both locks — so a reader can fix the
/// ordering without re-deriving the graph.
#[test]
fn lock_order_cycle_message_names_the_full_cycle() {
    let fixture =
        Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures/lock_order/bad_ab_ba_cycle.rs");
    let src = std::fs::read_to_string(&fixture).expect("fixture readable");
    let mut report = cc_lint::findings::Report::default();
    cc_lint::lint_source_workspace(
        "crates/server/src/pool.rs",
        &src,
        "lock_order",
        &cc_lint::Config::default(),
        &mut report,
    );
    assert_eq!(report.findings.len(), 1, "expected exactly one cycle finding: {report:?}");
    let f = &report.findings[0];
    assert_eq!(f.rule, "lock_order");
    for needle in ["Pair::ab", "Pair::ba", "alpha", "beta", "deadlock"] {
        assert!(
            f.message.contains(needle),
            "lock_order message must name `{needle}`; got: {}",
            f.message
        );
    }
}
