// The fixed shape: one guard held across the whole check-then-act decision.
fn get_or_compute(&self, key: u64) -> u64 {
    let mut map = self.map.lock().unwrap_or_else(PoisonError::into_inner);
    if let Some(v) = map.get(&key) {
        return *v;
    }
    let value = self.compute(key);
    map.insert(key, value);
    value
}

fn two_different_locks(&self) {
    // Distinct bindings in one function are fine.
    let a = self.left.lock();
    let b = self.right.lock();
    drop((a, b));
}
