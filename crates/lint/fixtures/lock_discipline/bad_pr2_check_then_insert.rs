// The PR 2 cache race, verbatim shape: the state checked under the first
// guard may be stale by the second — two threads both miss and both compute.
fn get_or_compute(&self, key: u64) -> u64 {
    if !self.map.lock().contains_key(&key) {
        let value = self.compute(key);
        self.map.lock().insert(key, value);
    }
    self.map.lock().get(&key).copied().unwrap_or(0)
}
