// Bare `+` on distance operands: overflow wraps (debug: panics) instead of
// clamping to MAX_FINITE_DISTANCE.
fn combine(to_landmark: u64, col: u64) -> u64 {
    to_landmark + col
}

fn accumulate(&mut self, w: u64) {
    self.best_dist += w;
}
