// The PR 2 bug, verbatim shape: two near-MAX finite distances saturate to
// exactly u64::MAX — the infinity sentinel — so a connected pair reports as
// unreachable.
fn query_unchecked(&self, u: usize, v: usize) -> Dist {
    let mut best = u64::MAX;
    for &(landmark, to_landmark) in self.ball(u) {
        let col = self.column(landmark, v);
        let via = to_landmark.saturating_add(col);
        if via < best {
            best = via;
        }
    }
    Dist::from_raw(best)
}
