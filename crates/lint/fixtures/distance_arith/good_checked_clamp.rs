// The minimized fixed version: checked_add with the MAX_FINITE_DISTANCE
// clamp, so overflow lands on the largest finite value, never the sentinel.
fn query_unchecked(&self, u: usize, v: usize) -> Dist {
    let mut best = MAX_FINITE_DISTANCE;
    for &(landmark, to_landmark) in self.ball(u) {
        let col = self.column(landmark, v);
        let via = to_landmark
            .checked_add(col)
            .map_or(MAX_FINITE_DISTANCE, |s| s.min(MAX_FINITE_DISTANCE));
        best = best.min(via);
    }
    Dist::from_raw(best)
}

fn unrelated_arithmetic(&self) -> usize {
    // Counts and offsets may use `+` freely: neither operand resolves to a
    // distance-typed name.
    self.balls.len() + self.columns.len() * 8
}
