// cc-lint-fixture-path: crates/server/src/reactor.rs
// The fixed twin: backoff becomes a deadline the event-loop timeout
// honors, channel drains use try_recv, and the poller wait happens with
// no guard held.
fn reactor_loop(rx: Receiver, poller: Poller) {
    let mut resume_at: Option<Instant> = None;
    loop {
        let timeout = deadline_timeout(resume_at);
        poller.wait(&mut Vec::new(), timeout);
        while let Ok(conn) = rx.try_recv() {
            park(conn);
        }
        if events_overloaded() {
            resume_at = Some(next_deadline());
        }
    }
}

fn deadline_timeout(resume_at: Option<Instant>) -> Duration {
    resume_at.map_or(MAX_WAIT, |d| d.saturating_duration_since(Instant::now()))
}
