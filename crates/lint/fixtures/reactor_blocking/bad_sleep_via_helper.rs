// cc-lint-fixture-path: crates/server/src/reactor.rs
// A blocking sleep two calls away from the dispatch loop: the PR 9
// overload backoff, minimized. Every parked connection stalls while the
// reactor sleeps.
fn reactor_loop(events: Events) {
    loop {
        dispatch(&events);
    }
}

fn dispatch(events: &Events) {
    if events.overloaded() {
        backoff();
    }
}

fn backoff() {
    std::thread::sleep(std::time::Duration::from_millis(100));
}
