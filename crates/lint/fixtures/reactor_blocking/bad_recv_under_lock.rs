// cc-lint-fixture-path: crates/server/src/reactor.rs
// Two reactor hazards: an unbounded recv on the dispatch path, and a
// wait made with a lock guard still in hand.
fn reactor_loop(rx: Receiver, state: Shared) {
    loop {
        let conn = rx.recv();
        let guard = state.inner.lock().unwrap_or_else(|e| e.into_inner());
        guard.poller.wait(&mut Vec::new());
    }
}
