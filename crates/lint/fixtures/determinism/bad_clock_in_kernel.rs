// Clocks in a query kernel: the answer (or its side effects) become a
// function of wall time, breaking router/monolith bit-equivalence.
fn query(&self, u: usize, v: usize) -> u64 {
    let start = Instant::now();
    let d = self.lookup(u, v);
    self.timings.record(start.elapsed());
    d
}

fn stamp(&self) -> u64 {
    SystemTime::now().duration_since(UNIX_EPOCH).map_or(0, |d| d.as_secs())
}
