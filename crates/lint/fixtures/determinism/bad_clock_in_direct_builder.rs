// A clock read inside a direct-build phase: the artifact stays the same,
// but phase timing logic inside the kernel invites time-dependent behavior
// (retry loops, adaptive cutoffs) that would break the bit-identity
// contract. Timing belongs to the caller, via BuildTrace::time_local.
fn build_columns(&self, graph: &Graph) -> Vec<u64> {
    let started = Instant::now();
    let columns = self.run_dijkstras(graph);
    if started.elapsed().as_secs() > 5 {
        return self.run_capped(graph); // time-dependent artifact!
    }
    columns
}
