// The fixed shape: kernels are pure; the serving edge owns the clocks.
fn query(&self, u: usize, v: usize) -> u64 {
    self.lookup(u, v)
}
