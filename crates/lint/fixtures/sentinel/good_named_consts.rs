// Named constants carry the encoding; constructing the literal (assignment,
// argument) is fine — only comparisons restate the meaning.
const NO_REPAIR: u64 = u64::MAX;

fn is_unreachable(d: u64) -> bool {
    d == Dist::INF.raw()
}

fn needs_repair(r: u64) -> bool {
    r != NO_REPAIR
}

fn widest() -> u64 {
    width.unwrap_or(u64::MAX)
}
