// Literal sentinel comparisons restate the infinity encoding inline — the
// PR 2 saturation bug hid because the clamp boundary and the sentinel were
// the same magic number in two files.
fn is_unreachable(d: u64) -> bool {
    d == u64::MAX
}

fn clamp(d: u64) -> u64 {
    if d >= u64::MAX - 1 {
        d - 1
    } else {
        d
    }
}

fn classify(d: u64) -> &'static str {
    match d {
        u64::MAX => "inf",
        _ => "finite",
    }
}
