// The same inversion hidden behind a call: `ab` holds alpha while calling
// a helper that takes beta; `ba` holds beta while calling a helper that
// takes alpha. Neither function touches both locks in its own body — the
// cycle only exists in the call graph's effective lock sets.
use std::sync::Mutex;

pub struct Pair {
    alpha: Mutex<u64>,
    beta: Mutex<u64>,
}

impl Pair {
    pub fn ab(&self) -> u64 {
        let a = self.alpha.lock().unwrap_or_else(|e| e.into_inner());
        *a + self.read_beta()
    }

    fn read_beta(&self) -> u64 {
        *self.beta.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn ba(&self) -> u64 {
        let b = self.beta.lock().unwrap_or_else(|e| e.into_inner());
        *b + self.read_alpha()
    }

    fn read_alpha(&self) -> u64 {
        *self.alpha.lock().unwrap_or_else(|e| e.into_inner())
    }
}
