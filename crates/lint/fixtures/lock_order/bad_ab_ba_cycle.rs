// The minimized two-function lock-order inversion: `ab` takes alpha then
// beta, `ba` takes beta then alpha. Each function passes lock_discipline
// (no same-binding double acquisition); only the cross-function order
// graph sees the deadlock.
use std::sync::Mutex;

pub struct Pair {
    alpha: Mutex<u64>,
    beta: Mutex<u64>,
}

impl Pair {
    pub fn ab(&self) -> u64 {
        let a = self.alpha.lock().unwrap_or_else(|e| e.into_inner());
        let b = self.beta.lock().unwrap_or_else(|e| e.into_inner());
        *a + *b
    }

    pub fn ba(&self) -> u64 {
        let b = self.beta.lock().unwrap_or_else(|e| e.into_inner());
        let a = self.alpha.lock().unwrap_or_else(|e| e.into_inner());
        *a - *b
    }
}
