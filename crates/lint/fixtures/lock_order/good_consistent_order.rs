// The fixed twin: every path that needs both locks takes alpha before
// beta. The order graph has edges but no cycle.
use std::sync::Mutex;

pub struct Pair {
    alpha: Mutex<u64>,
    beta: Mutex<u64>,
}

impl Pair {
    pub fn sum(&self) -> u64 {
        let a = self.alpha.lock().unwrap_or_else(|e| e.into_inner());
        let b = self.beta.lock().unwrap_or_else(|e| e.into_inner());
        *a + *b
    }

    pub fn diff(&self) -> u64 {
        let a = self.alpha.lock().unwrap_or_else(|e| e.into_inner());
        let b = self.beta.lock().unwrap_or_else(|e| e.into_inner());
        *a - *b
    }

    pub fn alpha_only(&self) -> u64 {
        *self.alpha.lock().unwrap_or_else(|e| e.into_inner())
    }
}
