// The PR 6 bug, verbatim shape: the queue-depth gauge was incremented after
// try_send, racing the worker's decrement — a scrape could read -1. Relaxed
// on a depth/control atomic is how that class of race looks locally fine.
fn try_submit(&self, job: Job) -> Result<(), SubmitError> {
    match self.tx.try_send(job) {
        Ok(()) => {
            self.queue_depth.fetch_add(1, Ordering::Relaxed);
            Ok(())
        }
        Err(e) => Err(SubmitError::from(e)),
    }
}

fn should_stop(&self) -> bool {
    self.shutdown.load(Ordering::Relaxed)
}
