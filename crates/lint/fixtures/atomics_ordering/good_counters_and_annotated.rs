// Plain counters may relax; control-flow atomics either get a stronger
// ordering or a reasoned annotation.
fn record_hit(&self) {
    self.hits.fetch_add(1, Ordering::Relaxed);
}

fn should_stop(&self) -> bool {
    self.shutdown.load(Ordering::Acquire)
}

fn depth_estimate(&self) -> u64 {
    // cc-lint: allow(atomics_ordering) -- monitoring-only estimate; a stale read is acceptable for a gauge sample
    self.queue_depth.load(Ordering::Relaxed)
}
