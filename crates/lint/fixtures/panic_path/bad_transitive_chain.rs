// cc-lint-fixture-path: crates/server/src/handlers.rs
// A serving entry point two calls away from an expect: no_panic scans
// only the entry's own file, so the panic hides in the helper chain
// until the call graph connects them.
pub fn handle(req: Request) -> Response {
    render(lookup(req.key))
}

fn lookup(key: u64) -> u64 {
    shard_for(key).entry_distance(key)
}

fn shard_for(key: u64) -> Shard {
    SHARDS.pick(key).expect("shard table populated at boot")
}
