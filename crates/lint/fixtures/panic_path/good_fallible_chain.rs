// cc-lint-fixture-path: crates/server/src/handlers.rs
// The fixed twin: the helper chain propagates errors instead of dying;
// the entry point degrades to an error response.
pub fn handle(req: Request) -> Response {
    match lookup(req.key) {
        Some(d) => render(d),
        None => error_response(),
    }
}

fn lookup(key: u64) -> Option<u64> {
    shard_for(key).map(|s| s.entry_distance(key))
}

fn shard_for(key: u64) -> Option<Shard> {
    SHARDS.pick(key)
}
