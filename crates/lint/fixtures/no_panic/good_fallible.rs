// The fixed shape: malformed input is a 400, poison is recovered (the data
// under a cc-serve lock is replaced wholesale, never left half-written).
fn handle(state: &AppState, req: &Request) -> Response {
    let Some(pair) = parse_pair(req) else {
        return bad_request("malformed pair");
    };
    let guard = state.reload_lock.lock().unwrap_or_else(PoisonError::into_inner);
    if guard.generation() == 0 {
        return service_unavailable("no artifact loaded");
    }
    respond(pair, &guard)
}
