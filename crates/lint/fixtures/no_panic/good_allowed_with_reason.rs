// The escape hatch: a reasoned allow-comment suppresses the finding and is
// recorded in the run summary.
fn spawn_workers(n: usize) -> Vec<JoinHandle<()>> {
    (0..n)
        .map(|i| {
            std::thread::Builder::new()
                .name(format!("worker-{i}"))
                .spawn(worker)
                .expect("spawn worker thread") // cc-lint: allow(no_panic) -- startup-time spawn failure is fatal by design; no requests are in flight yet
        })
        .collect()
}
