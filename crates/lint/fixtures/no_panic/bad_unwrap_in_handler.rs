// Panics on the serving path: a poisoned lock or malformed request kills a
// pool worker instead of degrading to an error response.
fn handle(state: &AppState, req: &Request) -> Response {
    let pair = parse_pair(req).unwrap();
    let guard = state.reload_lock.lock().expect("reload lock poisoned");
    if guard.generation() == 0 {
        panic!("no artifact loaded");
    }
    respond(pair, &guard)
}
