// cc-lint-fixture-path: crates/reactor/src/sys.rs
// The sanctioned shape: the allowlisted syscall module, each site under a
// SAFETY comment stating the invariant (an interleaved attribute between
// the comment and the `unsafe` token is fine).
pub(crate) fn epoll_create() -> io::Result<i32> {
    // SAFETY: no pointers involved; epoll_create1 allocates a kernel
    // object and returns a descriptor or -1.
    #[allow(unsafe_code)]
    let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
    if fd < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(fd)
}
