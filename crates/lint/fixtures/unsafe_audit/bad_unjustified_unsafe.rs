// cc-lint-fixture-path: crates/server/src/handlers.rs
// Unsafe outside the audited allowlist, and with no SAFETY comment: two
// findings, one per missing discipline.
pub fn peek(p: *const u8) -> u8 {
    unsafe { *p }
}
