// A stale allow suppressing nothing is a standing invitation to sneak the
// real violation back in later; the hygiene rule reports its exact span.
fn tidy(z: Option<u64>) -> u64 {
    // cc-lint: allow(no_panic) -- left behind after the unwrap was fixed
    z.unwrap_or(0)
}
