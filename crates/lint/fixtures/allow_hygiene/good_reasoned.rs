// cc-lint-fixture-path: crates/server/src/handlers.rs
// Well-formed: names a known rule, states why the suppression is safe,
// and actually suppresses a finding (unused allows are themselves flagged).
fn startup(z: Option<u64>) -> u64 {
    z.expect("config parsed at boot") // cc-lint: allow(no_panic) -- startup path; the process has not accepted traffic yet
}
