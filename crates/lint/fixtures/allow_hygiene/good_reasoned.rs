// Well-formed: names a known rule and states why the suppression is safe.
fn startup(z: Option<u64>) -> u64 {
    z.expect("config parsed at boot") // cc-lint: allow(no_panic) -- startup path; the process has not accepted traffic yet
}
