// An allow without a reason defeats the point of the audit trail.
fn startup(x: Option<u64>) -> u64 {
    x.unwrap() // cc-lint: allow(no_panic)
}
