// A typo'd rule name would silently suppress nothing forever.
fn startup(y: Option<u64>) -> u64 {
    y.unwrap() // cc-lint: allow(no_panics) -- typo in the rule name
}
