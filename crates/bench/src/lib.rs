//! # `cc-bench`: experiment and benchmark support
//!
//! Shared infrastructure for the `experiments` binary (which regenerates
//! every claim-level table in EXPERIMENTS.md) and the Criterion wall-time
//! benches. The paper's complexity measure is *rounds*, which the
//! `experiments` binary reports; the Criterion benches additionally track
//! the simulator's wall-time so performance regressions in this codebase
//! itself are visible.
//!
//! Unsafe code is forbidden (`#![forbid(unsafe_code)]`), as across the
//! whole workspace.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use cc_matrix::{Dist, MinPlus, SparseMatrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A markdown pipe table accumulated row by row.
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given column headers.
    pub fn new(header: &[&str]) -> Table {
        Table { header: header.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Appends a row (stringified cells).
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Prints the table as GitHub-flavoured markdown.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let fmt_row = |cells: &[String]| {
            let padded: Vec<String> = cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<width$}", c, width = widths[i]))
                .collect();
            println!("| {} |", padded.join(" | "));
        };
        fmt_row(&self.header);
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        println!("|-{}-|", sep.join("-|-"));
        for row in &self.rows {
            fmt_row(row);
        }
        println!();
    }
}

/// A random square min-plus matrix with roughly `rho·n` non-zeros.
pub fn random_sparse(n: usize, rho: usize, seed: u64) -> SparseMatrix<Dist> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut m = SparseMatrix::zeros(n);
    for _ in 0..rho * n {
        let r = rng.gen_range(0..n);
        let c = rng.gen_range(0..n);
        m.set_in::<MinPlus>(r, c, Dist::fin(rng.gen_range(1..1000)));
    }
    m
}

/// Least-squares slope of `log y` against `log x` — the scaling exponent of
/// a measured cost curve.
pub fn loglog_slope(points: &[(f64, f64)]) -> f64 {
    let pts: Vec<(f64, f64)> = points
        .iter()
        .filter(|(x, y)| *x > 0.0 && *y > 0.0)
        .map(|(x, y)| (x.ln(), y.ln()))
        .collect();
    let n = pts.len() as f64;
    if pts.len() < 2 {
        return 0.0;
    }
    let (sx, sy): (f64, f64) = pts.iter().fold((0.0, 0.0), |(a, b), (x, y)| (a + x, b + y));
    let (sxx, sxy): (f64, f64) =
        pts.iter().fold((0.0, 0.0), |(a, b), (x, y)| (a + x * x, b + x * y));
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}

/// Ordinary least-squares fit `y ≈ a + b·x`; returns `(a, b)`.
pub fn linear_fit(points: &[(f64, f64)]) -> (f64, f64) {
    let n = points.len() as f64;
    if points.len() < 2 {
        return (points.first().map_or(0.0, |p| p.1), 0.0);
    }
    let (sx, sy): (f64, f64) = points.iter().fold((0.0, 0.0), |(a, b), (x, y)| (a + x, b + y));
    let (sxx, sxy): (f64, f64) =
        points.iter().fold((0.0, 0.0), |(a, b), (x, y)| (a + x * x, b + x * y));
    let slope = (n * sxy - sx * sy) / (n * sxx - sx * sx);
    let intercept = (sy - slope * sx) / n;
    (intercept, slope)
}

/// Theorem 8's round formula `(ρS·ρT·ρ̂)^{1/3}/n^{2/3} + 1`.
pub fn thm8_formula(n: usize, rho_s: usize, rho_t: usize, rho_hat: usize) -> f64 {
    ((rho_s * rho_t * rho_hat) as f64).powf(1.0 / 3.0) / (n as f64).powf(2.0 / 3.0) + 1.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_prints_consistently() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        t.print(); // should not panic
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(&["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn slope_recovers_power_laws() {
        let pts: Vec<(f64, f64)> = (1..20).map(|i| (i as f64, (i as f64).powf(1.5))).collect();
        assert!((loglog_slope(&pts) - 1.5).abs() < 1e-9);
    }

    #[test]
    fn random_matrix_density_tracks_request() {
        let m = random_sparse(64, 8, 1);
        assert!(m.density() >= 6 && m.density() <= 8, "density {}", m.density());
    }

    #[test]
    fn thm8_formula_floor_is_one() {
        assert!((thm8_formula(1000, 1, 1, 1) - 1.0).abs() < 0.02);
    }

    #[test]
    fn linear_fit_recovers_lines() {
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 3.0 + 2.0 * i as f64)).collect();
        let (a, b) = linear_fit(&pts);
        assert!((a - 3.0).abs() < 1e-9 && (b - 2.0).abs() < 1e-9);
    }
}
