//! The experiment harness: regenerates every claim-level result in
//! EXPERIMENTS.md (the paper has no tables/figures — its "evaluation" is
//! its theorems, so each experiment measures one theorem's bound and
//! guarantee on the simulator).
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p cc-bench --bin experiments [all|e1|..|e12|oracle|build-direct|ablate-cost|ablate-filter|ablate-shortcut]
//! ```
//!
//! Output is GitHub-flavoured markdown, pasted (with narrative) into
//! EXPERIMENTS.md.

// Node-indexed loops over parallel per-node vectors are the domain idiom.
#![allow(clippy::needless_range_loop)]

use std::time::Instant;

use cc_bench::{loglog_slope, random_sparse, thm8_formula, Table};
use cc_clique::{Clique, CostModel};
use cc_core::{apsp, baselines, diameter, mssp, sssp, stretch};
use cc_distance::{distance_through_sets, hitting_set, k_nearest, source_detection_all};
use cc_graph::{generators, reference};
use cc_hopset::{build_hopset, HopsetConfig};
use cc_matrix::{Dist, MinPlus, SparseMatrix};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let which = args.first().map(String::as_str).unwrap_or("all");
    let started = Instant::now();
    let all = which == "all";
    if all || which == "e1" {
        e1();
    }
    if all || which == "e2" {
        e2();
    }
    if all || which == "e3" {
        e3();
    }
    if all || which == "e4" {
        e4();
    }
    if all || which == "e5" {
        e5();
    }
    if all || which == "e6" {
        e6();
    }
    if all || which == "e7" {
        e7();
    }
    if all || which == "e8" {
        e8();
    }
    if all || which == "e9" {
        e9();
    }
    if all || which == "e10" {
        e10();
    }
    if all || which == "e11" {
        e11();
    }
    if all || which == "e12" {
        e12();
    }
    if all || which == "oracle" {
        oracle();
    }
    if all || which == "build-direct" {
        build_direct();
    }
    if all || which == "ablate-cost" {
        ablate_cost();
    }
    if all || which == "ablate-filter" {
        ablate_filter();
    }
    if all || which == "ablate-shortcut" {
        ablate_shortcut();
    }
    eprintln!("[experiments] total wall time: {:.1}s", started.elapsed().as_secs_f64());
}

/// E1 — Theorem 8: sparse MM rounds track `(ρS·ρT·ρ̂)^{1/3}/n^{2/3} + 1`.
fn e1() {
    let n = 256;
    println!("### E1 — Theorem 8: output-sensitive sparse matrix multiplication (n={n})\n");
    let mut table = Table::new(&[
        "rho_S=rho_T",
        "rho_out",
        "rounds (Thm 8)",
        "formula",
        "rounds (dense 3D)",
        "correct",
    ]);
    let mut pts = Vec::new();
    for rho in [1usize, 2, 4, 8, 16, 32, 64] {
        let s = random_sparse(n, rho, 10 + rho as u64);
        let t = random_sparse(n, rho, 20 + rho as u64);
        let t_cols = t.transpose();
        let expected = s.multiply::<MinPlus>(&t);
        let rho_out = expected.density();

        let mut clique = Clique::new(n);
        let p =
            cc_matmul::sparse_multiply::<MinPlus>(&mut clique, s.rows(), t_cols.rows(), rho_out)
                .expect("multiply");
        let ok = SparseMatrix::from_rows(p) == expected;
        let rounds = clique.rounds();

        let mut clique = Clique::new(n);
        cc_matmul::dense_multiply::<MinPlus>(&mut clique, s.rows(), t_cols.rows()).expect("dense");
        let dense_rounds = clique.rounds();

        let f = thm8_formula(n, rho, rho, rho_out);
        pts.push((f, rounds as f64));
        table.row(vec![
            rho.to_string(),
            rho_out.to_string(),
            rounds.to_string(),
            format!("{f:.2}"),
            dense_rounds.to_string(),
            ok.to_string(),
        ]);
    }
    table.print();
    let (a, b) = cc_bench::linear_fit(&pts);
    println!(
        "linear fit: rounds ~ {a:.0} + {b:.1}·formula — a constant pipeline floor of ~{a:.0} rounds plus ~{b:.0} rounds per formula unit (theory predicts linearity in the formula)\n",
    );
}

/// E2 — Theorem 14: filtered MM stays flat while unfiltered output grows.
fn e2() {
    let n = 256;
    let rho_filter = 8;
    println!("### E2 — Theorem 14: filtered multiplication (n={n}, filter rho={rho_filter})\n");
    let mut table = Table::new(&[
        "rho_in",
        "rho_out (full)",
        "Thm 8 rounds (full output)",
        "Thm 14 rounds (filtered)",
        "correct",
    ]);
    for rho in [2usize, 4, 8, 16, 32, 64] {
        let s = random_sparse(n, rho, 30 + rho as u64);
        let t = random_sparse(n, rho, 40 + rho as u64);
        let t_cols = t.transpose();
        let expected_full = s.multiply::<MinPlus>(&t);
        let rho_out = expected_full.density();

        let mut clique = Clique::new(n);
        cc_matmul::sparse_multiply::<MinPlus>(&mut clique, s.rows(), t_cols.rows(), rho_out)
            .expect("multiply");
        let full_rounds = clique.rounds();

        let mut clique = Clique::new(n);
        let p = cc_matmul::filtered_multiply::<MinPlus>(
            &mut clique,
            s.rows(),
            t_cols.rows(),
            rho_filter,
        )
        .expect("filtered");
        let filtered_rounds = clique.rounds();
        let ok = SparseMatrix::from_rows(p) == expected_full.filtered::<MinPlus>(rho_filter);

        table.row(vec![
            rho.to_string(),
            rho_out.to_string(),
            full_rounds.to_string(),
            filtered_rounds.to_string(),
            ok.to_string(),
        ]);
    }
    table.print();
}

/// E3 — Theorem 18: k-nearest rounds `O((k/n^{2/3} + log n)·log k)`.
fn e3() {
    let n = 256;
    println!("### E3 — Theorem 18: k-nearest (n={n}, weighted G(n,p))\n");
    let g = generators::gnp_weighted(n, 4.0 / n as f64, 100, 3).expect("graph");
    let mut table = Table::new(&["k", "rounds", "bound ~ (k/n^2/3 + log n) log k", "exact"]);
    for k in [2usize, 4, 8, 16, 32, 64, 128] {
        let mut clique = Clique::new(n);
        let rows = k_nearest(&mut clique, &g, k).expect("k-nearest");
        let mut ok = true;
        for v in (0..n).step_by(37) {
            let expected = reference::k_nearest(&g, v, k);
            let mut got: Vec<(u64, u32, usize)> =
                rows[v].iter().map(|(c, a)| (a.dist, a.hops, c as usize)).collect();
            got.sort_unstable();
            let got: Vec<(usize, u64, u32)> = got.into_iter().map(|(d, h, u)| (u, d, h)).collect();
            ok &= got == expected;
        }
        let bound =
            (k as f64 / (n as f64).powf(2.0 / 3.0) + (n as f64).log2()) * (k.max(2) as f64).log2();
        table.row(vec![
            k.to_string(),
            clique.rounds().to_string(),
            format!("{bound:.0}"),
            ok.to_string(),
        ]);
    }
    table.print();
}

/// E4 — Theorem 19: source detection `O((m^{1/3}|S|^{2/3}/n + 1)·d)`.
fn e4() {
    let n = 128;
    println!("### E4 — Theorem 19: (S, d, k)-source detection (n={n})\n");
    let g = generators::gnp_weighted(n, 6.0 / n as f64, 50, 4).expect("graph");
    let mut table = Table::new(&["|S|", "d", "rounds", "rounds/d", "correct"]);
    for s_count in [2usize, 8, 32, 128] {
        let sources: Vec<usize> = (0..s_count).map(|i| i * (n / s_count)).collect();
        for d in [2usize, 8] {
            let mut clique = Clique::new(n);
            let rows = source_detection_all(&mut clique, &g, &sources, d).expect("detect");
            let mut ok = true;
            for &s in sources.iter().take(3) {
                let expected = reference::hop_bounded(&g, s, d);
                for v in (0..n).step_by(17) {
                    ok &= rows[v].get(s as u32).map(|a| a.dist) == expected[v];
                }
            }
            table.row(vec![
                s_count.to_string(),
                d.to_string(),
                clique.rounds().to_string(),
                format!("{:.1}", clique.rounds() as f64 / d as f64),
                ok.to_string(),
            ]);
        }
    }
    table.print();
}

/// E5 — Theorem 20: distance through sets `O(ρ^{2/3}/n^{1/3} + 1)`.
fn e5() {
    let n = 256;
    println!("### E5 — Theorem 20: distance through sets (n={n})\n");
    let mut table = Table::new(&["|W_v|", "rounds", "bound ~ rho^2/3 / n^1/3 + 1"]);
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(5);
    for size in [2usize, 4, 8, 16, 32, 64] {
        let sets: Vec<Vec<(usize, Dist)>> = (0..n)
            .map(|_| {
                (0..size).map(|_| (rng.gen_range(0..n), Dist::fin(rng.gen_range(1..100)))).collect()
            })
            .collect();
        let mut clique = Clique::new(n);
        distance_through_sets(&mut clique, &sets).expect("through sets");
        let bound = (size as f64).powf(2.0 / 3.0) / (n as f64).powf(1.0 / 3.0) + 1.0;
        table.row(vec![size.to_string(), clique.rounds().to_string(), format!("{bound:.2}")]);
    }
    table.print();
}

/// E6 — Lemma 4: hitting set sizes `O(n log n / k)`.
fn e6() {
    let n = 256;
    println!("### E6 — Lemma 4: hitting sets (n={n}, k-balls of a weighted G(n,p))\n");
    let g = generators::gnp_weighted(n, 6.0 / n as f64, 50, 6).expect("graph");
    let mut table = Table::new(&["k", "|A| measured", "2n·ln n/k", "all sets hit"]);
    for k in [4usize, 16, 64, 128] {
        let mut clique = Clique::new(n);
        let near = k_nearest(&mut clique, &g, k).expect("k-nearest");
        let sets: Vec<Vec<usize>> =
            near.iter().map(|r| r.iter().map(|(c, _)| c as usize).collect()).collect();
        let hs = hitting_set(&mut clique, &sets, k, 42).expect("hitting set");
        let hit = sets.iter().all(|s| s.is_empty() || s.iter().any(|&w| hs.contains(w)));
        let bound = 2.0 * n as f64 * (n as f64).ln() / k as f64;
        table.row(vec![
            k.to_string(),
            hs.len().to_string(),
            format!("{bound:.0}"),
            hit.to_string(),
        ]);
    }
    table.print();
}

/// E7 — Theorem 25: hopsets — size, construction rounds, measured stretch.
fn e7() {
    println!("### E7 — Theorem 25: (beta, eps)-hopsets\n");
    let mut table = Table::new(&[
        "n",
        "eps",
        "config",
        "beta",
        "edges",
        "n^1.5·log n",
        "build rounds",
        "measured stretch",
        "guarantee 1+eps",
    ]);
    for &(n, eps) in &[(64usize, 0.5), (128, 0.5), (128, 1.0)] {
        let g = generators::gnp_weighted(n, 4.0 / n as f64, 50, 7).expect("graph");
        for (label, cfg) in [
            ("paper", HopsetConfig::new(eps)),
            ("tuned", {
                let mut c = HopsetConfig::new(eps);
                c.beta = Some(8);
                c.exploration_hops = Some(16);
                c.levels = Some((n as f64).log2().ceil() as usize);
                c
            }),
        ] {
            let mut clique = Clique::new(n);
            let h = build_hopset(&mut clique, &g, cfg).expect("hopset");
            let stretch = h.measure_stretch(&g);
            let bound = ((n as f64).powf(1.5) * (n as f64).log2()) as u64;
            table.row(vec![
                n.to_string(),
                eps.to_string(),
                label.to_string(),
                h.beta.to_string(),
                h.edges.len().to_string(),
                bound.to_string(),
                clique.rounds().to_string(),
                format!("{stretch:.3}"),
                format!("{:.2}", 1.0 + eps),
            ]);
        }
    }
    table.print();
}

/// E8 — Theorem 3: MSSP query rounds vs |S| (one shared hopset).
fn e8() {
    let n = 256;
    let eps = 0.5;
    println!("### E8 — Theorem 3: multi-source shortest paths (n={n}, eps={eps})\n");
    let g = generators::gnp_weighted(n, 5.0 / n as f64, 50, 8).expect("graph");
    let mut clique = Clique::new(n);
    let hopset = build_hopset(&mut clique, &g, HopsetConfig::new(eps)).expect("hopset");
    println!(
        "hopset build: {} rounds (shared across all queries below), beta = {}\n",
        clique.rounds(),
        hopset.beta
    );
    let mut table = Table::new(&["|S|", "query rounds", "max stretch (sampled)", "guarantee"]);
    for s_count in [1usize, 4, 16, 64, 128, 256] {
        let sources: Vec<usize> = (0..s_count).map(|i| i * (n / s_count)).collect();
        let mut clique = Clique::new(n);
        let run = mssp::mssp_with_hopset(&mut clique, &g, &sources, &hopset).expect("mssp");
        let mut worst: f64 = 1.0;
        for (i, &s) in sources.iter().enumerate().take(4) {
            let exact = reference::dijkstra(&g, s);
            for v in 0..n {
                if let (Some(d), Some(e)) = (exact[v], run.dist[v][i].value()) {
                    if d > 0 {
                        worst = worst.max(e as f64 / d as f64);
                    }
                }
            }
        }
        table.row(vec![
            s_count.to_string(),
            run.rounds.to_string(),
            format!("{worst:.3}"),
            format!("{:.2}", 1.0 + eps),
        ]);
    }
    table.print();
}

/// E9 — §6.1 + Theorem 28: weighted APSP vs the exact dense baseline.
fn e9() {
    println!("### E9 — Weighted APSP: (3+eps) and (2+eps,(1+eps)W) vs exact baseline\n");
    let eps = 0.5;
    let mut table =
        Table::new(&["n", "algorithm", "rounds", "max stretch", "mean stretch", "guarantee"]);
    for n in [32usize, 64, 128] {
        let g = generators::gnp_weighted(n, 5.0 / n as f64, 50, 9).expect("graph");
        let exact = reference::all_pairs(&g);

        let mut clique = Clique::new(n);
        let run = apsp::weighted_3eps(&mut clique, &g, eps).expect("3eps");
        stretch::assert_sound(&run.dist, &exact);
        table.row(vec![
            n.to_string(),
            "(3+eps)".into(),
            run.rounds.to_string(),
            format!("{:.3}", stretch::max_stretch(&run.dist, &exact)),
            format!("{:.3}", stretch::mean_stretch(&run.dist, &exact)),
            format!("{:.1}", 3.0 + eps),
        ]);

        let mut clique = Clique::new(n);
        let run = apsp::weighted_2eps(&mut clique, &g, eps).expect("2eps");
        stretch::assert_sound(&run.dist, &exact);
        table.row(vec![
            n.to_string(),
            "(2+eps,(1+eps)W)".into(),
            run.rounds.to_string(),
            format!("{:.3}", stretch::max_stretch(&run.dist, &exact)),
            format!("{:.3}", stretch::mean_stretch(&run.dist, &exact)),
            "<= (3+2eps) overall".into(),
        ]);

        let mut clique = Clique::new(n);
        let run = baselines::exact_apsp_squaring(&mut clique, &g).expect("baseline");
        table.row(vec![
            n.to_string(),
            "exact dense squaring [13]".into(),
            run.rounds.to_string(),
            "1.000".into(),
            "1.000".into(),
            "exact".into(),
        ]);

        for k in [2usize, 3] {
            let mut clique = Clique::new(n);
            let run = baselines::spanner_apsp(&mut clique, &g, k).expect("spanner");
            stretch::assert_sound(&run.dist, &exact);
            table.row(vec![
                n.to_string(),
                format!("(2k-1)-spanner, k={k} [52]"),
                run.rounds.to_string(),
                format!("{:.3}", stretch::max_stretch(&run.dist, &exact)),
                format!("{:.3}", stretch::mean_stretch(&run.dist, &exact)),
                format!("{}", 2 * k - 1),
            ]);
        }
    }
    table.print();
}

/// E10 — Theorem 2/31: unweighted (2+eps) APSP across graph families.
fn e10() {
    let n = 128;
    let eps = 0.5;
    println!("### E10 — Theorem 2/31: unweighted (2+eps) APSP (n~{n}, eps={eps})\n");
    let mut table = Table::new(&["family", "n", "m", "rounds", "max stretch", "mean stretch"]);
    let side = (n as f64).sqrt().round() as usize;
    let families: Vec<(&str, cc_graph::Graph)> = vec![
        ("gnp-sparse", generators::gnp(n, 2.0 * (n as f64).ln() / n as f64, 10).unwrap()),
        ("gnp-dense", generators::gnp(n, 0.3, 11).unwrap()),
        ("grid", generators::grid(side, side).unwrap()),
        ("path", generators::path(n).unwrap()),
        ("star", generators::star(n).unwrap()),
        ("ba-hubs", generators::barabasi_albert(n, 3, 12).unwrap()),
        ("cliques", generators::cliques_with_bridges(n / 8, 8, 1).unwrap()),
    ];
    for (name, g) in families {
        let mut clique = Clique::new(g.n());
        let run = apsp::unweighted_2eps(&mut clique, &g, eps).expect(name);
        let exact = reference::all_pairs(&g);
        stretch::assert_sound(&run.dist, &exact);
        table.row(vec![
            name.to_string(),
            g.n().to_string(),
            g.m().to_string(),
            run.rounds.to_string(),
            format!("{:.3}", stretch::max_stretch(&run.dist, &exact)),
            format!("{:.3}", stretch::mean_stretch(&run.dist, &exact)),
        ]);
    }
    table.print();
    println!("guarantee: max stretch <= 2 + eps = {:.1} on every family\n", 2.0 + eps);
}

/// E11 — Theorem 33: exact SSSP vs Bellman-Ford, who wins where.
fn e11() {
    println!("### E11 — Theorem 33: exact SSSP (shortcut) vs Bellman-Ford\n");
    let mut table =
        Table::new(&["graph", "n", "SPD", "BF rounds", "Thm 33 rounds", "winner", "exact"]);
    let mut cases: Vec<(String, cc_graph::Graph)> = Vec::new();
    for n in [64usize, 128, 256, 512] {
        cases.push((format!("path-{n}"), generators::path(n).unwrap()));
    }
    cases.push(("grid-16x16".into(), generators::grid_weighted(16, 16, 20, 13).unwrap()));
    cases.push(("gnp-256".into(), generators::gnp_weighted(256, 5.0 / 256.0, 50, 14).unwrap()));
    let mut growth = Vec::new();
    for (name, g) in cases {
        let n = g.n();
        let exact = reference::dijkstra(&g, 0);
        let spd = reference::shortest_path_diameter(&g);
        let mut c_bf = Clique::new(n);
        let bf = sssp::bellman_ford(&mut c_bf, &g, 0, None).expect("bf");
        let mut c_fast = Clique::new(n);
        let fast = sssp::exact_sssp(&mut c_fast, &g, 0).expect("sssp");
        let ok = (0..n).all(|v| bf.dist[v].value() == exact[v] && fast.dist[v].value() == exact[v]);
        if name.starts_with("path-") {
            growth.push((n as f64, fast.rounds as f64));
        }
        let winner = if fast.rounds < bf.rounds { "Thm 33" } else { "Bellman-Ford" };
        table.row(vec![
            name,
            n.to_string(),
            spd.to_string(),
            bf.rounds.to_string(),
            fast.rounds.to_string(),
            winner.into(),
            ok.to_string(),
        ]);
    }
    table.print();
    println!(
        "Thm 33 round growth exponent on paths (log-log slope): {:.2} (theory: ~1/6 plus polylog constant; Bellman-Ford is exponent 1.0)\n",
        loglog_slope(&growth)
    );
}

/// E12 — Claims 34/35: diameter approximation bounds.
fn e12() {
    let eps = 0.25;
    println!("### E12 — §7.2: near-3/2 diameter approximation (eps={eps})\n");
    let mut table = Table::new(&[
        "family",
        "true D",
        "estimate D'",
        "lower bound (Claim 35)",
        "(1+eps)·D",
        "rounds",
        "within bounds",
    ]);
    let families: Vec<(&str, cc_graph::Graph)> = vec![
        ("path-120", generators::path(120).unwrap()),
        ("cycle-128", generators::cycle(128).unwrap()),
        ("grid-11x11", generators::grid(11, 11).unwrap()),
        ("gnp-128", generators::gnp(128, 0.06, 15).unwrap()),
        ("star-128", generators::star(128).unwrap()),
    ];
    for (name, g) in families {
        let d = reference::diameter(&g).expect("connected");
        let mut clique = Clique::new(g.n());
        let run = diameter::diameter_approx(&mut clique, &g, eps).expect(name);
        let h = d / 3;
        let z = d % 3;
        let lower = if z == 0 { 2 * h } else { 2 * h + 1 };
        table.row(vec![
            name.to_string(),
            d.to_string(),
            run.estimate.to_string(),
            lower.to_string(),
            format!("{:.1}", (1.0 + eps) * d as f64),
            run.rounds.to_string(),
            diameter::within_claim35(run.estimate, d, eps).to_string(),
        ]);
    }
    table.print();
}

/// Oracle — serving layer: one distributed build, then local queries whose
/// measured stretch is checked against the Dijkstra ground truth.
fn oracle() {
    let eps = 0.25;
    println!("### Oracle — build-once / query-many serving layer (eps={eps})\n");
    let mut table = Table::new(&[
        "family",
        "n",
        "landmarks",
        "build rounds",
        "query rounds",
        "exact answers",
        "max stretch",
        "mean stretch",
        "bound 3(1+eps)",
        "sound",
    ]);
    for (name, g) in generators::standard_suite(128, 23).expect("suite") {
        let n = g.n();
        let mut clique = Clique::new(n);
        let oracle = cc_oracle::OracleBuilder::new()
            .epsilon(eps)
            .seed(31)
            .build(&mut clique, &g)
            .expect("build");
        let build_rounds = clique.rounds();

        let exact = reference::all_pairs(&g);
        let mut worst: f64 = 1.0;
        let mut sum = 0.0;
        let mut pairs = 0u64;
        let mut exact_hits = 0u64;
        let mut sound = true;
        for u in 0..n {
            for v in 0..n {
                if u == v {
                    continue;
                }
                let est = oracle.try_query(u, v).unwrap().value();
                match (exact[u][v], est) {
                    (Some(d), Some(est)) => {
                        sound &= est >= d;
                        let ratio = est as f64 / d as f64;
                        if est == d {
                            exact_hits += 1;
                        }
                        worst = worst.max(ratio);
                        sum += ratio;
                        pairs += 1;
                    }
                    (None, None) => {}
                    _ => sound = false,
                }
            }
        }
        let query_rounds = clique.rounds() - build_rounds;
        table.row(vec![
            name,
            n.to_string(),
            oracle.landmarks().len().to_string(),
            build_rounds.to_string(),
            query_rounds.to_string(),
            format!("{:.0}%", 100.0 * exact_hits as f64 / pairs.max(1) as f64),
            format!("{worst:.3}"),
            format!("{:.3}", sum / pairs.max(1) as f64),
            format!("{:.3}", oracle.stretch_bound()),
            sound.to_string(),
        ]);
        assert!(sound, "oracle must never underestimate");
        assert!(worst <= oracle.stretch_bound() + 1e-9, "stretch bound violated");
        assert_eq!(query_rounds, 0, "queries must be communication-free");
    }
    table.print();
    println!("every family: answers sound (never below the true distance), within the documented 3(1+eps) bound, and all n(n-1) queries cost 0 rounds after the one-off build.\n");
}

/// Direct-builder n-scaling: one capped-mode build per decade on the
/// `road_like` family (the same shape `cc-serve --demo-direct` uses),
/// with the per-phase wall-time breakdown out of the `BuildTrace`. This
/// is the scale path the simulator cannot reach — `Clique::new(10^5)`
/// would allocate n^2 channel state — so there is no clique column here;
/// bit-identity at simulator-reachable sizes is proven by
/// `tests/build_equivalence.rs` instead.
fn build_direct() {
    let (k, m, seed) = (8usize, 32usize, 7u64);
    println!(
        "### Direct builder — n-scaling on road_like (capped mode, k={k}, max_landmarks={m})\n"
    );
    let threads = std::thread::available_parallelism().map_or(1, |p| p.get());
    let mut table = Table::new(&[
        "n",
        "grid",
        "threads",
        "landmarks",
        "balls ms",
        "select ms",
        "columns ms",
        "extract ms",
        "total ms",
        "artifact MiB",
    ]);
    let mut pts = Vec::new();
    for (w, h) in [(40usize, 25usize), (100, 100), (400, 250), (1000, 1000)] {
        let g = generators::road_like(w, h, 30, 42).expect("graph");
        let started = Instant::now();
        let (oracle, trace) = cc_oracle::DirectBuilder::new()
            .k(k)
            .epsilon(0.25)
            .seed(seed)
            .max_landmarks(m)
            .build_traced(&g)
            .expect("direct build");
        let total_ms = started.elapsed().as_secs_f64() * 1e3;
        let phase_ms = |name: &str| {
            trace
                .span(name)
                .map_or_else(|| "-".into(), |s| format!("{:.0}", s.wall_ns as f64 / 1e6))
        };
        table.row(vec![
            oracle.n().to_string(),
            format!("{w}x{h}"),
            threads.to_string(),
            oracle.landmarks().len().to_string(),
            phase_ms("k_nearest_balls"),
            phase_ms("landmark_selection"),
            phase_ms("exact_columns"),
            phase_ms("local_extraction"),
            format!("{total_ms:.0}"),
            format!("{:.1}", oracle.artifact_bytes() as f64 / (1024.0 * 1024.0)),
        ]);
        pts.push((oracle.n() as f64, total_ms));
    }
    table.print();
    println!(
        "log-log slope of build time vs n: {:.2} (1.0 = linear scaling; the exact-columns phase is m Dijkstras, so O(m * n log n) dominates).\n",
        loglog_slope(&pts)
    );
}

/// Ablation: cost-model constants don't change algorithm rankings.
fn ablate_cost() {
    println!("### Ablation — cost-model sensitivity (unit vs conservative Lenzen constants)\n");
    let n = 128;
    let g = generators::path(n).unwrap();
    let mut table = Table::new(&["cost model", "BF rounds", "Thm 33 rounds", "ratio"]);
    for (label, cost) in
        [("unit", CostModel::unit()), ("conservative (16/10)", CostModel::conservative())]
    {
        let mut c_bf = Clique::with_cost_model(n, cost);
        let bf = sssp::bellman_ford(&mut c_bf, &g, 0, None).expect("bf");
        let mut c_fast = Clique::with_cost_model(n, cost);
        let fast = sssp::exact_sssp(&mut c_fast, &g, 0).expect("fast");
        table.row(vec![
            label.into(),
            bf.rounds.to_string(),
            fast.rounds.to_string(),
            format!("{:.2}", fast.rounds as f64 / bf.rounds as f64),
        ]);
    }
    table.print();
    println!("the constants rescale both algorithms; crossover-n moves but the asymptotic ordering is unchanged.\n");
}

/// Ablation: what Theorem 14's output filtering buys inside k-nearest.
fn ablate_filter() {
    println!("### Ablation — filtered vs unfiltered squaring (star graph: dense squares)\n");
    let n = 128;
    let k = 8;
    let g = generators::star(n).unwrap();
    let w = g.augmented_weight_matrix();
    let mut table = Table::new(&["method", "rounds", "output entries"]);

    let mut clique = Clique::new(n);
    let rows = k_nearest(&mut clique, &g, k).expect("k-nearest");
    let nnz: usize = rows.iter().map(|r| r.nnz()).sum();
    table.row(vec![
        "Thm 14 filtered squaring (k-nearest)".into(),
        clique.rounds().to_string(),
        nnz.to_string(),
    ]);

    let mut clique = Clique::new(n);
    let w_cols = w.transpose();
    let (sq, _) = cc_matmul::sparse_multiply_auto::<cc_matrix::AugMinPlus>(
        &mut clique,
        w.rows(),
        w_cols.rows(),
    )
    .expect("square");
    let nnz: usize = sq.iter().map(|r| r.nnz()).sum();
    table.row(vec![
        "unfiltered W^2 (one squaring only)".into(),
        clique.rounds().to_string(),
        nnz.to_string(),
    ]);
    table.print();
    println!("the unfiltered square of a star is already dense (n^2 entries); iterating it is hopeless, which is why Theorem 14 exists.\n");
}

/// Ablation: the shortcut parameter k = n^{5/6} of Theorem 33.
fn ablate_shortcut() {
    println!("### Ablation — Theorem 33 shortcut parameter (path, n=256)\n");
    let n = 256;
    let g = generators::path(n).unwrap();
    let mut table = Table::new(&["k exponent", "k", "rounds", "exact"]);
    let exact = reference::dijkstra(&g, 0);
    for (label, exp) in [("1/2", 0.5), ("2/3", 2.0 / 3.0), ("5/6", 5.0 / 6.0), ("0.95", 0.95)] {
        let k = (n as f64).powf(exp).ceil() as usize;
        let mut clique = Clique::new(n);
        let run = sssp::exact_sssp_with_k(&mut clique, &g, 0, k).expect("sssp");
        let ok = (0..n).all(|v| run.dist[v].value() == exact[v]);
        table.row(vec![label.into(), k.to_string(), run.rounds.to_string(), ok.to_string()]);
    }
    table.print();
}
