//! Wall-time benchmarks for the headline algorithms (E7–E12 companions).

use cc_clique::Clique;
use cc_core::{apsp, diameter, mssp, sssp};
use cc_graph::generators;
use cc_hopset::{build_hopset, HopsetConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn bench_hopset(c: &mut Criterion) {
    let n = 64;
    let g = generators::gnp_weighted(n, 5.0 / n as f64, 40, 1).expect("graph");
    c.bench_function("hopset_build_n64", |b| {
        b.iter(|| {
            let mut clique = Clique::new(n);
            build_hopset(&mut clique, std::hint::black_box(&g), HopsetConfig::new(0.5))
                .expect("hopset")
        });
    });
}

fn bench_mssp(c: &mut Criterion) {
    let n = 64;
    let g = generators::gnp_weighted(n, 5.0 / n as f64, 40, 2).expect("graph");
    let sources: Vec<usize> = (0..8).map(|i| i * 8).collect();
    c.bench_function("mssp_n64_s8", |b| {
        b.iter(|| {
            let mut clique = Clique::new(n);
            mssp::mssp(&mut clique, std::hint::black_box(&g), &sources, 0.5).expect("mssp")
        });
    });
}

fn bench_apsp_weighted(c: &mut Criterion) {
    let n = 64;
    let g = generators::gnp_weighted(n, 5.0 / n as f64, 40, 3).expect("graph");
    c.bench_function("apsp_weighted_2eps_n64", |b| {
        b.iter(|| {
            let mut clique = Clique::new(n);
            apsp::weighted_2eps(&mut clique, std::hint::black_box(&g), 0.5).expect("apsp")
        });
    });
}

fn bench_apsp_unweighted(c: &mut Criterion) {
    let n = 64;
    let g = generators::gnp(n, 0.1, 4).expect("graph");
    c.bench_function("apsp_unweighted_2eps_n64", |b| {
        b.iter(|| {
            let mut clique = Clique::new(n);
            apsp::unweighted_2eps(&mut clique, std::hint::black_box(&g), 0.5).expect("apsp")
        });
    });
}

fn bench_exact_sssp(c: &mut Criterion) {
    let n = 128;
    let g = generators::grid_weighted(16, 8, 20, 5).expect("graph");
    c.bench_function("exact_sssp_n128_grid", |b| {
        b.iter(|| {
            let mut clique = Clique::new(n);
            sssp::exact_sssp(&mut clique, std::hint::black_box(&g), 0).expect("sssp")
        });
    });
}

fn bench_diameter(c: &mut Criterion) {
    let n = 64;
    let g = generators::cycle(n).expect("graph");
    c.bench_function("diameter_approx_n64_cycle", |b| {
        b.iter(|| {
            let mut clique = Clique::new(n);
            diameter::diameter_approx(&mut clique, std::hint::black_box(&g), 0.25)
                .expect("diameter")
        });
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_hopset, bench_mssp, bench_apsp_weighted, bench_apsp_unweighted,
              bench_exact_sssp, bench_diameter
}
criterion_main!(benches);
