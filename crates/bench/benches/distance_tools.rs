//! Wall-time benchmarks for the distance tools (E3–E6 companions).

use cc_clique::Clique;
use cc_distance::{distance_through_sets, hitting_set, k_nearest, source_detection_all};
use cc_graph::generators;
use cc_matrix::Dist;
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

fn bench_k_nearest(c: &mut Criterion) {
    let n = 128;
    let g = generators::gnp_weighted(n, 4.0 / n as f64, 50, 1).expect("graph");
    c.bench_function("k_nearest_n128_k8", |b| {
        b.iter(|| {
            let mut clique = Clique::new(n);
            k_nearest(&mut clique, std::hint::black_box(&g), 8).expect("k-nearest")
        });
    });
}

fn bench_source_detection(c: &mut Criterion) {
    let n = 128;
    let g = generators::gnp_weighted(n, 4.0 / n as f64, 50, 2).expect("graph");
    let sources: Vec<usize> = (0..16).map(|i| i * 8).collect();
    c.bench_function("source_detection_n128_s16_d4", |b| {
        b.iter(|| {
            let mut clique = Clique::new(n);
            source_detection_all(&mut clique, std::hint::black_box(&g), &sources, 4)
                .expect("source detection")
        });
    });
}

fn bench_through_sets(c: &mut Criterion) {
    let n = 128;
    let mut rng = StdRng::seed_from_u64(3);
    let sets: Vec<Vec<(usize, Dist)>> = (0..n)
        .map(|_| (0..12).map(|_| (rng.gen_range(0..n), Dist::fin(rng.gen_range(1..100)))).collect())
        .collect();
    c.bench_function("distance_through_sets_n128_rho12", |b| {
        b.iter(|| {
            let mut clique = Clique::new(n);
            distance_through_sets(&mut clique, std::hint::black_box(&sets)).expect("through sets")
        });
    });
}

fn bench_hitting_set(c: &mut Criterion) {
    let n = 256;
    let mut rng = StdRng::seed_from_u64(4);
    let sets: Vec<Vec<usize>> =
        (0..n).map(|_| (0..16).map(|_| rng.gen_range(0..n)).collect()).collect();
    c.bench_function("hitting_set_n256_k16", |b| {
        b.iter(|| {
            let mut clique = Clique::new(n);
            hitting_set(&mut clique, std::hint::black_box(&sets), 16, 7).expect("hitting set")
        });
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_k_nearest, bench_source_detection, bench_through_sets, bench_hitting_set
}
criterion_main!(benches);
