//! End-to-end serving benchmark: a real `cc-serve` instance on a loopback
//! socket, hammered by keep-alive HTTP clients.
//!
//! Unlike the oracle bench (whose latency keys are percentiles of 64-query
//! means), every HTTP request here is timed individually — a request costs
//! tens of microseconds, so the clock read is noise — giving a **true
//! per-request tail**. Writes `BENCH_server.json` at the workspace root:
//! requests/sec plus per-request p50/p99 for `/distance`, batch-path
//! throughput for `/batch`, the same per-request tail measured **while
//! `/reload` hot-swaps snapshots under the traffic** — the cost of a swap
//! shows up (or, ideally, doesn't) in `reload_under_load_p99_ns` — and the
//! identical workload against the **router tier** (3 shards): the
//! `sharded_*` keys price the two-half-query combine with the result cache
//! disabled, and the `cached_sharded_*` keys repeat the workload with the
//! router behind a `CachingOracle` — recording whether the router-level
//! pair cache recovers the mono-vs-router throughput gap.
//!
//! Two observability keys ride along: `self_reported_request_p50/p99_ns`
//! are scraped from the server's own `/metrics` histogram after the
//! throughput phase (log₂ bucket bounds, so ≤2× the external numbers),
//! and `metrics_overhead_pct` compares requests/sec with the registry
//! enabled vs swapped for the no-op registry.
//!
//! Two transport-layer phases round the artifact out. The same batch
//! fixture is pushed through `/batch` as **binary frames**
//! (`application/x-cc-batch`) next to the text plane —
//! `binary_batch_pairs_per_sec` vs `batch_pairs_per_sec` prices the
//! parse/format overhead the frame format removes. And a
//! **connection-churn** phase (`scale_clients` concurrent clients, a few
//! requests per fresh connection) runs against the epoll reactor and the
//! poll fallback at identical load: `reactor_request_p50/p99_ns` vs
//! `poll_request_p50/p99_ns` exposes the poll loop's sleep-quantized
//! accept latency, which the reactor eliminates.

use cc_clique::Clique;
use cc_graph::generators;
use cc_oracle::{DistanceOracle, OracleBuilder};
use cc_server::{frame, BlockingClient, Server, ServerConfig, ServerHandle, Transport};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::net::SocketAddr;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

const N: usize = 256;
/// Concurrent keep-alive client connections for the throughput phase.
const CLIENTS: usize = 4;
/// Requests issued per client in the throughput phase.
const REQUESTS_PER_CLIENT: usize = 2_500;
/// Concurrent clients in the connection-churn phase — 10× the keep-alive
/// phase, exercising accept latency and idle-connection multiplexing.
const SCALE_CLIENTS: usize = 40;
/// Fresh connections each churn client opens.
const SCALE_CONNECTS: usize = 25;
/// Requests issued on each fresh connection before it is dropped, so
/// accept latency lands in the median, not just the tail.
const SCALE_REQUESTS_PER_CONNECT: usize = 2;
/// Pairs per `/batch` POST in the batch-plane phase — large enough that
/// per-pair costs (parse/format vs binary codec, plus the shared query)
/// dominate the fixed per-request HTTP overhead.
const BATCH_PAIRS: usize = 8_192;
/// Result-cache capacity for the bench servers: sized to hold the batch
/// fixture's working set (~6k distinct pairs), the way a deployment
/// provisions its cache for traffic, so the timed reps measure serving
/// cost rather than LRU thrash.
const CACHE_CAPACITY: usize = 16_384;

fn prebuilt() -> DistanceOracle {
    let g = generators::gnp_weighted(N, 0.06, 50, 17).expect("graph");
    let mut clique = Clique::new(N);
    OracleBuilder::new().epsilon(0.25).seed(7).build(&mut clique, &g).expect("build")
}

/// A second artifact over a different graph, so reloads in the bench swap
/// between genuinely different snapshots.
fn prebuilt_alt() -> DistanceOracle {
    let g = generators::gnp_weighted(N, 0.06, 50, 18).expect("graph");
    let mut clique = Clique::new(N);
    OracleBuilder::new().epsilon(0.25).seed(8).build(&mut clique, &g).expect("build")
}

/// The bench server serves `prebuilt()` with `reload_path` as its default
/// reload source. Keep-alive connections pin a worker each, so provision
/// for the busiest phase: `CLIENTS` hammer connections plus the reloader
/// plus the still-open criterion latency client.
fn start_server(reload_path: &Path) -> ServerHandle {
    let config = ServerConfig::default()
        .with_addr("127.0.0.1:0")
        .with_workers(CLIENTS + 2)
        .with_cache_capacity(CACHE_CAPACITY)
        .with_reload_path(reload_path);
    Server::start(&config, prebuilt()).expect("server start")
}

/// Deterministic request targets mixing a hot set with a uniform tail,
/// mirroring the oracle bench's traffic model.
fn targets(len: usize) -> Vec<String> {
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    (0..len)
        .map(|_| {
            let r = next();
            let (u, v) = if r % 4 == 0 {
                let hot = (r >> 8) as usize % 16;
                (hot, (hot * 31 + 7) % N)
            } else {
                ((r >> 8) as usize % N, (r >> 40) as usize % N)
            };
            format!("/distance?u={u}&v={v}")
        })
        .collect()
}

fn percentile(sorted_ns: &[u64], q: f64) -> u64 {
    sorted_ns[((sorted_ns.len() - 1) as f64 * q) as usize]
}

/// The measured serving numbers exported to BENCH_server.json.
struct Measurement {
    requests: usize,
    wall_secs: f64,
    p50_ns: u64,
    p99_ns: u64,
    batch_pairs_per_sec: f64,
    binary_batch_pairs_per_sec: f64,
}

/// Hammers the server with `CLIENTS` keep-alive connections, timing every
/// request individually.
fn measure(handle: &ServerHandle) -> Measurement {
    let addr = handle.addr();
    let per_client = targets(REQUESTS_PER_CLIENT);
    let started = Instant::now();
    let mut all_lat: Vec<u64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let per_client = &per_client;
                scope.spawn(move || {
                    let mut client = BlockingClient::connect(addr).expect("connect");
                    let mut lat = Vec::with_capacity(per_client.len());
                    // Offset each client into the stream so the hot set
                    // overlaps but the order differs.
                    for i in 0..per_client.len() {
                        let target = &per_client[(i + c * 37) % per_client.len()];
                        let t = Instant::now();
                        let (status, body) = client.get(target).expect("request");
                        lat.push(t.elapsed().as_nanos() as u64);
                        assert_eq!(status, 200, "bench request failed");
                        black_box(body);
                    }
                    lat
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("client thread")).collect()
    });
    let wall_secs = started.elapsed().as_secs_f64();
    all_lat.sort_unstable();

    // Batch path: one POST moving `BATCH_PAIRS` pairs through query_batch
    // — the identical workload on the text plane and as a binary frame.
    // Both planes get untimed warm-up reps first so the timed reps price
    // steady-state serving (warm result cache), not first-touch misses.
    let text_fixture: String = targets(BATCH_PAIRS)
        .iter()
        .map(|t| t.replace("/distance?u=", "").replace("&v=", " ") + "\n")
        .collect();
    let pair_fixture: Vec<(u32, u32)> = text_fixture
        .lines()
        .map(|l| {
            let (u, v) = l.split_once(' ').expect("fixture pair");
            (u.parse().expect("fixture u"), v.parse().expect("fixture v"))
        })
        .collect();
    let binary_fixture = frame::encode_request(&pair_fixture);
    let mut client = BlockingClient::connect(addr).expect("connect");
    let reps = 8;
    for _ in 0..2 {
        let (status, _) = client.post("/batch", text_fixture.as_bytes()).expect("warm batch");
        assert_eq!(status, 200);
        let (status, _) = client
            .post_with_content_type("/batch", frame::CONTENT_TYPE, &binary_fixture)
            .expect("warm binary batch");
        assert_eq!(status, 200);
    }
    let t = Instant::now();
    for _ in 0..reps {
        let (status, body) = client.post("/batch", text_fixture.as_bytes()).expect("batch");
        assert_eq!(status, 200);
        black_box(body);
    }
    let batch_pairs_per_sec = (reps * BATCH_PAIRS) as f64 / t.elapsed().as_secs_f64();

    let t = Instant::now();
    for _ in 0..reps {
        let (status, body) = client
            .post_with_content_type("/batch", frame::CONTENT_TYPE, &binary_fixture)
            .expect("binary batch");
        assert_eq!(status, 200, "binary batch failed");
        black_box(body);
    }
    let binary_batch_pairs_per_sec = (reps * BATCH_PAIRS) as f64 / t.elapsed().as_secs_f64();

    Measurement {
        requests: all_lat.len(),
        wall_secs,
        p50_ns: percentile(&all_lat, 0.50),
        p99_ns: percentile(&all_lat, 0.99),
        batch_pairs_per_sec,
        binary_batch_pairs_per_sec,
    }
}

/// Per-request latency under connection churn: `SCALE_CLIENTS` threads
/// each repeatedly connect, issue `SCALE_REQUESTS_PER_CONNECT` requests,
/// and drop the connection. The first sample on every connection includes
/// the TCP connect and the server's accept-to-read path — exactly where
/// the poll transport's 500 µs accept quantum and per-connection worker
/// pinning show up, and the epoll reactor does not.
struct ScaleMeasurement {
    requests: usize,
    p50_ns: u64,
    p99_ns: u64,
}

fn measure_connection_churn(addr: SocketAddr) -> ScaleMeasurement {
    let per_client = targets(SCALE_CONNECTS * SCALE_REQUESTS_PER_CONNECT);
    let mut all_lat: Vec<u64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..SCALE_CLIENTS)
            .map(|c| {
                let per_client = &per_client;
                scope.spawn(move || {
                    let mut lat = Vec::with_capacity(per_client.len());
                    for k in 0..SCALE_CONNECTS {
                        let at = |r: usize| {
                            &per_client
                                [(k * SCALE_REQUESTS_PER_CONNECT + r + c * 37) % per_client.len()]
                        };
                        let t = Instant::now();
                        let mut client = BlockingClient::connect(addr).expect("connect");
                        let (status, body) = client.get(at(0)).expect("first request");
                        lat.push(t.elapsed().as_nanos() as u64);
                        assert_eq!(status, 200, "churn request failed");
                        black_box(body);
                        for r in 1..SCALE_REQUESTS_PER_CONNECT {
                            let t = Instant::now();
                            let (status, body) = client.get(at(r)).expect("request");
                            lat.push(t.elapsed().as_nanos() as u64);
                            assert_eq!(status, 200, "churn request failed");
                            black_box(body);
                        }
                    }
                    lat
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("churn client thread")).collect()
    });
    all_lat.sort_unstable();
    ScaleMeasurement {
        requests: all_lat.len(),
        p50_ns: percentile(&all_lat, 0.50),
        p99_ns: percentile(&all_lat, 0.99),
    }
}

/// Runs the churn phase against a fresh server on the given transport.
fn measure_churn_on(transport: Transport) -> ScaleMeasurement {
    let config = ServerConfig::default().with_addr("127.0.0.1:0").with_transport(transport);
    let handle = Server::start(&config, prebuilt()).expect("server start");
    let m = measure_connection_churn(handle.addr());
    handle.shutdown();
    m
}

/// The server's own view of its `/distance` latency, plus what the
/// instrumentation costs — exported to BENCH_server.json.
struct SelfReported {
    p50_ns: u64,
    p99_ns: u64,
    overhead_pct: f64,
}

/// Scrapes the server's `/distance` latency histogram from `/metrics` and
/// reconstructs (p50, p99) the way a dashboard would: the upper bound of
/// the first bucket whose cumulative count reaches the quantile. Buckets
/// are log₂-spaced, so these overestimate the externally measured
/// percentiles by at most 2×.
fn scrape_self_reported(addr: SocketAddr) -> (u64, u64) {
    let mut client = BlockingClient::connect(addr).expect("connect");
    let (status, body) = client.get("/metrics").expect("scrape /metrics");
    assert_eq!(status, 200);
    let text = String::from_utf8(body).expect("utf-8 exposition");
    let prefix = "cc_request_duration_ns_bucket{endpoint=\"distance\",le=\"";
    let buckets: Vec<(f64, f64)> = text
        .lines()
        .filter_map(|l| {
            let rest = l.strip_prefix(prefix)?;
            let (le, cum) = rest.split_once("\"} ")?;
            let le = if le == "+Inf" { f64::INFINITY } else { le.parse().ok()? };
            Some((le, cum.parse().ok()?))
        })
        .collect();
    let total = buckets.last().expect("distance histogram present").1;
    let quantile = |q: f64| {
        buckets.iter().find(|(_, cum)| *cum >= q * total).map_or(u64::MAX, |(le, _)| {
            if le.is_finite() {
                *le as u64
            } else {
                u64::MAX
            }
        })
    };
    (quantile(0.50), quantile(0.99))
}

/// Requests/sec on a fresh server with the registry enabled or disabled,
/// after a short cache warm-up — the pair behind `metrics_overhead_pct`.
fn measure_throughput(reload_path: &Path, telemetry: bool) -> f64 {
    let config = ServerConfig::default()
        .with_addr("127.0.0.1:0")
        .with_workers(CLIENTS + 2)
        .with_reload_path(reload_path)
        .with_telemetry_enabled(telemetry);
    let handle = Server::start(&config, prebuilt()).expect("server start");
    let mut client = BlockingClient::connect(handle.addr()).expect("connect");
    for target in targets(512) {
        client.get(&target).expect("warm-up request");
    }
    drop(client);
    let m = measure(&handle);
    handle.shutdown();
    m.requests as f64 / m.wall_secs
}

/// The reload-under-load numbers exported to BENCH_server.json.
struct ReloadMeasurement {
    reloads: usize,
    p50_ns: u64,
    p99_ns: u64,
    reload_ms_mean: f64,
}

/// The same per-request tail measurement, but with a reloader thread
/// hot-swapping two snapshot files through `POST /reload` the whole time.
/// Every request must still answer `200`.
fn measure_reload_under_load(
    handle: &ServerHandle,
    live: &Path,
    snap_a: &[u8],
    snap_b: &[u8],
) -> ReloadMeasurement {
    let addr = handle.addr();
    let per_client = targets(REQUESTS_PER_CLIENT);
    let done = AtomicBool::new(false);
    let (mut all_lat, reload_ms): (Vec<u64>, Vec<f64>) = std::thread::scope(|scope| {
        let clients: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let per_client = &per_client;
                scope.spawn(move || {
                    let mut client = BlockingClient::connect(addr).expect("connect");
                    let mut lat = Vec::with_capacity(per_client.len());
                    for i in 0..per_client.len() {
                        let target = &per_client[(i + c * 37) % per_client.len()];
                        let t = Instant::now();
                        let (status, body) = client.get(target).expect("request");
                        lat.push(t.elapsed().as_nanos() as u64);
                        assert_eq!(status, 200, "request failed during reload");
                        black_box(body);
                    }
                    lat
                })
            })
            .collect();
        let reloader = {
            let done = &done;
            scope.spawn(move || {
                let mut client = BlockingClient::connect(addr).expect("connect");
                let mut times = Vec::new();
                let mut round = 0usize;
                while !done.load(Ordering::Relaxed) {
                    let bytes = if round.is_multiple_of(2) { snap_b } else { snap_a };
                    std::fs::write(live, bytes).expect("write snapshot");
                    let t = Instant::now();
                    let (status, body) = client.post("/reload", b"").expect("reload");
                    times.push(t.elapsed().as_secs_f64() * 1e3);
                    assert_eq!(status, 200, "reload failed: {}", String::from_utf8_lossy(&body));
                    round += 1;
                    std::thread::sleep(Duration::from_millis(10));
                }
                times
            })
        };
        let lat: Vec<u64> =
            clients.into_iter().flat_map(|h| h.join().expect("client thread")).collect();
        done.store(true, Ordering::Relaxed);
        (lat, reloader.join().expect("reloader thread"))
    });
    all_lat.sort_unstable();
    ReloadMeasurement {
        reloads: reload_ms.len(),
        p50_ns: percentile(&all_lat, 0.50),
        p99_ns: percentile(&all_lat, 0.99),
        reload_ms_mean: reload_ms.iter().sum::<f64>() / reload_ms.len().max(1) as f64,
    }
}

/// How many shards the router-tier phase slices the same artifact into.
const BENCH_SHARDS: usize = 3;

/// Router-tier phase results: the cache-disabled and cache-enabled
/// servers over the same shard set, plus the cached run's hit rate.
struct ShardedResults {
    uncached: Measurement,
    cached: Measurement,
    cached_hit_rate: f64,
}

/// Churn-phase results on both transports, emitted side by side.
struct ChurnComparison {
    reactor: ScaleMeasurement,
    poll: ScaleMeasurement,
}

fn emit_artifact(
    handle: &ServerHandle,
    m: &Measurement,
    r: &ReloadMeasurement,
    sharded: &ShardedResults,
    self_reported: &SelfReported,
    churn: &ChurnComparison,
) {
    let (s, cs) = (&sharded.uncached, &sharded.cached);
    let desc = handle.state().generation().descriptor();
    let json = format!(
        "{{\n  \"n\": {},\n  \"landmarks\": {},\n  \"artifact_bytes\": {},\n  \
         \"transport\": \"http/1.1 keep-alive over loopback\",\n  \
         \"clients\": {CLIENTS},\n  \"requests\": {},\n  \
         \"requests_per_sec\": {:.0},\n  \"request_p50_ns\": {},\n  \
         \"request_p99_ns\": {},\n  \
         \"self_reported_request_p50_ns\": {},\n  \
         \"self_reported_request_p99_ns\": {},\n  \
         \"metrics_overhead_pct\": {:.2},\n  \
         \"batch_pairs_per_sec\": {:.0},\n  \
         \"binary_batch_pairs_per_sec\": {:.0},\n  \
         \"scale_clients\": {SCALE_CLIENTS},\n  \"scale_requests\": {},\n  \
         \"reactor_request_p50_ns\": {},\n  \"reactor_request_p99_ns\": {},\n  \
         \"poll_request_p50_ns\": {},\n  \"poll_request_p99_ns\": {},\n  \
         \"reloads_under_load\": {},\n  \"reload_under_load_p50_ns\": {},\n  \
         \"reload_under_load_p99_ns\": {},\n  \"reload_ms_mean\": {:.2},\n  \
         \"sharded_shards\": {BENCH_SHARDS},\n  \"sharded_requests\": {},\n  \
         \"sharded_requests_per_sec\": {:.0},\n  \"sharded_request_p50_ns\": {},\n  \
         \"sharded_request_p99_ns\": {},\n  \"sharded_batch_pairs_per_sec\": {:.0},\n  \
         \"sharded_binary_batch_pairs_per_sec\": {:.0},\n  \
         \"cached_sharded_requests\": {},\n  \"cached_sharded_requests_per_sec\": {:.0},\n  \
         \"cached_sharded_request_p50_ns\": {},\n  \"cached_sharded_request_p99_ns\": {},\n  \
         \"cached_sharded_batch_pairs_per_sec\": {:.0},\n  \
         \"cached_sharded_hit_rate\": {:.4},\n  \
         \"stretch_bound\": {}\n}}\n",
        desc.n,
        desc.landmark_count,
        desc.artifact_bytes,
        m.requests,
        m.requests as f64 / m.wall_secs,
        m.p50_ns,
        m.p99_ns,
        self_reported.p50_ns,
        self_reported.p99_ns,
        self_reported.overhead_pct,
        m.batch_pairs_per_sec,
        m.binary_batch_pairs_per_sec,
        churn.reactor.requests,
        churn.reactor.p50_ns,
        churn.reactor.p99_ns,
        churn.poll.p50_ns,
        churn.poll.p99_ns,
        r.reloads,
        r.p50_ns,
        r.p99_ns,
        r.reload_ms_mean,
        s.requests,
        s.requests as f64 / s.wall_secs,
        s.p50_ns,
        s.p99_ns,
        s.batch_pairs_per_sec,
        s.binary_batch_pairs_per_sec,
        cs.requests,
        cs.requests as f64 / cs.wall_secs,
        cs.p50_ns,
        cs.p99_ns,
        cs.batch_pairs_per_sec,
        sharded.cached_hit_rate,
        desc.stretch_bound,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_server.json");
    std::fs::write(path, &json).expect("write BENCH_server.json");
    println!("BENCH_server.json: {json}");
}

/// Starts the router tier over `BENCH_SHARDS` per-shard snapshots of the
/// same prebuilt artifact, exercising the real file-loading startup path.
/// `cache_capacity` 0 disables the router-level result cache, isolating
/// the raw two-half-query combine cost.
fn start_sharded_server(dir: &Path, cache_capacity: usize) -> ServerHandle {
    let paths = cc_server::source::write_shard_snapshots(&prebuilt(), BENCH_SHARDS, dir)
        .expect("write shard set");
    let loaded = cc_server::source::load_shard_set(&paths).expect("load shard set");
    let config = ServerConfig::default()
        .with_addr("127.0.0.1:0")
        .with_workers(CLIENTS + 2)
        .with_cache_capacity(cache_capacity);
    Server::start_sharded(&config, loaded).expect("sharded server start")
}

fn bench_server(c: &mut Criterion) {
    // Two snapshot fixtures the reload phase alternates between.
    let dir = std::env::temp_dir().join("cc-bench-server");
    std::fs::create_dir_all(&dir).expect("bench temp dir");
    let live = dir.join("live.snap");
    let snap_a = cc_oracle::serde::to_bytes(&prebuilt());
    let snap_b = cc_oracle::serde::to_bytes(&prebuilt_alt());
    std::fs::write(&live, &snap_a).expect("write live snapshot");

    let handle = start_server(&live);
    let addr = handle.addr();

    // Human-readable single-request latency on one keep-alive connection.
    let mut client = BlockingClient::connect(addr).expect("connect");
    let paths = targets(1024);
    let mut at = 0usize;
    c.bench_function("server_distance_http_n256", |b| {
        b.iter(|| {
            let target = &paths[at];
            at = (at + 1) % paths.len();
            let (status, body) = client.get(target).expect("request");
            assert_eq!(status, 200);
            black_box(body)
        });
    });

    let m = measure(&handle);
    // Scrape the server's own histogram right after the throughput phase,
    // before the reload phase adds differently shaped traffic.
    let (self_p50, self_p99) = scrape_self_reported(addr);
    let r = measure_reload_under_load(&handle, &live, &snap_a, &snap_b);

    // What the registry costs: the identical workload on fresh servers,
    // instrumentation enabled vs swapped for the no-op registry.
    let rps_on = measure_throughput(&live, true);
    let rps_off = measure_throughput(&live, false);
    let self_reported = SelfReported {
        p50_ns: self_p50,
        p99_ns: self_p99,
        overhead_pct: (rps_off - rps_on) / rps_off * 100.0,
    };

    // The router tier on the same artifact and workload: once with the
    // result cache disabled (the raw combine cost) and once behind the
    // router-level CachingOracle, hammered by the identical client
    // harness — the pair of numbers that says whether the cache recovers
    // the mono-vs-router gap.
    let shard_dir = dir.join("shards");
    let sharded = start_sharded_server(&shard_dir, 0);
    let s = measure(&sharded);
    sharded.shutdown();
    let cached_sharded = start_sharded_server(&shard_dir, CACHE_CAPACITY);
    let cs = measure(&cached_sharded);
    let cached_hit_rate =
        cached_sharded.state().generation().descriptor().cache.map_or(0.0, |c| c.hit_rate());
    cached_sharded.shutdown();
    std::fs::remove_dir_all(&shard_dir).ok();

    // Transport head-to-head under connection churn: the epoll reactor vs
    // the poll loop, identical load on fresh servers.
    let reactor_churn = measure_churn_on(Transport::Auto);
    let poll_churn = measure_churn_on(Transport::Poll);

    emit_artifact(
        &handle,
        &m,
        &r,
        &ShardedResults { uncached: s, cached: cs, cached_hit_rate },
        &self_reported,
        &ChurnComparison { reactor: reactor_churn, poll: poll_churn },
    );
    std::fs::remove_file(&live).ok();
    handle.shutdown();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_server
}
criterion_main!(benches);
