//! Serving-path benchmark for the distance oracle: one expensive build
//! (measured in clique rounds), then query throughput with zero rounds per
//! request.
//!
//! Besides the human-readable criterion output, this bench writes
//! `BENCH_oracle.json` at the workspace root (build rounds, p50/p99 query
//! latency, queries/sec, cache hit rate) so later PRs can track the
//! serving-path trajectory. The JSON numbers are measured directly with
//! `Instant` so they do not depend on criterion internals.

use cc_clique::Clique;
use cc_graph::generators;
use cc_oracle::{CachingOracle, DirectBuilder, DistanceOracle, OracleBuilder};
use cc_telemetry::BuildTrace;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::{Duration, Instant};

const N: usize = 256;

fn prebuilt() -> (DistanceOracle, BuildTrace) {
    let g = generators::gnp_weighted(N, 0.06, 50, 17).expect("graph");
    let mut clique = Clique::new(N);
    OracleBuilder::new().epsilon(0.25).seed(7).build_traced(&mut clique, &g).expect("build")
}

/// A deterministic query stream with realistic skew: a handful of hot pairs
/// interleaved with a uniform tail.
fn traffic(len: usize) -> Vec<(usize, usize)> {
    let mut state = 0x2545_F491_4F6C_DD1Du64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    (0..len)
        .map(|_| {
            let r = next();
            if r % 4 == 0 {
                // Hot set: 16 popular pairs.
                let hot = (r >> 8) % 16;
                (hot as usize, (hot as usize * 31 + 7) % N)
            } else {
                ((r >> 8) as usize % N, (r >> 40) as usize % N)
            }
        })
        .collect()
}

fn percentile(sorted_ns: &[u64], q: f64) -> u64 {
    sorted_ns[((sorted_ns.len() - 1) as f64 * q) as usize]
}

/// Direct-builder n-scaling curve: one capped-mode build per decade on
/// `road_like` (k=8, max_landmarks=32 — the knobs that keep the 10^6-node
/// build tractable on one core), emitted as `direct_build_ms_n*` keys so
/// later PRs can track the large-artifact build path alongside the serving
/// path. The clique simulator cannot reach these sizes (its state is n^2),
/// which is exactly why the direct builder exists.
fn direct_scaling_keys() -> String {
    let threads = std::thread::available_parallelism().map_or(1, |p| p.get());
    let mut keys = String::new();
    let mut peak_landmarks = 0usize;
    for (label, w, h) in
        [("1e3", 40usize, 25usize), ("1e4", 100, 100), ("1e5", 400, 250), ("1e6", 1000, 1000)]
    {
        let g = generators::road_like(w, h, 30, 42).expect("graph");
        let t = Instant::now();
        let oracle = DirectBuilder::new()
            .k(8)
            .epsilon(0.25)
            .seed(7)
            .max_landmarks(32)
            .build(&g)
            .expect("direct build");
        let ms = t.elapsed().as_secs_f64() * 1e3;
        peak_landmarks = peak_landmarks.max(oracle.landmarks().len());
        println!(
            "direct build n={}: {:.0} ms, {} landmarks, {} KiB artifact",
            oracle.n(),
            ms,
            oracle.landmarks().len(),
            oracle.artifact_bytes() / 1024
        );
        keys.push_str(&format!("  \"direct_build_ms_n{label}\": {ms:.0},\n"));
    }
    keys.push_str(&format!("  \"direct_build_threads\": {threads},\n"));
    keys.push_str(&format!("  \"direct_build_peak_landmarks\": {peak_landmarks},\n"));
    keys
}

/// Measures the serving path directly and writes BENCH_oracle.json.
fn emit_artifact(oracle: &DistanceOracle, build_wall: Duration, trace: &BuildTrace) {
    let pairs = traffic(200_000);

    // Per-query latency distribution. A single query (~tens of ns) is the
    // same order as a clock read, so timing each one would mostly measure
    // clock_gettime; instead each sample times a run of 64 queries and
    // reports the per-query average, keeping clock overhead under 2%.
    //
    // These are therefore percentiles of 64-query *means*, which understate
    // the true per-request tail — the emitted keys say so
    // (`run64_mean_p50/p99_ns`). For a true per-request tail at a timescale
    // where clock reads are negligible, see BENCH_server.json, which times
    // every individual HTTP request.
    const RUN: usize = 64;
    let lat_pairs = &pairs[..40_960];
    let mut lat_ns: Vec<u64> = Vec::with_capacity(lat_pairs.len() / RUN);
    for chunk in lat_pairs.chunks_exact(RUN) {
        let t = Instant::now();
        for &(u, v) in chunk {
            black_box(oracle.try_query(u, v).unwrap());
        }
        lat_ns.push(t.elapsed().as_nanos() as u64 / RUN as u64);
    }
    lat_ns.sort_unstable();
    let p50 = percentile(&lat_ns, 0.50);
    let p99 = percentile(&lat_ns, 0.99);

    // Bulk throughput through the sharded batch path.
    let t = Instant::now();
    black_box(oracle.try_query_batch(&pairs).unwrap());
    let batch_secs = t.elapsed().as_secs_f64();
    let qps = pairs.len() as f64 / batch_secs;

    // Cache effectiveness on the skewed stream.
    let cached = CachingOracle::new(oracle.clone(), 4096);
    for &(u, v) in &pairs {
        black_box(cached.try_query(u, v).unwrap());
    }
    let stats = cached.stats();

    // Per-phase build cost out of the BuildTrace, one key per phase in
    // build order (`build_phase_<name>_ms`).
    let phase_keys: String = trace
        .spans()
        .iter()
        .map(|s| format!("  \"build_phase_{}_ms\": {:.2},\n", s.name, s.wall_ns as f64 / 1e6))
        .collect();

    let direct_keys = direct_scaling_keys();

    let json = format!(
        "{{\n  \"n\": {},\n  \"k\": {},\n  \"epsilon\": {},\n  \"landmarks\": {},\n  \
         \"build_rounds\": {},\n  \"build_wall_ms\": {:.1},\n{phase_keys}{direct_keys}  \
         \"artifact_bytes\": {},\n  \
         \"run64_mean_p50_ns\": {p50},\n  \"run64_mean_p99_ns\": {p99},\n  \
         \"queries_per_sec\": {:.0},\n  \
         \"cache_hit_rate\": {:.4},\n  \"stretch_bound\": {}\n}}\n",
        oracle.n(),
        oracle.k(),
        oracle.epsilon(),
        oracle.landmarks().len(),
        oracle.build_rounds(),
        build_wall.as_secs_f64() * 1e3,
        oracle.artifact_bytes(),
        qps,
        stats.hit_rate(),
        oracle.stretch_bound(),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_oracle.json");
    std::fs::write(path, &json).expect("write BENCH_oracle.json");
    println!("BENCH_oracle.json: {json}");
}

fn bench_oracle(c: &mut Criterion) {
    let t = Instant::now();
    let (oracle, trace) = prebuilt();
    let build_wall = t.elapsed();
    println!(
        "oracle build (one-off): n={N}, {} rounds, {} landmarks, {:.1} ms wall",
        oracle.build_rounds(),
        oracle.landmarks().len(),
        build_wall.as_secs_f64() * 1e3
    );

    let pairs = traffic(4096);
    let mut at = 0usize;
    c.bench_function("oracle_query_n256", |b| {
        b.iter(|| {
            let (u, v) = pairs[at];
            at = (at + 1) % pairs.len();
            black_box(oracle.try_query(u, v).unwrap())
        });
    });

    let batch = traffic(100_000);
    c.bench_function("oracle_query_batch_100k_n256", |b| {
        b.iter(|| black_box(oracle.try_query_batch(black_box(&batch)).unwrap()));
    });

    let cached = CachingOracle::new(oracle.clone(), 4096);
    let mut at = 0usize;
    c.bench_function("oracle_cached_query_n256", |b| {
        b.iter(|| {
            let (u, v) = pairs[at];
            at = (at + 1) % pairs.len();
            black_box(cached.try_query(u, v).unwrap())
        });
    });

    emit_artifact(&oracle, build_wall, &trace);
}

/// Build cost for context: the whole point is paying this once instead of
/// per query, so it is measured with a small sample size.
fn bench_build(c: &mut Criterion) {
    let g = generators::gnp_weighted(64, 0.1, 50, 3).expect("graph");
    c.bench_function("oracle_build_n64", |b| {
        b.iter(|| {
            let mut clique = Clique::new(64);
            OracleBuilder::new().build(&mut clique, black_box(&g)).expect("build")
        });
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_oracle, bench_build
}
criterion_main!(benches);
