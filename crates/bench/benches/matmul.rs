//! Wall-time benchmarks for the matrix-multiplication engine (E1/E2
//! companions — round counts live in the `experiments` binary; these track
//! simulator throughput).

use cc_bench::random_sparse;
use cc_clique::Clique;
use cc_matrix::MinPlus;
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn bench_sparse_multiply(c: &mut Criterion) {
    let n = 128;
    let s = random_sparse(n, 8, 1);
    let t = random_sparse(n, 8, 2);
    let t_cols = t.transpose();
    let rho_out = s.multiply::<MinPlus>(&t).density();
    c.bench_function("sparse_multiply_n128_rho8", |b| {
        b.iter(|| {
            let mut clique = Clique::new(n);
            cc_matmul::sparse_multiply::<MinPlus>(
                &mut clique,
                std::hint::black_box(s.rows()),
                t_cols.rows(),
                rho_out,
            )
            .expect("multiply")
        });
    });
}

fn bench_filtered_multiply(c: &mut Criterion) {
    let n = 128;
    let s = random_sparse(n, 8, 3);
    let t = random_sparse(n, 8, 4);
    let t_cols = t.transpose();
    c.bench_function("filtered_multiply_n128_rho8_filter8", |b| {
        b.iter(|| {
            let mut clique = Clique::new(n);
            cc_matmul::filtered_multiply::<MinPlus>(
                &mut clique,
                std::hint::black_box(s.rows()),
                t_cols.rows(),
                8,
            )
            .expect("filtered multiply")
        });
    });
}

fn bench_dense_multiply(c: &mut Criterion) {
    let n = 64;
    let s = random_sparse(n, n, 5);
    let t = random_sparse(n, n, 6);
    let t_cols = t.transpose();
    c.bench_function("dense_multiply_n64_full", |b| {
        b.iter(|| {
            let mut clique = Clique::new(n);
            cc_matmul::dense_multiply::<MinPlus>(
                &mut clique,
                std::hint::black_box(s.rows()),
                t_cols.rows(),
            )
            .expect("dense multiply")
        });
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_sparse_multiply, bench_filtered_multiply, bench_dense_multiply
}
criterion_main!(benches);
