//! Property-based tests for the simulator's accounting invariants: round
//! charges always reflect the worst per-node load, delivery is lossless and
//! deterministic, and capacity rules can't be cheated.

use cc_clique::{Clique, CostModel, Envelope};
use proptest::prelude::*;

fn arb_msgs(n: usize, max: usize) -> impl Strategy<Value = Vec<(usize, usize, u64)>> {
    prop::collection::vec((0..n, 0..n, 0u64..1000), 0..max)
}

proptest! {
    #[test]
    fn route_charges_exactly_ceil_of_max_load(msgs in arb_msgs(6, 120)) {
        let n = 6;
        let mut clique = Clique::new(n);
        let envelopes: Vec<Envelope<u64>> =
            msgs.iter().map(|&(s, d, p)| Envelope::new(s, d, p)).collect();
        let mut sent = vec![0u64; n];
        let mut recv = vec![0u64; n];
        for &(s, d, _) in &msgs {
            sent[s] += 1;
            recv[d] += 1;
        }
        let load = sent.iter().chain(recv.iter()).copied().max().unwrap_or(0);
        let expected = if msgs.is_empty() { 0 } else { load.div_ceil(n as u64).max(1) };
        let inboxes = clique.route(envelopes).unwrap();
        prop_assert_eq!(clique.rounds(), expected);
        // Lossless: every message arrives exactly once.
        let delivered: usize = inboxes.iter().map(Vec::len).sum();
        prop_assert_eq!(delivered, msgs.len());
    }

    #[test]
    fn route_delivery_is_order_insensitive(msgs in arb_msgs(5, 40), seed in 0u64..1000) {
        // Shuffling the submission order must not change what arrives
        // (delivery is grouped by source, insertion-ordered per source —
        // so we compare as multisets per destination).
        let n = 5;
        let build = |order: &[usize]| {
            let mut clique = Clique::new(n);
            let envelopes: Vec<Envelope<u64>> =
                order.iter().map(|&i| msgs[i]).map(|(s, d, p)| Envelope::new(s, d, p)).collect();
            let mut inboxes = clique.route(envelopes).unwrap();
            for inbox in &mut inboxes {
                inbox.sort_by_key(|e| (e.src, e.payload));
            }
            (inboxes, clique.rounds())
        };
        let identity: Vec<usize> = (0..msgs.len()).collect();
        let mut shuffled = identity.clone();
        // Cheap deterministic shuffle.
        for i in (1..shuffled.len()).rev() {
            let j = (seed as usize).wrapping_mul(31).wrapping_add(i) % (i + 1);
            shuffled.swap(i, j);
        }
        let (a, ra) = build(&identity);
        let (b, rb) = build(&shuffled);
        prop_assert_eq!(a, b);
        prop_assert_eq!(ra, rb);
    }

    #[test]
    fn sort_is_a_permutation_and_batches_bounded(
        items in prop::collection::vec(prop::collection::vec(0u64..100, 0..8), 4)
    ) {
        let mut clique = Clique::new(4);
        let mut expected: Vec<u64> = items.iter().flatten().copied().collect();
        expected.sort_unstable();
        let out = clique.sort(items).unwrap();
        let flat: Vec<u64> = out.iter().flatten().copied().collect();
        prop_assert_eq!(flat, expected);
        let run = out.iter().map(Vec::len).max().unwrap_or(0);
        for (i, batch) in out.iter().enumerate() {
            // All batches except possibly trailing ones are full runs.
            prop_assert!(batch.len() <= run);
            if batch.is_empty() {
                prop_assert!(out.iter().skip(i).all(Vec::is_empty));
            }
        }
    }

    #[test]
    fn conservative_cost_model_scales_linearly(msgs in arb_msgs(6, 60)) {
        let envelopes = |v: &Vec<(usize, usize, u64)>| -> Vec<Envelope<u64>> {
            v.iter().map(|&(s, d, p)| Envelope::new(s, d, p)).collect()
        };
        let mut unit = Clique::new(6);
        unit.route(envelopes(&msgs)).unwrap();
        let mut cons = Clique::with_cost_model(6, CostModel::conservative());
        cons.route(envelopes(&msgs)).unwrap();
        prop_assert_eq!(cons.rounds(), 16 * unit.rounds());
    }
}

#[test]
fn broadcast_rejects_foreign_nodes_and_charges_words() {
    let mut clique = Clique::new(3);
    assert!(clique.broadcast(7, 1u64).is_err());
    clique.broadcast(1, [5u64; 4]).unwrap();
    assert_eq!(clique.rounds(), 4);
}
