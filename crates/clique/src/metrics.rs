use std::collections::BTreeMap;
use std::fmt;

/// Communication statistics of one accounting bucket (a phase or the total).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseStats {
    /// Rounds charged to this bucket.
    pub rounds: u64,
    /// Messages (envelopes) delivered in this bucket.
    pub messages: u64,
    /// Words moved in this bucket.
    pub words: u64,
    /// Primitive invocations attributed to this bucket.
    pub invocations: u64,
}

impl PhaseStats {
    fn absorb(&mut self, rounds: u64, messages: u64, words: u64) {
        self.rounds += rounds;
        self.messages += messages;
        self.words += words;
        self.invocations += 1;
    }
}

/// Cumulative communication metrics of a [`Clique`](crate::Clique).
///
/// Rounds are the paper's complexity measure; messages and words are kept to
/// let experiments inspect link loads. Metrics are broken down by *phase*
/// label (see [`Clique::with_phase`](crate::Clique::with_phase)); nested
/// phases are joined with `/`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Total rounds charged so far.
    pub rounds: u64,
    /// Total messages delivered so far.
    pub messages: u64,
    /// Total words moved so far.
    pub words: u64,
    /// Largest per-node word load (send or receive) seen in a single
    /// primitive invocation.
    pub max_node_load: u64,
    /// Per-phase breakdown.
    pub phases: BTreeMap<String, PhaseStats>,
}

impl Metrics {
    pub(crate) fn record(
        &mut self,
        phase: &str,
        rounds: u64,
        messages: u64,
        words: u64,
        load: u64,
    ) {
        self.rounds += rounds;
        self.messages += messages;
        self.words += words;
        self.max_node_load = self.max_node_load.max(load);
        self.phases.entry(phase.to_owned()).or_default().absorb(rounds, messages, words);
    }
}

/// A snapshot of the metrics of one algorithm run, attached to its result.
///
/// # Example
///
/// ```
/// use cc_clique::Clique;
///
/// let mut clique = Clique::new(4);
/// clique.charge("setup", 3);
/// let report = clique.report();
/// assert_eq!(report.rounds, 3);
/// assert_eq!(report.n, 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundReport {
    /// Number of nodes in the clique the algorithm ran on.
    pub n: usize,
    /// Total rounds the run charged.
    pub rounds: u64,
    /// Total messages the run delivered.
    pub messages: u64,
    /// Total words the run moved.
    pub words: u64,
    /// Per-phase breakdown of the run.
    pub phases: BTreeMap<String, PhaseStats>,
}

impl fmt::Display for RoundReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "n={} rounds={} messages={} words={}",
            self.n, self.rounds, self.messages, self.words
        )?;
        for (phase, stats) in &self.phases {
            writeln!(
                f,
                "  {:<40} rounds={:<8} msgs={:<10} words={}",
                phase, stats.rounds, stats.messages, stats.words
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates_totals_and_phases() {
        let mut m = Metrics::default();
        m.record("a", 2, 10, 20, 5);
        m.record("a", 1, 5, 5, 9);
        m.record("b", 3, 0, 0, 0);
        assert_eq!(m.rounds, 6);
        assert_eq!(m.messages, 15);
        assert_eq!(m.words, 25);
        assert_eq!(m.max_node_load, 9);
        assert_eq!(m.phases["a"].rounds, 3);
        assert_eq!(m.phases["a"].invocations, 2);
        assert_eq!(m.phases["b"].rounds, 3);
    }

    #[test]
    fn report_display_lists_phases() {
        let mut m = Metrics::default();
        m.record("knearest/square", 4, 2, 2, 1);
        let report = RoundReport {
            n: 8,
            rounds: m.rounds,
            messages: m.messages,
            words: m.words,
            phases: m.phases,
        };
        let s = report.to_string();
        assert!(s.contains("rounds=4"));
        assert!(s.contains("knearest/square"));
    }
}
