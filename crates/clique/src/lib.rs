//! # `cc-clique`: a message-accurate Congested Clique simulator
//!
//! The **Congested Clique** is a synchronous distributed model: `n` nodes,
//! every pair connected, and in each round every node may send one message of
//! `O(log n)` bits over each of its `n - 1` links (and receives accordingly).
//! Local computation is free.
//!
//! This crate provides the substrate on which the rest of the workspace runs
//! the algorithms of *Fast Approximate Shortest Paths in the Congested
//! Clique* (PODC 2019). Algorithms keep per-node state in ordinary `Vec`s and
//! move information between nodes **only** through the primitives of
//! [`Clique`]:
//!
//! * [`Clique::route`] — Lenzen's routing: any message pattern in which every
//!   node sends at most `n` words and receives at most `n` words is delivered
//!   in `O(1)` rounds; larger patterns are charged proportionally
//!   (`ceil(load/n)` round-units).
//! * [`Clique::broadcast`] / [`Clique::all_broadcast`] — one-to-all and
//!   all-to-all broadcast of `O(1)` words per node per round.
//! * [`Clique::sort`] — Lenzen's sorting: `≤ n` words per node are globally
//!   sorted in `O(1)` rounds, with node `i` receiving the `i`-th batch.
//! * [`Clique::charge`] — explicit round charge for a primitive whose cost is
//!   cited from the literature (used only for Lemma 4 hitting sets).
//!
//! Every primitive *physically moves the data* (so algorithms cannot cheat),
//! *validates* the model's bandwidth constraints, and *accounts* rounds,
//! messages and words into [`Metrics`], broken down by algorithm phase.
//!
//! # Example
//!
//! ```
//! use cc_clique::{Clique, Envelope};
//!
//! # fn main() -> Result<(), cc_clique::CliqueError> {
//! let mut clique = Clique::new(4);
//! // Every node sends its id squared to node 0.
//! let msgs = (0..4).map(|v| Envelope::new(v, 0, (v * v) as u64)).collect();
//! let inboxes = clique.route(msgs)?;
//! assert_eq!(inboxes[0].len(), 4);
//! assert_eq!(clique.metrics().rounds, 1);
//! # Ok(())
//! # }
//! ```
//!
//! Unsafe code is forbidden (`#![forbid(unsafe_code)]`), as across the
//! whole workspace.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cost;
mod error;
mod metrics;
mod payload;
mod sim;

pub use cost::CostModel;
pub use error::CliqueError;
pub use metrics::{Metrics, PhaseStats, RoundReport};
pub use payload::Payload;
pub use sim::{Clique, Envelope};

/// Identifier of a node in the clique, in `0..n`.
pub type NodeId = usize;

/// Convenience alias for results returned by simulator primitives.
pub type Result<T> = std::result::Result<T, CliqueError>;
