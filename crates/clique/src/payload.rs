/// A value that can travel over a clique link.
///
/// The Congested Clique allows `O(log n)`-bit messages; we measure message
/// size in **words**, where one word is `O(log n)` bits — enough for a node
/// id, an edge weight polynomial in `n`, or a hop count. A payload declares
/// how many words it occupies via [`Payload::words`]; the simulator uses this
/// for bandwidth accounting.
///
/// Scalar types count as one word. Tuples add up their components, so a
/// `(u32, u64)` matrix coordinate-and-value message is two words. Constant
/// size is required — payloads of unbounded size must be split into multiple
/// envelopes by the caller.
///
/// # Example
///
/// ```
/// use cc_clique::Payload;
///
/// assert_eq!(7u64.words(), 1);
/// assert_eq!((1u32, 2u32, 3u64).words(), 3);
/// ```
pub trait Payload: Clone + std::fmt::Debug {
    /// Number of `O(log n)`-bit words this payload occupies on the wire.
    fn words(&self) -> usize {
        1
    }
}

macro_rules! scalar_payload {
    ($($t:ty),* $(,)?) => {
        $(impl Payload for $t {
            fn words(&self) -> usize { 1 }
        })*
    };
}

scalar_payload!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, char);

impl Payload for () {
    fn words(&self) -> usize {
        0
    }
}

impl<T: Payload> Payload for Option<T> {
    fn words(&self) -> usize {
        // The discriminant rides along in the same word as the content when
        // present; an absent value still costs a word to say "nothing".
        match self {
            Some(t) => t.words(),
            None => 1,
        }
    }
}

macro_rules! tuple_payload {
    ($($name:ident),+) => {
        impl<$($name: Payload),+> Payload for ($($name,)+) {
            fn words(&self) -> usize {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                0 $(+ $name.words())+
            }
        }
    };
}

tuple_payload!(A);
tuple_payload!(A, B);
tuple_payload!(A, B, C);
tuple_payload!(A, B, C, D);
tuple_payload!(A, B, C, D, E);
tuple_payload!(A, B, C, D, E, F);

impl<T: Payload, const N: usize> Payload for [T; N] {
    fn words(&self) -> usize {
        self.iter().map(Payload::words).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_are_one_word() {
        assert_eq!(0u8.words(), 1);
        assert_eq!(0u64.words(), 1);
        assert_eq!(true.words(), 1);
        assert_eq!('x'.words(), 1);
    }

    #[test]
    fn unit_is_free() {
        assert_eq!(().words(), 0);
    }

    #[test]
    fn tuples_sum_components() {
        assert_eq!((1u32,).words(), 1);
        assert_eq!((1u32, 2u32).words(), 2);
        assert_eq!((1u32, (2u32, 3u32)).words(), 3);
        assert_eq!((1u32, 2u32, 3u32, 4u32, 5u32, 6u32).words(), 6);
    }

    #[test]
    fn arrays_sum_components() {
        assert_eq!([1u32; 5].words(), 5);
    }

    #[test]
    fn options_cost_at_least_one_word() {
        assert_eq!(Some(3u64).words(), 1);
        assert_eq!(None::<u64>.words(), 1);
        assert_eq!(Some((1u32, 2u32)).words(), 2);
    }
}
