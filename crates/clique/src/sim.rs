use crate::{CliqueError, CostModel, Metrics, NodeId, Payload, Result, RoundReport};

/// A message in flight: `payload` travelling from `src` to `dst`.
///
/// # Example
///
/// ```
/// use cc_clique::Envelope;
///
/// let e = Envelope::new(0, 3, (7u32, 9u64));
/// assert_eq!(e.src, 0);
/// assert_eq!(e.dst, 3);
/// assert_eq!(e.payload, (7, 9));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope<T> {
    /// Sending node.
    pub src: NodeId,
    /// Receiving node.
    pub dst: NodeId,
    /// The message content.
    pub payload: T,
}

impl<T> Envelope<T> {
    /// Creates a new envelope.
    pub fn new(src: NodeId, dst: NodeId, payload: T) -> Self {
        Envelope { src, dst, payload }
    }
}

/// The Congested Clique simulator: `n` nodes, full connectivity, synchronous
/// rounds, `O(log n)`-bit messages.
///
/// A `Clique` owns no algorithm state — algorithms keep per-node state in
/// their own `Vec`s indexed by [`NodeId`] and call the primitives here for
/// every piece of cross-node communication. The simulator physically delivers
/// the data, enforces the model's bandwidth constraints and accounts rounds
/// (see the [crate docs](crate) for the cost contract of each primitive).
///
/// # Example
///
/// ```
/// use cc_clique::{Clique, Envelope};
///
/// # fn main() -> Result<(), cc_clique::CliqueError> {
/// let mut clique = Clique::new(8);
/// // All-to-all: every node tells every other node its id.
/// let ids: Vec<u64> = (0..8u64).collect();
/// let known = clique.all_broadcast(ids)?;
/// assert_eq!(known[5], 5);
/// assert_eq!(clique.metrics().rounds, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Clique {
    n: usize,
    cost: CostModel,
    metrics: Metrics,
    phase_stack: Vec<String>,
}

impl Clique {
    /// Creates a clique of `n` nodes with the default (unit) cost model.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        Self::with_cost_model(n, CostModel::default())
    }

    /// Creates a clique of `n` nodes with an explicit [`CostModel`].
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn with_cost_model(n: usize, cost: CostModel) -> Self {
        assert!(n > 0, "a congested clique needs at least one node");
        Clique { n, cost, metrics: Metrics::default(), phase_stack: Vec::new() }
    }

    /// Number of nodes in the clique.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The cost model in effect.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Cumulative metrics since construction (or the last [`Clique::reset`]).
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Total rounds charged so far.
    pub fn rounds(&self) -> u64 {
        self.metrics.rounds
    }

    /// Snapshot of the metrics as a [`RoundReport`].
    pub fn report(&self) -> RoundReport {
        RoundReport {
            n: self.n,
            rounds: self.metrics.rounds,
            messages: self.metrics.messages,
            words: self.metrics.words,
            phases: self.metrics.phases.clone(),
        }
    }

    /// Clears all metrics (the clique itself carries no other state).
    pub fn reset(&mut self) {
        self.metrics = Metrics::default();
    }

    /// Runs `f` with all communication attributed to phase `label`.
    ///
    /// Phases nest; nested labels are joined with `/` in the metrics
    /// breakdown.
    ///
    /// # Example
    ///
    /// ```
    /// use cc_clique::Clique;
    ///
    /// let mut clique = Clique::new(4);
    /// clique.with_phase("apsp", |c| {
    ///     c.with_phase("knearest", |c| c.charge("inner", 2));
    /// });
    /// assert!(clique.metrics().phases.contains_key("apsp/knearest/inner"));
    /// ```
    pub fn with_phase<R>(&mut self, label: &str, f: impl FnOnce(&mut Self) -> R) -> R {
        self.phase_stack.push(label.to_owned());
        let out = f(self);
        self.phase_stack.pop();
        out
    }

    fn phase_label(&self, leaf: &str) -> String {
        if self.phase_stack.is_empty() {
            leaf.to_owned()
        } else {
            let mut s = self.phase_stack.join("/");
            if !leaf.is_empty() {
                s.push('/');
                s.push_str(leaf);
            }
            s
        }
    }

    fn check_node(&self, v: NodeId) -> Result<()> {
        if v >= self.n {
            Err(CliqueError::InvalidNode { node: v, n: self.n })
        } else {
            Ok(())
        }
    }

    fn check_len<T>(&self, per_node: &[T]) -> Result<()> {
        if per_node.len() != self.n {
            Err(CliqueError::WrongLength { expected: self.n, got: per_node.len() })
        } else {
            Ok(())
        }
    }

    /// Charges `rounds` rounds explicitly, attributed to the current phase.
    ///
    /// Used for primitives whose cost is cited from the literature rather
    /// than decomposed into routing (only the Lemma 4 hitting-set
    /// `O((log log n)³)` charge in this workspace).
    pub fn charge(&mut self, label: &str, rounds: u64) {
        let phase = self.phase_label(label);
        self.metrics.record(&phase, rounds, 0, 0, 0);
    }

    /// Delivers an arbitrary message pattern via Lenzen's routing.
    ///
    /// Returns the inbox of every node (indexed by destination, messages in
    /// deterministic `(src, insertion)` order). With per-node load
    /// `L = max_v max(sent_v, received_v)` words, charges
    /// `route_per_unit · ceil(L/n)` rounds — `O(1)` whenever every node sends
    /// and receives at most `n` words, exactly the contract the paper uses.
    ///
    /// # Errors
    ///
    /// Returns [`CliqueError::InvalidNode`] if any envelope references a node
    /// outside the clique.
    pub fn route<T: Payload>(&mut self, msgs: Vec<Envelope<T>>) -> Result<Vec<Vec<Envelope<T>>>> {
        let mut sent = vec![0u64; self.n];
        let mut recv = vec![0u64; self.n];
        let mut words = 0u64;
        for m in &msgs {
            self.check_node(m.src)?;
            self.check_node(m.dst)?;
            let w = m.payload.words() as u64;
            sent[m.src] += w;
            recv[m.dst] += w;
            words += w;
        }
        let load = sent.iter().chain(recv.iter()).copied().max().unwrap_or(0);
        let rounds = if msgs.is_empty() {
            0
        } else {
            self.cost.route_per_unit * load.div_ceil(self.n as u64).max(1)
        };
        let phase = self.phase_label("route");
        self.metrics.record(&phase, rounds, msgs.len() as u64, words, load);

        let mut inboxes: Vec<Vec<Envelope<T>>> = vec![Vec::new(); self.n];
        // Deterministic delivery order: stable sort by source, preserving the
        // per-source insertion order.
        let mut msgs = msgs;
        msgs.sort_by_key(|m| m.src);
        for m in msgs {
            inboxes[m.dst].push(m);
        }
        Ok(inboxes)
    }

    /// Node `src` broadcasts `payload` to every node.
    ///
    /// Charges `broadcast_per_unit · max(words, 1)` rounds (one word per link
    /// per round). Returns the payload, now known to all nodes.
    ///
    /// # Errors
    ///
    /// Returns [`CliqueError::InvalidNode`] if `src` is outside the clique.
    pub fn broadcast<T: Payload>(&mut self, src: NodeId, payload: T) -> Result<T> {
        self.check_node(src)?;
        let w = payload.words() as u64;
        let rounds = self.cost.broadcast_per_unit * w.max(1);
        let phase = self.phase_label("broadcast");
        self.metrics.record(&phase, rounds, (self.n - 1) as u64, w * (self.n as u64 - 1), w);
        Ok(payload)
    }

    /// Every node broadcasts its entry of `per_node` to every other node.
    ///
    /// After this call all nodes know the whole vector, which is returned.
    /// Charges `broadcast_per_unit · max_v words_v` rounds: each node can
    /// deliver one word to all others per round.
    ///
    /// # Errors
    ///
    /// Returns [`CliqueError::WrongLength`] if `per_node.len() != n`.
    pub fn all_broadcast<T: Payload>(&mut self, per_node: Vec<T>) -> Result<Vec<T>> {
        self.check_len(&per_node)?;
        let max_w = per_node.iter().map(|p| p.words() as u64).max().unwrap_or(0);
        let total_w: u64 = per_node.iter().map(|p| p.words() as u64).sum();
        let rounds = self.cost.broadcast_per_unit * max_w.max(1);
        let phase = self.phase_label("all_broadcast");
        let fanout = self.n as u64 - 1;
        self.metrics.record(
            &phase,
            rounds,
            self.n as u64 * fanout,
            total_w * fanout,
            max_w * fanout / (self.n as u64).max(1),
        );
        Ok(per_node)
    }

    /// Globally sorts all items via Lenzen's sorting algorithm.
    ///
    /// Input: each node holds a batch of comparable items. Output: node `i`
    /// receives the `i`-th contiguous run of the global sorted order, with
    /// run length `ceil(total/n)` (the last run may be shorter). With
    /// `L = max_v items_v · words_per_item`, charges
    /// `sort_per_unit · ceil(L/n)` rounds — `O(1)` when every node holds at
    /// most `n` words, the precondition of Lenzen's algorithm.
    ///
    /// Ties are broken by the items' full `Ord`; callers that need a strict
    /// global order should include a tiebreaker (e.g. `(key, src, seq)`).
    ///
    /// # Errors
    ///
    /// Returns [`CliqueError::WrongLength`] if `per_node.len() != n`.
    pub fn sort<T: Payload + Ord>(&mut self, per_node: Vec<Vec<T>>) -> Result<Vec<Vec<T>>> {
        self.check_len(&per_node)?;
        let load = per_node
            .iter()
            .map(|items| items.iter().map(|it| it.words() as u64).sum::<u64>())
            .max()
            .unwrap_or(0);
        let mut all: Vec<T> = per_node.into_iter().flatten().collect();
        let total_words: u64 = all.iter().map(|it| it.words() as u64).sum();
        let rounds = if all.is_empty() {
            0
        } else {
            self.cost.sort_per_unit * load.div_ceil(self.n as u64).max(1)
        };
        let phase = self.phase_label("sort");
        self.metrics.record(&phase, rounds, all.len() as u64, total_words, load);

        all.sort();
        let run = all.len().div_ceil(self.n).max(1);
        let mut out: Vec<Vec<T>> = Vec::with_capacity(self.n);
        let mut iter = all.into_iter();
        for _ in 0..self.n {
            out.push(iter.by_ref().take(run).collect());
        }
        debug_assert!(iter.next().is_none());
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_panics() {
        let _ = Clique::new(0);
    }

    #[test]
    fn route_unit_load_costs_one_round() {
        let mut c = Clique::new(4);
        let msgs = (0..4).map(|v| Envelope::new(v, (v + 1) % 4, v as u64)).collect();
        let inboxes = c.route(msgs).unwrap();
        assert_eq!(c.rounds(), 1);
        assert_eq!(inboxes.iter().map(Vec::len).sum::<usize>(), 4);
        assert_eq!(inboxes[1][0].payload, 0);
    }

    #[test]
    fn route_empty_is_free() {
        let mut c = Clique::new(4);
        let inboxes = c.route(Vec::<Envelope<u64>>::new()).unwrap();
        assert_eq!(c.rounds(), 0);
        assert!(inboxes.iter().all(Vec::is_empty));
    }

    #[test]
    fn route_overloaded_receiver_charges_extra_rounds() {
        let n = 4;
        let mut c = Clique::new(n);
        // Node 0 receives 3 words from each node (12 words total > n=4):
        // ceil(12/4) = 3 rounds.
        let msgs = (0..n).map(|v| Envelope::new(v, 0, [v as u64; 3])).collect();
        c.route(msgs).unwrap();
        assert_eq!(c.rounds(), 3);
    }

    #[test]
    fn route_overloaded_sender_charges_extra_rounds() {
        let n = 4;
        let mut c = Clique::new(n);
        // Node 0 sends 2 words to each node: 8 words, ceil(8/4) = 2 rounds.
        let msgs = (0..n).map(|d| Envelope::new(0, d, (1u64, 2u64))).collect();
        c.route(msgs).unwrap();
        assert_eq!(c.rounds(), 2);
    }

    #[test]
    fn route_rejects_bad_node() {
        let mut c = Clique::new(4);
        let err = c.route(vec![Envelope::new(0, 9, 1u64)]).unwrap_err();
        assert_eq!(err, CliqueError::InvalidNode { node: 9, n: 4 });
    }

    #[test]
    fn route_is_deterministic() {
        let build = || {
            vec![
                Envelope::new(3, 0, 30u64),
                Envelope::new(1, 0, 10u64),
                Envelope::new(1, 0, 11u64),
                Envelope::new(2, 0, 20u64),
            ]
        };
        let mut c1 = Clique::new(4);
        let mut c2 = Clique::new(4);
        let a = c1.route(build()).unwrap();
        let b = c2.route(build()).unwrap();
        assert_eq!(a, b);
        // Sorted by src, insertion order within src.
        let payloads: Vec<u64> = a[0].iter().map(|e| e.payload).collect();
        assert_eq!(payloads, vec![10, 11, 20, 30]);
    }

    #[test]
    fn broadcast_charges_per_word() {
        let mut c = Clique::new(4);
        c.broadcast(2, (1u64, 2u64, 3u64)).unwrap();
        assert_eq!(c.rounds(), 3);
        let err = c.broadcast(9, 0u64).unwrap_err();
        assert_eq!(err, CliqueError::InvalidNode { node: 9, n: 4 });
    }

    #[test]
    fn all_broadcast_charges_max_words() {
        let mut c = Clique::new(3);
        let data = vec![vec![], vec![1u64, 2, 3], vec![9]];
        // Vec<T> is not Payload; use fixed tuples instead to model words.
        drop(data);
        let per_node = vec![(1u64, 1u64), (2, 2), (3, 3)];
        let out = c.all_broadcast(per_node.clone()).unwrap();
        assert_eq!(out, per_node);
        assert_eq!(c.rounds(), 2);
    }

    #[test]
    fn all_broadcast_rejects_wrong_length() {
        let mut c = Clique::new(3);
        let err = c.all_broadcast(vec![1u64]).unwrap_err();
        assert_eq!(err, CliqueError::WrongLength { expected: 3, got: 1 });
    }

    #[test]
    fn sort_orders_globally_and_batches() {
        let mut c = Clique::new(3);
        let input = vec![vec![5u64, 1], vec![4, 4], vec![2, 0]];
        let out = c.sort(input).unwrap();
        assert_eq!(out, vec![vec![0, 1], vec![2, 4], vec![4, 5]]);
        assert_eq!(c.rounds(), 1);
    }

    #[test]
    fn sort_charges_by_load() {
        let mut c = Clique::new(2);
        // Node 0 holds 6 one-word items; load 6, n = 2 => 3 rounds.
        let out = c.sort(vec![vec![6u64, 5, 4, 3, 2, 1], vec![]]).unwrap();
        assert_eq!(c.rounds(), 3);
        assert_eq!(out[0], vec![1, 2, 3]);
        assert_eq!(out[1], vec![4, 5, 6]);
    }

    #[test]
    fn phases_nest_in_metrics() {
        let mut c = Clique::new(2);
        c.with_phase("outer", |c| {
            c.with_phase("inner", |c| {
                c.route(vec![Envelope::new(0, 1, 1u64)]).unwrap();
            });
        });
        assert!(c.metrics().phases.contains_key("outer/inner/route"));
        assert_eq!(c.rounds(), 1);
    }

    #[test]
    fn report_snapshots_metrics() {
        let mut c = Clique::new(2);
        c.charge("x", 5);
        let r = c.report();
        assert_eq!(r.rounds, 5);
        assert_eq!(r.n, 2);
        c.reset();
        assert_eq!(c.rounds(), 0);
    }

    #[test]
    fn conservative_cost_model_scales_route() {
        let mut c = Clique::with_cost_model(4, CostModel::conservative());
        c.route(vec![Envelope::new(0, 1, 1u64)]).unwrap();
        assert_eq!(c.rounds(), 16);
    }
}
