use std::error::Error;
use std::fmt;

use crate::NodeId;

/// Errors raised by the Congested Clique simulator.
///
/// All of these indicate a *bug in the calling algorithm* (addressing a node
/// outside the clique, handing a primitive malformed per-node input), never a
/// transient condition: the simulated network itself is reliable.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CliqueError {
    /// A message referenced a node id `node` outside `0..n`.
    InvalidNode {
        /// The offending node id.
        node: NodeId,
        /// The size of the clique.
        n: usize,
    },
    /// A per-node input vector had the wrong length (must be exactly `n`).
    WrongLength {
        /// Expected length (the clique size `n`).
        expected: usize,
        /// Length actually supplied.
        got: usize,
    },
    /// A primitive was invoked with a zero-node clique.
    EmptyClique,
}

impl fmt::Display for CliqueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliqueError::InvalidNode { node, n } => {
                write!(f, "node id {node} is outside the clique 0..{n}")
            }
            CliqueError::WrongLength { expected, got } => {
                write!(f, "per-node input has length {got}, expected {expected}")
            }
            CliqueError::EmptyClique => write!(f, "clique has no nodes"),
        }
    }
}

impl Error for CliqueError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CliqueError::InvalidNode { node: 9, n: 4 };
        assert_eq!(e.to_string(), "node id 9 is outside the clique 0..4");
        let e = CliqueError::WrongLength { expected: 4, got: 2 };
        assert!(e.to_string().contains("expected 4"));
        assert!(!format!("{:?}", CliqueError::EmptyClique).is_empty());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CliqueError>();
    }
}
