/// Round-cost constants for the simulator primitives.
///
/// The paper charges `O(1)` rounds for Lenzen routing and sorting and absorbs
/// the constants. The simulator makes the constants explicit and
/// configurable so that experiments can check that *relative* results (which
/// algorithm wins, where crossovers fall) are insensitive to them:
///
/// * [`CostModel::unit`] (the default) charges one round per `n`-word batch
///   per primitive invocation — the information-theoretic floor, which makes
///   round counts directly readable against the paper's bounds.
/// * [`CostModel::conservative`] charges the constants from Lenzen's
///   deterministic routing/sorting papers (16 and 10 rounds per batch).
///
/// # Example
///
/// ```
/// use cc_clique::{Clique, CostModel};
///
/// let unit = Clique::new(8);
/// let cons = Clique::with_cost_model(8, CostModel::conservative());
/// assert!(cons.cost_model().route_per_unit > unit.cost_model().route_per_unit);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CostModel {
    /// Rounds charged per `n`-word-per-node batch delivered by routing.
    pub route_per_unit: u64,
    /// Rounds charged per `n`-word-per-node batch handled by sorting.
    pub sort_per_unit: u64,
    /// Rounds charged per broadcast word.
    pub broadcast_per_unit: u64,
}

impl CostModel {
    /// One round per full-bandwidth batch: the reading most aligned with the
    /// paper's asymptotic statements.
    pub fn unit() -> Self {
        CostModel { route_per_unit: 1, sort_per_unit: 1, broadcast_per_unit: 1 }
    }

    /// Constants taken from Lenzen's deterministic routing (16 rounds) and
    /// sorting (10 rounds) algorithms; useful for sensitivity analysis.
    pub fn conservative() -> Self {
        CostModel { route_per_unit: 16, sort_per_unit: 10, broadcast_per_unit: 1 }
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::unit()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_unit() {
        assert_eq!(CostModel::default(), CostModel::unit());
    }

    #[test]
    fn conservative_dominates_unit() {
        let u = CostModel::unit();
        let c = CostModel::conservative();
        assert!(c.route_per_unit >= u.route_per_unit);
        assert!(c.sort_per_unit >= u.sort_per_unit);
        assert!(c.broadcast_per_unit >= u.broadcast_per_unit);
    }
}
