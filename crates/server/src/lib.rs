//! # `cc-serve`: a snapshot-serving network front-end for the distance oracle
//!
//! `cc-oracle` turned the algorithms of *Fast Approximate Shortest Paths
//! in the Congested Clique* (PODC 2019) into a build-once / query-many
//! artifact; this crate puts that artifact on the network. A [`Server`]
//! loads a [`cc_oracle::DistanceOracle`] — built in the simulated clique
//! or from a versioned [`cc_oracle::serde`] snapshot file — and serves it
//! over HTTP/1.1 on `std::net`.
//!
//! The entire data plane is written once against
//! [`cc_oracle::QueryBackend`]: one hot-swappable [`Generation`] holds a
//! `Box<dyn QueryBackend>` — a monolithic oracle or a
//! [`cc_oracle::ShardRouter`] over a sharded artifact (`docs/SHARDING.md`)
//! — behind a generic [`cc_oracle::CachingOracle`], so **every tier gets
//! the same result cache** and no endpoint branches on what it is
//! serving. The contract and how to add a backend are documented in
//! `docs/BACKENDS.md`.
//!
//! What to serve is declared by a [`source::BackendSpec`] — a **manifest
//! file** (`--manifest set.toml`) naming the mode, artifact files,
//! expected set id (a startup gate against serving the wrong build), and
//! cache capacity.
//!
//! The stack is **observable end to end** via `cc-telemetry`: every
//! request lands in a lock-free per-endpoint latency histogram, the
//! worker pool publishes its queue depth, the cache its hit rate, and
//! reloads their durations — all in one process-wide
//! [`cc_telemetry::Registry`]. `GET /metrics` renders the registry in
//! Prometheus text exposition format and `GET /stats` renders **the same
//! snapshot** as JSON, so the two views can never disagree; an optional
//! [`cc_telemetry::AccessLog`] ([`ServerConfig::with_access_log`], or
//! `cc-serve --slow-query-ns`) emits JSON-lines request/slow-query
//! records. The metric catalog lives in `docs/OBSERVABILITY.md`.
//!
//! The artifact is **hot-swappable under traffic**: it lives behind a
//! [`ReloadHandle`], and `POST /reload` (or `SIGHUP` to the `cc-serve`
//! binary) loads + validates a new snapshot off the request path and
//! swaps it in atomically — in-flight queries finish on the old
//! [`Generation`], a snapshot that fails validation (bad magic/version/
//! checksum, see `docs/SNAPSHOT_FORMAT.md`) changes nothing, and both
//! `/stats` and `/artifact` report the active artifact's [`SnapshotInfo`]
//! (format version, build id, source) plus the reload history. On every
//! successful swap the hottest keys of the outgoing cache are **replayed
//! against the new artifact** ([`Generation::warmed_from`]), so the hit
//! rate survives the reload; `/stats` reports the count as
//! `warmed_keys`. A manifest server re-reads its manifest on every bare
//! `/reload`, so a rollout is "update files + manifest, poke the
//! endpoint". The operator's handbook is `docs/OPERATIONS.md`.
//!
//! In router mode `/distance` and `/batch` combine the two owning shards'
//! half-results **bit-identically to the monolithic oracle**,
//! `/reload?shard=i` rolls one slice at a time (sharing the rest), and
//! `/stats` reports per-shard build ids plus whether the set is uniform.
//! Startup strictly validates the set (matching `n`/`k`/`ε`/landmarks/
//! set id, every shard in its declared slot), so a mixed or mis-slotted
//! set never serves.
//!
//! The build image has no tokio/hyper, so the transport is deliberately
//! simple and fully owned, with two interchangeable front ends behind one
//! **bounded worker thread-pool** ([`pool::WorkerPool`]): on Linux an
//! **epoll reactor** (`cc-reactor`) owns the listener plus all idle
//! keep-alive connections and hands only *ready* sockets to the pool, so
//! accepts are event-driven and an idle connection costs no worker; the
//! portable fallback is a sleep-polling accept loop with one worker
//! pinned per connection. [`Transport`] (default `Auto`) selects between
//! them — `cc-serve --transport poll` forces the fallback — and `/stats`
//! reports the resolved choice. Both shed load (`503`) when the queue is
//! full and shut down gracefully; the HTTP and handler layers cannot tell
//! them apart.
//!
//! `POST /batch` additionally speaks a **length-prefixed binary frame
//! format** (`Content-Type: application/x-cc-batch`, `cc_reactor::frame`):
//! `CCBQ` + pair count + little-endian `u32` id pairs in, `CCBR` + `u64`
//! distances (`u64::MAX` = unreachable) out — the same answers as the text
//! plane without parse/format overhead, and the frame `cc-shard`'s RPC
//! plane will reuse. `docs/OPERATIONS.md` specifies the wire bytes.
//!
//! **All request validation happens at the edge** via the oracle's fallible
//! `try_query` / `try_query_batch` API: a malformed or out-of-range request
//! is answered with `400` (or `413`/`404`/`405`), never by panicking the
//! serving process.
//!
//! # Endpoints
//!
//! | Route | Answer |
//! |---|---|
//! | `GET /distance?u=&v=` | one estimate: `{"u":0,"v":5,"distance":12,"connected":true}` |
//! | `POST /batch` | newline `u v` (or `u,v`) pairs → `{"count":n,"distances":[...]}`; binary frames with `Content-Type: application/x-cc-batch` |
//! | `POST /reload[?path=]` | validate + atomically swap in a new snapshot (`400` keeps the old one serving) |
//! | `GET /stats` | request + cache + reload counters, active snapshot identity |
//! | `GET /metrics` | the same registry snapshot in Prometheus text exposition 0.0.4 |
//! | `GET /healthz` | liveness: `ok` |
//! | `GET /artifact` | `n`, `k`, `ε`, landmark count, `artifact_bytes`, `stretch_bound`, snapshot identity |
//!
//! Disconnected pairs serve `"distance": null` (binary plane: `u64::MAX`).
//! `HEAD` is answered like `GET` minus the body, with identical headers.
//!
//! # Quickstart
//!
//! ```text
//! $ cargo run --release -p cc-server --bin cc-serve -- --demo 256 --addr 127.0.0.1:8317
//! cc-serve listening on http://127.0.0.1:8317 (n=256, landmarks=28, 165 KiB)
//!
//! $ curl 'http://127.0.0.1:8317/distance?u=0&v=199'
//! {"u":0,"v":199,"distance":31,"connected":true}
//! $ printf '0 1\n17 200\n' | curl -s --data-binary @- 'http://127.0.0.1:8317/batch'
//! {"count":2,"distances":[12,29]}
//! $ curl 'http://127.0.0.1:8317/distance?u=0&v=10000'
//! {"error":"query (0, 10000) outside 0..256"}        # HTTP 400, no panic
//! $ curl 'http://127.0.0.1:8317/stats'
//! {"requests":3,...,"cache":{"hits":0,"misses":2,...}}
//! ```
//!
//! To serve a prebuilt artifact instead of building one, snapshot it
//! first (`--write-snapshot`), declare it in a manifest, and point the
//! server at that:
//!
//! ```text
//! $ cc-serve --demo 256 --write-snapshot /tmp/oracle.snap
//! $ printf 'mode = "mono"\nsnapshot = "oracle.snap"\n' > /tmp/set.toml
//! $ cc-serve --manifest /tmp/set.toml --addr 127.0.0.1:8317
//! ```
//!
//! # In-process example
//!
//! ```
//! use cc_server::{BlockingClient, Server, ServerConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let oracle = cc_server::source::build_demo(32, 7, 0.25)?;
//! let expected = oracle.try_query(0, 31)?;
//! let handle = Server::start(&ServerConfig::default(), oracle)?;
//! let mut client = BlockingClient::connect(handle.addr())?;
//! let (status, body) = client.get("/distance?u=0&v=31")?;
//! assert_eq!(status, 200);
//! assert!(String::from_utf8(body)?.contains(&format!("{expected}")));
//! handle.shutdown();
//! # Ok(())
//! # }
//! ```
//!
//! Unsafe code is forbidden in this library (`#![forbid(unsafe_code)]`);
//! the epoll syscalls live behind `cc-reactor`'s audited shim.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod handlers;
pub mod http;
pub mod pool;
mod reactor;
mod reload;
mod server;
pub mod source;

pub use cc_reactor::frame;
pub use config::{ServerConfig, Transport};
pub use handlers::{AppState, ReloadOutcome};
pub use reload::{Generation, ReloadHandle, SnapshotInfo, WARM_KEYS};
pub use server::{BlockingClient, Server, ServerHandle};
pub use source::{BackendSpec, LoadedBackend};
