//! Where a served oracle comes from: a snapshot file on disk (monolithic
//! or a per-shard set), or an in-process demo build in the simulated
//! clique.

use std::error::Error;
use std::path::{Path, PathBuf};

use cc_clique::Clique;
use cc_graph::{generators, Graph};
use cc_oracle::shard::{validate_set, OracleShard};
use cc_oracle::{serde, DistanceOracle, OracleBuilder, ShardedArtifact};

use crate::reload::SnapshotInfo;

/// An oracle loaded from disk together with the identity of the snapshot
/// it came from (version, build id, creation time, path).
#[derive(Debug)]
pub struct LoadedSnapshot {
    /// The validated artifact.
    pub oracle: DistanceOracle,
    /// Where it came from and what it is, for `/stats` and `/artifact`.
    pub info: SnapshotInfo,
}

/// One shard loaded from disk: the slice, its identity, and the path it
/// was read from (which doubles as the shard's default reload source).
#[derive(Debug)]
pub struct LoadedShard {
    /// The validated slice.
    pub shard: OracleShard,
    /// Where it came from and what it is, for `/stats` and `/artifact`.
    pub info: SnapshotInfo,
    /// The file this shard was read from.
    pub path: PathBuf,
}

/// Loads an oracle from a **versioned** [`cc_oracle::serde`] snapshot
/// file, validating magic, version, checksum and structure. Pre-versioning
/// (v1) bytes and per-shard snapshots are rejected with their dedicated
/// errors ([`cc_oracle::OracleError::LegacySnapshot`],
/// [`cc_oracle::OracleError::ShardSnapshot`]).
///
/// # Errors
///
/// I/O errors reading the file and every [`cc_oracle::serde::from_bytes`]
/// validation error.
pub fn load_snapshot(path: &Path) -> Result<LoadedSnapshot, Box<dyn Error>> {
    let bytes = std::fs::read(path)?;
    let source = path.display().to_string();
    let (header, oracle) = serde::from_bytes_with_header(&bytes)?;
    Ok(LoadedSnapshot { info: SnapshotInfo::from_header(&header, source), oracle })
}

/// Loads one per-shard snapshot and checks it fills `expected_index` of a
/// set of `expected_count` shards.
///
/// # Errors
///
/// I/O errors, every [`cc_oracle::serde::from_shard_bytes`] validation
/// error, and [`cc_oracle::OracleError::ShardIndexMismatch`] /
/// [`cc_oracle::OracleError::ShardSetMismatch`] when the file belongs to a
/// different slot or set shape.
pub fn load_shard(
    path: &Path,
    expected_index: usize,
    expected_count: usize,
) -> Result<LoadedShard, Box<dyn Error>> {
    let bytes = std::fs::read(path)?;
    let (header, shard) = serde::from_shard_bytes_with_header(&bytes)?;
    if shard.index() != expected_index {
        return Err(cc_oracle::OracleError::ShardIndexMismatch {
            expected: expected_index as u32,
            found: shard.index() as u32,
        }
        .into());
    }
    if shard.count() != expected_count {
        return Err(cc_oracle::OracleError::ShardSetMismatch {
            what: format!(
                "{} declares a {}-shard set but {expected_count} shard files were given",
                path.display(),
                shard.count()
            ),
        }
        .into());
    }
    let info = SnapshotInfo::from_shard_header(&header, path.display().to_string());
    Ok(LoadedShard { shard, info, path: path.to_path_buf() })
}

/// Loads a complete shard set — `paths[i]` must hold shard `i` — and
/// validates it as one consistent artifact ([`validate_set`]): matching
/// shard count, `n`, `k`, `ε`, landmarks, and set id, with every slice's
/// owned range matching the recomputed [`cc_oracle::shard::ShardPlan`].
///
/// # Errors
///
/// The first per-file failure (I/O, corruption, wrong slot), or the set
/// validation error — each prefixed with the offending path so a startup
/// failure names the file to fix.
pub fn load_shard_set(paths: &[PathBuf]) -> Result<Vec<LoadedShard>, Box<dyn Error>> {
    if paths.is_empty() {
        return Err("router mode needs at least one shard snapshot".into());
    }
    let mut loaded = Vec::with_capacity(paths.len());
    for (i, path) in paths.iter().enumerate() {
        let shard = load_shard(path, i, paths.len())
            .map_err(|e| format!("shard {i} ({}): {e}", path.display()))?;
        loaded.push(shard);
    }
    // Validate by reference: each shard carries the replicated column
    // matrix, so cloning the set just to check it would double peak memory.
    let refs: Vec<&OracleShard> = loaded.iter().map(|l| &l.shard).collect();
    validate_set(&refs)?;
    Ok(loaded)
}

/// Writes `oracle` to `path` as a snapshot file.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_snapshot(oracle: &DistanceOracle, path: &Path) -> std::io::Result<()> {
    std::fs::write(path, serde::to_bytes(oracle))
}

/// Partitions `oracle` into `count` shards and writes one snapshot per
/// shard into `dir` as `shard-<i>.snap`, returning the paths in index
/// order (ready for `cc-serve --shards`).
///
/// # Errors
///
/// Partitioning errors (impossible plan) and I/O errors.
pub fn write_shard_snapshots(
    oracle: &DistanceOracle,
    count: usize,
    dir: &Path,
) -> Result<Vec<PathBuf>, Box<dyn Error>> {
    let sharded = ShardedArtifact::partition(oracle, count)?;
    std::fs::create_dir_all(dir)?;
    let mut paths = Vec::with_capacity(count);
    for shard in sharded.shards() {
        let path = dir.join(format!("shard-{}.snap", shard.index()));
        std::fs::write(&path, serde::to_shard_bytes(shard))?;
        paths.push(path);
    }
    Ok(paths)
}

/// The deterministic demo graph `cc-serve --demo n` serves: weighted
/// G(n, p) with p scaled to stay connected but sparse as `n` grows.
///
/// # Errors
///
/// Propagates generator errors (e.g. `n == 0`).
pub fn demo_graph(n: usize, seed: u64) -> Result<Graph, Box<dyn Error>> {
    let p = (4.0 * (n.max(2) as f64).ln() / n.max(2) as f64).clamp(0.02, 0.3);
    Ok(generators::gnp_weighted(n, p, 50, seed)?)
}

/// Builds the demo oracle for [`demo_graph`] in a fresh simulated clique.
///
/// # Errors
///
/// Propagates generator and oracle-build errors.
pub fn build_demo(n: usize, seed: u64, epsilon: f64) -> Result<DistanceOracle, Box<dyn Error>> {
    let g = demo_graph(n, seed)?;
    let mut clique = Clique::new(n);
    Ok(OracleBuilder::new().epsilon(epsilon).seed(seed).build(&mut clique, &g)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("cc-serve-test-snap").join(name);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn snapshot_round_trips_through_disk_with_its_identity() {
        let oracle = build_demo(20, 3, 0.5).unwrap();
        let path = temp_dir("mono").join("oracle.snap");
        write_snapshot(&oracle, &path).unwrap();
        let back = load_snapshot(&path).unwrap();
        assert_eq!(back.oracle, oracle);
        assert_eq!(back.info.version, serde::SNAPSHOT_VERSION);
        assert_eq!(back.info.build_id, format!("{:016x}", serde::payload_checksum(&oracle)));
        assert_eq!(back.info.source, path.display().to_string());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_snapshot_files_are_rejected() {
        let path = temp_dir("garbage").join("garbage.snap");
        std::fs::write(&path, b"definitely not an oracle").unwrap();
        assert!(load_snapshot(&path).is_err());
        std::fs::remove_file(&path).ok();
        assert!(load_snapshot(Path::new("/nonexistent/oracle.snap")).is_err());
    }

    #[test]
    fn legacy_v1_snapshots_are_rejected_with_the_dedicated_error() {
        let path = temp_dir("legacy").join("legacy.snap");
        // Hand-built v1 prefix: the magic alone must trigger the rejection.
        let mut bytes = b"CCO1".to_vec();
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 56]);
        std::fs::write(&path, &bytes).unwrap();
        let err = load_snapshot(&path).unwrap_err();
        assert!(err.to_string().contains("legacy"), "error must say why: {err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn shard_sets_round_trip_and_wrong_slots_are_named() {
        let oracle = build_demo(21, 5, 0.5).unwrap();
        let dir = temp_dir("shards");
        let paths = write_shard_snapshots(&oracle, 3, &dir).unwrap();
        assert_eq!(paths.len(), 3);

        let loaded = load_shard_set(&paths).unwrap();
        let router = cc_oracle::ShardRouter::assemble(
            loaded.iter().map(|l| l.shard.clone()).collect::<Vec<_>>(),
        )
        .unwrap();
        for u in 0..21 {
            for v in 0..21 {
                assert_eq!(router.query(u, v), oracle.query(u, v), "({u},{v})");
            }
        }

        // Shard 2's file in slot 0: rejected, and the message names slot,
        // path, and the index mismatch.
        let swapped = vec![paths[2].clone(), paths[1].clone(), paths[0].clone()];
        let err = load_shard_set(&swapped).unwrap_err().to_string();
        assert!(err.contains("shard 0"), "error must name the slot: {err}");
        assert!(err.contains("declares index 2"), "error must name the mismatch: {err}");

        // A missing file fails cleanly with its path.
        let missing = vec![paths[0].clone(), dir.join("nope.snap"), paths[2].clone()];
        let err = load_shard_set(&missing).unwrap_err().to_string();
        assert!(err.contains("nope.snap"), "error must name the file: {err}");

        // A monolithic snapshot offered as a shard is refused.
        let mono = dir.join("mono.snap");
        write_snapshot(&oracle, &mono).unwrap();
        let err = load_shard_set(&[mono.clone(), paths[1].clone(), paths[2].clone()])
            .unwrap_err()
            .to_string();
        assert!(err.contains("monolithic"), "error must say why: {err}");

        // An incomplete set is refused.
        let err = load_shard_set(&paths[..2]).unwrap_err().to_string();
        assert!(err.contains("3-shard set"), "error must name the shape: {err}");

        for p in paths {
            std::fs::remove_file(p).ok();
        }
        std::fs::remove_file(mono).ok();
    }

    #[test]
    fn shard_sets_from_different_builds_do_not_mix() {
        let a = build_demo(20, 6, 0.5).unwrap();
        let b = build_demo(20, 7, 0.5).unwrap();
        let dir_a = temp_dir("set-a");
        let dir_b = temp_dir("set-b");
        let paths_a = write_shard_snapshots(&a, 2, &dir_a).unwrap();
        let paths_b = write_shard_snapshots(&b, 2, &dir_b).unwrap();
        let mixed = vec![paths_a[0].clone(), paths_b[1].clone()];
        let err = load_shard_set(&mixed).unwrap_err().to_string();
        assert!(err.contains("set id"), "error must name the field: {err}");
        for p in paths_a.into_iter().chain(paths_b) {
            std::fs::remove_file(p).ok();
        }
    }
}
