//! Where a served oracle comes from: a snapshot file on disk, or an
//! in-process demo build in the simulated clique.

use std::error::Error;
use std::path::Path;

use cc_clique::Clique;
use cc_graph::{generators, Graph};
use cc_oracle::{serde, DistanceOracle, OracleBuilder};

/// Loads an oracle from an [`cc_oracle::serde`] snapshot file, validating
/// the bytes.
///
/// # Errors
///
/// I/O errors reading the file and
/// [`cc_oracle::OracleError::CorruptSnapshot`] for invalid bytes.
pub fn load_snapshot(path: &Path) -> Result<DistanceOracle, Box<dyn Error>> {
    let bytes = std::fs::read(path)?;
    Ok(serde::from_bytes(&bytes)?)
}

/// Writes `oracle` to `path` as a snapshot file.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_snapshot(oracle: &DistanceOracle, path: &Path) -> std::io::Result<()> {
    std::fs::write(path, serde::to_bytes(oracle))
}

/// The deterministic demo graph `cc-serve --demo n` serves: weighted
/// G(n, p) with p scaled to stay connected but sparse as `n` grows.
///
/// # Errors
///
/// Propagates generator errors (e.g. `n == 0`).
pub fn demo_graph(n: usize, seed: u64) -> Result<Graph, Box<dyn Error>> {
    let p = (4.0 * (n.max(2) as f64).ln() / n.max(2) as f64).clamp(0.02, 0.3);
    Ok(generators::gnp_weighted(n, p, 50, seed)?)
}

/// Builds the demo oracle for [`demo_graph`] in a fresh simulated clique.
///
/// # Errors
///
/// Propagates generator and oracle-build errors.
pub fn build_demo(n: usize, seed: u64, epsilon: f64) -> Result<DistanceOracle, Box<dyn Error>> {
    let g = demo_graph(n, seed)?;
    let mut clique = Clique::new(n);
    Ok(OracleBuilder::new().epsilon(epsilon).seed(seed).build(&mut clique, &g)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_round_trips_through_disk() {
        let oracle = build_demo(20, 3, 0.5).unwrap();
        let dir = std::env::temp_dir().join("cc-serve-test-snap");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("oracle.snap");
        write_snapshot(&oracle, &path).unwrap();
        let back = load_snapshot(&path).unwrap();
        assert_eq!(back, oracle);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_snapshot_files_are_rejected() {
        let dir = std::env::temp_dir().join("cc-serve-test-snap");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.snap");
        std::fs::write(&path, b"definitely not an oracle").unwrap();
        assert!(load_snapshot(&path).is_err());
        std::fs::remove_file(&path).ok();
        assert!(load_snapshot(Path::new("/nonexistent/oracle.snap")).is_err());
    }
}
