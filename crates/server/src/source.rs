//! Where a served backend comes from: a [`BackendSpec`] — a **manifest
//! file** (`--manifest set.toml`) naming the mode, artifact files,
//! expected set id, and cache capacity — plus the lower-level snapshot
//! loaders and an in-process demo build in the simulated clique.
//!
//! [`BackendSpec::load`] is the single artifact-loading entry point: it
//! resolves to a type-erased [`LoadedBackend`] (`Box<dyn QueryBackend>`)
//! so the rest of the server never branches on what it is serving.

use std::error::Error;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use cc_clique::Clique;
use cc_graph::{generators, Graph};
use cc_oracle::shard::{validate_set, OracleShard, ShardRouter};
use cc_oracle::{
    serde, DirectBuilder, DistanceOracle, OracleBuilder, QueryBackend, ShardedArtifact,
};

use crate::reload::SnapshotInfo;

/// An oracle loaded from disk together with the identity of the snapshot
/// it came from (version, build id, creation time, path).
#[derive(Debug)]
pub struct LoadedSnapshot {
    /// The validated artifact.
    pub oracle: DistanceOracle,
    /// Where it came from and what it is, for `/stats` and `/artifact`.
    pub info: SnapshotInfo,
}

/// One shard loaded from disk: the slice, its identity, and the path it
/// was read from (which doubles as the shard's default reload source).
#[derive(Debug)]
pub struct LoadedShard {
    /// The validated slice.
    pub shard: OracleShard,
    /// Where it came from and what it is, for `/stats` and `/artifact`.
    pub info: SnapshotInfo,
    /// The file this shard was read from.
    pub path: PathBuf,
}

/// Loads an oracle from a **versioned** [`cc_oracle::serde`] snapshot
/// file, validating magic, version, checksum and structure. Pre-versioning
/// (v1) bytes and per-shard snapshots are rejected with their dedicated
/// errors ([`cc_oracle::OracleError::LegacySnapshot`],
/// [`cc_oracle::OracleError::ShardSnapshot`]).
///
/// # Errors
///
/// I/O errors reading the file and every [`cc_oracle::serde::from_bytes`]
/// validation error.
pub fn load_snapshot(path: &Path) -> Result<LoadedSnapshot, Box<dyn Error>> {
    let bytes = std::fs::read(path)?;
    let source = path.display().to_string();
    let (header, oracle) = serde::from_bytes_with_header(&bytes)?;
    Ok(LoadedSnapshot { info: SnapshotInfo::from_header(&header, source), oracle })
}

/// Loads one per-shard snapshot and checks it fills `expected_index` of a
/// set of `expected_count` shards.
///
/// # Errors
///
/// I/O errors, every [`cc_oracle::serde::from_shard_bytes`] validation
/// error, and [`cc_oracle::OracleError::ShardIndexMismatch`] /
/// [`cc_oracle::OracleError::ShardSetMismatch`] when the file belongs to a
/// different slot or set shape.
pub fn load_shard(
    path: &Path,
    expected_index: usize,
    expected_count: usize,
) -> Result<LoadedShard, Box<dyn Error>> {
    let bytes = std::fs::read(path)?;
    let (header, shard) = serde::from_shard_bytes_with_header(&bytes)?;
    if shard.index() != expected_index {
        return Err(cc_oracle::OracleError::ShardIndexMismatch {
            expected: expected_index as u32,
            found: shard.index() as u32,
        }
        .into());
    }
    if shard.count() != expected_count {
        return Err(cc_oracle::OracleError::ShardSetMismatch {
            what: format!(
                "{} declares a {}-shard set but {expected_count} shard files were given",
                path.display(),
                shard.count()
            ),
        }
        .into());
    }
    let info = SnapshotInfo::from_shard_header(&header, path.display().to_string());
    Ok(LoadedShard { shard, info, path: path.to_path_buf() })
}

/// Loads a complete shard set — `paths[i]` must hold shard `i` — and
/// validates it as one consistent artifact ([`validate_set`]): matching
/// shard count, `n`, `k`, `ε`, landmarks, and set id, with every slice's
/// owned range matching the recomputed [`cc_oracle::shard::ShardPlan`].
///
/// # Errors
///
/// The first per-file failure (I/O, corruption, wrong slot), or the set
/// validation error — each prefixed with the offending path so a startup
/// failure names the file to fix.
pub fn load_shard_set(paths: &[PathBuf]) -> Result<Vec<LoadedShard>, Box<dyn Error>> {
    if paths.is_empty() {
        return Err("router mode needs at least one shard snapshot".into());
    }
    let mut loaded = Vec::with_capacity(paths.len());
    for (i, path) in paths.iter().enumerate() {
        let shard = load_shard(path, i, paths.len())
            .map_err(|e| format!("shard {i} ({}): {e}", path.display()))?;
        loaded.push(shard);
    }
    // Validate by reference: each shard carries the replicated column
    // matrix, so cloning the set just to check it would double peak memory.
    let refs: Vec<&OracleShard> = loaded.iter().map(|l| &l.shard).collect();
    validate_set(&refs)?;
    Ok(loaded)
}

/// Writes `oracle` to `path` as a snapshot file.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_snapshot(oracle: &DistanceOracle, path: &Path) -> std::io::Result<()> {
    std::fs::write(path, serde::to_bytes(oracle))
}

/// Partitions `oracle` into `count` shards and writes one snapshot per
/// shard into `dir` as `shard-<i>.snap`, returning the paths in index
/// order (ready to list under `shards = [...]` in a manifest).
///
/// # Errors
///
/// Partitioning errors (impossible plan) and I/O errors.
pub fn write_shard_snapshots(
    oracle: &DistanceOracle,
    count: usize,
    dir: &Path,
) -> Result<Vec<PathBuf>, Box<dyn Error>> {
    let sharded = ShardedArtifact::partition(oracle, count)?;
    std::fs::create_dir_all(dir)?;
    let mut paths = Vec::with_capacity(count);
    for shard in sharded.shards() {
        let path = dir.join(format!("shard-{}.snap", shard.index()));
        std::fs::write(&path, serde::to_shard_bytes(shard))?;
        paths.push(path);
    }
    Ok(paths)
}

/// A fully loaded, validated, **type-erased** serving backend, ready to be
/// wrapped in a [`crate::Generation`]: the backend itself, its identity
/// for `/stats` / `/artifact`, and — for a sharded backend — the shared
/// slices (so a single-shard reload can rebuild the router without deep
/// copies) with their per-file identities.
pub struct LoadedBackend {
    /// The serving backend: a monolithic oracle or a shard router.
    pub backend: Box<dyn QueryBackend>,
    /// Identity of the artifact as a whole (the snapshot for a monolith,
    /// the set id for a shard set).
    pub info: SnapshotInfo,
    /// The shared slices in slot order; empty for a monolithic backend.
    pub shards: Vec<Arc<OracleShard>>,
    /// Per-slice snapshot identities, parallel to `shards`.
    pub shard_infos: Vec<SnapshotInfo>,
}

impl std::fmt::Debug for LoadedBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LoadedBackend")
            .field("mode", &self.backend.descriptor().mode)
            .field("n", &self.backend.n())
            .field("info", &self.info)
            .field("shards", &self.shards.len())
            .finish()
    }
}

impl LoadedBackend {
    /// A monolithic backend from a loaded snapshot.
    pub fn mono(oracle: DistanceOracle, info: SnapshotInfo) -> LoadedBackend {
        LoadedBackend {
            backend: Box::new(oracle),
            info,
            shards: Vec::new(),
            shard_infos: Vec::new(),
        }
    }

    /// A router backend over a strictly validated shard set.
    ///
    /// # Errors
    ///
    /// Everything [`validate_set`] rejects.
    pub fn sharded(
        shards: Vec<OracleShard>,
        shard_infos: Vec<SnapshotInfo>,
        source: impl Into<String>,
    ) -> Result<LoadedBackend, cc_oracle::OracleError> {
        let shards: Vec<Arc<OracleShard>> = shards.into_iter().map(Arc::new).collect();
        let router = ShardRouter::assemble_shared(shards.clone())?;
        let info = SnapshotInfo {
            version: serde::SNAPSHOT_VERSION,
            build_id: format!("{:016x}", shards[0].set_id()),
            created_unix_secs: 0,
            source: source.into(),
        };
        Ok(LoadedBackend { backend: Box::new(router), info, shards, shard_infos })
    }

    /// Number of nodes the backend covers.
    pub fn n(&self) -> usize {
        self.backend.n()
    }
}

/// What `BackendSpec` points at: one snapshot file, or an ordered shard
/// file set.
#[derive(Debug, Clone, PartialEq, Eq)]
enum SpecKind {
    Mono { path: PathBuf },
    Sharded { paths: Vec<PathBuf> },
}

/// A declarative description of the artifact a server should serve — the
/// **manifest-driven artifact API**. A spec names the mode (monolithic
/// snapshot or shard set), the file(s), an optional expected set id that
/// gates startup, and an optional result-cache capacity.
///
/// The preferred way to build one is [`BackendSpec::from_manifest`], from
/// a TOML-ish manifest file:
///
/// ```text
/// # set.toml — a 2-shard artifact set
/// mode = "sharded"
/// shards = [
///     "shard-0.snap",
///     "shard-1.snap",
/// ]
/// set_id = "29ec16e4f49bca34"   # refuse to serve any other build
/// cache_capacity = 8192
/// ```
///
/// ```text
/// # mono.toml — a monolithic snapshot
/// mode = "mono"
/// snapshot = "oracle.snap"
/// ```
///
/// Relative paths are resolved against the manifest's directory. Code
/// that already holds the file paths (tests, benches) can construct the
/// equivalent spec directly through [`BackendSpec::mono`] /
/// [`BackendSpec::sharded`], without a set-id gate.
#[derive(Debug, Clone, PartialEq)]
pub struct BackendSpec {
    kind: SpecKind,
    /// When set, [`BackendSpec::load`] refuses an artifact whose set id
    /// (shard set) or build id (monolith) differs — the rollout gate that
    /// makes "the files on disk are the build I meant" checkable.
    pub expected_set_id: Option<u64>,
    /// Result-cache capacity for the generation serving this artifact;
    /// `None` defers to the server default, `Some(0)` disables caching.
    pub cache_capacity: Option<usize>,
    /// The manifest file this spec was parsed from, if any.
    manifest: Option<PathBuf>,
}

impl BackendSpec {
    /// A spec for one monolithic snapshot file.
    pub fn mono(path: impl Into<PathBuf>) -> BackendSpec {
        BackendSpec {
            kind: SpecKind::Mono { path: path.into() },
            expected_set_id: None,
            cache_capacity: None,
            manifest: None,
        }
    }

    /// A spec for an ordered shard file set: slot `i` is `paths[i]`.
    pub fn sharded(paths: Vec<PathBuf>) -> BackendSpec {
        BackendSpec {
            kind: SpecKind::Sharded { paths },
            expected_set_id: None,
            cache_capacity: None,
            manifest: None,
        }
    }

    /// Reads and parses a manifest file; see [`BackendSpec`] for the
    /// format. Relative artifact paths are resolved against the manifest's
    /// directory.
    ///
    /// # Errors
    ///
    /// I/O errors reading the file and every parse rejection (unknown or
    /// duplicate key, missing mode, bad set id, duplicate shard path, …),
    /// each prefixed with the manifest path.
    pub fn from_manifest(path: &Path) -> Result<BackendSpec, Box<dyn Error>> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("manifest {}: {e}", path.display()))?;
        let base = path.parent().unwrap_or(Path::new("."));
        let mut spec = Self::parse_manifest(&text, base)
            .map_err(|e| format!("manifest {}: {e}", path.display()))?;
        spec.manifest = Some(path.to_path_buf());
        Ok(spec)
    }

    /// Parses manifest `text`, resolving relative paths against `base`.
    /// Exposed for tests; prefer [`BackendSpec::from_manifest`].
    ///
    /// # Errors
    ///
    /// A human-readable description of the first rejected line.
    pub fn parse_manifest(text: &str, base: &Path) -> Result<BackendSpec, String> {
        let mut mode: Option<String> = None;
        let mut snapshot: Option<PathBuf> = None;
        let mut shards: Option<Vec<PathBuf>> = None;
        let mut set_id: Option<u64> = None;
        let mut cache_capacity: Option<usize> = None;

        for (lineno, line) in logical_lines(text) {
            let reject = |what: String| format!("line {lineno}: {what}");
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| reject(format!("expected 'key = value', got '{line}'")))?;
            let (key, value) = (key.trim(), value.trim());
            let dup = |what: &str| reject(format!("duplicate key '{what}'"));
            match key {
                "mode" => {
                    if mode.is_some() {
                        return Err(dup("mode"));
                    }
                    let value = parse_string(value).map_err(&reject)?;
                    if value != "mono" && value != "sharded" {
                        return Err(reject(format!(
                            "mode must be \"mono\" or \"sharded\", got \"{value}\""
                        )));
                    }
                    mode = Some(value);
                }
                "snapshot" => {
                    if snapshot.is_some() {
                        return Err(dup("snapshot"));
                    }
                    snapshot = Some(base.join(parse_string(value).map_err(&reject)?));
                }
                "shards" => {
                    if shards.is_some() {
                        return Err(dup("shards"));
                    }
                    let entries = parse_string_array(value).map_err(&reject)?;
                    if entries.is_empty() {
                        return Err(reject("shards must name at least one file".to_owned()));
                    }
                    for (i, a) in entries.iter().enumerate() {
                        if let Some(j) = entries[..i].iter().position(|b| b == a) {
                            return Err(reject(format!(
                                "shards[{i}] duplicates shards[{j}] (\"{a}\"): every slot \
                                 needs its own shard file"
                            )));
                        }
                    }
                    shards = Some(entries.into_iter().map(|p| base.join(p)).collect());
                }
                "set_id" => {
                    if set_id.is_some() {
                        return Err(dup("set_id"));
                    }
                    let raw = parse_string(value).map_err(&reject)?;
                    if raw.len() != 16 || !raw.chars().all(|c| c.is_ascii_hexdigit()) {
                        return Err(reject(format!(
                            "set_id must be 16 hex digits (a build id as printed by \
                             /stats), got \"{raw}\""
                        )));
                    }
                    set_id = Some(u64::from_str_radix(&raw, 16).expect("validated hex"));
                }
                "cache_capacity" => {
                    if cache_capacity.is_some() {
                        return Err(dup("cache_capacity"));
                    }
                    cache_capacity = Some(value.parse().map_err(|_| {
                        reject(format!("cache_capacity must be an integer, got '{value}'"))
                    })?);
                }
                other => {
                    return Err(reject(format!(
                        "unknown key '{other}' (expected mode, snapshot, shards, set_id, \
                         or cache_capacity)"
                    )))
                }
            }
        }

        let mode = mode.ok_or("missing 'mode = \"mono\" | \"sharded\"'")?;
        let kind = match mode.as_str() {
            "mono" => {
                if shards.is_some() {
                    return Err("mode \"mono\" takes 'snapshot', not 'shards'".to_owned());
                }
                SpecKind::Mono { path: snapshot.ok_or("mode \"mono\" needs 'snapshot = ...'")? }
            }
            _ => {
                if snapshot.is_some() {
                    return Err("mode \"sharded\" takes 'shards', not 'snapshot'".to_owned());
                }
                SpecKind::Sharded {
                    paths: shards.ok_or("mode \"sharded\" needs 'shards = [...]'")?,
                }
            }
        };
        Ok(BackendSpec { kind, expected_set_id: set_id, cache_capacity, manifest: None })
    }

    /// The manifest file this spec was parsed from, if any.
    pub fn manifest_path(&self) -> Option<&Path> {
        self.manifest.as_deref()
    }

    /// True when the spec names a shard set.
    pub fn is_sharded(&self) -> bool {
        matches!(self.kind, SpecKind::Sharded { .. })
    }

    /// Number of shard files (0 for a monolithic spec).
    pub fn shard_count(&self) -> usize {
        match &self.kind {
            SpecKind::Mono { .. } => 0,
            SpecKind::Sharded { paths } => paths.len(),
        }
    }

    /// Shard `index`'s file, when the spec names a shard set.
    pub fn shard_path(&self, index: usize) -> Option<&Path> {
        match &self.kind {
            SpecKind::Mono { .. } => None,
            SpecKind::Sharded { paths } => paths.get(index).map(PathBuf::as_path),
        }
    }

    /// The snapshot file, when the spec is monolithic.
    pub fn mono_path(&self) -> Option<&Path> {
        match &self.kind {
            SpecKind::Mono { path } => Some(path),
            SpecKind::Sharded { .. } => None,
        }
    }

    /// One line naming what this spec serves, for logs.
    pub fn describe(&self) -> String {
        let files = match &self.kind {
            SpecKind::Mono { path } => path.display().to_string(),
            SpecKind::Sharded { paths } => format!("{}-shard set", paths.len()),
        };
        match &self.manifest {
            Some(m) => format!("{files} (manifest {})", m.display()),
            None => files,
        }
    }

    /// Loads, validates, and type-erases the artifact this spec names: the
    /// single loading entry point for startup *and* full reloads.
    ///
    /// # Errors
    ///
    /// Per-file I/O and snapshot-validation errors (each naming the file),
    /// shard-set consistency errors, and — when the spec pins
    /// `expected_set_id` — an identity mismatch naming both the offending
    /// file and the two ids.
    pub fn load(&self) -> Result<LoadedBackend, Box<dyn Error>> {
        match &self.kind {
            SpecKind::Mono { path } => {
                let loaded = load_snapshot(path)?;
                if let Some(want) = self.expected_set_id {
                    let got = serde::payload_checksum(&loaded.oracle);
                    if got != want {
                        return Err(format!(
                            "snapshot {} has build id {got:016x} but the manifest expects \
                             set_id {want:016x}",
                            path.display()
                        )
                        .into());
                    }
                }
                Ok(LoadedBackend::mono(loaded.oracle, loaded.info))
            }
            SpecKind::Sharded { paths } => {
                let loaded = load_shard_set(paths)?;
                if let Some(want) = self.expected_set_id {
                    let got = loaded[0].shard.set_id();
                    if got != want {
                        return Err(format!(
                            "shard set {} declares set id {got:016x} but the manifest \
                             expects set_id {want:016x}",
                            paths[0].display()
                        )
                        .into());
                    }
                }
                let mut shards = Vec::with_capacity(loaded.len());
                let mut infos = Vec::with_capacity(loaded.len());
                for shard in loaded {
                    shards.push(shard.shard);
                    infos.push(shard.info);
                }
                Ok(LoadedBackend::sharded(shards, infos, self.describe())?)
            }
        }
    }
}

/// Splits manifest text into `(line number, logical line)` pairs: strips
/// `#` comments (outside quotes) and blank lines, and joins a multi-line
/// `[...]` array onto the line that opened it.
fn logical_lines(text: &str) -> Vec<(usize, String)> {
    let mut lines = Vec::new();
    let mut pending: Option<(usize, String)> = None;
    for (i, raw) in text.lines().enumerate() {
        let stripped = strip_comment(raw);
        let trimmed = stripped.trim();
        if trimmed.is_empty() {
            continue;
        }
        match pending.take() {
            Some((start, mut acc)) => {
                acc.push(' ');
                acc.push_str(trimmed);
                if bracket_open(&acc) {
                    pending = Some((start, acc));
                } else {
                    lines.push((start, acc));
                }
            }
            None => {
                if bracket_open(trimmed) {
                    pending = Some((i + 1, trimmed.to_owned()));
                } else {
                    lines.push((i + 1, trimmed.to_owned()));
                }
            }
        }
    }
    if let Some(unclosed) = pending {
        lines.push(unclosed);
    }
    lines
}

/// True while a `[` array opened on this logical line is still unclosed.
fn bracket_open(line: &str) -> bool {
    let mut in_string = false;
    let mut depth = 0i32;
    for c in line.chars() {
        match c {
            '"' => in_string = !in_string,
            '[' if !in_string => depth += 1,
            ']' if !in_string => depth -= 1,
            _ => {}
        }
    }
    depth > 0
}

/// Removes a `#` comment, respecting double-quoted strings.
fn strip_comment(line: &str) -> String {
    let mut in_string = false;
    let mut out = String::with_capacity(line.len());
    for c in line.chars() {
        match c {
            '"' => {
                in_string = !in_string;
                out.push(c);
            }
            '#' if !in_string => break,
            _ => out.push(c),
        }
    }
    out
}

/// Parses a double-quoted string value.
fn parse_string(value: &str) -> Result<String, String> {
    let inner = value
        .strip_prefix('"')
        .and_then(|rest| rest.strip_suffix('"'))
        .ok_or_else(|| format!("expected a double-quoted string, got '{value}'"))?;
    if inner.contains('"') {
        return Err(format!("unexpected inner quote in '{value}'"));
    }
    Ok(inner.to_owned())
}

/// Parses a `["a", "b", ...]` array of strings (trailing comma allowed).
fn parse_string_array(value: &str) -> Result<Vec<String>, String> {
    let inner = value
        .strip_prefix('[')
        .and_then(|rest| rest.strip_suffix(']'))
        .ok_or_else(|| format!("expected a [\"...\"] array, got '{value}'"))?;
    let mut out = Vec::new();
    for item in inner.split(',') {
        let item = item.trim();
        if item.is_empty() {
            continue; // trailing comma
        }
        out.push(parse_string(item)?);
    }
    Ok(out)
}

/// The deterministic demo graph `cc-serve --demo n` serves: weighted
/// G(n, p) with p scaled to stay connected but sparse as `n` grows.
///
/// # Errors
///
/// Propagates generator errors (e.g. `n == 0`).
pub fn demo_graph(n: usize, seed: u64) -> Result<Graph, Box<dyn Error>> {
    let p = (4.0 * (n.max(2) as f64).ln() / n.max(2) as f64).clamp(0.02, 0.3);
    Ok(generators::gnp_weighted(n, p, 50, seed)?)
}

/// Builds the demo oracle for [`demo_graph`] in a fresh simulated clique.
///
/// # Errors
///
/// Propagates generator and oracle-build errors.
pub fn build_demo(n: usize, seed: u64, epsilon: f64) -> Result<DistanceOracle, Box<dyn Error>> {
    build_demo_traced(n, seed, epsilon).map(|(oracle, _)| oracle)
}

/// [`build_demo`], but also returning the per-phase
/// [`cc_telemetry::BuildTrace`] (the `cc-serve --demo` banner logs it and
/// exports it as `cc_build_phase_*` gauges).
///
/// # Errors
///
/// Propagates generator and oracle-build errors.
pub fn build_demo_traced(
    n: usize,
    seed: u64,
    epsilon: f64,
) -> Result<(DistanceOracle, cc_telemetry::BuildTrace), Box<dyn Error>> {
    let g = demo_graph(n, seed)?;
    let mut clique = Clique::new(n);
    Ok(OracleBuilder::new().epsilon(epsilon).seed(seed).build_traced(&mut clique, &g)?)
}

/// The graph behind `cc-serve --demo-direct N`: a road-like grid
/// ([`generators::road_like`]) with exactly `n` nodes when `n` factors as
/// `w × h` with both sides ≥ 2, else the smallest near-square grid of at
/// least `n` nodes (primes can't be grids). Deterministic in `(n, seed)`.
///
/// # Errors
///
/// Propagates generator errors (`n < 4` cannot make a 2×2 grid).
pub fn direct_demo_graph(n: usize, seed: u64) -> Result<Graph, Box<dyn Error>> {
    let root = (n as f64).sqrt() as usize;
    let w = (2..=root.max(2)).rev().find(|w| n.is_multiple_of(*w)).unwrap_or(root.max(2));
    let h = n.div_ceil(w);
    Ok(generators::road_like(w, h, 30, seed)?)
}

/// `cc-serve --demo-direct`: builds a road-like oracle through
/// [`cc_oracle::DirectBuilder`] — no clique simulation, so `n = 10⁵`
/// builds in seconds and `10⁶` is reachable. Capped landmark mode
/// (`max_landmarks`) keeps the column matrix `n × m`; see
/// `docs/BUILDERS.md` for the contract difference vs the clique build.
///
/// # Errors
///
/// Propagates generator and oracle-build errors.
pub fn build_direct_demo_traced(
    n: usize,
    seed: u64,
    epsilon: f64,
    k: usize,
    max_landmarks: usize,
) -> Result<(DistanceOracle, cc_telemetry::BuildTrace), Box<dyn Error>> {
    let g = direct_demo_graph(n, seed)?;
    Ok(DirectBuilder::new()
        .k(k)
        .epsilon(epsilon)
        .seed(seed)
        .max_landmarks(max_landmarks)
        .build_traced(&g)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("cc-serve-test-snap").join(name);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn snapshot_round_trips_through_disk_with_its_identity() {
        let oracle = build_demo(20, 3, 0.5).unwrap();
        let path = temp_dir("mono").join("oracle.snap");
        write_snapshot(&oracle, &path).unwrap();
        let back = load_snapshot(&path).unwrap();
        assert_eq!(back.oracle, oracle);
        assert_eq!(back.info.version, serde::SNAPSHOT_VERSION);
        assert_eq!(back.info.build_id, format!("{:016x}", serde::payload_checksum(&oracle)));
        assert_eq!(back.info.source, path.display().to_string());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn direct_demo_builds_snapshots_and_shards_like_the_clique_demo() {
        // 96 = 8 × 12: the generator finds the exact factorization.
        let (oracle, trace) = build_direct_demo_traced(96, 3, 0.25, 6, 8).unwrap();
        assert_eq!(oracle.n(), 96);
        assert_eq!(oracle.landmarks().len(), 8, "landmark cap must hold");
        assert!(trace.span("exact_columns").is_some(), "capped mode must be visible in the trace");
        // The direct artifact flows through the same snapshot + shard
        // machinery the serving tier uses.
        let path = temp_dir("direct").join("direct.snap");
        write_snapshot(&oracle, &path).unwrap();
        assert_eq!(load_snapshot(&path).unwrap().oracle, oracle);
        std::fs::remove_file(&path).ok();
        let dir = temp_dir("direct-shards");
        let paths = write_shard_snapshots(&oracle, 3, &dir).unwrap();
        let loaded = load_shard_set(&paths).unwrap();
        let router = cc_oracle::ShardRouter::assemble(
            loaded.iter().map(|l| l.shard.clone()).collect::<Vec<_>>(),
        )
        .unwrap();
        for (u, v) in [(0, 95), (17, 60), (5, 5)] {
            assert_eq!(router.try_query(u, v).unwrap(), oracle.try_query(u, v).unwrap());
        }
        for p in paths {
            std::fs::remove_file(p).ok();
        }
        // A prime n falls back to a covering grid instead of failing.
        let g = direct_demo_graph(97, 1).unwrap();
        assert!(g.n() >= 97);
    }

    #[test]
    fn corrupt_snapshot_files_are_rejected() {
        let path = temp_dir("garbage").join("garbage.snap");
        std::fs::write(&path, b"definitely not an oracle").unwrap();
        assert!(load_snapshot(&path).is_err());
        std::fs::remove_file(&path).ok();
        assert!(load_snapshot(Path::new("/nonexistent/oracle.snap")).is_err());
    }

    #[test]
    fn legacy_v1_snapshots_are_rejected_with_the_dedicated_error() {
        let path = temp_dir("legacy").join("legacy.snap");
        // Hand-built v1 prefix: the magic alone must trigger the rejection.
        let mut bytes = b"CCO1".to_vec();
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 56]);
        std::fs::write(&path, &bytes).unwrap();
        let err = load_snapshot(&path).unwrap_err();
        assert!(err.to_string().contains("legacy"), "error must say why: {err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn shard_sets_round_trip_and_wrong_slots_are_named() {
        let oracle = build_demo(21, 5, 0.5).unwrap();
        let dir = temp_dir("shards");
        let paths = write_shard_snapshots(&oracle, 3, &dir).unwrap();
        assert_eq!(paths.len(), 3);

        let loaded = load_shard_set(&paths).unwrap();
        let router = cc_oracle::ShardRouter::assemble(
            loaded.iter().map(|l| l.shard.clone()).collect::<Vec<_>>(),
        )
        .unwrap();
        for u in 0..21 {
            for v in 0..21 {
                assert_eq!(
                    router.try_query(u, v).unwrap(),
                    oracle.try_query(u, v).unwrap(),
                    "({u},{v})"
                );
            }
        }

        // Shard 2's file in slot 0: rejected, and the message names slot,
        // path, and the index mismatch.
        let swapped = vec![paths[2].clone(), paths[1].clone(), paths[0].clone()];
        let err = load_shard_set(&swapped).unwrap_err().to_string();
        assert!(err.contains("shard 0"), "error must name the slot: {err}");
        assert!(err.contains("declares index 2"), "error must name the mismatch: {err}");

        // A missing file fails cleanly with its path.
        let missing = vec![paths[0].clone(), dir.join("nope.snap"), paths[2].clone()];
        let err = load_shard_set(&missing).unwrap_err().to_string();
        assert!(err.contains("nope.snap"), "error must name the file: {err}");

        // A monolithic snapshot offered as a shard is refused.
        let mono = dir.join("mono.snap");
        write_snapshot(&oracle, &mono).unwrap();
        let err = load_shard_set(&[mono.clone(), paths[1].clone(), paths[2].clone()])
            .unwrap_err()
            .to_string();
        assert!(err.contains("monolithic"), "error must say why: {err}");

        // An incomplete set is refused.
        let err = load_shard_set(&paths[..2]).unwrap_err().to_string();
        assert!(err.contains("3-shard set"), "error must name the shape: {err}");

        for p in paths {
            std::fs::remove_file(p).ok();
        }
        std::fs::remove_file(mono).ok();
    }

    #[test]
    fn manifest_parses_both_modes_with_comments_and_multiline_arrays() {
        let base = Path::new("/artifacts");
        let mono = BackendSpec::parse_manifest(
            "# a monolithic manifest\nmode = \"mono\"  # trailing comment\n\
             snapshot = \"oracle.snap\"\ncache_capacity = 512\n",
            base,
        )
        .unwrap();
        assert!(!mono.is_sharded());
        assert_eq!(mono.mono_path(), Some(Path::new("/artifacts/oracle.snap")));
        assert_eq!(mono.cache_capacity, Some(512));
        assert_eq!(mono.expected_set_id, None);

        let sharded = BackendSpec::parse_manifest(
            "mode = \"sharded\"\nset_id = \"00ffee29ec16e4f4\"\nshards = [\n    \
             \"a/shard-0.snap\",  # slot 0\n    \"a/shard-1.snap\",\n]\n",
            base,
        )
        .unwrap();
        assert!(sharded.is_sharded());
        assert_eq!(sharded.shard_count(), 2);
        assert_eq!(sharded.shard_path(0), Some(Path::new("/artifacts/a/shard-0.snap")));
        assert_eq!(sharded.shard_path(1), Some(Path::new("/artifacts/a/shard-1.snap")));
        assert_eq!(sharded.expected_set_id, Some(0x00ff_ee29_ec16_e4f4));
        // An absolute path stays absolute.
        let abs = BackendSpec::parse_manifest(
            "mode = \"mono\"\nsnapshot = \"/elsewhere/o.snap\"\n",
            base,
        )
        .unwrap();
        assert_eq!(abs.mono_path(), Some(Path::new("/elsewhere/o.snap")));
    }

    #[test]
    fn manifest_rejections_name_the_problem() {
        let base = Path::new(".");
        for (text, needle) in [
            ("snapshot = \"x.snap\"\n", "missing 'mode"),
            ("mode = \"turbo\"\n", "mode must be"),
            ("mode = \"mono\"\n", "needs 'snapshot"),
            ("mode = \"sharded\"\n", "needs 'shards"),
            ("mode = \"mono\"\nshards = [\"a\"]\n", "takes 'snapshot', not 'shards'"),
            ("mode = \"sharded\"\nsnapshot = \"x\"\n", "takes 'shards', not 'snapshot'"),
            ("mode = \"mono\"\nmode = \"mono\"\nsnapshot = \"x\"\n", "duplicate key 'mode'"),
            ("mode = \"mono\"\nsnapshot = \"x\"\nturbo = 1\n", "unknown key 'turbo'"),
            ("mode = \"mono\"\nsnapshot = \"x\"\nset_id = \"xyz\"\n", "16 hex digits"),
            ("mode = \"mono\"\nsnapshot = \"x\"\nset_id = \"123\"\n", "16 hex digits"),
            ("mode = \"mono\"\nsnapshot = x.snap\n", "double-quoted"),
            ("mode = \"mono\"\nsnapshot\n", "expected 'key = value'"),
            ("mode = \"sharded\"\nshards = []\n", "at least one file"),
            (
                "mode = \"mono\"\nsnapshot = \"x\"\ncache_capacity = \"lots\"\n",
                "cache_capacity must be an integer",
            ),
            // The duplicate-slot case: one file cannot fill two slots.
            (
                "mode = \"sharded\"\nshards = [\"s0.snap\", \"s1.snap\", \"s0.snap\"]\n",
                "shards[2] duplicates shards[0]",
            ),
        ] {
            let err = BackendSpec::parse_manifest(text, base).unwrap_err();
            assert!(
                err.contains(needle),
                "manifest {text:?}: error {err:?} must contain {needle:?}"
            );
        }
    }

    #[test]
    fn manifest_load_round_trips_and_gates_on_set_id_and_files() {
        let dir = temp_dir("manifest-load");
        let oracle = build_demo(20, 3, 0.5).unwrap();
        let paths = write_shard_snapshots(&oracle, 2, &dir).unwrap();
        let set_id = serde::payload_checksum(&oracle);

        // A correct manifest loads a router backend with per-shard infos.
        let manifest = dir.join("set.toml");
        std::fs::write(
            &manifest,
            format!(
                "mode = \"sharded\"\nset_id = \"{set_id:016x}\"\n\
                 shards = [\"shard-0.snap\", \"shard-1.snap\"]\n"
            ),
        )
        .unwrap();
        let spec = BackendSpec::from_manifest(&manifest).unwrap();
        assert_eq!(spec.manifest_path(), Some(manifest.as_path()));
        let loaded = spec.load().unwrap();
        assert_eq!(loaded.n(), 20);
        assert_eq!(loaded.shards.len(), 2);
        assert_eq!(loaded.shard_infos.len(), 2);
        assert_eq!(loaded.info.build_id, format!("{set_id:016x}"));
        for u in 0..20 {
            for v in 0..20 {
                assert_eq!(
                    loaded.backend.try_query(u, v).unwrap(),
                    oracle.try_query(u, v).unwrap()
                );
            }
        }

        // A wrong set id is refused, naming the file and both ids.
        std::fs::write(
            &manifest,
            "mode = \"sharded\"\nset_id = \"00000000deadbeef\"\n\
             shards = [\"shard-0.snap\", \"shard-1.snap\"]\n",
        )
        .unwrap();
        let err = BackendSpec::from_manifest(&manifest).unwrap().load().unwrap_err().to_string();
        assert!(err.contains("shard-0.snap"), "must name a file: {err}");
        assert!(err.contains("00000000deadbeef"), "must name the expected id: {err}");
        assert!(err.contains(&format!("{set_id:016x}")), "must name the found id: {err}");

        // A missing shard file is refused, naming it.
        std::fs::write(
            &manifest,
            "mode = \"sharded\"\nshards = [\"shard-0.snap\", \"gone.snap\"]\n",
        )
        .unwrap();
        let err = BackendSpec::from_manifest(&manifest).unwrap().load().unwrap_err().to_string();
        assert!(err.contains("gone.snap"), "must name the file: {err}");

        // The mono gate works the same way against the build id.
        let mono_path = dir.join("mono.snap");
        write_snapshot(&oracle, &mono_path).unwrap();
        std::fs::write(
            &manifest,
            format!("mode = \"mono\"\nsnapshot = \"mono.snap\"\nset_id = \"{set_id:016x}\"\n"),
        )
        .unwrap();
        assert!(BackendSpec::from_manifest(&manifest).unwrap().load().is_ok());
        std::fs::write(
            &manifest,
            "mode = \"mono\"\nsnapshot = \"mono.snap\"\nset_id = \"00000000deadbeef\"\n",
        )
        .unwrap();
        let err = BackendSpec::from_manifest(&manifest).unwrap().load().unwrap_err().to_string();
        assert!(err.contains("mono.snap") && err.contains("expects set_id"), "{err}");

        for p in paths {
            std::fs::remove_file(p).ok();
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shard_sets_from_different_builds_do_not_mix() {
        let a = build_demo(20, 6, 0.5).unwrap();
        let b = build_demo(20, 7, 0.5).unwrap();
        let dir_a = temp_dir("set-a");
        let dir_b = temp_dir("set-b");
        let paths_a = write_shard_snapshots(&a, 2, &dir_a).unwrap();
        let paths_b = write_shard_snapshots(&b, 2, &dir_b).unwrap();
        let mixed = vec![paths_a[0].clone(), paths_b[1].clone()];
        let err = load_shard_set(&mixed).unwrap_err().to_string();
        assert!(err.contains("set id"), "error must name the field: {err}");
        for p in paths_a.into_iter().chain(paths_b) {
            std::fs::remove_file(p).ok();
        }
    }
}
