//! Where a served oracle comes from: a snapshot file on disk, or an
//! in-process demo build in the simulated clique.

use std::error::Error;
use std::path::Path;

use cc_clique::Clique;
use cc_graph::{generators, Graph};
use cc_oracle::{serde, DistanceOracle, OracleBuilder, OracleError};

use crate::reload::SnapshotInfo;

/// An oracle loaded from disk together with the identity of the snapshot
/// it came from (version, build id, creation time, path).
#[derive(Debug)]
pub struct LoadedSnapshot {
    /// The validated artifact.
    pub oracle: DistanceOracle,
    /// Where it came from and what it is, for `/stats` and `/artifact`.
    pub info: SnapshotInfo,
}

/// Loads an oracle from a **versioned** [`cc_oracle::serde`] snapshot
/// file, validating magic, version, checksum and structure.
///
/// When `allow_legacy` is set, a pre-versioning (v1) snapshot is accepted
/// too — the one-release migration path; otherwise v1 bytes are rejected
/// with [`cc_oracle::OracleError::LegacySnapshot`].
///
/// # Errors
///
/// I/O errors reading the file and every [`cc_oracle::serde::from_bytes`]
/// validation error.
pub fn load_snapshot(path: &Path, allow_legacy: bool) -> Result<LoadedSnapshot, Box<dyn Error>> {
    let bytes = std::fs::read(path)?;
    let source = path.display().to_string();
    match serde::from_bytes_with_header(&bytes) {
        Ok((header, oracle)) => {
            Ok(LoadedSnapshot { info: SnapshotInfo::from_header(&header, source), oracle })
        }
        Err(OracleError::LegacySnapshot) if allow_legacy => {
            let oracle = serde::from_bytes_legacy(&bytes)?;
            Ok(LoadedSnapshot { info: SnapshotInfo::legacy(&oracle, source), oracle })
        }
        Err(e) => Err(e.into()),
    }
}

/// Writes `oracle` to `path` as a snapshot file.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_snapshot(oracle: &DistanceOracle, path: &Path) -> std::io::Result<()> {
    std::fs::write(path, serde::to_bytes(oracle))
}

/// The deterministic demo graph `cc-serve --demo n` serves: weighted
/// G(n, p) with p scaled to stay connected but sparse as `n` grows.
///
/// # Errors
///
/// Propagates generator errors (e.g. `n == 0`).
pub fn demo_graph(n: usize, seed: u64) -> Result<Graph, Box<dyn Error>> {
    let p = (4.0 * (n.max(2) as f64).ln() / n.max(2) as f64).clamp(0.02, 0.3);
    Ok(generators::gnp_weighted(n, p, 50, seed)?)
}

/// Builds the demo oracle for [`demo_graph`] in a fresh simulated clique.
///
/// # Errors
///
/// Propagates generator and oracle-build errors.
pub fn build_demo(n: usize, seed: u64, epsilon: f64) -> Result<DistanceOracle, Box<dyn Error>> {
    let g = demo_graph(n, seed)?;
    let mut clique = Clique::new(n);
    Ok(OracleBuilder::new().epsilon(epsilon).seed(seed).build(&mut clique, &g)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_round_trips_through_disk_with_its_identity() {
        let oracle = build_demo(20, 3, 0.5).unwrap();
        let dir = std::env::temp_dir().join("cc-serve-test-snap");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("oracle.snap");
        write_snapshot(&oracle, &path).unwrap();
        let back = load_snapshot(&path, false).unwrap();
        assert_eq!(back.oracle, oracle);
        assert_eq!(back.info.version, serde::SNAPSHOT_VERSION);
        assert_eq!(back.info.build_id, format!("{:016x}", serde::payload_checksum(&oracle)));
        assert_eq!(back.info.source, path.display().to_string());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_snapshot_files_are_rejected() {
        let dir = std::env::temp_dir().join("cc-serve-test-snap");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.snap");
        std::fs::write(&path, b"definitely not an oracle").unwrap();
        assert!(load_snapshot(&path, false).is_err());
        std::fs::remove_file(&path).ok();
        assert!(load_snapshot(Path::new("/nonexistent/oracle.snap"), false).is_err());
    }

    #[test]
    fn legacy_snapshots_need_the_explicit_opt_in() {
        let oracle = build_demo(18, 4, 0.5).unwrap();
        let dir = std::env::temp_dir().join("cc-serve-test-snap");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("legacy.snap");
        std::fs::write(&path, serde::to_bytes_legacy(&oracle)).unwrap();

        let err = load_snapshot(&path, false).unwrap_err();
        assert!(err.to_string().contains("legacy"), "error must say why: {err}");

        let loaded = load_snapshot(&path, true).unwrap();
        assert_eq!(loaded.oracle, oracle);
        assert_eq!(loaded.info.version, 1, "legacy artifacts report format version 1");
        std::fs::remove_file(&path).ok();
    }
}
