//! Server tuning knobs.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use cc_telemetry::AccessLog;

/// Which accept/connection transport the server runs.
///
/// The epoll reactor owns the listener plus all idle keep-alive
/// connections and hands *ready* sockets to the worker pool, so accept
/// latency is event-driven (no 500 µs sleep-poll granularity) and an idle
/// connection costs no worker thread. The poll loop is the portable
/// fallback: non-blocking accept with a short sleep, one worker pinned
/// per live connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Transport {
    /// Use the epoll reactor when the platform supports it (Linux), fall
    /// back to the poll loop elsewhere. The default.
    #[default]
    Auto,
    /// Require the epoll reactor; starting the server fails with
    /// `Unsupported` where epoll is unavailable.
    Epoll,
    /// Force the portable sleep-polling accept loop.
    Poll,
}

impl Transport {
    /// The knob's spelling on the `cc-serve --transport` flag.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Transport::Auto => "auto",
            Transport::Epoll => "epoll",
            Transport::Poll => "poll",
        }
    }
}

impl std::str::FromStr for Transport {
    type Err = String;

    fn from_str(s: &str) -> Result<Transport, String> {
        match s.to_ascii_lowercase().as_str() {
            "auto" => Ok(Transport::Auto),
            "epoll" => Ok(Transport::Epoll),
            "poll" => Ok(Transport::Poll),
            other => Err(format!("unknown transport '{other}' (expected auto, epoll, or poll)")),
        }
    }
}

/// Configuration for [`crate::Server::start`].
///
/// Plain data with a sensible [`Default`]; builder-style `with_*` methods
/// keep call sites one-liners.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:8317`. Port `0` picks an ephemeral
    /// port (the bound address is reported by `ServerHandle::addr`).
    pub addr: String,
    /// Worker threads handling connections.
    pub workers: usize,
    /// Accepted connections that may wait for a worker before the acceptor
    /// starts shedding load with `503`.
    pub backlog: usize,
    /// Largest accepted request body; anything bigger is a `413`.
    pub max_body_bytes: usize,
    /// Capacity of the LRU result cache fronting the oracle.
    pub cache_capacity: usize,
    /// Per-connection read timeout; an idle keep-alive connection is closed
    /// after this long.
    pub read_timeout: Duration,
    /// Accept/connection transport ([`Transport::Auto`] resolves to the
    /// epoll reactor on Linux, the poll loop elsewhere). `/stats` reports
    /// the resolved choice as `transport`.
    pub transport: Transport,
    /// Default snapshot path for `POST /reload` (and SIGHUP in the
    /// `cc-serve` binary). `None` means a reload request must name a path
    /// explicitly (`/reload?path=...`). Ignored when the server is started
    /// from a manifest or shard set, which carry their own reload sources.
    pub reload_path: Option<PathBuf>,
    /// Whether the metric registry records anything. `false` swaps in a
    /// permanently disabled [`cc_telemetry::Registry`]: every counter,
    /// gauge, and histogram handle becomes a no-op (and `/stats`,
    /// `/metrics` report zeros). Exists so the bench harness can measure
    /// instrumentation overhead; leave `true` in production.
    pub telemetry_enabled: bool,
    /// Access/slow-query log every request is recorded to. `None` (the
    /// default) disables request logging entirely; the log's own
    /// threshold decides which requests it keeps (see
    /// [`AccessLog::to_writer`]).
    pub access_log: Option<Arc<AccessLog>>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: std::thread::available_parallelism().map_or(4, |p| p.get()).min(16),
            backlog: 128,
            max_body_bytes: 1 << 20,
            cache_capacity: 4096,
            read_timeout: Duration::from_secs(5),
            transport: Transport::Auto,
            reload_path: None,
            telemetry_enabled: true,
            access_log: None,
        }
    }
}

impl ServerConfig {
    /// Sets the bind address.
    pub fn with_addr(mut self, addr: impl Into<String>) -> Self {
        self.addr = addr.into();
        self
    }

    /// Sets the worker thread count (minimum 1).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Sets the pending-connection backlog (minimum 1).
    pub fn with_backlog(mut self, backlog: usize) -> Self {
        self.backlog = backlog.max(1);
        self
    }

    /// Sets the request-body size limit.
    pub fn with_max_body_bytes(mut self, bytes: usize) -> Self {
        self.max_body_bytes = bytes;
        self
    }

    /// Sets the result-cache capacity.
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Sets the per-connection read timeout.
    pub fn with_read_timeout(mut self, timeout: Duration) -> Self {
        self.read_timeout = timeout;
        self
    }

    /// Selects the accept/connection transport.
    pub fn with_transport(mut self, transport: Transport) -> Self {
        self.transport = transport;
        self
    }

    /// Sets the default snapshot path `POST /reload` (and SIGHUP) loads.
    pub fn with_reload_path(mut self, path: impl Into<PathBuf>) -> Self {
        self.reload_path = Some(path.into());
        self
    }

    /// Enables or disables the metric registry (enabled by default).
    pub fn with_telemetry_enabled(mut self, enabled: bool) -> Self {
        self.telemetry_enabled = enabled;
        self
    }

    /// Sets the access/slow-query log requests are recorded to.
    pub fn with_access_log(mut self, log: Arc<AccessLog>) -> Self {
        self.access_log = Some(log);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_methods_override_defaults() {
        let c = ServerConfig::default()
            .with_addr("0.0.0.0:9999")
            .with_workers(0)
            .with_backlog(0)
            .with_max_body_bytes(512)
            .with_cache_capacity(7)
            .with_read_timeout(Duration::from_millis(250))
            .with_transport(Transport::Poll)
            .with_reload_path("/tmp/next.snap")
            .with_telemetry_enabled(false)
            .with_access_log(Arc::new(AccessLog::stderr(0)));
        assert_eq!(c.addr, "0.0.0.0:9999");
        assert_eq!(c.reload_path.as_deref(), Some(std::path::Path::new("/tmp/next.snap")));
        assert_eq!(c.workers, 1, "worker count is clamped to at least 1");
        assert_eq!(c.backlog, 1, "backlog is clamped to at least 1");
        assert_eq!(c.max_body_bytes, 512);
        assert_eq!(c.cache_capacity, 7);
        assert_eq!(c.read_timeout, Duration::from_millis(250));
        assert_eq!(c.transport, Transport::Poll);
        assert!(!c.telemetry_enabled);
        assert!(c.access_log.is_some());
    }

    #[test]
    fn transport_parses_case_insensitively_and_rejects_garbage() {
        assert_eq!("auto".parse(), Ok(Transport::Auto));
        assert_eq!("EPOLL".parse(), Ok(Transport::Epoll));
        assert_eq!("Poll".parse(), Ok(Transport::Poll));
        assert_eq!(ServerConfig::default().transport, Transport::Auto);
        let err = "kqueue".parse::<Transport>().unwrap_err();
        assert!(err.contains("kqueue") && err.contains("epoll"), "err: {err}");
        for t in [Transport::Auto, Transport::Epoll, Transport::Poll] {
            assert_eq!(t.label().parse(), Ok(t), "label must round-trip");
        }
    }
}
