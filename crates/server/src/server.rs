//! The listener front-end: transport selection (epoll reactor or portable
//! poll loop), keep-alive connection handling, accept-error triage, and
//! graceful shutdown, all feeding one bounded worker pool.

use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use cc_oracle::DistanceOracle;
use cc_reactor::{Poller, Waker};

use crate::config::Transport;
use crate::handlers::AppState;
use crate::http::{read_request, write_response, HttpError, Response};
use crate::pool::{SubmitError, WorkerPool};
use crate::reload::SnapshotInfo;
use crate::ServerConfig;

/// How long the poll-loop acceptor sleeps when there is nothing to accept.
/// The epoll reactor has no such floor: accepts are event-driven.
const ACCEPT_IDLE: Duration = Duration::from_micros(500);

/// The `cc-serve` front-end: binds, spawns the acceptor and worker pool,
/// and serves a [`DistanceOracle`] until [`ServerHandle::shutdown`].
pub struct Server;

impl Server {
    /// Binds `config.addr` and starts serving `oracle` in the background.
    ///
    /// The artifact is reported as an in-process build; a server fronting
    /// a loaded snapshot should use [`Server::start_with_info`] so
    /// `/stats` and `/artifact` carry the snapshot's real identity.
    ///
    /// # Errors
    ///
    /// Propagates bind/configuration I/O errors — including `Unsupported`
    /// when [`Transport::Epoll`] is requested on a platform without epoll.
    /// Everything after a successful return is handled per-connection.
    pub fn start(config: &ServerConfig, oracle: DistanceOracle) -> io::Result<ServerHandle> {
        let info = SnapshotInfo::in_process(&oracle, "in-process");
        Server::start_with_info(config, oracle, info)
    }

    /// [`Server::start`] with an explicit identity for the initial
    /// artifact (version, build id, source path).
    ///
    /// # Errors
    ///
    /// Propagates bind/configuration I/O errors.
    pub fn start_with_info(
        config: &ServerConfig,
        oracle: DistanceOracle,
        info: SnapshotInfo,
    ) -> io::Result<ServerHandle> {
        let state =
            AppState::with_info(oracle, info, config.cache_capacity, config.reload_path.clone());
        Server::start_with_state(config, state)
    }

    /// Starts a **router-tier** server over a loaded, validated shard set:
    /// `/distance` and `/batch` are answered by combining the two owning
    /// shards' half-results behind a router-level result cache,
    /// `/reload?shard=i` hot-swaps one slice at a time, and `/stats` /
    /// `/artifact` report per-shard build ids.
    ///
    /// # Errors
    ///
    /// Set-validation errors (mapped to `InvalidInput`) and bind I/O
    /// errors. A missing or corrupt shard snapshot fails **here**, before
    /// the socket ever accepts — the startup gate the router e2e suite
    /// pins down.
    pub fn start_sharded(
        config: &ServerConfig,
        shards: Vec<crate::source::LoadedShard>,
    ) -> io::Result<ServerHandle> {
        let state = AppState::with_shards(shards, config.cache_capacity)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
        Server::start_with_state(config, state)
    }

    /// Starts a server from a [`crate::source::BackendSpec`] — the
    /// manifest-driven path (`cc-serve --manifest`). The spec decides the
    /// tier; endpoints, reloads, and stats are identical either way.
    ///
    /// # Errors
    ///
    /// Everything [`crate::source::BackendSpec::load`] rejects (mapped to
    /// `InvalidInput`, naming the offending file — including an
    /// `expected_set_id` mismatch) and bind I/O errors.
    pub fn start_from_spec(
        config: &ServerConfig,
        spec: crate::source::BackendSpec,
    ) -> io::Result<ServerHandle> {
        let state = AppState::from_spec(spec, config.cache_capacity)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
        Server::start_with_state(config, state)
    }

    fn start_with_state(config: &ServerConfig, mut state: AppState) -> io::Result<ServerHandle> {
        if !config.telemetry_enabled {
            state.disable_telemetry();
        }
        if let Some(log) = &config.access_log {
            state.set_access_log(Arc::clone(log));
        }
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;

        // Resolve the transport before sharing the state so `/stats` can
        // report the choice actually running, not the one requested.
        let poller = resolve_poller(config.transport, &listener)?;
        state.set_transport_label(if poller.is_some() { "epoll" } else { "poll" });
        let waker = poller.as_ref().map(Poller::waker);

        let state = Arc::new(state);
        let shutdown = Arc::new(AtomicBool::new(false));
        let acceptor = {
            let state = Arc::clone(&state);
            let shutdown = Arc::clone(&shutdown);
            let config = config.clone();
            match poller {
                Some(poller) => std::thread::Builder::new()
                    .name("cc-serve-reactor".to_owned())
                    .spawn(move || {
                        crate::reactor::reactor_loop(
                            &listener, &config, &state, &shutdown, &poller,
                        );
                    })?,
                None => std::thread::Builder::new()
                    .name("cc-serve-accept".to_owned())
                    .spawn(move || accept_loop(&listener, &config, &state, &shutdown))?,
            }
        };

        Ok(ServerHandle { addr, shutdown, acceptor: Some(acceptor), waker, state })
    }
}

/// Resolves the configured [`Transport`] to `Some(poller)` (epoll reactor,
/// listener already registered) or `None` (portable poll loop).
fn resolve_poller(transport: Transport, listener: &TcpListener) -> io::Result<Option<Poller>> {
    let poller = match transport {
        Transport::Poll => return Ok(None),
        // Explicit epoll: surface the failure instead of silently degrading.
        Transport::Epoll => Poller::new()?,
        Transport::Auto => match Poller::new() {
            Ok(p) => p,
            Err(_) => return Ok(None),
        },
    };
    match register_listener(&poller, listener) {
        Ok(()) => Ok(Some(poller)),
        Err(e) if transport == Transport::Epoll => Err(e),
        Err(_) => Ok(None),
    }
}

#[cfg(unix)]
fn register_listener(poller: &Poller, listener: &TcpListener) -> io::Result<()> {
    use std::os::fd::AsRawFd;
    poller.add(listener.as_raw_fd(), crate::reactor::LISTENER_TOKEN)
}

#[cfg(not(unix))]
fn register_listener(_poller: &Poller, _listener: &TcpListener) -> io::Result<()> {
    Err(io::ErrorKind::Unsupported.into())
}

/// Handle to a running server: address, state, and shutdown control.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    waker: Option<Waker>,
    state: Arc<AppState>,
}

impl ServerHandle {
    /// The bound address (resolves port `0` to the actual ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared serving state (counters, artifact), e.g. for tests.
    pub fn state(&self) -> &AppState {
        &self.state
    }

    /// An owned handle to the shared serving state, for threads that
    /// outlive borrows of this handle — e.g. the `cc-serve` binary's
    /// SIGHUP watcher calling [`AppState::reload_default`].
    pub fn shared_state(&self) -> Arc<AppState> {
        Arc::clone(&self.state)
    }

    /// Stops accepting, drains in-flight work, and joins every thread.
    ///
    /// Workers finish the connection they are on; a keep-alive peer that
    /// stays silent is cut loose by the configured read timeout, so
    /// shutdown takes at most roughly that long.
    pub fn shutdown(mut self) {
        self.stop();
    }

    /// Blocks the calling thread until the server stops (e.g. the process
    /// is signalled); used by the `cc-serve` binary.
    pub fn join(mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        // The reactor may be parked in `epoll_wait`; the poll loop notices
        // the flag on its own within ACCEPT_IDLE.
        if let Some(waker) = &self.waker {
            waker.wake();
        }
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// What `accept(2)` failures mean for the acceptor's control flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum AcceptErrorClass {
    /// Per-connection failure (peer aborted mid-handshake, signal): count
    /// it and keep accepting at full speed.
    Transient,
    /// Resource exhaustion (fd limits, memory, socket buffers) or anything
    /// unrecognized: count it and back off exponentially — retrying in a
    /// tight loop would spin the CPU while the kernel keeps failing.
    Overload,
    /// The listener itself is broken (bad/stale descriptor): accepting can
    /// never succeed again, stop instead of spinning forever.
    Fatal,
}

pub(crate) fn classify_accept_error(e: &io::Error) -> AcceptErrorClass {
    match e.kind() {
        io::ErrorKind::ConnectionAborted
        | io::ErrorKind::ConnectionReset
        | io::ErrorKind::Interrupted => return AcceptErrorClass::Transient,
        _ => {}
    }
    match e.raw_os_error() {
        // EMFILE, ENFILE, ENOMEM, ENOBUFS: the kernel is out of resources;
        // pressure can only drain if we stop hammering accept().
        Some(24 | 23 | 12 | 105) => AcceptErrorClass::Overload,
        // EBADF, EINVAL, ENOTSOCK, EOPNOTSUPP: the descriptor is not a
        // listening socket (anymore) — unrecoverable.
        Some(9 | 22 | 88 | 95) => AcceptErrorClass::Fatal,
        // Unknown errors get the cautious treatment: retry, but slowly.
        _ => AcceptErrorClass::Overload,
    }
}

/// Exponential accept backoff: 1 ms doubling to a 1 s cap, reset by any
/// successful accept.
pub(crate) struct AcceptBackoff {
    delay: Duration,
}

impl AcceptBackoff {
    const INITIAL: Duration = Duration::from_millis(1);
    const CAP: Duration = Duration::from_secs(1);

    pub(crate) fn new() -> AcceptBackoff {
        AcceptBackoff { delay: AcceptBackoff::INITIAL }
    }

    pub(crate) fn reset(&mut self) {
        self.delay = AcceptBackoff::INITIAL;
    }

    /// The delay to sleep now; doubles the next one up to the cap.
    pub(crate) fn next(&mut self) -> Duration {
        let d = self.delay;
        self.delay = (self.delay * 2).min(AcceptBackoff::CAP);
        d
    }
}

/// The portable fallback transport: non-blocking accept polled every
/// [`ACCEPT_IDLE`], each connection owned by one worker until it closes.
pub(crate) fn accept_loop(
    listener: &TcpListener,
    config: &ServerConfig,
    state: &Arc<AppState>,
    shutdown: &Arc<AtomicBool>,
) {
    // The pool owns the connection handlers; dropping it at the end of this
    // function drains the queue and joins the workers.
    let pool: WorkerPool<TcpStream> = {
        let state = Arc::clone(state);
        let shutdown = Arc::clone(shutdown);
        let max_body = config.max_body_bytes;
        let read_timeout = config.read_timeout;
        let depth = state.registry().gauge("cc_pool_queue_depth", &[]);
        WorkerPool::with_queue_gauge(
            "cc-serve-worker",
            config.workers,
            config.backlog,
            depth,
            move |stream| {
                serve_connection(&state, stream, max_body, read_timeout, &shutdown);
            },
        )
    };
    let mut backoff = AcceptBackoff::new();
    while !shutdown.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                backoff.reset();
                // The listener is non-blocking for the shutdown poll; the
                // accepted connection itself is served blocking.
                let _ = stream.set_nonblocking(false);
                match pool.try_submit(stream) {
                    Ok(()) => {}
                    Err(SubmitError::Full(stream) | SubmitError::Closed(stream)) => {
                        shed_stream(state, stream);
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(ACCEPT_IDLE),
            Err(e) => {
                state.count_accept_error();
                match classify_accept_error(&e) {
                    AcceptErrorClass::Transient => {}
                    AcceptErrorClass::Overload => std::thread::sleep(backoff.next()),
                    AcceptErrorClass::Fatal => {
                        eprintln!("cc-serve: fatal accept error, no longer accepting: {e}");
                        return;
                    }
                }
            }
        }
    }
}

/// Load-shedding at the edge: answer `503` inline on the acceptor thread
/// (cheap, bounded write) rather than queueing unbounded work. Counted in
/// `/stats` so shedding is visible exactly when monitoring needs it.
fn shed_stream(state: &AppState, stream: TcpStream) {
    // Never let a non-reading peer block the acceptor thread.
    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
    let mut w = BufWriter::new(stream);
    shed(state, &mut w);
}

/// The transport-independent half of load shedding: count and answer 503.
pub(crate) fn shed(state: &AppState, w: &mut impl Write) {
    state.count_load_shed();
    let resp = Response::error_json(503, "server is at capacity, retry later");
    let _ = write_response(w, &resp, false, false).and_then(|()| w.flush());
}

/// Buffer capacity for connection reader/writer halves. Sized so a whole
/// binary batch frame (4096 pairs ≈ 32 KiB) moves in one read and one
/// write syscall instead of four of each through the 8 KiB default — on
/// loopback that also halves the scheduler ping-pong between the client
/// and the serving worker.
const IO_BUF: usize = 32 * 1024;

/// One accepted connection: buffered halves of the same socket, with read
/// and write timeouts already armed. Both transports serve through this.
pub(crate) struct Conn {
    pub(crate) reader: BufReader<TcpStream>,
    pub(crate) writer: BufWriter<TcpStream>,
}

impl Conn {
    pub(crate) fn new(stream: TcpStream, timeout: Duration) -> io::Result<Conn> {
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(timeout))?;
        // A write timeout too: a client that sends requests but never reads
        // the responses would otherwise fill the kernel send buffer and
        // block a worker forever (slow-reader DoS against the bounded pool).
        stream.set_write_timeout(Some(timeout))?;
        let read_half = stream.try_clone()?;
        Ok(Conn {
            reader: BufReader::with_capacity(IO_BUF, read_half),
            writer: BufWriter::with_capacity(IO_BUF, stream),
        })
    }

    /// The descriptor the reactor registers for read readiness. The two
    /// buffered halves are dup'd descriptors of one socket; readiness is
    /// tracked on the read half.
    #[cfg(unix)]
    pub(crate) fn fd(&self) -> i32 {
        use std::os::fd::AsRawFd;
        self.reader.get_ref().as_raw_fd()
    }
}

/// Outcome of serving one request on a connection.
pub(crate) enum Served {
    /// The response was sent and the connection can carry more requests.
    KeepAlive,
    /// The connection is done (client close, protocol error, I/O failure,
    /// or shutdown); the caller drops it.
    Close,
}

/// Reads, handles, and answers exactly one request. The caller has already
/// confirmed buffered input, so request-duration histograms never charge
/// keep-alive idle time.
pub(crate) fn serve_one(
    state: &AppState,
    conn: &mut Conn,
    max_body: usize,
    shutdown: &AtomicBool,
) -> Served {
    let started = std::time::Instant::now();
    match read_request(&mut conn.reader, max_body) {
        Ok(req) => {
            let id = state.access_log().map(|log| log.begin());
            let resp = state.handle(&req);
            let keep_alive = req.keep_alive && !shutdown.load(Ordering::Acquire);
            // HEAD answers carry GET's status and headers, never a body.
            let head = req.method == "HEAD";
            let sent = respond(&mut conn.writer, &resp, keep_alive, head);
            let duration_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
            let endpoint = crate::handlers::endpoint_of(&req.path);
            state.record_request(endpoint, duration_ns);
            if let (Some(log), Some(id)) = (state.access_log(), id) {
                log.record(&cc_telemetry::AccessRecord {
                    id,
                    method: &req.method,
                    path: &req.path,
                    status: resp.status,
                    endpoint,
                    duration_ns,
                });
            }
            if sent.is_err() || !keep_alive {
                Served::Close
            } else {
                Served::KeepAlive
            }
        }
        Err(HttpError::Closed) => Served::Close,
        Err(HttpError::PayloadTooLarge { limit }) => {
            // The unread body bytes make the stream unframed: answer and
            // close instead of trying to resynchronize.
            state.count_protocol_error();
            let resp = Response::error_json(413, format!("request body exceeds {limit} bytes"));
            let _ = respond(&mut conn.writer, &resp, false, false);
            Served::Close
        }
        Err(HttpError::BadRequest(what)) => {
            state.count_protocol_error();
            let _ = respond(&mut conn.writer, &Response::error_json(400, what), false, false);
            Served::Close
        }
        Err(HttpError::Io(_)) => Served::Close, // timeout or reset: just close
    }
}

/// Serves one (possibly keep-alive) connection until close/timeout/error —
/// the poll transport's worker body, one worker pinned per connection.
fn serve_connection(
    state: &AppState,
    stream: TcpStream,
    max_body: usize,
    read_timeout: Duration,
    shutdown: &AtomicBool,
) {
    let Ok(mut conn) = Conn::new(stream, read_timeout) else { return };
    loop {
        // Block until the first byte of the next request is buffered, and
        // only then start the clock (see `serve_one`).
        match conn.reader.fill_buf() {
            Ok([]) => return, // clean EOF between requests
            Ok(_) => {}
            Err(_) => return, // timeout or reset while idle
        }
        if matches!(serve_one(state, &mut conn, max_body, shutdown), Served::Close) {
            return;
        }
    }
}

/// How long a reactor worker lingers on a just-served connection before
/// handing it back for parking. A client in a request/response loop sends
/// its next request within microseconds; catching it here keeps the
/// exchange worker-local instead of paying a full park → epoll → dispatch
/// round-trip per request. Only connections idle past this grace window
/// cost a reactor cycle — and only those stop occupying a worker.
const REPARK_GRACE: Duration = Duration::from_millis(5);

/// The reactor transport's worker body: serve every request already
/// pipelined on the wire plus any that arrives within [`REPARK_GRACE`],
/// then hand the idle connection back for parking (`Some`) instead of
/// pinning a worker on it. `None` means closed.
pub(crate) fn serve_ready(
    state: &AppState,
    mut conn: Conn,
    max_body: usize,
    read_timeout: Duration,
    shutdown: &AtomicBool,
) -> Option<Conn> {
    loop {
        match conn.reader.fill_buf() {
            Ok([]) => return None,
            Ok(_) => {}
            Err(_) => return None,
        }
        match serve_one(state, &mut conn, max_body, shutdown) {
            Served::Close => return None,
            Served::KeepAlive => {
                if !conn.reader.buffer().is_empty() {
                    // More pipelined bytes are already buffered: parking
                    // now would stall them (epoll only sees the kernel
                    // queue). Serve them before anything else.
                    continue;
                }
                // Grace read: wait briefly for a follow-up request. The
                // timeout swap must round-trip — a connection with an
                // unknown read timeout cannot be parked.
                if conn.reader.get_ref().set_read_timeout(Some(REPARK_GRACE)).is_err() {
                    return None;
                }
                let outcome = conn.reader.fill_buf().map(|buf| buf.is_empty());
                if conn.reader.get_ref().set_read_timeout(Some(read_timeout)).is_err() {
                    return None;
                }
                match outcome {
                    Ok(true) => return None, // clean EOF in the grace window
                    Ok(false) => {}          // next request is here: serve it
                    Err(e)
                        if e.kind() == io::ErrorKind::WouldBlock
                            || e.kind() == io::ErrorKind::TimedOut =>
                    {
                        return Some(conn); // genuinely idle: park it
                    }
                    Err(_) => return None,
                }
            }
        }
    }
}

fn respond(
    w: &mut BufWriter<TcpStream>,
    resp: &Response,
    keep_alive: bool,
    head: bool,
) -> io::Result<()> {
    write_response(w, resp, keep_alive, head)?;
    w.flush()
}

/// A minimal blocking HTTP/1.1 client for the e2e tests, benches and
/// examples in this workspace (keep-alive, `Content-Length` framing only).
pub struct BlockingClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl BlockingClient {
    /// Connects to a running server.
    ///
    /// # Errors
    ///
    /// Propagates connection errors.
    pub fn connect(addr: SocketAddr) -> io::Result<BlockingClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(10)))?;
        let reader = BufReader::with_capacity(IO_BUF, stream.try_clone()?);
        Ok(BlockingClient { reader, writer: stream })
    }

    /// Issues `GET target`, returning `(status, body)`.
    ///
    /// # Errors
    ///
    /// Fails on transport errors or malformed responses.
    pub fn get(&mut self, target: &str) -> io::Result<(u16, Vec<u8>)> {
        self.request("GET", target, None, &[])
    }

    /// Issues `HEAD target`, returning `(status, declared_content_length)`.
    /// Per RFC 9110 §9.3.2 the response carries no body even though it
    /// declares `Content-Length`.
    ///
    /// # Errors
    ///
    /// Fails on transport errors or malformed responses.
    pub fn head(&mut self, target: &str) -> io::Result<(u16, usize)> {
        self.send_request("HEAD", target, None, &[])?;
        self.read_head()
    }

    /// Issues `POST target` with `body`, returning `(status, body)`.
    ///
    /// # Errors
    ///
    /// Fails on transport errors or malformed responses.
    pub fn post(&mut self, target: &str, body: &[u8]) -> io::Result<(u16, Vec<u8>)> {
        self.request("POST", target, None, body)
    }

    /// [`BlockingClient::post`] with an explicit `Content-Type` — e.g.
    /// [`cc_reactor::frame::CONTENT_TYPE`] for binary `/batch` frames.
    ///
    /// # Errors
    ///
    /// Fails on transport errors or malformed responses.
    pub fn post_with_content_type(
        &mut self,
        target: &str,
        content_type: &str,
        body: &[u8],
    ) -> io::Result<(u16, Vec<u8>)> {
        self.request("POST", target, Some(content_type), body)
    }

    fn request(
        &mut self,
        method: &str,
        target: &str,
        content_type: Option<&str>,
        body: &[u8],
    ) -> io::Result<(u16, Vec<u8>)> {
        self.send_request(method, target, content_type, body)?;
        let (status, content_length) = self.read_head()?;
        let mut body = vec![0u8; content_length];
        std::io::Read::read_exact(&mut self.reader, &mut body)?;
        Ok((status, body))
    }

    fn send_request(
        &mut self,
        method: &str,
        target: &str,
        content_type: Option<&str>,
        body: &[u8],
    ) -> io::Result<()> {
        write!(self.writer, "{method} {target} HTTP/1.1\r\nHost: cc-serve\r\n")?;
        if let Some(ct) = content_type {
            write!(self.writer, "Content-Type: {ct}\r\n")?;
        }
        write!(self.writer, "Content-Length: {}\r\n\r\n", body.len())?;
        self.writer.write_all(body)?;
        self.writer.flush()
    }

    /// Reads the status line and headers; returns `(status, content_length)`
    /// with the body left unread on the wire.
    fn read_head(&mut self) -> io::Result<(u16, usize)> {
        let bad = |what: &str| io::Error::new(io::ErrorKind::InvalidData, what.to_owned());
        let mut status_line = String::new();
        if self.reader.read_line(&mut status_line)? == 0 {
            return Err(bad("server closed the connection"));
        }
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad("malformed status line"))?;
        let mut content_length = 0usize;
        loop {
            let mut line = String::new();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(bad("connection closed inside headers"));
            }
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                if name.trim().eq_ignore_ascii_case("content-length") {
                    content_length = value.trim().parse().map_err(|_| bad("bad content-length"))?;
                }
            }
        }
        Ok((status, content_length))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accept_errors_classify_by_recoverability() {
        // Kind-level transients: the peer gave up, not us.
        for kind in [
            io::ErrorKind::ConnectionAborted,
            io::ErrorKind::ConnectionReset,
            io::ErrorKind::Interrupted,
        ] {
            let e = io::Error::from(kind);
            assert_eq!(classify_accept_error(&e), AcceptErrorClass::Transient, "{kind:?}");
        }
        // Resource exhaustion backs off: EMFILE, ENFILE, ENOMEM, ENOBUFS.
        for errno in [24, 23, 12, 105] {
            let e = io::Error::from_raw_os_error(errno);
            assert_eq!(classify_accept_error(&e), AcceptErrorClass::Overload, "errno {errno}");
        }
        // Broken listener is fatal: EBADF, EINVAL, ENOTSOCK, EOPNOTSUPP.
        for errno in [9, 22, 88, 95] {
            let e = io::Error::from_raw_os_error(errno);
            assert_eq!(classify_accept_error(&e), AcceptErrorClass::Fatal, "errno {errno}");
        }
        // Anything unrecognized is treated as overload, never fatal.
        let unknown = io::Error::other("mystery");
        assert_eq!(classify_accept_error(&unknown), AcceptErrorClass::Overload);
    }

    #[test]
    fn accept_backoff_doubles_caps_and_resets() {
        let mut b = AcceptBackoff::new();
        assert_eq!(b.next(), Duration::from_millis(1));
        assert_eq!(b.next(), Duration::from_millis(2));
        assert_eq!(b.next(), Duration::from_millis(4));
        for _ in 0..20 {
            b.next();
        }
        assert_eq!(b.next(), Duration::from_secs(1), "backoff must cap at 1s");
        b.reset();
        assert_eq!(b.next(), Duration::from_millis(1), "success resets the backoff");
    }
}
