//! The listener: non-blocking accept loop feeding a bounded worker pool,
//! keep-alive connection handling, and graceful shutdown.

use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use cc_oracle::DistanceOracle;

use crate::handlers::AppState;
use crate::http::{read_request, write_response, HttpError, Response};
use crate::pool::{SubmitError, WorkerPool};
use crate::reload::SnapshotInfo;
use crate::ServerConfig;

/// How long the acceptor sleeps when there is nothing to accept.
const ACCEPT_IDLE: Duration = Duration::from_micros(500);

/// The `cc-serve` front-end: binds, spawns the acceptor and worker pool,
/// and serves a [`DistanceOracle`] until [`ServerHandle::shutdown`].
pub struct Server;

impl Server {
    /// Binds `config.addr` and starts serving `oracle` in the background.
    ///
    /// The artifact is reported as an in-process build; a server fronting
    /// a loaded snapshot should use [`Server::start_with_info`] so
    /// `/stats` and `/artifact` carry the snapshot's real identity.
    ///
    /// # Errors
    ///
    /// Propagates bind/configuration I/O errors; everything after a
    /// successful return is handled per-connection.
    pub fn start(config: &ServerConfig, oracle: DistanceOracle) -> io::Result<ServerHandle> {
        let info = SnapshotInfo::in_process(&oracle, "in-process");
        Server::start_with_info(config, oracle, info)
    }

    /// [`Server::start`] with an explicit identity for the initial
    /// artifact (version, build id, source path).
    ///
    /// # Errors
    ///
    /// Propagates bind/configuration I/O errors.
    pub fn start_with_info(
        config: &ServerConfig,
        oracle: DistanceOracle,
        info: SnapshotInfo,
    ) -> io::Result<ServerHandle> {
        let state =
            AppState::with_info(oracle, info, config.cache_capacity, config.reload_path.clone());
        Server::start_with_state(config, state)
    }

    /// Starts a **router-tier** server over a loaded, validated shard set:
    /// `/distance` and `/batch` are answered by combining the two owning
    /// shards' half-results behind a router-level result cache,
    /// `/reload?shard=i` hot-swaps one slice at a time, and `/stats` /
    /// `/artifact` report per-shard build ids.
    ///
    /// # Errors
    ///
    /// Set-validation errors (mapped to `InvalidInput`) and bind I/O
    /// errors. A missing or corrupt shard snapshot fails **here**, before
    /// the socket ever accepts — the startup gate the router e2e suite
    /// pins down.
    pub fn start_sharded(
        config: &ServerConfig,
        shards: Vec<crate::source::LoadedShard>,
    ) -> io::Result<ServerHandle> {
        let state = AppState::with_shards(shards, config.cache_capacity)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
        Server::start_with_state(config, state)
    }

    /// Starts a server from a [`crate::source::BackendSpec`] — the
    /// manifest-driven path (`cc-serve --manifest`). The spec decides the
    /// tier; endpoints, reloads, and stats are identical either way.
    ///
    /// # Errors
    ///
    /// Everything [`crate::source::BackendSpec::load`] rejects (mapped to
    /// `InvalidInput`, naming the offending file — including an
    /// `expected_set_id` mismatch) and bind I/O errors.
    pub fn start_from_spec(
        config: &ServerConfig,
        spec: crate::source::BackendSpec,
    ) -> io::Result<ServerHandle> {
        let state = AppState::from_spec(spec, config.cache_capacity)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
        Server::start_with_state(config, state)
    }

    fn start_with_state(config: &ServerConfig, mut state: AppState) -> io::Result<ServerHandle> {
        if !config.telemetry_enabled {
            state.disable_telemetry();
        }
        if let Some(log) = &config.access_log {
            state.set_access_log(Arc::clone(log));
        }
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let state = Arc::new(state);
        let shutdown = Arc::new(AtomicBool::new(false));

        let acceptor = {
            let state = Arc::clone(&state);
            let shutdown = Arc::clone(&shutdown);
            let config = config.clone();
            std::thread::Builder::new()
                .name("cc-serve-accept".to_owned())
                .spawn(move || accept_loop(&listener, &config, &state, &shutdown))?
        };

        Ok(ServerHandle { addr, shutdown, acceptor: Some(acceptor), state })
    }
}

/// Handle to a running server: address, state, and shutdown control.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    state: Arc<AppState>,
}

impl ServerHandle {
    /// The bound address (resolves port `0` to the actual ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared serving state (counters, artifact), e.g. for tests.
    pub fn state(&self) -> &AppState {
        &self.state
    }

    /// An owned handle to the shared serving state, for threads that
    /// outlive borrows of this handle — e.g. the `cc-serve` binary's
    /// SIGHUP watcher calling [`AppState::reload_default`].
    pub fn shared_state(&self) -> Arc<AppState> {
        Arc::clone(&self.state)
    }

    /// Stops accepting, drains in-flight work, and joins every thread.
    ///
    /// Workers finish the connection they are on; a keep-alive peer that
    /// stays silent is cut loose by the configured read timeout, so
    /// shutdown takes at most roughly that long.
    pub fn shutdown(mut self) {
        self.stop();
    }

    /// Blocks the calling thread until the server stops (e.g. the process
    /// is signalled); used by the `cc-serve` binary.
    pub fn join(mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(
    listener: &TcpListener,
    config: &ServerConfig,
    state: &Arc<AppState>,
    shutdown: &Arc<AtomicBool>,
) {
    // The pool owns the connection handlers; dropping it at the end of this
    // function drains the queue and joins the workers.
    let pool: WorkerPool<TcpStream> = {
        let state = Arc::clone(state);
        let shutdown = Arc::clone(shutdown);
        let max_body = config.max_body_bytes;
        let read_timeout = config.read_timeout;
        let depth = state.registry().gauge("cc_pool_queue_depth", &[]);
        WorkerPool::with_queue_gauge(
            "cc-serve-worker",
            config.workers,
            config.backlog,
            depth,
            move |stream| {
                serve_connection(&state, stream, max_body, read_timeout, &shutdown);
            },
        )
    };
    while !shutdown.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                // The listener is non-blocking for the shutdown poll; the
                // accepted connection itself is served blocking.
                let _ = stream.set_nonblocking(false);
                let _ = stream.set_nodelay(true);
                match pool.try_submit(stream) {
                    Ok(()) => {}
                    Err(SubmitError::Full(stream) | SubmitError::Closed(stream)) => {
                        shed(state, stream);
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(ACCEPT_IDLE),
            Err(_) => std::thread::sleep(ACCEPT_IDLE),
        }
    }
}

/// Load-shedding at the edge: answer `503` inline on the acceptor thread
/// (cheap, bounded write) rather than queueing unbounded work. Counted in
/// `/stats` so shedding is visible exactly when monitoring needs it.
fn shed(state: &AppState, stream: TcpStream) {
    state.count_load_shed();
    // Never let a non-reading peer block the acceptor thread.
    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
    let mut w = BufWriter::new(stream);
    let resp = Response::error_json(503, "server is at capacity, retry later");
    let _ = write_response(&mut w, &resp, false).and_then(|()| w.flush());
}

/// Serves one (possibly keep-alive) connection until close/timeout/error.
fn serve_connection(
    state: &AppState,
    stream: TcpStream,
    max_body: usize,
    read_timeout: Duration,
    shutdown: &AtomicBool,
) {
    let _ = stream.set_read_timeout(Some(read_timeout));
    // A write timeout too: a client that sends requests but never reads the
    // responses would otherwise fill the kernel send buffer and block this
    // worker forever (slow-reader DoS against the bounded pool).
    let _ = stream.set_write_timeout(Some(read_timeout));
    let Ok(read_half) = stream.try_clone() else { return };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    loop {
        // Block until the first byte of the next request is buffered, and
        // only then start the clock: keep-alive idle time between requests
        // must not be charged to the request-duration histograms.
        match reader.fill_buf() {
            Ok([]) => return, // clean EOF between requests
            Ok(_) => {}
            Err(_) => return, // timeout or reset while idle
        }
        let started = std::time::Instant::now();
        match read_request(&mut reader, max_body) {
            Ok(req) => {
                let id = state.access_log().map(|log| log.begin());
                let resp = state.handle(&req);
                let keep_alive = req.keep_alive && !shutdown.load(Ordering::Acquire);
                let sent = respond(&mut writer, &resp, keep_alive);
                let duration_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
                let endpoint = crate::handlers::endpoint_of(&req.path);
                state.record_request(endpoint, duration_ns);
                if let (Some(log), Some(id)) = (state.access_log(), id) {
                    log.record(&cc_telemetry::AccessRecord {
                        id,
                        method: &req.method,
                        path: &req.path,
                        status: resp.status,
                        endpoint,
                        duration_ns,
                    });
                }
                if sent.is_err() || !keep_alive {
                    return;
                }
            }
            Err(HttpError::Closed) => return,
            Err(HttpError::PayloadTooLarge { limit }) => {
                // The unread body bytes make the stream unframed: answer and
                // close instead of trying to resynchronize.
                state.count_protocol_error();
                let resp = Response::error_json(413, format!("request body exceeds {limit} bytes"));
                let _ = respond(&mut writer, &resp, false);
                return;
            }
            Err(HttpError::BadRequest(what)) => {
                state.count_protocol_error();
                let _ = respond(&mut writer, &Response::error_json(400, what), false);
                return;
            }
            Err(HttpError::Io(_)) => return, // timeout or reset: just close
        }
    }
}

fn respond(w: &mut BufWriter<TcpStream>, resp: &Response, keep_alive: bool) -> io::Result<()> {
    write_response(w, resp, keep_alive)?;
    w.flush()
}

/// A minimal blocking HTTP/1.1 client for the e2e tests, benches and
/// examples in this workspace (keep-alive, `Content-Length` framing only).
pub struct BlockingClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl BlockingClient {
    /// Connects to a running server.
    ///
    /// # Errors
    ///
    /// Propagates connection errors.
    pub fn connect(addr: SocketAddr) -> io::Result<BlockingClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(10)))?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(BlockingClient { reader, writer: stream })
    }

    /// Issues `GET target`, returning `(status, body)`.
    ///
    /// # Errors
    ///
    /// Fails on transport errors or malformed responses.
    pub fn get(&mut self, target: &str) -> io::Result<(u16, Vec<u8>)> {
        self.request("GET", target, &[])
    }

    /// Issues `POST target` with `body`, returning `(status, body)`.
    ///
    /// # Errors
    ///
    /// Fails on transport errors or malformed responses.
    pub fn post(&mut self, target: &str, body: &[u8]) -> io::Result<(u16, Vec<u8>)> {
        self.request("POST", target, body)
    }

    fn request(&mut self, method: &str, target: &str, body: &[u8]) -> io::Result<(u16, Vec<u8>)> {
        write!(
            self.writer,
            "{method} {target} HTTP/1.1\r\nHost: cc-serve\r\nContent-Length: {}\r\n\r\n",
            body.len()
        )?;
        self.writer.write_all(body)?;
        self.writer.flush()?;
        self.read_response()
    }

    fn read_response(&mut self) -> io::Result<(u16, Vec<u8>)> {
        let bad = |what: &str| io::Error::new(io::ErrorKind::InvalidData, what.to_owned());
        let mut status_line = String::new();
        if self.reader.read_line(&mut status_line)? == 0 {
            return Err(bad("server closed the connection"));
        }
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad("malformed status line"))?;
        let mut content_length = 0usize;
        loop {
            let mut line = String::new();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(bad("connection closed inside headers"));
            }
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                if name.trim().eq_ignore_ascii_case("content-length") {
                    content_length = value.trim().parse().map_err(|_| bad("bad content-length"))?;
                }
            }
        }
        let mut body = vec![0u8; content_length];
        std::io::Read::read_exact(&mut self.reader, &mut body)?;
        Ok((status, body))
    }
}
