//! A deliberately small HTTP/1.1 layer over `std::io`: request parsing with
//! hard limits (line length, header count, body size) and response writing.
//!
//! The build image has no tokio/hyper, so this implements exactly the subset
//! `cc-serve` needs — `GET`/`POST`, query strings, `Content-Length` bodies,
//! keep-alive — with every limit enforced *before* the bytes are buffered,
//! so hostile input costs bounded memory.

use std::io::{self, BufRead, Write};

/// Longest accepted request/header line (bytes, excluding CRLF).
pub const MAX_LINE_BYTES: usize = 8 * 1024;
/// Most headers accepted per request.
pub const MAX_HEADERS: usize = 64;

/// One parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Uppercase method token (`GET`, `POST`, ...).
    pub method: String,
    /// Path component of the target, without the query string.
    pub path: String,
    /// Raw `key=value` pairs from the query string, in order. No
    /// percent-decoding is applied: node ids are plain decimal, so an
    /// encoded id (`u=%30`) is rejected as malformed rather than decoded.
    pub query: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` was sent).
    pub body: Vec<u8>,
    /// The `Content-Type` header value verbatim, if one was sent. Handlers
    /// use it to negotiate body encodings (e.g. the binary batch frame).
    pub content_type: Option<String>,
    /// Whether the connection should stay open after the response.
    pub keep_alive: bool,
}

impl Request {
    /// The first value of query parameter `name`, if present.
    pub fn param(&self, name: &str) -> Option<&str> {
        self.query.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// The peer closed the connection cleanly before a request line; the
    /// keep-alive loop should just end.
    Closed,
    /// The bytes were not a well-formed request (maps to 400).
    BadRequest(String),
    /// `Content-Length` exceeded the configured limit (maps to 413).
    PayloadTooLarge {
        /// The configured body limit that was exceeded.
        limit: usize,
    },
    /// The transport failed (including read timeouts).
    Io(io::Error),
}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// Reads one `\n`-terminated line (CR stripped) without ever buffering more
/// than `limit` bytes. `Ok(None)` is a clean EOF before any byte.
fn read_line(r: &mut impl BufRead, limit: usize) -> Result<Option<String>, HttpError> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        let buf = r.fill_buf()?;
        if buf.is_empty() {
            if line.is_empty() {
                return Ok(None);
            }
            return Err(HttpError::BadRequest("connection closed mid-line".into()));
        }
        let (chunk, found) = match buf.iter().position(|&b| b == b'\n') {
            Some(i) => (i, true),
            None => (buf.len(), false),
        };
        if line.len() + chunk > limit {
            return Err(HttpError::BadRequest(format!("line exceeds {limit} bytes")));
        }
        line.extend_from_slice(&buf[..chunk]);
        r.consume(chunk + usize::from(found));
        if found {
            if line.last() == Some(&b'\r') {
                line.pop();
            }
            let s = String::from_utf8(line)
                .map_err(|_| HttpError::BadRequest("non-UTF-8 request line or header".into()))?;
            return Ok(Some(s));
        }
    }
}

/// Splits a request target into path and parsed query pairs.
fn parse_target(target: &str) -> (String, Vec<(String, String)>) {
    match target.split_once('?') {
        None => (target.to_owned(), Vec::new()),
        Some((path, qs)) => {
            let query = qs
                .split('&')
                .filter(|part| !part.is_empty())
                .map(|part| match part.split_once('=') {
                    Some((k, v)) => (k.to_owned(), v.to_owned()),
                    None => (part.to_owned(), String::new()),
                })
                .collect();
            (path.to_owned(), query)
        }
    }
}

/// Reads and parses one request, enforcing all limits.
///
/// # Errors
///
/// See [`HttpError`]; notably [`HttpError::Closed`] on clean EOF and
/// [`HttpError::PayloadTooLarge`] when `Content-Length > max_body`.
pub fn read_request(r: &mut impl BufRead, max_body: usize) -> Result<Request, HttpError> {
    let Some(request_line) = read_line(r, MAX_LINE_BYTES)? else {
        return Err(HttpError::Closed);
    };
    let mut parts = request_line.split_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) => (m, t, v),
        _ => return Err(HttpError::BadRequest(format!("malformed request line '{request_line}'"))),
    };
    let http11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        other => return Err(HttpError::BadRequest(format!("unsupported version '{other}'"))),
    };

    let mut content_length: Option<usize> = None;
    let mut content_type: Option<String> = None;
    let mut keep_alive = http11; // HTTP/1.1 defaults to persistent.
    for count in 0.. {
        if count >= MAX_HEADERS {
            return Err(HttpError::BadRequest(format!("more than {MAX_HEADERS} headers")));
        }
        let line = read_line(r, MAX_LINE_BYTES)?
            .ok_or_else(|| HttpError::BadRequest("connection closed inside headers".into()))?;
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::BadRequest(format!("malformed header '{line}'")));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        match name.as_str() {
            "content-length" => {
                // A repeated Content-Length is the classic request-smuggling
                // / framing-desync vector (RFC 7230 §3.3.3): reject rather
                // than silently letting the last value win.
                if content_length.is_some() {
                    return Err(HttpError::BadRequest("duplicate content-length header".into()));
                }
                content_length =
                    Some(value.parse().map_err(|_| {
                        HttpError::BadRequest(format!("bad content-length '{value}'"))
                    })?);
            }
            "connection" => {
                // The header is a comma-separated token list (RFC 9110
                // §7.6.1). Match whole tokens, not substrings: a value like
                // `keep-alive-extension` names an extension, not the
                // `keep-alive` option, and must not flip the default.
                for token in value.split(',') {
                    let token = token.trim();
                    if token.eq_ignore_ascii_case("close") {
                        keep_alive = false;
                    } else if token.eq_ignore_ascii_case("keep-alive") {
                        keep_alive = true;
                    }
                }
            }
            "content-type" => content_type = Some(value.to_owned()),
            // Only Content-Length framing is implemented; silently treating
            // a chunked body as empty would produce a *wrong 200* and
            // desync the connection, so reject it up front.
            "transfer-encoding" => {
                return Err(HttpError::BadRequest(
                    "transfer-encoding is not supported; send a Content-Length body".into(),
                ));
            }
            _ => {}
        }
    }

    let content_length = content_length.unwrap_or(0);
    if content_length > max_body {
        return Err(HttpError::PayloadTooLarge { limit: max_body });
    }
    let mut body = vec![0u8; content_length];
    r.read_exact(&mut body)?;

    let (path, query) = parse_target(target);
    Ok(Request { method: method.to_owned(), path, query, body, content_type, keep_alive })
}

/// One response to serialize.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Value of the `Content-Type` header.
    pub content_type: &'static str,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response with the given pre-rendered body.
    pub fn json(status: u16, body: String) -> Response {
        Response { status, content_type: "application/json", body: body.into_bytes() }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: &str) -> Response {
        Response { status, content_type: "text/plain; charset=utf-8", body: body.into() }
    }

    /// A JSON error body `{"error": "..."}` with proper string escaping.
    pub fn error_json(status: u16, message: impl AsRef<str>) -> Response {
        Response::json(status, format!("{{\"error\":\"{}\"}}", json_escape(message.as_ref())))
    }
}

/// Escapes a string for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The reason phrase for the status codes `cc-serve` emits.
pub fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Serializes `resp`; `keep_alive` picks the `Connection` header.
///
/// When `head_only` is set (the request was `HEAD`), the status line and
/// headers — including the `Content-Length` the matching `GET` would carry,
/// per RFC 9110 §9.3.2 — are written but the body is omitted.
///
/// # Errors
///
/// Propagates transport write errors.
pub fn write_response(
    w: &mut impl Write,
    resp: &Response,
    keep_alive: bool,
    head_only: bool,
) -> io::Result<()> {
    write!(
        w,
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
        resp.status,
        status_text(resp.status),
        resp.content_type,
        resp.body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    )?;
    if head_only {
        return Ok(());
    }
    w.write_all(&resp.body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(bytes: &[u8], max_body: usize) -> Result<Request, HttpError> {
        read_request(&mut Cursor::new(bytes), max_body)
    }

    #[test]
    fn parses_get_with_query_string() {
        let req = parse(b"GET /distance?u=3&v=17 HTTP/1.1\r\nHost: x\r\n\r\n", 1024).unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/distance");
        assert_eq!(req.param("u"), Some("3"));
        assert_eq!(req.param("v"), Some("17"));
        assert_eq!(req.param("w"), None);
        assert!(req.keep_alive, "HTTP/1.1 defaults to keep-alive");
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_post_body_by_content_length() {
        let req =
            parse(b"POST /batch HTTP/1.1\r\nContent-Length: 7\r\n\r\n0 1\n2 3", 1024).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, b"0 1\n2 3");
    }

    #[test]
    fn connection_close_disables_keep_alive() {
        let req = parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n", 1024).unwrap();
        assert!(!req.keep_alive);
        let req = parse(b"GET / HTTP/1.0\r\n\r\n", 1024).unwrap();
        assert!(!req.keep_alive, "HTTP/1.0 defaults to close");
    }

    #[test]
    fn connection_header_matches_whole_tokens_not_substrings() {
        // `keep-alive-extension` is some extension token, NOT the
        // `keep-alive` option: it must not resurrect an HTTP/1.0 connection.
        let req =
            parse(b"GET / HTTP/1.0\r\nConnection: keep-alive-extension\r\n\r\n", 1024).unwrap();
        assert!(!req.keep_alive, "substring match misread an extension token");
        // ... and `x-close-notify` contains `close` but is not `close`.
        let req = parse(b"GET / HTTP/1.1\r\nConnection: x-close-notify\r\n\r\n", 1024).unwrap();
        assert!(req.keep_alive, "substring match misread an unrelated token");
    }

    #[test]
    fn connection_header_token_list_is_trimmed_and_case_insensitive() {
        let req =
            parse(b"GET / HTTP/1.0\r\nConnection: X-Trace , Keep-Alive\r\n\r\n", 1024).unwrap();
        assert!(req.keep_alive, "second token should enable keep-alive on 1.0");
        let req = parse(b"GET / HTTP/1.1\r\nConnection: keep-alive, CLOSE\r\n\r\n", 1024).unwrap();
        assert!(!req.keep_alive, "explicit close wins regardless of case");
    }

    #[test]
    fn content_type_header_is_captured_verbatim() {
        let req = parse(
            b"POST /batch HTTP/1.1\r\nContent-Type: application/x-cc-batch\r\nContent-Length: 0\r\n\r\n",
            1024,
        )
        .unwrap();
        assert_eq!(req.content_type.as_deref(), Some("application/x-cc-batch"));
        let req = parse(b"GET / HTTP/1.1\r\n\r\n", 1024).unwrap();
        assert_eq!(req.content_type, None);
    }

    #[test]
    fn oversized_body_is_payload_too_large_not_a_read() {
        let err = parse(b"POST /batch HTTP/1.1\r\nContent-Length: 999999\r\n\r\n", 64).unwrap_err();
        assert!(matches!(err, HttpError::PayloadTooLarge { limit: 64 }));
    }

    #[test]
    fn garbage_is_bad_request_and_eof_is_closed() {
        assert!(matches!(parse(b"NOT HTTP AT ALL\r\n\r\n", 64), Err(HttpError::BadRequest(_))));
        assert!(matches!(parse(b"GET /x SPDY/9\r\n\r\n", 64), Err(HttpError::BadRequest(_))));
        assert!(matches!(parse(b"", 64), Err(HttpError::Closed)));
        assert!(matches!(
            parse(b"GET /x HTTP/1.1\r\nContent-Length: abc\r\n\r\n", 64),
            Err(HttpError::BadRequest(_))
        ));
    }

    #[test]
    fn duplicate_content_length_is_rejected_not_last_one_wins() {
        // Last-one-wins would answer the wrong request and desync framing
        // (request smuggling through a disagreeing front proxy).
        let raw = b"POST /batch HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 0\r\n\r\nAAAAA";
        assert!(matches!(parse(raw, 1024), Err(HttpError::BadRequest(_))));
    }

    #[test]
    fn chunked_bodies_are_rejected_not_misread_as_empty() {
        // Treating a chunked body as empty would answer a wrong 200 and
        // then parse the chunk framing as the next request.
        let raw =
            b"POST /batch HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n4\r\n0 1\n\r\n0\r\n\r\n";
        assert!(matches!(parse(raw, 1024), Err(HttpError::BadRequest(_))));
    }

    #[test]
    fn over_long_lines_are_rejected_with_bounded_memory() {
        let mut raw = Vec::from(&b"GET /"[..]);
        raw.extend(std::iter::repeat_n(b'a', MAX_LINE_BYTES + 10));
        raw.extend_from_slice(b" HTTP/1.1\r\n\r\n");
        assert!(matches!(parse(&raw, 64), Err(HttpError::BadRequest(_))));
    }

    #[test]
    fn too_many_headers_are_rejected() {
        let mut raw = Vec::from(&b"GET / HTTP/1.1\r\n"[..]);
        for i in 0..(MAX_HEADERS + 1) {
            raw.extend_from_slice(format!("X-H{i}: v\r\n").as_bytes());
        }
        raw.extend_from_slice(b"\r\n");
        assert!(matches!(parse(&raw, 64), Err(HttpError::BadRequest(_))));
    }

    #[test]
    fn response_serialization_is_well_formed() {
        let mut out = Vec::new();
        write_response(&mut out, &Response::error_json(400, "a \"quoted\" id"), false, false)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 400 Bad Request\r\n"));
        assert!(text.contains("Connection: close"));
        assert!(text.ends_with("{\"error\":\"a \\\"quoted\\\" id\"}"));
    }

    #[test]
    fn head_responses_keep_framing_headers_but_omit_the_body() {
        let resp = Response::text(200, "ok\n");
        let mut get_bytes = Vec::new();
        write_response(&mut get_bytes, &resp, true, false).unwrap();
        let mut head_bytes = Vec::new();
        write_response(&mut head_bytes, &resp, true, true).unwrap();

        let head_text = String::from_utf8(head_bytes).unwrap();
        // Identical headers — including the Content-Length the GET body
        // would have — then nothing after the blank line.
        assert!(head_text.contains("Content-Length: 3\r\n"));
        assert!(head_text.ends_with("\r\n\r\n"));
        let get_text = String::from_utf8(get_bytes).unwrap();
        assert_eq!(get_text.strip_suffix("ok\n"), Some(head_text.as_str()));
    }
}
