//! The `cc-serve` binary: load or build a distance oracle and serve it —
//! monolithically, or as the router tier over a sharded artifact set.
//!
//! ```text
//! cc-serve --manifest SET.toml [--addr HOST:PORT] [--workers N]
//! cc-serve --demo N [--seed S] [--epsilon E] [--addr HOST:PORT] ...
//! cc-serve --demo N --write-snapshot FILE      # write a fixture and exit
//! cc-serve --demo N --shard-count K --write-shards DIR
//!                                              # write a K-shard fixture set
//! ```
//!
//! A running server hot-swaps its artifact without restarting: `POST
//! /reload` (optionally `?path=...`, or `?shard=i` in router mode) or
//! `SIGHUP` re-reads the snapshot file(s), validates, and swaps atomically
//! under traffic. See `docs/OPERATIONS.md` and `docs/SHARDING.md`.
//!
//! Unsafe code is denied (`#![deny(unsafe_code)]`): the binary's one
//! exception is the annotated `signal(2)` registration in [`sighup`], the
//! only unsafe block in the whole workspace.

#![deny(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use cc_server::{source, Server, ServerConfig, SnapshotInfo, Transport};
use cc_telemetry::AccessLog;

/// SIGHUP → hot reload, the classic daemon convention. The handler only
/// flips an atomic flag (the async-signal-safe subset); a watcher thread
/// does the actual load + swap.
#[cfg(unix)]
mod sighup {
    use std::sync::atomic::{AtomicBool, Ordering};

    static PENDING: AtomicBool = AtomicBool::new(false);

    /// POSIX signal number for SIGHUP.
    const SIGHUP: i32 = 1;

    // The workspace is otherwise unsafe-free; this extern declaration and
    // the call below are the single annotated exception, needed because
    // installing a signal handler has no safe std API.
    #[allow(unsafe_code)]
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> isize;
    }

    extern "C" fn on_sighup(_signum: i32) {
        PENDING.store(true, Ordering::SeqCst);
    }

    /// Returns false if the handler could not be installed (`SIG_ERR`), in
    /// which case the process keeps the default SIGHUP disposition
    /// (terminate) and the caller must warn the operator.
    #[must_use]
    #[allow(unsafe_code)]
    pub fn install() -> bool {
        // SAFETY: `on_sighup` only touches an atomic, which is within the
        // async-signal-safe subset; the handler pointer outlives the
        // process ('static fn item). SIG_ERR is (void (*)(int))-1, hence
        // the -1 comparison.
        unsafe { signal(SIGHUP, on_sighup) != -1 }
    }

    /// True once per received SIGHUP.
    pub fn take() -> bool {
        PENDING.swap(false, Ordering::SeqCst)
    }
}

#[cfg(not(unix))]
mod sighup {
    #[must_use]
    pub fn install() -> bool {
        false
    }
    pub fn take() -> bool {
        false
    }
}

const USAGE: &str = "\
cc-serve: HTTP front-end for a congested-clique distance oracle

USAGE:
    cc-serve --manifest FILE [OPTIONS]     serve the artifact a manifest declares
                                           (mode, snapshot/shard files, expected
                                           set id, cache capacity)
    cc-serve --demo N [OPTIONS]            build an n-node demo oracle in the
                                           simulated clique, then serve it
    cc-serve --demo-direct N [OPTIONS]     build an n-node road-like oracle with the
                                           direct (no-clique) builder — scales to
                                           10^5..10^6 nodes — then serve it
    cc-serve --demo N --write-snapshot FILE
                                           build the demo, write the snapshot, exit
                                           (also works with --demo-direct)
    cc-serve --demo N --shard-count K --write-shards DIR
                                           build the demo, write DIR/shard-<i>.snap
                                           for i in 0..K, exit
                                           (also works with --demo-direct)

OPTIONS:
    --addr HOST:PORT    bind address (default 127.0.0.1:8317; port 0 = ephemeral)
    --workers N         worker threads (default: CPU count, capped at 16)
    --transport MODE    accept/connection transport: auto (default; epoll
                        reactor on Linux, poll loop elsewhere), epoll
                        (require the reactor), or poll (force the portable
                        sleep-polling loop); /stats reports the resolved
                        choice as \"transport\"
    --cache N           LRU result-cache capacity (default 4096, 0 disables;
                        a manifest's cache_capacity takes precedence)
    --seed S            demo build seed (default 7)
    --epsilon E         demo build accuracy, stretch is 3(1+E) (default 0.25)
    --k K               --demo-direct ball size (default 16; --demo keeps the
                        paper's default ~sqrt(n ln n))
    --max-landmarks M   --demo-direct landmark cap (default 64): bounds the
                        column matrix to n x M so million-node artifacts fit
    --slow-query-ns NS  log requests slower than NS nanoseconds to stderr as
                        JSON lines (0 logs every request; see
                        docs/OBSERVABILITY.md)
    --write-snapshot F  write the oracle to F and exit without serving
    --write-shards DIR  write a per-shard snapshot set to DIR and exit
    --shard-count K     how many shards --write-shards cuts (default 2)
    --help              this text

OBSERVABILITY:
    GET /metrics        Prometheus text exposition: request counters,
                        per-endpoint latency histograms, pool/cache/reload
                        gauges, and (after --demo) per-phase build cost
    GET /stats          the same registry snapshot, rendered as JSON

HOT RELOAD:
    POST /reload        re-read the manifest (or /reload?path=FILE), validate,
                        and swap atomically under traffic; in router mode
                        /reload?shard=i swaps one shard and a bare /reload
                        rolls the full set
    SIGHUP              same as a bare POST /reload
";

struct Args {
    manifest: Option<PathBuf>,
    demo: Option<usize>,
    demo_direct: Option<usize>,
    k: usize,
    max_landmarks: usize,
    write_snapshot: Option<PathBuf>,
    write_shards: Option<PathBuf>,
    shard_count: usize,
    addr: String,
    workers: Option<usize>,
    transport: Transport,
    cache: usize,
    seed: u64,
    epsilon: f64,
    slow_query_ns: Option<u64>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        manifest: None,
        demo: None,
        demo_direct: None,
        k: 16,
        max_landmarks: 64,
        write_snapshot: None,
        write_shards: None,
        shard_count: 2,
        addr: "127.0.0.1:8317".to_owned(),
        workers: None,
        transport: Transport::Auto,
        cache: 4096,
        seed: 7,
        epsilon: 0.25,
        slow_query_ns: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |what: &str| -> Result<String, String> {
            it.next().ok_or_else(|| format!("{flag} needs a {what}"))
        };
        match flag.as_str() {
            "--manifest" => args.manifest = Some(PathBuf::from(value("file path")?)),
            "--demo" => {
                args.demo =
                    Some(value("node count")?.parse().map_err(|_| "--demo needs an integer")?);
            }
            "--demo-direct" => {
                args.demo_direct = Some(
                    value("node count")?.parse().map_err(|_| "--demo-direct needs an integer")?,
                );
            }
            "--k" => {
                args.k = value("ball size")?.parse().map_err(|_| "--k needs an integer")?;
            }
            "--max-landmarks" => {
                args.max_landmarks =
                    value("count")?.parse().map_err(|_| "--max-landmarks needs an integer")?;
            }
            "--write-snapshot" => args.write_snapshot = Some(PathBuf::from(value("file path")?)),
            "--write-shards" => args.write_shards = Some(PathBuf::from(value("directory")?)),
            "--shard-count" => {
                args.shard_count =
                    value("count")?.parse().map_err(|_| "--shard-count needs an integer")?;
            }
            "--addr" => args.addr = value("bind address")?,
            "--workers" => {
                args.workers =
                    Some(value("count")?.parse().map_err(|_| "--workers needs an integer")?);
            }
            "--transport" => args.transport = value("mode")?.parse()?,
            "--cache" => {
                args.cache = value("capacity")?.parse().map_err(|_| "--cache needs an integer")?;
            }
            "--seed" => {
                args.seed = value("seed")?.parse().map_err(|_| "--seed needs an integer")?;
            }
            "--epsilon" => {
                args.epsilon = value("epsilon")?.parse().map_err(|_| "--epsilon needs a number")?;
            }
            "--slow-query-ns" => {
                args.slow_query_ns = Some(
                    value("threshold")?.parse().map_err(|_| "--slow-query-ns needs an integer")?,
                );
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    let sources = usize::from(args.manifest.is_some())
        + usize::from(args.demo.is_some())
        + usize::from(args.demo_direct.is_some());
    if sources != 1 {
        return Err("exactly one of --manifest, --demo, or --demo-direct is required".to_owned());
    }
    if args.manifest.is_some() && (args.write_snapshot.is_some() || args.write_shards.is_some()) {
        return Err("--write-snapshot/--write-shards need --demo or --demo-direct, not --manifest"
            .to_owned());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}\n");
            }
            eprint!("{USAGE}");
            return if msg.is_empty() { ExitCode::SUCCESS } else { ExitCode::from(2) };
        }
    };

    let mut config = ServerConfig::default()
        .with_addr(args.addr.clone())
        .with_cache_capacity(args.cache)
        .with_transport(args.transport);
    if let Some(workers) = args.workers {
        config = config.with_workers(workers);
    }
    if let Some(threshold_ns) = args.slow_query_ns {
        config = config.with_access_log(Arc::new(AccessLog::stderr(threshold_ns)));
    }

    // Manifest mode: the declarative path — mode, files, expected set id,
    // and cache capacity all come from the manifest, which is also
    // re-read on every bare /reload or SIGHUP.
    if let Some(manifest) = &args.manifest {
        let spec = match cc_server::BackendSpec::from_manifest(manifest) {
            Ok(spec) => spec,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        };
        eprintln!("loading {}", spec.describe());
        return match Server::start_from_spec(&config, spec) {
            Ok(handle) => {
                let generation = handle.state().generation();
                let desc = generation.descriptor();
                // CI and scripts wait for this exact line on stdout.
                println!(
                    "cc-serve listening on http://{} (manifest, mode={}, n={}, {} KiB)",
                    handle.addr(),
                    desc.mode,
                    desc.n,
                    desc.artifact_bytes / 1024,
                );
                run_until_stopped(handle);
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: cannot serve manifest {}: {e}", manifest.display());
                ExitCode::FAILURE
            }
        };
    }

    let built = if let Some(n) = args.demo {
        source::build_demo_traced(n, args.seed, args.epsilon).map(|(oracle, trace)| {
            eprintln!(
                "built demo oracle: n={n}, {} rounds in the simulated clique, {} landmarks",
                oracle.build_rounds(),
                oracle.landmarks().len()
            );
            (oracle, trace, "demo")
        })
    } else {
        let n = args.demo_direct.expect("parse_args enforces exactly one source");
        source::build_direct_demo_traced(n, args.seed, args.epsilon, args.k, args.max_landmarks)
            .map(|(oracle, trace)| {
                eprintln!(
                    "built direct oracle: n={} (road-like), no clique simulation, \
                     {} landmarks (cap {}), k={}",
                    oracle.n(),
                    oracle.landmarks().len(),
                    args.max_landmarks,
                    args.k
                );
                (oracle, trace, "demo-direct")
            })
    };
    let (oracle, trace, source_label) = match built {
        Ok(built) => built,
        Err(e) => {
            eprintln!("error: demo build failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    // One line per build phase; CI greps for `build-trace phase=`.
    eprintln!("{}", trace.log_lines());
    let n = oracle.n();
    let info = SnapshotInfo::in_process(&oracle, source_label);

    if let Some(path) = &args.write_snapshot {
        return match source::write_snapshot(&oracle, path) {
            Ok(()) => {
                println!("wrote snapshot to {} and exiting", path.display());
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: cannot write {}: {e}", path.display());
                ExitCode::FAILURE
            }
        };
    }

    if let Some(dir) = &args.write_shards {
        return match source::write_shard_snapshots(&oracle, args.shard_count, dir) {
            Ok(paths) => {
                println!("wrote {} shard snapshots to {} and exiting", paths.len(), dir.display());
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: cannot write shard set to {}: {e}", dir.display());
                ExitCode::FAILURE
            }
        };
    }

    let (landmarks, kib) = (oracle.landmarks().len(), oracle.artifact_bytes() / 1024);
    match Server::start_with_info(&config, oracle, info) {
        Ok(handle) => {
            // Build-phase cost next to the serving metrics on /metrics.
            trace.export_gauges(handle.state().registry());
            // CI and scripts wait for this exact line on stdout.
            println!(
                "cc-serve listening on http://{} (n={n}, landmarks={landmarks}, {kib} KiB)",
                handle.addr()
            );
            run_until_stopped(handle);
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: cannot bind {}: {e}", args.addr);
            ExitCode::FAILURE
        }
    }
}

/// Installs the SIGHUP → reload watcher and blocks until the server stops.
///
/// SIGHUP reloads the default source — the manifest, or in router mode
/// every shard from its own file — off the signal handler and off the
/// request path. A failed install or spawn must be loud: otherwise the
/// documented reload path would silently keep the default SIGHUP
/// disposition (terminate the process).
fn run_until_stopped(handle: cc_server::ServerHandle) {
    if sighup::install() {
        let state = handle.shared_state();
        std::thread::Builder::new()
            .name("cc-serve-sighup".to_owned())
            .spawn(move || loop {
                std::thread::sleep(Duration::from_millis(200));
                if sighup::take() {
                    match state.reload_default() {
                        Ok(outcome) => eprintln!(
                            "SIGHUP reload ok: build {} from {}",
                            outcome.info.build_id, outcome.info.source
                        ),
                        Err(e) => eprintln!("SIGHUP reload failed: {e}"),
                    }
                }
            })
            .expect("spawn SIGHUP watcher thread");
    } else {
        eprintln!(
            "warning: could not install the SIGHUP handler; \
             hot reload is available via POST /reload only"
        );
    }
    handle.join();
}
