//! The `cc-serve` binary: load or build a distance oracle and serve it.
//!
//! ```text
//! cc-serve --snapshot FILE [--addr HOST:PORT] [--workers N] [--cache N]
//! cc-serve --demo N [--seed S] [--epsilon E] [--addr HOST:PORT] ...
//! cc-serve --demo N --write-snapshot FILE      # write a fixture and exit
//! ```
//!
//! A running server hot-swaps its artifact without restarting: `POST
//! /reload` (optionally `?path=...`) or `SIGHUP` re-reads the snapshot
//! file, validates it, and swaps it in atomically under traffic. See
//! `docs/OPERATIONS.md`.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use cc_server::{source, Server, ServerConfig, SnapshotInfo};

/// SIGHUP → hot reload, the classic daemon convention. The handler only
/// flips an atomic flag (the async-signal-safe subset); a watcher thread
/// does the actual load + swap.
#[cfg(unix)]
mod sighup {
    use std::sync::atomic::{AtomicBool, Ordering};

    static PENDING: AtomicBool = AtomicBool::new(false);

    /// POSIX signal number for SIGHUP.
    const SIGHUP: i32 = 1;

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> isize;
    }

    extern "C" fn on_sighup(_signum: i32) {
        PENDING.store(true, Ordering::SeqCst);
    }

    /// Returns false if the handler could not be installed (`SIG_ERR`), in
    /// which case the process keeps the default SIGHUP disposition
    /// (terminate) and the caller must warn the operator.
    #[must_use]
    pub fn install() -> bool {
        // SIG_ERR is (void (*)(int))-1.
        unsafe { signal(SIGHUP, on_sighup) != -1 }
    }

    /// True once per received SIGHUP.
    pub fn take() -> bool {
        PENDING.swap(false, Ordering::SeqCst)
    }
}

#[cfg(not(unix))]
mod sighup {
    #[must_use]
    pub fn install() -> bool {
        false
    }
    pub fn take() -> bool {
        false
    }
}

const USAGE: &str = "\
cc-serve: HTTP front-end for a congested-clique distance oracle

USAGE:
    cc-serve --snapshot FILE [OPTIONS]     serve an oracle snapshot file
    cc-serve --demo N [OPTIONS]            build an n-node demo oracle, then serve it
    cc-serve --demo N --write-snapshot FILE
                                           build the demo, write the snapshot, exit

OPTIONS:
    --addr HOST:PORT    bind address (default 127.0.0.1:8317; port 0 = ephemeral)
    --workers N         worker threads (default: CPU count, capped at 16)
    --cache N           LRU result-cache capacity (default 4096)
    --seed S            demo build seed (default 7)
    --epsilon E         demo build accuracy, stretch is 3(1+E) (default 0.25)
    --write-snapshot F  write the oracle to F and exit without serving
    --allow-legacy      accept pre-versioning (v1) snapshots on load/reload
    --help              this text

HOT RELOAD:
    POST /reload        re-read the --snapshot file (or /reload?path=FILE),
                        validate it, and swap it in atomically under traffic
    SIGHUP              same as POST /reload against the --snapshot file
";

struct Args {
    snapshot: Option<PathBuf>,
    demo: Option<usize>,
    write_snapshot: Option<PathBuf>,
    addr: String,
    workers: Option<usize>,
    cache: usize,
    seed: u64,
    epsilon: f64,
    allow_legacy: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        snapshot: None,
        demo: None,
        write_snapshot: None,
        addr: "127.0.0.1:8317".to_owned(),
        workers: None,
        cache: 4096,
        seed: 7,
        epsilon: 0.25,
        allow_legacy: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |what: &str| -> Result<String, String> {
            it.next().ok_or_else(|| format!("{flag} needs a {what}"))
        };
        match flag.as_str() {
            "--snapshot" => args.snapshot = Some(PathBuf::from(value("file path")?)),
            "--demo" => {
                args.demo =
                    Some(value("node count")?.parse().map_err(|_| "--demo needs an integer")?);
            }
            "--write-snapshot" => args.write_snapshot = Some(PathBuf::from(value("file path")?)),
            "--addr" => args.addr = value("bind address")?,
            "--workers" => {
                args.workers =
                    Some(value("count")?.parse().map_err(|_| "--workers needs an integer")?);
            }
            "--cache" => {
                args.cache = value("capacity")?.parse().map_err(|_| "--cache needs an integer")?;
            }
            "--seed" => {
                args.seed = value("seed")?.parse().map_err(|_| "--seed needs an integer")?
            }
            "--epsilon" => {
                args.epsilon = value("epsilon")?.parse().map_err(|_| "--epsilon needs a number")?;
            }
            "--allow-legacy" => args.allow_legacy = true,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    match (&args.snapshot, &args.demo) {
        (None, None) => Err("one of --snapshot or --demo is required".to_owned()),
        (Some(_), Some(_)) => Err("--snapshot and --demo are mutually exclusive".to_owned()),
        _ => Ok(args),
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}\n");
            }
            eprint!("{USAGE}");
            return if msg.is_empty() { ExitCode::SUCCESS } else { ExitCode::from(2) };
        }
    };

    let (oracle, info) = match (&args.snapshot, args.demo) {
        (Some(path), None) => match source::load_snapshot(path, args.allow_legacy) {
            Ok(loaded) => {
                eprintln!(
                    "loaded snapshot {} ({} nodes, format v{}, build {})",
                    path.display(),
                    loaded.oracle.n(),
                    loaded.info.version,
                    loaded.info.build_id,
                );
                (loaded.oracle, loaded.info)
            }
            Err(e) => {
                eprintln!("error: cannot load snapshot {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        },
        (None, Some(n)) => match source::build_demo(n, args.seed, args.epsilon) {
            Ok(oracle) => {
                eprintln!(
                    "built demo oracle: n={n}, {} rounds in the simulated clique, {} landmarks",
                    oracle.build_rounds(),
                    oracle.landmarks().len()
                );
                let info = SnapshotInfo::in_process(&oracle, "demo");
                (oracle, info)
            }
            Err(e) => {
                eprintln!("error: demo build failed: {e}");
                return ExitCode::FAILURE;
            }
        },
        _ => unreachable!("parse_args enforces exactly one source"),
    };

    if let Some(path) = &args.write_snapshot {
        return match source::write_snapshot(&oracle, path) {
            Ok(()) => {
                println!("wrote snapshot to {} and exiting", path.display());
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: cannot write {}: {e}", path.display());
                ExitCode::FAILURE
            }
        };
    }

    let mut config = ServerConfig::default()
        .with_addr(args.addr.clone())
        .with_cache_capacity(args.cache)
        .with_allow_legacy(args.allow_legacy);
    if let Some(path) = &args.snapshot {
        // The served file doubles as the default reload source: an
        // operator replaces it atomically and POSTs /reload (or SIGHUPs).
        config = config.with_reload_path(path.clone());
    }
    if let Some(workers) = args.workers {
        config = config.with_workers(workers);
    }
    let (n, landmarks, kib) =
        (oracle.n(), oracle.landmarks().len(), oracle.artifact_bytes() / 1024);
    match Server::start_with_info(&config, oracle, info) {
        Ok(handle) => {
            // CI and scripts wait for this exact line on stdout.
            println!(
                "cc-serve listening on http://{} (n={n}, landmarks={landmarks}, {kib} KiB)",
                handle.addr()
            );
            // SIGHUP → reload the default snapshot, off the signal handler
            // and off the request path. A failed install or spawn must be
            // loud: otherwise the documented reload path would silently
            // keep the default SIGHUP disposition (terminate the process).
            if sighup::install() {
                let state = handle.shared_state();
                std::thread::Builder::new()
                    .name("cc-serve-sighup".to_owned())
                    .spawn(move || loop {
                        std::thread::sleep(Duration::from_millis(200));
                        if sighup::take() {
                            match state.reload_default() {
                                Ok(outcome) => eprintln!(
                                    "SIGHUP reload ok: build {} from {}",
                                    outcome.info.build_id, outcome.info.source
                                ),
                                Err(e) => eprintln!("SIGHUP reload failed: {e}"),
                            }
                        }
                    })
                    .expect("spawn SIGHUP watcher thread");
            } else {
                eprintln!(
                    "warning: could not install the SIGHUP handler; \
                     hot reload is available via POST /reload only"
                );
            }
            handle.join();
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: cannot bind {}: {e}", args.addr);
            ExitCode::FAILURE
        }
    }
}
