//! Routing and endpoint handlers: pure functions from a parsed [`Request`]
//! to a [`Response`], so every route is unit-testable without a socket.
//!
//! Every endpoint is written **once against [`cc_oracle::QueryBackend`]**:
//! the serving state is a single hot-swappable [`Generation`] holding a
//! `Box<dyn QueryBackend>` (a monolithic oracle or a shard router) behind
//! its result cache. Queries, stats, and artifact metadata never branch on
//! which tier is serving — the backend describes itself through
//! [`cc_oracle::QueryBackend::descriptor`].
//!
//! All id validation goes through the backend's **fallible** query API
//! (`try_query` / `try_query_batch`): a malformed or out-of-range request
//! is a `400` at the edge, never a panic inside the serving process.
//!
//! Every request clones the current generation (an `Arc` refcount bump)
//! and answers entirely on that clone, so `POST /reload` — the whole
//! artifact, or a single shard via `?shard=i` — can validate and swap a
//! new snapshot while traffic is in flight: old requests finish on the old
//! artifact, new requests see the new one, and a reload that fails
//! validation changes nothing except the error surfaced in `/stats`. On
//! every successful swap the hottest keys of the outgoing cache are
//! replayed into the new generation ([`Generation::warmed_from`]), and
//! `/stats` reports the count as `warmed_keys`.
//!
//! All bookkeeping lives in a per-state [`cc_telemetry::Registry`]:
//! counters and histograms are pre-registered handles (single atomic ops
//! on the hot path), and both `GET /stats` and `GET /metrics` render from
//! **one** registry snapshot taken after refreshing the point-in-time
//! gauges (cache, uptime) — so the human view and the scrape view can
//! never disagree about the same instant.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;

use cc_matrix::Dist;
use cc_oracle::shard::{OracleShard, ShardRouter};
use cc_oracle::{BackendDescriptor, DistanceOracle, OracleError, QueryBackend};
use cc_reactor::frame;
use cc_telemetry::{
    render_prometheus, AccessLog, Counter, Gauge, Histogram, Json, JsonObject, Registry,
    RegistrySnapshot,
};

use crate::http::{Request, Response};
use crate::reload::{Generation, ReloadHandle, SnapshotInfo, WARM_KEYS};
use crate::source::{self, BackendSpec, LoadedBackend, LoadedShard};

/// `Content-Type` of the `GET /metrics` exposition.
pub const METRICS_CONTENT_TYPE: &str = "text/plain; version=0.0.4; charset=utf-8";

/// What a successful reload installed, captured atomically with the swap —
/// a response built from this cannot mix in state from a concurrent later
/// reload.
#[derive(Debug, Clone)]
pub struct ReloadOutcome {
    /// Identity of the artifact that was swapped in (the affected shard's
    /// file for a single-shard reload).
    pub info: SnapshotInfo,
    /// Node count of the artifact that was swapped in.
    pub n: usize,
    /// Successful-swap count as of this swap (this reload included; a
    /// full-set roll counts one per shard).
    pub reloads: u64,
}

/// Shared per-server state: one hot-swappable [`Generation`] over a
/// `Box<dyn QueryBackend>`, the reload source, and the metric registry.
pub struct AppState {
    handle: ReloadHandle,
    /// Where `POST /reload` / SIGHUP reload from: a manifest (re-read each
    /// time), a snapshot file, or a shard file set. `None` means a reload
    /// must name a path explicitly.
    spec: Option<BackendSpec>,
    /// Result-cache capacity for the *next* generation: the startup value
    /// until a manifest reload declares `cache_capacity`, which then
    /// becomes the new default (so a later single-shard or explicit-path
    /// reload cannot silently revert an operator's manifest setting).
    cache_capacity: AtomicUsize,
    /// Serializes load+swap so overlapping reloads apply in a definite
    /// order; never held by the request path.
    reload_lock: Mutex<()>,
    last_reload_error: Mutex<Option<String>>,
    started: Instant,
    registry: Arc<Registry>,
    metrics: Metrics,
    access_log: Option<Arc<AccessLog>>,
    /// Which accept/read transport feeds this state (`"epoll"` or
    /// `"poll"`), surfaced in `/stats`; `"in-process"` until a server
    /// binds it to a listener.
    transport: &'static str,
}

/// Endpoint classes with their own `cc_request_duration_ns` series; the
/// catch-all `other` class must stay last (it is the fallback of
/// [`AppState::record_request`]).
const ENDPOINT_CLASSES: [&str; 4] = ["distance", "batch", "reload", "other"];

/// Maps a request path to its endpoint class — the `endpoint` label on
/// `cc_request_duration_ns` / `cc_endpoint_requests_total` and the
/// `"endpoint"` field of the access log.
pub fn endpoint_of(path: &str) -> &'static str {
    match path {
        "/distance" => "distance",
        "/batch" => "batch",
        "/reload" => "reload",
        _ => "other",
    }
}

/// Pre-registered metric handles — created once per registry so the
/// request path touches single atomics and never the registration lock.
struct Metrics {
    requests: Counter,
    distance_requests: Counter,
    batch_requests: Counter,
    reload_requests: Counter,
    batch_pairs: Counter,
    client_errors: Counter,
    load_shed: Counter,
    accept_errors: Counter,
    reloads: Counter,
    reload_failures: Counter,
    reload_duration: Arc<Histogram>,
    /// Per-endpoint-class request latency, parallel to
    /// [`ENDPOINT_CLASSES`].
    durations: Vec<(&'static str, Arc<Histogram>)>,
    cache_hits: Gauge,
    cache_misses: Gauge,
    cache_hit_rate: Gauge,
    cache_len: Gauge,
    cache_capacity: Gauge,
    cache_warmed_keys: Gauge,
    uptime: Gauge,
}

impl Metrics {
    fn register(r: &Registry) -> Metrics {
        r.describe("cc_requests_total", "Requests handled, any endpoint, any outcome.");
        r.describe("cc_endpoint_requests_total", "Requests per query/reload endpoint.");
        r.describe("cc_batch_pairs_total", "Distance pairs answered through POST /batch.");
        r.describe("cc_client_errors_total", "Responses with a 4xx status.");
        r.describe("cc_load_shed_total", "Connections shed with 503 by the acceptor.");
        r.describe("cc_accept_errors_total", "accept(2) failures, transient or fatal.");
        r.describe("cc_reloads_total", "Successful hot-reload swaps.");
        r.describe("cc_reload_failures_total", "Reload attempts rejected by validation.");
        r.describe("cc_request_duration_ns", "Wall time per request, first byte to flush.");
        r.describe("cc_reload_duration_ns", "Wall time per successful reload, load to swap.");
        r.describe("cc_pool_queue_depth", "Connections queued for a worker right now.");
        r.describe("cc_cache_hits", "Result-cache hits of the serving generation.");
        r.describe("cc_cache_misses", "Result-cache misses of the serving generation.");
        r.describe("cc_cache_hit_rate", "Result-cache hit rate of the serving generation.");
        r.describe("cc_cache_len", "Entries resident in the result cache.");
        r.describe("cc_cache_capacity", "Result-cache capacity of the serving generation.");
        r.describe("cc_cache_warmed_keys", "Keys replayed into the cache at the last reload.");
        r.describe("cc_uptime_seconds", "Seconds since this serving state was created.");
        // Registered here (owned by the worker pool) so a scrape before
        // any traffic still sees the series.
        let _ = r.gauge("cc_pool_queue_depth", &[]);
        Metrics {
            requests: r.counter("cc_requests_total", &[]),
            distance_requests: r.counter("cc_endpoint_requests_total", &[("endpoint", "distance")]),
            batch_requests: r.counter("cc_endpoint_requests_total", &[("endpoint", "batch")]),
            reload_requests: r.counter("cc_endpoint_requests_total", &[("endpoint", "reload")]),
            batch_pairs: r.counter("cc_batch_pairs_total", &[]),
            client_errors: r.counter("cc_client_errors_total", &[]),
            load_shed: r.counter("cc_load_shed_total", &[]),
            accept_errors: r.counter("cc_accept_errors_total", &[]),
            reloads: r.counter("cc_reloads_total", &[]),
            reload_failures: r.counter("cc_reload_failures_total", &[]),
            reload_duration: r.histogram("cc_reload_duration_ns", &[]),
            durations: ENDPOINT_CLASSES
                .iter()
                .map(|&e| (e, r.histogram("cc_request_duration_ns", &[("endpoint", e)])))
                .collect(),
            cache_hits: r.gauge("cc_cache_hits", &[]),
            cache_misses: r.gauge("cc_cache_misses", &[]),
            cache_hit_rate: r.gauge("cc_cache_hit_rate", &[]),
            cache_len: r.gauge("cc_cache_len", &[]),
            cache_capacity: r.gauge("cc_cache_capacity", &[]),
            cache_warmed_keys: r.gauge("cc_cache_warmed_keys", &[]),
            uptime: r.gauge("cc_uptime_seconds", &[]),
        }
    }
}

/// Set-level identity for a (possibly mixed) shard set: the shared set id,
/// or `"mixed"` while a rolling rollout is in flight (`uniform` comes from
/// [`ShardRouter::set_uniform`] on the freshly assembled router).
fn set_info(shards: &[Arc<OracleShard>], uniform: bool, source: String) -> SnapshotInfo {
    SnapshotInfo {
        version: cc_oracle::serde::SNAPSHOT_VERSION,
        build_id: if uniform { format!("{:016x}", shards[0].set_id()) } else { "mixed".to_owned() },
        created_unix_secs: 0,
        source,
    }
}

impl AppState {
    /// Wraps an in-process-built `oracle` for serving, with an LRU result
    /// cache of `cache_capacity` entries and no default reload source.
    pub fn new(oracle: DistanceOracle, cache_capacity: usize) -> AppState {
        let info = SnapshotInfo::in_process(&oracle, "in-process");
        AppState::with_info(oracle, info, cache_capacity, None)
    }

    /// [`AppState::new`] with an explicit artifact identity and a default
    /// snapshot path for `POST /reload` / SIGHUP.
    pub fn with_info(
        oracle: DistanceOracle,
        info: SnapshotInfo,
        cache_capacity: usize,
        reload_path: Option<PathBuf>,
    ) -> AppState {
        let backend: Box<dyn QueryBackend> = Box::new(oracle);
        let generation = Generation::new(backend, info, cache_capacity);
        AppState::from_generation(generation, reload_path.map(BackendSpec::mono), cache_capacity)
    }

    /// Router-mode state over a loaded shard set (slot `i` = shard `i`).
    /// The set is re-validated here, so an inconsistent or mis-slotted set
    /// can never start serving. The shard files become the default
    /// full-set reload source.
    ///
    /// # Errors
    ///
    /// Everything [`cc_oracle::shard::validate_set`] rejects.
    pub fn with_shards(
        shards: Vec<LoadedShard>,
        cache_capacity: usize,
    ) -> Result<AppState, OracleError> {
        let mut slices = Vec::with_capacity(shards.len());
        let mut infos = Vec::with_capacity(shards.len());
        let mut paths = Vec::with_capacity(shards.len());
        for loaded in shards {
            slices.push(loaded.shard);
            infos.push(loaded.info);
            paths.push(loaded.path);
        }
        let spec = BackendSpec::sharded(paths);
        let loaded = LoadedBackend::sharded(slices, infos, spec.describe())?;
        let generation = Generation::from_loaded(loaded, cache_capacity);
        Ok(AppState::from_generation(generation, Some(spec), cache_capacity))
    }

    /// Router-mode state over in-process shard slices (no backing files),
    /// for tests and benchmarks that partition an oracle directly.
    ///
    /// # Errors
    ///
    /// Everything [`cc_oracle::shard::validate_set`] rejects.
    pub fn with_in_process_shards(
        shards: Vec<OracleShard>,
        cache_capacity: usize,
    ) -> Result<AppState, OracleError> {
        let infos: Vec<SnapshotInfo> =
            shards.iter().map(|s| SnapshotInfo::in_process_shard(s, "in-process")).collect();
        let loaded = LoadedBackend::sharded(shards, infos, "in-process")?;
        let generation = Generation::from_loaded(loaded, cache_capacity);
        Ok(AppState::from_generation(generation, None, cache_capacity))
    }

    /// State serving whatever `spec` names — the manifest-driven startup
    /// path. The spec's `cache_capacity` (when set) overrides
    /// `default_cache_capacity`, and the spec becomes the reload source: a
    /// manifest is **re-read on every bare `/reload` / SIGHUP**, so an
    /// operator rolls a new artifact by updating manifest + files and
    /// poking the endpoint.
    ///
    /// # Errors
    ///
    /// Everything [`BackendSpec::load`] rejects — including an
    /// `expected_set_id` mismatch, so a wrong-build artifact fails here,
    /// before the socket ever accepts.
    pub fn from_spec(
        spec: BackendSpec,
        default_cache_capacity: usize,
    ) -> Result<AppState, Box<dyn std::error::Error>> {
        let cache_capacity = spec.cache_capacity.unwrap_or(default_cache_capacity);
        let loaded = spec.load()?;
        let generation = Generation::from_loaded(loaded, cache_capacity);
        Ok(AppState::from_generation(generation, Some(spec), cache_capacity))
    }

    fn from_generation(
        generation: Generation,
        spec: Option<BackendSpec>,
        cache_capacity: usize,
    ) -> AppState {
        let registry = Arc::new(Registry::new());
        let metrics = Metrics::register(&registry);
        let mut handle = ReloadHandle::new(generation);
        handle.set_duration_histogram(Arc::clone(&metrics.reload_duration));
        AppState {
            handle,
            spec,
            cache_capacity: AtomicUsize::new(cache_capacity),
            reload_lock: Mutex::new(()),
            last_reload_error: Mutex::new(None),
            started: Instant::now(),
            registry,
            metrics,
            access_log: None,
            transport: "in-process",
        }
    }

    /// Records which transport ([`crate::config::Transport`], as resolved
    /// at bind time) feeds this state; reported by `GET /stats`.
    pub fn set_transport_label(&mut self, label: &'static str) {
        self.transport = label;
    }

    /// The metric registry backing `/stats` and `/metrics`. The server
    /// registers the worker-pool queue-depth gauge here, and the binary
    /// exports build-phase gauges into it after a `--demo` build.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Replaces the registry with a permanently disabled one: every metric
    /// handle becomes a no-op (used to measure instrumentation overhead).
    /// Must be called before the state starts serving — existing handles
    /// are re-created, so earlier recordings are discarded.
    pub fn disable_telemetry(&mut self) {
        self.registry = Arc::new(Registry::new_disabled());
        self.metrics = Metrics::register(&self.registry);
        self.handle.set_duration_histogram(Arc::clone(&self.metrics.reload_duration));
    }

    /// Sets the access/slow-query log every served request is recorded to.
    pub fn set_access_log(&mut self, log: Arc<AccessLog>) {
        self.access_log = Some(log);
    }

    /// The access/slow-query log, when one is configured.
    pub fn access_log(&self) -> Option<&Arc<AccessLog>> {
        self.access_log.as_ref()
    }

    /// Records one served request into the per-endpoint latency histogram
    /// (`cc_request_duration_ns{endpoint=...}`); unknown endpoints land in
    /// the `other` class.
    pub fn record_request(&self, endpoint: &str, duration_ns: u64) {
        let slot = self
            .metrics
            .durations
            .iter()
            .find(|(name, _)| *name == endpoint)
            .or_else(|| self.metrics.durations.last());
        if let Some((_, hist)) = slot {
            hist.record(duration_ns);
        }
    }

    /// True when this state routes over a shard set (right now — a
    /// manifest reload can change the mode).
    pub fn is_sharded(&self) -> bool {
        self.handle.current().is_sharded()
    }

    /// The generation serving right now (backend + cache + identity). The
    /// clone is an `Arc` refcount bump; holders keep the artifact alive
    /// across a concurrent reload.
    pub fn generation(&self) -> Arc<Generation> {
        self.handle.current()
    }

    /// Successful hot-reload swaps so far (one per shard swapped in a
    /// full-set roll).
    pub fn reloads(&self) -> u64 {
        self.metrics.reloads.get()
    }

    /// Reload attempts rejected by validation (the old artifact kept
    /// serving each time).
    pub fn reload_failures(&self) -> u64 {
        self.metrics.reload_failures.get()
    }

    fn record_reload_failure(&self, msg: String) -> String {
        self.metrics.reload_failures.inc();
        *self.last_reload_error.lock().unwrap_or_else(PoisonError::into_inner) = Some(msg.clone());
        msg
    }

    fn record_reload_success(&self) -> u64 {
        self.metrics.reloads.inc();
        *self.last_reload_error.lock().unwrap_or_else(PoisonError::into_inner) = None;
        self.metrics.reloads.get()
    }

    /// Installs a validated replacement generation: warms its cache from
    /// the outgoing one, swaps atomically (charging `started.elapsed()` —
    /// the whole load → validate → warm → swap — to
    /// `cc_reload_duration_ns`), and books `swap_units` successful swaps
    /// (1 for a monolith or single shard, the shard count for a full-set
    /// roll).
    fn install(
        &self,
        next: Generation,
        outgoing: &Generation,
        swap_units: usize,
        started: Instant,
    ) -> u64 {
        self.handle.swap_timed(next.warmed_from(outgoing, WARM_KEYS), started);
        let mut swaps = 0;
        for _ in 0..swap_units.max(1) {
            swaps = self.record_reload_success();
        }
        swaps
    }

    /// Loads + validates the **monolithic** snapshot at `path` and, only
    /// if it is fully valid, swaps it in atomically. On any failure the
    /// serving generation is untouched and the error is recorded for
    /// `/stats`.
    ///
    /// The load happens on the calling thread without blocking the request
    /// path: queries keep cloning the old generation until the one-pointer
    /// swap.
    ///
    /// # Errors
    ///
    /// The human-readable reason the snapshot was rejected (I/O, magic,
    /// version, checksum, structure), or that this server currently routes
    /// a shard set (reload a shard — or the manifest — instead).
    pub fn reload_from(&self, path: &Path) -> Result<ReloadOutcome, String> {
        let started = Instant::now();
        let _serialized = self.reload_lock.lock().unwrap_or_else(PoisonError::into_inner);
        let current = self.handle.current();
        if current.is_sharded() {
            return Err(self.record_reload_failure(
                "this server routes a shard set: reload one shard with /reload?shard=i".to_owned(),
            ));
        }
        match source::load_snapshot(path) {
            Ok(loaded) => {
                // The manifest's set_id pin gates explicit-path reloads
                // too: a wrong-build snapshot must not sneak past the gate
                // the operator configured (docs/OPERATIONS.md).
                if let Some(want) = self.spec.as_ref().and_then(|s| s.expected_set_id) {
                    let got = cc_oracle::serde::payload_checksum(&loaded.oracle);
                    if got != want {
                        return Err(self.record_reload_failure(format!(
                            "reload from {} rejected: build id {got:016x} does not match \
                             the pinned set_id {want:016x}",
                            path.display()
                        )));
                    }
                }
                let n = loaded.oracle.n();
                let info = loaded.info.clone();
                let next = Generation::from_loaded(
                    LoadedBackend::mono(loaded.oracle, loaded.info),
                    self.cache_capacity.load(Ordering::Relaxed),
                );
                Ok(ReloadOutcome { info, n, reloads: self.install(next, &current, 1, started) })
            }
            Err(e) => {
                Err(self
                    .record_reload_failure(format!("reload from {} rejected: {e}", path.display())))
            }
        }
    }

    /// Reloads shard `index` from `path` (router mode): the file must be a
    /// valid per-shard snapshot declaring exactly this slot and the
    /// serving set's shard count and `n`; the swap is atomic and every
    /// other slice is shared into the new generation untouched. A new set
    /// id is allowed — that is how a rolling rollout moves the set to a
    /// new artifact generation one shard at a time (`/stats` reports
    /// `set_uniform` so the roll's progress is observable).
    ///
    /// # Errors
    ///
    /// The human-readable rejection reason; the old generation keeps
    /// serving.
    pub fn reload_shard_from(&self, index: usize, path: &Path) -> Result<ReloadOutcome, String> {
        let started = Instant::now();
        let _serialized = self.reload_lock.lock().unwrap_or_else(PoisonError::into_inner);
        let current = self.handle.current();
        if !current.is_sharded() {
            return Err(self.record_reload_failure(
                "this server is monolithic: /reload takes no shard parameter".to_owned(),
            ));
        }
        let count = current.shards().len();
        if index >= count {
            return Err(
                self.record_reload_failure(format!("shard index {index} outside 0..{count}"))
            );
        }
        let loaded = match source::load_shard(path, index, count) {
            Ok(loaded) => loaded,
            Err(e) => {
                return Err(self.record_reload_failure(format!(
                    "reload of shard {index} from {} rejected: {e}",
                    path.display()
                )))
            }
        };
        if loaded.shard.n() != current.n() {
            return Err(self.record_reload_failure(format!(
                "reload of shard {index} from {} rejected: n = {} but the serving set \
                 has n = {} (a sharded artifact cannot change n shard-by-shard)",
                path.display(),
                loaded.shard.n(),
                current.n()
            )));
        }
        let mut shards = current.shards().to_vec();
        shards[index] = Arc::new(loaded.shard);
        let router = match ShardRouter::assemble_rolling(shards.clone()) {
            Ok(router) => router,
            Err(e) => {
                return Err(self.record_reload_failure(format!(
                    "reload of shard {index} from {} rejected: {e}",
                    path.display()
                )))
            }
        };
        let mut shard_infos = current.shard_infos().to_vec();
        shard_infos[index] = loaded.info.clone();
        let info = set_info(&shards, router.set_uniform(), current.info().source.clone());
        let backend: Box<dyn QueryBackend> = Box::new(router);
        let next = Generation::with_shards(
            backend,
            info,
            shards,
            shard_infos,
            self.cache_capacity.load(Ordering::Relaxed),
        );
        let n = next.n();
        Ok(ReloadOutcome {
            info: loaded.info,
            n,
            reloads: self.install(next, &current, 1, started),
        })
    }

    /// [`AppState::reload_from`] against the configured default source;
    /// this is what SIGHUP triggers in the `cc-serve` binary. A manifest
    /// source is **re-read** (mode, files, set id, cache capacity may all
    /// change); a shard-file source rolls every shard all-or-nothing; a
    /// snapshot source reloads the file.
    ///
    /// # Errors
    ///
    /// As the underlying reload, plus when no default source is
    /// configured.
    pub fn reload_default(&self) -> Result<ReloadOutcome, String> {
        let Some(spec) = self.spec.clone() else {
            return Err(self.record_reload_failure(
                "no reload source configured: start with --manifest, or pass an explicit path"
                    .to_owned(),
            ));
        };
        if let Some(manifest) = spec.manifest_path() {
            self.reload_manifest(manifest)
        } else if spec.is_sharded() {
            self.reload_all_shards()
        } else {
            match spec.mono_path() {
                Some(path) => self.reload_from(path),
                None => Err(self.record_reload_failure(
                    "reload source spec names neither a manifest, shards, nor a mono path"
                        .to_owned(),
                )),
            }
        }
    }

    /// Re-reads the manifest at `path` and swaps in whatever it now names
    /// — new files, a new expected set id, a new cache capacity, even a
    /// different mode or `n`. All-or-nothing: any load or validation
    /// failure (including a set-id mismatch) keeps the old generation
    /// serving.
    ///
    /// # Errors
    ///
    /// The first rejection reason; nothing was swapped.
    pub fn reload_manifest(&self, path: &Path) -> Result<ReloadOutcome, String> {
        let started = Instant::now();
        let _serialized = self.reload_lock.lock().unwrap_or_else(PoisonError::into_inner);
        let current = self.handle.current();
        let loaded = BackendSpec::from_manifest(path).and_then(|spec| {
            let capacity = spec.cache_capacity;
            Ok((spec.load()?, capacity))
        });
        match loaded {
            Ok((loaded, capacity)) => {
                let info = loaded.info.clone();
                let n = loaded.n();
                let swap_units = loaded.shards.len().max(1);
                // A manifest-declared capacity becomes the default for
                // every subsequent reload, not just this generation.
                let capacity =
                    capacity.unwrap_or_else(|| self.cache_capacity.load(Ordering::Relaxed));
                self.cache_capacity.store(capacity, Ordering::Relaxed);
                let next = Generation::from_loaded(loaded, capacity);
                let reloads = self.install(next, &current, swap_units, started);
                Ok(ReloadOutcome { info, n, reloads })
            }
            Err(e) => Err(self.record_reload_failure(format!("manifest reload rejected: {e}"))),
        }
    }

    /// Reloads every shard from the startup file set, all-or-nothing: the
    /// full replacement set is loaded and validated as one consistent set
    /// before the swap, so a half-written rollout can never leave the tier
    /// mixed by accident.
    ///
    /// # Errors
    ///
    /// The first rejection reason; nothing was swapped.
    pub fn reload_all_shards(&self) -> Result<ReloadOutcome, String> {
        let started = Instant::now();
        let _serialized = self.reload_lock.lock().unwrap_or_else(PoisonError::into_inner);
        let current = self.handle.current();
        if !current.is_sharded() {
            return Err(self.record_reload_failure(
                "this server is monolithic: use /reload without shard semantics".to_owned(),
            ));
        }
        let Some(spec) = self.spec.as_ref().filter(|s| s.is_sharded()) else {
            return Err(self.record_reload_failure(
                "this shard set has no snapshot files to reload from \
                 (served from an in-process partition)"
                    .to_owned(),
            ));
        };
        let paths: Vec<PathBuf> = (0..spec.shard_count())
            .filter_map(|i| spec.shard_path(i).map(Path::to_path_buf))
            .collect();
        match source::load_shard_set(&paths) {
            Ok(loaded) if loaded[0].shard.n() != current.n() => {
                Err(self.record_reload_failure(format!(
                    "full-set reload rejected: n = {} but the serving set has n = {} \
                     (restart to change the graph size)",
                    loaded[0].shard.n(),
                    current.n()
                )))
            }
            Ok(loaded) => {
                let mut slices = Vec::with_capacity(loaded.len());
                let mut infos = Vec::with_capacity(loaded.len());
                for shard in loaded {
                    slices.push(shard.shard);
                    infos.push(shard.info);
                }
                let count = slices.len();
                match LoadedBackend::sharded(slices, infos, spec.describe()) {
                    Ok(loaded) => {
                        let info = loaded.info.clone();
                        let n = loaded.n();
                        let next = Generation::from_loaded(
                            loaded,
                            self.cache_capacity.load(Ordering::Relaxed),
                        );
                        let reloads = self.install(next, &current, count, started);
                        Ok(ReloadOutcome { info, n, reloads })
                    }
                    Err(e) => {
                        Err(self.record_reload_failure(format!("full-set reload rejected: {e}")))
                    }
                }
            }
            Err(e) => Err(self.record_reload_failure(format!("full-set reload rejected: {e}"))),
        }
    }

    /// Total requests routed so far (any endpoint, any outcome).
    pub fn requests(&self) -> u64 {
        self.metrics.requests.get()
    }

    /// Records a 4xx produced below the router (protocol parse errors).
    pub fn count_protocol_error(&self) {
        self.metrics.requests.inc();
        self.metrics.client_errors.inc();
    }

    /// Records a connection shed with `503` at the acceptor (queue full),
    /// so `/stats` stays honest under the exact overload it diagnoses.
    pub fn count_load_shed(&self) {
        self.metrics.requests.inc();
        self.metrics.load_shed.inc();
    }

    /// Records one failed `accept(2)` (transient or fatal). No request was
    /// routed, so — unlike sheds — this does not bump `cc_requests_total`;
    /// it only feeds `cc_accept_errors_total` for the overload runbook.
    pub fn count_accept_error(&self) {
        self.metrics.accept_errors.inc();
    }

    /// Routes one request and maintains the counters.
    pub fn handle(&self, req: &Request) -> Response {
        self.metrics.requests.inc();
        let resp = self.route(req);
        if (400..500).contains(&resp.status) {
            self.metrics.client_errors.inc();
        }
        resp
    }

    fn route(&self, req: &Request) -> Response {
        // HEAD answers exactly like GET minus the body (load-balancer
        // health probes commonly send it); the transport layer omits the
        // body when serializing, so handlers never see the difference.
        let method = if req.method == "HEAD" { "GET" } else { req.method.as_str() };
        match (method, req.path.as_str()) {
            ("GET", "/healthz") => Response::text(200, "ok\n"),
            ("GET", "/distance") => self.distance(req),
            ("POST", "/batch") => self.batch(req),
            ("POST", "/reload") => self.reload(req),
            ("GET", "/stats") => self.stats(),
            ("GET", "/metrics") => self.metrics_exposition(),
            ("GET", "/artifact") => self.artifact(),
            (
                _,
                "/healthz" | "/distance" | "/batch" | "/stats" | "/metrics" | "/artifact"
                | "/reload",
            ) => Response::error_json(405, format!("method {} not allowed here", req.method)),
            _ => Response::error_json(404, format!("no route for '{}'", req.path)),
        }
    }

    /// Refreshes the point-in-time gauges (cache counters, warmed keys,
    /// uptime) from the current generation, then takes **one** registry
    /// snapshot. `/stats` and `/metrics` both render from the result, so
    /// the two views can never disagree about the same instant.
    fn observe(&self) -> (Arc<Generation>, BackendDescriptor, RegistrySnapshot) {
        let generation = self.handle.current();
        let desc = generation.descriptor();
        if let Some(cache) = &desc.cache {
            self.metrics.cache_hits.set(cache.hits as f64);
            self.metrics.cache_misses.set(cache.misses as f64);
            self.metrics.cache_hit_rate.set(cache.hit_rate());
            self.metrics.cache_len.set(cache.len as f64);
            self.metrics.cache_capacity.set(cache.capacity as f64);
        }
        self.metrics.cache_warmed_keys.set(generation.warmed_keys() as f64);
        self.metrics.uptime.set(self.started.elapsed().as_secs_f64());
        (generation, desc, self.registry.snapshot())
    }

    /// `GET /metrics` — Prometheus text exposition (version 0.0.4) of the
    /// same registry snapshot `/stats` renders from.
    fn metrics_exposition(&self) -> Response {
        let (_generation, _desc, snap) = self.observe();
        Response {
            status: 200,
            content_type: METRICS_CONTENT_TYPE,
            body: render_prometheus(&snap).into_bytes(),
        }
    }

    /// `GET /distance?u=&v=` — one pair, through the current generation's
    /// cached backend, whatever tier it is.
    fn distance(&self, req: &Request) -> Response {
        self.metrics.distance_requests.inc();
        let (u, v) = match (parse_id(req, "u"), parse_id(req, "v")) {
            (Ok(u), Ok(v)) => (u, v),
            (Err(resp), _) | (_, Err(resp)) => return resp,
        };
        match self.handle.current().cached().try_query(u, v) {
            Ok(d) => Response::json(
                200,
                format!(
                    "{{\"u\":{u},\"v\":{v},\"distance\":{},\"connected\":{}}}",
                    dist_json(d),
                    d.is_finite()
                ),
            ),
            // QueryOutOfRange is the only query error today; any future
            // variant is still a client-input problem by construction here.
            Err(e) => Response::error_json(400, e.to_string()),
        }
    }

    /// `POST /batch` — newline-separated `u v` (or `u,v`) pairs as text,
    /// or a [`cc_reactor::frame`] request when the client negotiates the
    /// binary content type. Both planes answer from the same
    /// `try_query_batch` call, so they are answer-identical by
    /// construction (and pinned so by the differential suite).
    fn batch(&self, req: &Request) -> Response {
        self.metrics.batch_requests.inc();
        if is_binary_batch(req) {
            return self.batch_binary(req);
        }
        let Ok(text) = std::str::from_utf8(&req.body) else {
            return Response::error_json(400, "batch body must be UTF-8");
        };
        let mut pairs: Vec<(usize, usize)> = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let mut ids =
                line.split(|c: char| c == ',' || c.is_whitespace()).filter(|t| !t.is_empty());
            let pair = match (ids.next(), ids.next(), ids.next()) {
                (Some(a), Some(b), None) => a.parse().ok().zip(b.parse().ok()),
                _ => None,
            };
            match pair {
                Some(p) => pairs.push(p),
                None => {
                    return Response::error_json(
                        400,
                        format!("line {}: expected 'u v', got '{line}'", lineno + 1),
                    )
                }
            }
        }
        self.metrics.batch_pairs.add(pairs.len() as u64);
        match self.handle.current().cached().try_query_batch(&pairs) {
            Ok(answers) => {
                let mut body = String::with_capacity(16 + answers.len() * 8);
                body.push_str("{\"count\":");
                body.push_str(&answers.len().to_string());
                body.push_str(",\"distances\":[");
                for (i, d) in answers.iter().enumerate() {
                    if i > 0 {
                        body.push(',');
                    }
                    body.push_str(&dist_json(*d));
                }
                body.push_str("]}");
                Response::json(200, body)
            }
            Err(e) => Response::error_json(400, e.to_string()),
        }
    }

    /// The binary plane of `POST /batch`: a `CCBQ` frame in, a `CCBR`
    /// frame out, zero decimal parsing/formatting on the hot path. Every
    /// malformed frame is a 400 with a JSON error naming the defect, so a
    /// misconfigured client gets the same diagnosability as the text plane.
    fn batch_binary(&self, req: &Request) -> Response {
        let pairs = match frame::decode_request_map(&req.body, |u, v| (u as usize, v as usize)) {
            Ok(pairs) => pairs,
            Err(e) => return Response::error_json(400, e.to_string()),
        };
        self.metrics.batch_pairs.add(pairs.len() as u64);
        match self.handle.current().cached().try_query_batch(&pairs) {
            Ok(answers) => Response {
                status: 200,
                content_type: frame::CONTENT_TYPE,
                body: frame::encode_response_from(
                    answers.iter().map(|d| d.value().unwrap_or(frame::UNREACHABLE)),
                ),
            },
            Err(e) => Response::error_json(400, e.to_string()),
        }
    }

    /// `POST /reload[?path=...][&shard=i]` — load, validate, and atomically
    /// swap in a new snapshot. A monolithic generation swaps the whole
    /// artifact; a sharded one swaps shard `i` (or, with no `shard`
    /// parameter, rolls the full set from its manifest or startup files).
    /// A rejected snapshot answers `400` and leaves the old generation
    /// serving.
    fn reload(&self, req: &Request) -> Response {
        self.metrics.reload_requests.inc();
        let generation = self.handle.current();
        match req.param("shard") {
            Some(_) if !generation.is_sharded() => Response::error_json(
                400,
                "this server is monolithic: /reload takes no 'shard' parameter",
            ),
            Some(raw) => {
                let Ok(index) = raw.parse::<usize>() else {
                    return Response::error_json(
                        400,
                        format!("parameter 'shard' must be a shard index, got '{raw}'"),
                    );
                };
                // Bounds-check before resolving the path: an out-of-range
                // index must name the real problem (and land in
                // reload_failures for monitoring), not claim a missing
                // default path.
                if index >= generation.shards().len() {
                    return Response::error_json(
                        400,
                        self.record_reload_failure(format!(
                            "shard index {index} outside 0..{}",
                            generation.shards().len()
                        )),
                    );
                }
                let path = match req.param("path") {
                    Some(p) if !p.is_empty() => PathBuf::from(p),
                    // Each slice's default reload source is the file it
                    // was last loaded from.
                    _ => match &generation.shard_infos()[index] {
                        info if info.source != "in-process" => PathBuf::from(&info.source),
                        _ => {
                            return Response::error_json(
                                400,
                                format!(
                                    "shard {index} has no default snapshot file; \
                                     pass /reload?shard={index}&path=FILE"
                                ),
                            )
                        }
                    },
                };
                match self.reload_shard_from(index, &path) {
                    Ok(outcome) => {
                        let mut o = JsonObject::new();
                        o.set("reloaded", true);
                        o.set("shard", index);
                        o.set("snapshot", snapshot_obj(&outcome.info));
                        o.set("reloads", outcome.reloads);
                        Response::json(200, o.render())
                    }
                    Err(msg) => Response::error_json(400, msg),
                }
            }
            None if generation.is_sharded() => {
                // A bare reload of a routed set always comes from the
                // configured source; silently ignoring `path` here would
                // answer 200 without deploying the named file.
                if req.param("path").is_some_and(|p| !p.is_empty()) {
                    return Response::error_json(
                        400,
                        "this server routes a shard set: a bare /reload rolls the \
                         configured manifest/files; use /reload?shard=i&path=FILE \
                         to roll one slice",
                    );
                }
                match self.reload_default() {
                    Ok(outcome) => {
                        let mut o = JsonObject::new();
                        o.set("reloaded", true);
                        o.set("shards", self.handle.current().shards().len());
                        o.set("reloads", outcome.reloads);
                        Response::json(200, o.render())
                    }
                    // The serving process is healthy and still answering on
                    // the old artifact — the *request* failed: 4xx, not 5xx.
                    Err(msg) => Response::error_json(400, msg),
                }
            }
            None => {
                let outcome = match req.param("path") {
                    Some(p) if !p.is_empty() => self.reload_from(Path::new(p)),
                    _ => self.reload_default(),
                };
                match outcome {
                    Ok(outcome) => {
                        let mut o = JsonObject::new();
                        o.set("reloaded", true);
                        o.set("snapshot", snapshot_obj(&outcome.info));
                        o.set("n", outcome.n);
                        o.set("reloads", outcome.reloads);
                        Response::json(200, o.render())
                    }
                    Err(msg) => Response::error_json(400, msg),
                }
            }
        }
    }

    /// `GET /stats` — request counters plus what the current generation
    /// says about itself: tier, snapshot identities, cache effectiveness
    /// (including the keys warmed into it at the last reload), and the
    /// reload history. Every number is read back from the same
    /// [`RegistrySnapshot`] `/metrics` exposes, rendered with the
    /// [`JsonObject`] writer (a stray quote in an error can never emit
    /// invalid JSON).
    fn stats(&self) -> Response {
        let (generation, desc, snap) = self.observe();
        let counter =
            |family: &str, labels: &[(&str, &str)]| snap.counter_value(family, labels).unwrap_or(0);
        let gauge = |family: &str| snap.gauge_value(family, &[]).unwrap_or(0.0);

        let mut o = JsonObject::new();
        o.set("requests", counter("cc_requests_total", &[]));
        o.set(
            "distance_requests",
            counter("cc_endpoint_requests_total", &[("endpoint", "distance")]),
        );
        o.set("batch_requests", counter("cc_endpoint_requests_total", &[("endpoint", "batch")]));
        o.set("batch_pairs", counter("cc_batch_pairs_total", &[]));
        o.set("client_errors", counter("cc_client_errors_total", &[]));
        o.set("load_shed", counter("cc_load_shed_total", &[]));
        o.set("accept_errors", counter("cc_accept_errors_total", &[]));
        o.set("transport", self.transport);
        o.set("uptime_secs", Json::Raw(format!("{:.3}", gauge("cc_uptime_seconds"))));
        tier_members(&mut o, &generation, &desc);
        o.set("reload_requests", counter("cc_endpoint_requests_total", &[("endpoint", "reload")]));
        o.set("reloads", counter("cc_reloads_total", &[]));
        o.set("reload_failures", counter("cc_reload_failures_total", &[]));
        o.set(
            "last_reload_error",
            self.last_reload_error.lock().unwrap_or_else(PoisonError::into_inner).clone(),
        );
        let mut cache = JsonObject::new();
        cache.set("hits", gauge("cc_cache_hits") as u64);
        cache.set("misses", gauge("cc_cache_misses") as u64);
        cache.set("hit_rate", Json::Raw(format!("{:.4}", gauge("cc_cache_hit_rate"))));
        cache.set("len", gauge("cc_cache_len") as u64);
        cache.set("capacity", gauge("cc_cache_capacity") as u64);
        cache.set("warmed_keys", gauge("cc_cache_warmed_keys") as u64);
        o.set("cache", cache);
        Response::json(200, o.render())
    }

    /// `GET /artifact` — what is being served, where it came from, and its
    /// guarantee; per-shard identities for a routed set. Driven entirely by
    /// [`cc_oracle::BackendDescriptor`].
    fn artifact(&self) -> Response {
        let generation = self.handle.current();
        let desc = generation.descriptor();
        let mut o = JsonObject::new();
        if desc.shards.is_empty() {
            o.set("mode", desc.mode);
            o.set("snapshot", snapshot_obj(generation.info()));
        } else {
            o.set("mode", desc.mode);
            o.set("shard_count", desc.shards.len());
            o.set("set_uniform", desc.set_uniform());
            let shards: Vec<Json> = desc
                .shards
                .iter()
                .zip(generation.shard_infos())
                .map(|(s, info)| {
                    let mut e = JsonObject::new();
                    e.set("index", s.index);
                    e.set("owned_start", s.owned_start);
                    e.set("owned_len", s.owned_len);
                    e.set("artifact_bytes", s.artifact_bytes);
                    e.set("set_build_id", format!("{:016x}", s.set_id));
                    e.set("snapshot", snapshot_obj(info));
                    Json::from(e)
                })
                .collect();
            o.set("shards", shards);
        }
        o.set("n", desc.n);
        o.set("k", desc.k);
        o.set("epsilon", desc.epsilon);
        o.set("landmarks", desc.landmark_count);
        o.set("artifact_bytes", desc.artifact_bytes);
        o.set("stretch_bound", desc.stretch_bound);
        o.set("build_rounds", desc.build_rounds);
        o.set("seed", desc.seed);
        o.set("reloads", self.reloads());
        Response::json(200, o.render())
    }
}

/// Appends the tier-specific `/stats` members: the active snapshot for a
/// monolith, the per-shard identities + uniformity for a routed set.
fn tier_members(o: &mut JsonObject, generation: &Generation, desc: &BackendDescriptor) {
    if desc.shards.is_empty() {
        o.set("mode", desc.mode);
        o.set("snapshot", snapshot_obj(generation.info()));
    } else {
        o.set("mode", desc.mode);
        o.set("shard_count", desc.shards.len());
        o.set("set_uniform", desc.set_uniform());
        let shards: Vec<Json> = desc
            .shards
            .iter()
            .zip(generation.shard_infos())
            .map(|(s, info)| {
                let mut e = JsonObject::new();
                e.set("index", s.index);
                e.set("set_build_id", format!("{:016x}", s.set_id));
                e.set("snapshot", snapshot_obj(info));
                Json::from(e)
            })
            .collect();
        o.set("shards", shards);
    }
}

/// Renders a [`SnapshotInfo`] as a JSON object.
fn snapshot_obj(info: &SnapshotInfo) -> JsonObject {
    let mut o = JsonObject::new();
    o.set("version", info.version);
    o.set("build_id", info.build_id.as_str());
    o.set("created_unix_secs", info.created_unix_secs);
    o.set("source", info.source.as_str());
    o
}

fn dist_json(d: Dist) -> String {
    d.value().map_or_else(|| "null".to_owned(), |x| x.to_string())
}

/// True when the request negotiated the binary batch plane. Matches the
/// media type case-insensitively and ignores any `;`-separated parameters.
fn is_binary_batch(req: &Request) -> bool {
    req.content_type.as_deref().is_some_and(|ct| {
        let media = ct.split(';').next().unwrap_or(ct).trim();
        media.eq_ignore_ascii_case(frame::CONTENT_TYPE)
    })
}

/// Parses a node-id query parameter, mapping every failure mode to a `400`
/// that names the parameter.
fn parse_id(req: &Request, name: &str) -> Result<usize, Response> {
    let raw = req
        .param(name)
        .ok_or_else(|| Response::error_json(400, format!("missing query parameter '{name}'")))?;
    raw.parse().map_err(|_| {
        Response::error_json(400, format!("parameter '{name}' must be a node id, got '{raw}'"))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_clique::Clique;
    use cc_graph::generators;
    use cc_oracle::{OracleBuilder, ShardedArtifact};

    fn oracle(n: usize, seed: u64) -> DistanceOracle {
        let g = generators::gnp_weighted(n, 0.2, 20, seed).unwrap();
        let mut clique = Clique::new(n);
        OracleBuilder::new().seed(seed).build(&mut clique, &g).unwrap()
    }

    fn state() -> AppState {
        AppState::new(oracle(24, 9), 256)
    }

    fn sharded_state(n: usize, seed: u64, count: usize) -> (DistanceOracle, AppState) {
        let o = oracle(n, seed);
        let shards = ShardedArtifact::partition(&o, count).unwrap().into_shards();
        (o, AppState::with_in_process_shards(shards, 256).unwrap())
    }

    fn get(path: &str, query: &[(&str, &str)]) -> Request {
        Request {
            method: "GET".into(),
            path: path.into(),
            query: query.iter().map(|&(k, v)| (k.to_owned(), v.to_owned())).collect(),
            body: Vec::new(),
            content_type: None,
            keep_alive: true,
        }
    }

    fn post(path: &str, body: &[u8]) -> Request {
        Request {
            method: "POST".into(),
            path: path.into(),
            query: Vec::new(),
            body: body.to_vec(),
            content_type: None,
            keep_alive: true,
        }
    }

    fn post_binary(path: &str, body: &[u8]) -> Request {
        Request {
            method: "POST".into(),
            path: path.into(),
            query: Vec::new(),
            body: body.to_vec(),
            content_type: Some(frame::CONTENT_TYPE.to_owned()),
            keep_alive: true,
        }
    }

    fn body_str(resp: &Response) -> &str {
        std::str::from_utf8(&resp.body).unwrap()
    }

    #[test]
    fn distance_answers_match_the_oracle() {
        let want = oracle(24, 9);
        let s = AppState::new(oracle(24, 9), 256);
        let resp = s.handle(&get("/distance", &[("u", "0"), ("v", "5")]));
        assert_eq!(resp.status, 200);
        let expected = want.try_query(0, 5).unwrap().value().unwrap();
        assert!(
            body_str(&resp).contains(&format!("\"distance\":{expected}")),
            "body: {}",
            body_str(&resp)
        );
        assert!(body_str(&resp).contains("\"connected\":true"));
    }

    #[test]
    fn out_of_range_ids_are_400_not_panic() {
        let s = state();
        let resp = s.handle(&get("/distance", &[("u", "0"), ("v", "24")]));
        assert_eq!(resp.status, 400);
        assert!(body_str(&resp).contains("outside 0..24"), "body: {}", body_str(&resp));
        // The server keeps serving afterwards.
        assert_eq!(s.handle(&get("/healthz", &[])).status, 200);
    }

    #[test]
    fn malformed_ids_and_missing_params_are_400() {
        let s = state();
        for query in [
            &[("u", "zero"), ("v", "1")][..],
            &[("u", "0"), ("v", "-3")][..],
            &[("u", "0")][..],
            &[][..],
            &[("u", "0"), ("v", "1e9")][..],
        ] {
            let resp = s.handle(&get("/distance", query));
            assert_eq!(resp.status, 400, "query {query:?} must be rejected");
        }
    }

    #[test]
    fn garbage_paths_are_404_and_wrong_methods_405() {
        let s = state();
        assert_eq!(s.handle(&get("/nope", &[])).status, 404);
        assert_eq!(s.handle(&get("/../etc/passwd", &[])).status, 404);
        assert_eq!(s.handle(&post("/distance", b"")).status, 405);
        assert_eq!(s.handle(&get("/batch", &[])).status, 405);
    }

    #[test]
    fn batch_routes_through_the_backend_and_validates_lines() {
        let want = oracle(24, 9);
        let s = AppState::new(oracle(24, 9), 256);
        let resp = s.handle(&post("/batch", b"0 1\n2,3\n\n  4   5  \n"));
        assert_eq!(resp.status, 200, "body: {}", body_str(&resp));
        let expected = want.try_query_batch(&[(0, 1), (2, 3), (4, 5)]).unwrap();
        let distances: Vec<String> =
            expected.iter().map(|d| d.value().map_or("null".into(), |x| x.to_string())).collect();
        assert_eq!(
            body_str(&resp),
            format!("{{\"count\":3,\"distances\":[{}]}}", distances.join(","))
        );

        assert_eq!(s.handle(&post("/batch", b"0 1\nfive 6\n")).status, 400);
        assert_eq!(s.handle(&post("/batch", b"0 1 2\n")).status, 400);
        assert_eq!(s.handle(&post("/batch", b"0 99\n")).status, 400, "out-of-range pair");
        assert_eq!(s.handle(&post("/batch", &[0xff, 0xfe])).status, 400, "non-UTF-8 body");
    }

    #[test]
    fn binary_batch_answers_match_the_text_plane_and_the_backend() {
        let want = oracle(24, 9);
        let s = AppState::new(oracle(24, 9), 256);
        let pairs = [(0usize, 1usize), (2, 3), (5, 5), (0, 23)];
        let pairs32: Vec<(u32, u32)> = pairs.iter().map(|&(u, v)| (u as u32, v as u32)).collect();

        let resp = s.handle(&post_binary("/batch", &frame::encode_request(&pairs32)));
        assert_eq!(resp.status, 200, "body: {:?}", resp.body);
        assert_eq!(resp.content_type, frame::CONTENT_TYPE);
        let got = frame::decode_response(&resp.body).unwrap();
        let expected: Vec<u64> = want
            .try_query_batch(&pairs)
            .unwrap()
            .iter()
            .map(|d| d.value().unwrap_or(frame::UNREACHABLE))
            .collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn binary_batch_content_type_negotiation_ignores_params_and_case() {
        let s = state();
        let mut req = post_binary("/batch", &frame::encode_request(&[(0, 1)]));
        req.content_type = Some("Application/X-CC-Batch; charset=binary".to_owned());
        assert_eq!(s.handle(&req).status, 200);
        // Without the content type, the same bytes hit the text parser and
        // are rejected — never misinterpreted as decimal ids.
        req.content_type = None;
        assert_eq!(s.handle(&req).status, 400);
    }

    #[test]
    fn malformed_binary_frames_are_400_not_panic() {
        let s = state();
        let valid = frame::encode_request(&[(0, 1), (2, 3)]);
        let cases: Vec<Vec<u8>> = vec![
            Vec::new(),
            b"CCB".to_vec(),
            b"XXXX\x01\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00".to_vec(),
            valid[..valid.len() - 3].to_vec(), // truncated payload
            frame::encode_response(&[7]),      // response magic on the request plane
            {
                let mut zero = valid.clone();
                zero[4..8].copy_from_slice(&0u32.to_le_bytes()); // declares 0 pairs
                zero
            },
            {
                let mut lying = valid.clone();
                lying[4..8].copy_from_slice(&9u32.to_le_bytes()); // declares 9, carries 2
                lying
            },
        ];
        for bytes in cases {
            let resp = s.handle(&post_binary("/batch", &bytes));
            assert_eq!(resp.status, 400, "frame {bytes:?} must be a 400");
            assert_eq!(resp.content_type, "application/json");
        }
        // Out-of-range ids (valid frame, bad content) are 400s too.
        let resp = s.handle(&post_binary("/batch", &frame::encode_request(&[(0, 999)])));
        assert_eq!(resp.status, 400);
        // The state keeps serving afterwards.
        assert_eq!(s.handle(&get("/healthz", &[])).status, 200);
    }

    #[test]
    fn head_routes_like_get_and_unknown_methods_stay_405() {
        let s = state();
        for path in ["/healthz", "/stats", "/metrics", "/artifact"] {
            let mut req = get(path, &[]);
            req.method = "HEAD".into();
            let head = s.handle(&req);
            assert_eq!(head.status, 200, "HEAD {path} must answer like GET");
        }
        let mut req = get("/distance", &[("u", "0"), ("v", "5")]);
        req.method = "HEAD".into();
        let head = s.handle(&req);
        let get_resp = s.handle(&get("/distance", &[("u", "0"), ("v", "5")]));
        assert_eq!((head.status, head.body), (get_resp.status, get_resp.body));
        // HEAD on a POST-only route is still a 405, and truly unknown
        // methods stay rejected.
        let mut req = post("/reload", b"");
        req.method = "HEAD".into();
        assert_eq!(s.handle(&req).status, 405);
        let mut req = get("/healthz", &[]);
        req.method = "BREW".into();
        assert_eq!(s.handle(&req).status, 405);
    }

    #[test]
    fn accept_errors_surface_in_stats_and_transport_is_labelled() {
        let mut s = state();
        s.set_transport_label("epoll");
        s.count_accept_error();
        s.count_accept_error();
        let stats = body_str(&s.handle(&get("/stats", &[]))).to_owned();
        assert!(stats.contains("\"accept_errors\":2"), "stats: {stats}");
        assert!(stats.contains("\"transport\":\"epoll\""), "stats: {stats}");
        let metrics = body_str(&s.handle(&get("/metrics", &[]))).to_owned();
        assert!(metrics.contains("cc_accept_errors_total 2"), "metrics: {metrics}");
        assert!(metrics.contains("# TYPE cc_accept_errors_total counter"), "metrics: {metrics}");
    }

    #[test]
    fn stats_and_artifact_report_the_serving_state() {
        let s = state();
        s.handle(&get("/distance", &[("u", "1"), ("v", "2")]));
        s.handle(&get("/distance", &[("u", "1"), ("v", "2")]));
        s.handle(&get("/distance", &[("u", "99"), ("v", "2")]));
        let stats = s.handle(&get("/stats", &[]));
        assert_eq!(stats.status, 200);
        let body = body_str(&stats).to_owned();
        assert!(body.contains("\"requests\":4"), "body: {body}");
        assert!(body.contains("\"distance_requests\":3"), "body: {body}");
        assert!(body.contains("\"client_errors\":1"), "body: {body}");
        assert!(body.contains("\"mode\":\"mono\""), "body: {body}");
        assert!(body.contains("\"hits\":1"), "body: {body}");
        assert!(body.contains("\"misses\":1"), "body: {body}");
        assert!(body.contains("\"warmed_keys\":0"), "body: {body}");

        let artifact = s.handle(&get("/artifact", &[]));
        assert_eq!(artifact.status, 200);
        let body = body_str(&artifact).to_owned();
        for key in ["\"n\":24", "\"k\":", "\"epsilon\":", "\"landmarks\":", "\"artifact_bytes\":"] {
            assert!(body.contains(key), "missing {key} in {body}");
        }
        assert!(body.contains("\"stretch_bound\":3.75"), "body: {body}");
        // The active snapshot's identity is reported on both endpoints.
        let expected_id = s.generation().info().build_id.clone();
        for text in [&body, &body_str(&s.handle(&get("/stats", &[]))).to_owned()] {
            assert!(text.contains(&format!("\"build_id\":\"{expected_id}\"")), "body: {text}");
            assert!(text.contains("\"version\":2"), "body: {text}");
            assert!(text.contains("\"source\":\"in-process\""), "body: {text}");
        }
    }

    #[test]
    fn metrics_and_stats_render_the_same_registry_snapshot() {
        let s = state();
        s.handle(&get("/distance", &[("u", "1"), ("v", "2")]));
        s.handle(&get("/distance", &[("u", "1"), ("v", "2")]));
        s.handle(&get("/distance", &[("u", "99"), ("v", "2")]));
        s.record_request("distance", 1_500);
        s.record_request("nonsense", 10);

        let resp = s.handle(&get("/metrics", &[]));
        assert_eq!(resp.status, 200);
        assert_eq!(resp.content_type, METRICS_CONTENT_TYPE);
        let text = body_str(&resp).to_owned();
        // 3 /distance + this /metrics request itself.
        assert!(text.contains("# TYPE cc_requests_total counter"), "metrics: {text}");
        assert!(text.contains("cc_requests_total 4"), "metrics: {text}");
        assert!(
            text.contains("cc_endpoint_requests_total{endpoint=\"distance\"} 3"),
            "metrics: {text}"
        );
        assert!(text.contains("cc_client_errors_total 1"), "metrics: {text}");
        // 1 hit / 1 miss on the repeated pair (the 400 never reached the
        // cache).
        assert!(text.contains("cc_cache_hit_rate 0.5"), "metrics: {text}");
        assert!(text.contains("cc_pool_queue_depth 0"), "metrics: {text}");
        // The 1500ns recording lands in the (1024, 2048] bucket...
        assert!(
            text.contains("cc_request_duration_ns_bucket{endpoint=\"distance\",le=\"2048\"} 1"),
            "metrics: {text}"
        );
        assert!(
            text.contains("cc_request_duration_ns_sum{endpoint=\"distance\"} 1500"),
            "metrics: {text}"
        );
        assert!(
            text.contains("cc_request_duration_ns_count{endpoint=\"distance\"} 1"),
            "metrics: {text}"
        );
        // ...and the unknown endpoint class fell back to `other`.
        assert!(
            text.contains("cc_request_duration_ns_count{endpoint=\"other\"} 1"),
            "metrics: {text}"
        );

        // /stats reads the very same counters back from the registry.
        let stats = body_str(&s.handle(&get("/stats", &[]))).to_owned();
        assert!(stats.contains("\"requests\":5"), "stats: {stats}");
        assert!(stats.contains("\"distance_requests\":3"), "stats: {stats}");
        assert!(stats.contains("\"hit_rate\":0.5000"), "stats: {stats}");
    }

    #[test]
    fn wrong_method_on_metrics_is_405() {
        let s = state();
        assert_eq!(s.handle(&post("/metrics", b"")).status, 405);
    }

    #[test]
    fn disabled_telemetry_serves_but_records_nothing() {
        let mut s = state();
        s.disable_telemetry();
        assert_eq!(s.handle(&get("/distance", &[("u", "0"), ("v", "5")])).status, 200);
        s.record_request("distance", 1_500);
        let metrics = body_str(&s.handle(&get("/metrics", &[]))).to_owned();
        // The families are still registered (a scrape target never
        // disappears) but every value stays zero.
        assert!(metrics.contains("cc_requests_total 0"), "metrics: {metrics}");
        assert!(
            metrics.contains("cc_request_duration_ns_count{endpoint=\"distance\"} 0"),
            "metrics: {metrics}"
        );
        let stats = body_str(&s.handle(&get("/stats", &[]))).to_owned();
        assert!(stats.contains("\"requests\":0"), "stats: {stats}");
    }

    fn temp_snapshot_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("cc-serve-handler-tests").join(name);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn reload_swaps_the_artifact_and_reports_the_new_identity() {
        let s = state();
        let before = s.generation().info().build_id.clone();

        // A different graph (different seed) at a temp path.
        let next = oracle(24, 77);
        let path = temp_snapshot_dir("swap").join("next.snap");
        std::fs::write(&path, cc_oracle::serde::to_bytes(&next)).unwrap();

        let req = Request {
            method: "POST".into(),
            path: "/reload".into(),
            query: vec![("path".to_owned(), path.display().to_string())],
            body: Vec::new(),
            content_type: None,
            keep_alive: true,
        };
        let resp = s.handle(&req);
        assert_eq!(resp.status, 200, "body: {}", body_str(&resp));
        assert!(body_str(&resp).contains("\"reloaded\":true"));
        let after = s.generation();
        assert_ne!(after.info().build_id, before, "artifact identity must change");
        assert_eq!(after.info().source, path.display().to_string());
        assert_eq!(s.reloads(), 1);
        // Served answers now come from the new artifact.
        let resp = s.handle(&get("/distance", &[("u", "0"), ("v", "5")]));
        let want = next.try_query(0, 5).unwrap().value().unwrap();
        assert!(body_str(&resp).contains(&format!("\"distance\":{want}")));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reload_warms_the_new_cache_from_the_old_one() {
        let s = state();
        // Heat up some pairs on the serving generation.
        let hot = [(0usize, 5usize), (1, 7), (2, 9), (3, 11)];
        for &(u, v) in &hot {
            s.handle(&get("/distance", &[("u", &u.to_string()), ("v", &v.to_string())]));
        }
        let resident = s.generation().descriptor().cache.unwrap().len;
        assert_eq!(resident, hot.len());

        let next = oracle(24, 77);
        let path = temp_snapshot_dir("warm").join("next.snap");
        std::fs::write(&path, cc_oracle::serde::to_bytes(&next)).unwrap();
        let req = Request {
            method: "POST".into(),
            path: "/reload".into(),
            query: vec![("path".to_owned(), path.display().to_string())],
            body: Vec::new(),
            content_type: None,
            keep_alive: true,
        };
        assert_eq!(s.handle(&req).status, 200);

        // The new generation starts with the hot keys resident...
        let generation = s.generation();
        assert_eq!(generation.warmed_keys(), hot.len() as u64);
        assert_eq!(generation.descriptor().cache.unwrap().len, hot.len());
        // ...reported in /stats...
        let stats = body_str(&s.handle(&get("/stats", &[]))).to_owned();
        assert!(stats.contains(&format!("\"warmed_keys\":{}", hot.len())), "stats: {stats}");
        // ...and re-asking a hot pair hits immediately with the NEW
        // artifact's answer.
        let misses_before = s.generation().descriptor().cache.unwrap().misses;
        let resp = s.handle(&get("/distance", &[("u", "0"), ("v", "5")]));
        let want = next.try_query(0, 5).unwrap().value().unwrap();
        assert!(body_str(&resp).contains(&format!("\"distance\":{want}")));
        assert_eq!(s.generation().descriptor().cache.unwrap().misses, misses_before);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn failed_reload_is_400_keeps_old_artifact_and_surfaces_in_stats() {
        let s = state();
        let before = s.generation().info().build_id.clone();
        let answer_before = s.generation().cached().try_query(1, 2).unwrap();

        let path = temp_snapshot_dir("corrupt").join("bad.snap");
        std::fs::write(&path, b"these are not oracle bytes").unwrap();
        let req = Request {
            method: "POST".into(),
            path: "/reload".into(),
            query: vec![("path".to_owned(), path.display().to_string())],
            body: Vec::new(),
            content_type: None,
            keep_alive: true,
        };
        let resp = s.handle(&req);
        assert_eq!(resp.status, 400, "body: {}", body_str(&resp));

        // Old generation untouched, error visible in /stats.
        assert_eq!(s.generation().info().build_id, before);
        assert_eq!(s.generation().cached().try_query(1, 2).unwrap(), answer_before);
        assert_eq!((s.reloads(), s.reload_failures()), (0, 1));
        let stats = body_str(&s.handle(&get("/stats", &[]))).to_owned();
        assert!(stats.contains("\"reload_failures\":1"), "stats: {stats}");
        assert!(stats.contains("\"last_reload_error\":\"reload from"), "stats: {stats}");

        // A later successful reload clears the recorded error.
        let same = oracle(24, 9);
        std::fs::write(&path, cc_oracle::serde::to_bytes(&same)).unwrap();
        let resp = s.handle(&req);
        assert_eq!(resp.status, 200, "body: {}", body_str(&resp));
        let stats = body_str(&s.handle(&get("/stats", &[]))).to_owned();
        assert!(stats.contains("\"last_reload_error\":null"), "stats: {stats}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reload_without_a_source_is_a_400_with_guidance() {
        let s = state();
        let resp = s.handle(&post("/reload", b""));
        assert_eq!(resp.status, 400);
        assert!(body_str(&resp).contains("no reload source"), "body: {}", body_str(&resp));
        assert_eq!(s.handle(&get("/reload", &[])).status, 405, "GET /reload is not allowed");
    }

    #[test]
    fn sharded_distance_and_batch_answer_bit_identically_to_the_monolith() {
        let (mono, s) = sharded_state(25, 3, 3);
        assert!(s.is_sharded());
        for (u, v) in [(0usize, 24usize), (24, 0), (5, 5), (0, 8), (9, 17), (12, 13)] {
            let resp = s.handle(&get("/distance", &[("u", &u.to_string()), ("v", &v.to_string())]));
            assert_eq!(resp.status, 200, "body: {}", body_str(&resp));
            let want =
                mono.try_query(u, v).unwrap().value().map_or("null".to_owned(), |x| x.to_string());
            assert!(
                body_str(&resp).contains(&format!("\"distance\":{want}")),
                "pair ({u},{v}): body {}",
                body_str(&resp)
            );
        }
        // A batch mixing same-shard and cross-shard pairs.
        let resp = s.handle(&post("/batch", b"0 1\n0 24\n20 4\n12 12\n"));
        assert_eq!(resp.status, 200, "body: {}", body_str(&resp));
        let want: Vec<String> = mono
            .try_query_batch(&[(0, 1), (0, 24), (20, 4), (12, 12)])
            .unwrap()
            .iter()
            .map(|d| d.value().map_or("null".into(), |x| x.to_string()))
            .collect();
        assert_eq!(body_str(&resp), format!("{{\"count\":4,\"distances\":[{}]}}", want.join(",")));
        // Out-of-range pairs are 400s through the router too.
        assert_eq!(s.handle(&get("/distance", &[("u", "0"), ("v", "25")])).status, 400);
        assert_eq!(s.handle(&post("/batch", b"0 25\n")).status, 400);
    }

    #[test]
    fn sharded_stats_and_artifact_report_per_shard_identities_and_a_cache() {
        let (mono, s) = sharded_state(25, 3, 3);
        // Repeat a pair: the router-level cache must hit.
        s.handle(&get("/distance", &[("u", "0"), ("v", "24")]));
        s.handle(&get("/distance", &[("u", "0"), ("v", "24")]));
        let stats = body_str(&s.handle(&get("/stats", &[]))).to_owned();
        assert!(stats.contains("\"mode\":\"router\""), "stats: {stats}");
        assert!(stats.contains("\"shard_count\":3"), "stats: {stats}");
        assert!(stats.contains("\"set_uniform\":true"), "stats: {stats}");
        assert!(stats.contains("\"index\":2"), "stats: {stats}");
        assert!(stats.contains("\"hits\":1"), "router cache must count hits: {stats}");
        let set_id = format!("{:016x}", cc_oracle::serde::payload_checksum(&mono));
        assert!(stats.contains(&set_id), "stats must carry the set id: {stats}");

        let artifact = body_str(&s.handle(&get("/artifact", &[]))).to_owned();
        assert!(artifact.contains("\"mode\":\"router\""), "artifact: {artifact}");
        assert!(artifact.contains("\"n\":25"), "artifact: {artifact}");
        assert!(artifact.contains("\"owned_start\":0"), "artifact: {artifact}");
        assert!(artifact.contains("\"owned_len\":9"), "artifact: {artifact}");
        // Per-shard build ids are all distinct (different slices).
        let ids: Vec<&str> = artifact.split("\"build_id\":\"").skip(1).collect();
        assert_eq!(ids.len(), 3, "artifact: {artifact}");
        assert_ne!(ids[0][..16], ids[1][..16], "artifact: {artifact}");
    }

    #[test]
    fn sharded_reload_swaps_one_shard_and_rejects_bad_requests() {
        let (mono, s) = sharded_state(25, 3, 3);
        let dir = temp_snapshot_dir("shard-reload");
        let paths = source::write_shard_snapshots(&mono, 3, &dir).unwrap();

        // Reload shard 1 from an explicit path: only its identity moves.
        let before: Vec<String> =
            s.generation().shard_infos().iter().map(|i| i.source.clone()).collect();
        let req = Request {
            method: "POST".into(),
            path: "/reload".into(),
            query: vec![
                ("shard".to_owned(), "1".to_owned()),
                ("path".to_owned(), paths[1].display().to_string()),
            ],
            body: Vec::new(),
            content_type: None,
            keep_alive: true,
        };
        let resp = s.handle(&req);
        assert_eq!(resp.status, 200, "body: {}", body_str(&resp));
        assert!(body_str(&resp).contains("\"shard\":1"));
        let after: Vec<String> =
            s.generation().shard_infos().iter().map(|i| i.source.clone()).collect();
        assert_eq!(after[0], before[0]);
        assert_ne!(after[1], before[1]);
        assert_eq!(after[2], before[2]);
        assert_eq!(s.reloads(), 1);

        // Having been loaded from a file once, shard 1 now has a default
        // reload source: /reload?shard=1 without a path works.
        let req = Request {
            method: "POST".into(),
            path: "/reload".into(),
            query: vec![("shard".to_owned(), "1".to_owned())],
            body: Vec::new(),
            content_type: None,
            keep_alive: true,
        };
        assert_eq!(s.handle(&req).status, 200);
        assert_eq!(s.reloads(), 2);

        // Shard 0's file into slot 2: index mismatch, 400, nothing swapped.
        let req = Request {
            method: "POST".into(),
            path: "/reload".into(),
            query: vec![
                ("shard".to_owned(), "2".to_owned()),
                ("path".to_owned(), paths[0].display().to_string()),
            ],
            body: Vec::new(),
            content_type: None,
            keep_alive: true,
        };
        let resp = s.handle(&req);
        assert_eq!(resp.status, 400, "body: {}", body_str(&resp));
        assert!(body_str(&resp).contains("declares index 0"), "body: {}", body_str(&resp));
        assert_eq!(s.reload_failures(), 1);

        // Out-of-range shard index and garbage index are 400s.
        for bad in ["9", "x"] {
            let req = Request {
                method: "POST".into(),
                path: "/reload".into(),
                query: vec![("shard".to_owned(), bad.to_owned())],
                body: Vec::new(),
                content_type: None,
                keep_alive: true,
            };
            assert_eq!(s.handle(&req).status, 400, "shard='{bad}' must be rejected");
        }

        // Queries still answer identically to the monolith afterwards.
        for (u, v) in [(0usize, 24usize), (10, 3)] {
            let resp = s.handle(&get("/distance", &[("u", &u.to_string()), ("v", &v.to_string())]));
            let want = mono.try_query(u, v).unwrap().value().unwrap();
            assert!(body_str(&resp).contains(&format!("\"distance\":{want}")));
        }
        for p in paths {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn mono_reload_rejects_shard_parameter_and_vice_versa() {
        let s = state();
        let req = Request {
            method: "POST".into(),
            path: "/reload".into(),
            query: vec![("shard".to_owned(), "0".to_owned())],
            body: Vec::new(),
            content_type: None,
            keep_alive: true,
        };
        let resp = s.handle(&req);
        assert_eq!(resp.status, 400);
        assert!(body_str(&resp).contains("no 'shard' parameter"), "body: {}", body_str(&resp));

        // In-process sharded state has no files: a shard reload without a
        // path explains, and a bare /reload names the missing source.
        let (_, sharded) = sharded_state(25, 3, 2);
        let req = Request {
            method: "POST".into(),
            path: "/reload".into(),
            query: vec![("shard".to_owned(), "0".to_owned())],
            body: Vec::new(),
            content_type: None,
            keep_alive: true,
        };
        let resp = sharded.handle(&req);
        assert_eq!(resp.status, 400);
        assert!(body_str(&resp).contains("no default snapshot file"), "body: {}", body_str(&resp));
        let resp = sharded.handle(&post("/reload", b""));
        assert_eq!(resp.status, 400);
        assert!(body_str(&resp).contains("no reload source"), "body: {}", body_str(&resp));
    }

    #[test]
    fn manifest_reload_can_change_mode_and_capacity() {
        // Start monolithic from a manifest, then edit the manifest to a
        // 2-shard set of a different build: one bare /reload moves the
        // server across modes atomically.
        let dir = temp_snapshot_dir("manifest-reload");
        let mono = oracle(20, 9);
        let snap = dir.join("mono.snap");
        std::fs::write(&snap, cc_oracle::serde::to_bytes(&mono)).unwrap();
        let manifest = dir.join("set.toml");
        std::fs::write(&manifest, "mode = \"mono\"\nsnapshot = \"mono.snap\"\n").unwrap();

        let spec = BackendSpec::from_manifest(&manifest).unwrap();
        let s = AppState::from_spec(spec, 256).unwrap();
        assert!(!s.is_sharded());

        let next = oracle(20, 31);
        source::write_shard_snapshots(&next, 2, &dir).unwrap();
        std::fs::write(
            &manifest,
            format!(
                "mode = \"sharded\"\nshards = [\"shard-0.snap\", \"shard-1.snap\"]\n\
                 set_id = \"{:016x}\"\ncache_capacity = 64\n",
                cc_oracle::serde::payload_checksum(&next)
            ),
        )
        .unwrap();
        let resp = s.handle(&post("/reload", b""));
        assert_eq!(resp.status, 200, "body: {}", body_str(&resp));
        assert!(s.is_sharded());
        assert_eq!(s.reloads(), 2, "a 2-shard roll books two swaps");
        let stats = body_str(&s.handle(&get("/stats", &[]))).to_owned();
        assert!(stats.contains("\"mode\":\"router\""), "stats: {stats}");
        assert!(stats.contains("\"capacity\":64"), "manifest capacity must apply: {stats}");

        // A manifest-declared capacity is the new default: a later
        // single-shard reload must not silently revert it.
        let shard_path = dir.join("shard-0.snap");
        let req = Request {
            method: "POST".into(),
            path: "/reload".into(),
            query: vec![
                ("shard".to_owned(), "0".to_owned()),
                ("path".to_owned(), shard_path.display().to_string()),
            ],
            body: Vec::new(),
            content_type: None,
            keep_alive: true,
        };
        assert_eq!(s.handle(&req).status, 200);
        let stats = body_str(&s.handle(&get("/stats", &[]))).to_owned();
        assert!(
            stats.contains("\"capacity\":64"),
            "manifest capacity must survive a shard reload: {stats}"
        );

        // A bare /reload with a path parameter on a routed set is a 400,
        // not a silent reload of the default source.
        let req = Request {
            method: "POST".into(),
            path: "/reload".into(),
            query: vec![("path".to_owned(), shard_path.display().to_string())],
            body: Vec::new(),
            content_type: None,
            keep_alive: true,
        };
        let resp = s.handle(&req);
        assert_eq!(resp.status, 400, "body: {}", body_str(&resp));
        assert!(body_str(&resp).contains("shard=i&path="), "body: {}", body_str(&resp));

        // A wrong set id in the manifest is a rejected reload, old set
        // keeps serving.
        std::fs::write(
            &manifest,
            "mode = \"sharded\"\nshards = [\"shard-0.snap\", \"shard-1.snap\"]\n\
             set_id = \"00000000deadbeef\"\n",
        )
        .unwrap();
        let resp = s.handle(&post("/reload", b""));
        assert_eq!(resp.status, 400, "body: {}", body_str(&resp));
        assert!(body_str(&resp).contains("expects set_id"), "body: {}", body_str(&resp));
        assert!(s.is_sharded());
        assert_eq!(s.reload_failures(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn explicit_path_reload_respects_the_manifest_set_id_pin() {
        let dir = temp_snapshot_dir("pin");
        let pinned = oracle(20, 9);
        let snap = dir.join("pinned.snap");
        std::fs::write(&snap, cc_oracle::serde::to_bytes(&pinned)).unwrap();
        let manifest = dir.join("mono.toml");
        std::fs::write(
            &manifest,
            format!(
                "mode = \"mono\"\nsnapshot = \"pinned.snap\"\nset_id = \"{:016x}\"\n",
                cc_oracle::serde::payload_checksum(&pinned)
            ),
        )
        .unwrap();
        let s = AppState::from_spec(BackendSpec::from_manifest(&manifest).unwrap(), 256).unwrap();

        // An explicit-path reload naming a different build is rejected by
        // the pin; the pinned artifact keeps serving.
        let other = oracle(20, 31);
        let other_path = dir.join("other.snap");
        std::fs::write(&other_path, cc_oracle::serde::to_bytes(&other)).unwrap();
        let req = Request {
            method: "POST".into(),
            path: "/reload".into(),
            query: vec![("path".to_owned(), other_path.display().to_string())],
            body: Vec::new(),
            content_type: None,
            keep_alive: true,
        };
        let resp = s.handle(&req);
        assert_eq!(resp.status, 400, "body: {}", body_str(&resp));
        assert!(body_str(&resp).contains("pinned set_id"), "body: {}", body_str(&resp));
        assert_eq!(s.reload_failures(), 1);
        let expected = format!("{:016x}", cc_oracle::serde::payload_checksum(&pinned));
        assert_eq!(s.generation().info().build_id, expected);

        // The pinned build itself reloads fine by explicit path too.
        let req = Request {
            method: "POST".into(),
            path: "/reload".into(),
            query: vec![("path".to_owned(), snap.display().to_string())],
            body: Vec::new(),
            content_type: None,
            keep_alive: true,
        };
        assert_eq!(s.handle(&req).status, 200);
        std::fs::remove_dir_all(&dir).ok();
    }
}
