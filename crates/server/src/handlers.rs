//! Routing and endpoint handlers: pure functions from a parsed [`Request`]
//! to a [`Response`], so every route is unit-testable without a socket.
//!
//! All id validation goes through the oracle's **fallible** query API
//! (`try_query` / `try_query_batch`): a malformed or out-of-range request is
//! a `400` at the edge, never a panic inside the serving process.
//!
//! The server runs in one of two tiers behind the same endpoints:
//!
//! * **monolithic** — one [`DistanceOracle`] behind a cache, behind a
//!   [`ReloadHandle`];
//! * **router** — a sharded artifact set: one `ReloadHandle<ShardGeneration>`
//!   **per shard**, each query answered by fetching the two half-results
//!   from the shards owning its endpoints and combining them exactly as the
//!   monolithic query kernel does ([`cc_oracle::shard::combine`]), so the
//!   router's answers are bit-identical to the monolith's.
//!
//! Every request clones the relevant generation(s) (an `Arc` refcount bump
//! each) and answers entirely on those clones, so `POST /reload` — whole
//! artifact in monolithic mode, a single shard via `?shard=i` in router
//! mode — can validate and swap a new snapshot while traffic is in flight:
//! old requests finish on the old artifact, new requests see the new one,
//! and a reload that fails validation changes nothing except the error
//! surfaced in `/stats`.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use cc_matrix::Dist;
use cc_oracle::shard::{combine, validate_set, ShardPlan};
use cc_oracle::{DistanceOracle, OracleError};

use crate::http::{json_escape, Request, Response};
use crate::reload::{Generation, ReloadHandle, ShardGeneration, SnapshotInfo};
use crate::source::{self, LoadedShard};

/// What a successful reload installed, captured atomically with the swap —
/// a response built from this cannot mix in state from a concurrent later
/// reload.
#[derive(Debug, Clone)]
pub struct ReloadOutcome {
    /// Identity of the artifact that was swapped in.
    pub info: SnapshotInfo,
    /// Node count of the artifact that was swapped in.
    pub n: usize,
    /// Successful-swap count as of this swap (this reload included).
    pub reloads: u64,
}

/// The router tier: the recomputed [`ShardPlan`] plus one independently
/// hot-swappable generation per shard. `paths[i]` is shard `i`'s default
/// reload source (its own snapshot file).
struct ShardTier {
    plan: ShardPlan,
    handles: Vec<ReloadHandle<ShardGeneration>>,
    paths: Vec<Option<PathBuf>>,
}

impl ShardTier {
    /// The two-half-query routed lookup; answers are bit-identical to the
    /// monolithic oracle the set was partitioned from.
    fn try_query(&self, u: usize, v: usize) -> Result<Dist, OracleError> {
        let n = self.plan.n();
        if u >= n || v >= n {
            return Err(OracleError::QueryOutOfRange { u, v, n });
        }
        if u == v {
            return Ok(Dist::ZERO);
        }
        let near = self.handles[self.plan.owner(u)].current();
        let far = self.handles[self.plan.owner(v)].current();
        Ok(combine(near.shard().half_query(u, v), far.shard().half_query(v, u)))
    }

    /// Batch lookup in request order; validates every pair up front like
    /// the monolithic batch path. The shard generations are snapshotted
    /// **once** for the whole batch — no per-pair lock traffic on the
    /// reload handles, and every answer in one batch comes from one
    /// consistent set even while a shard reload lands mid-batch.
    fn try_query_batch(&self, pairs: &[(usize, usize)]) -> Result<Vec<Dist>, OracleError> {
        let n = self.plan.n();
        for &(u, v) in pairs {
            if u >= n || v >= n {
                return Err(OracleError::QueryOutOfRange { u, v, n });
            }
        }
        let generations = self.generations();
        Ok(pairs
            .iter()
            .map(|&(u, v)| {
                if u == v {
                    return Dist::ZERO;
                }
                let near = generations[self.plan.owner(u)].shard();
                let far = generations[self.plan.owner(v)].shard();
                combine(near.half_query(u, v), far.half_query(v, u))
            })
            .collect())
    }

    /// Current generations of all shards, in index order.
    fn generations(&self) -> Vec<Arc<ShardGeneration>> {
        self.handles.iter().map(ReloadHandle::current).collect()
    }
}

/// Which serving tier this process runs.
enum Serving {
    Mono { handle: ReloadHandle, reload_path: Option<PathBuf> },
    Sharded(ShardTier),
}

/// Shared per-server state: the hot-swappable serving generation(s) plus
/// request counters.
pub struct AppState {
    serving: Serving,
    cache_capacity: usize,
    /// Serializes load+swap so overlapping reloads apply in a definite
    /// order; never held by the request path.
    reload_lock: Mutex<()>,
    last_reload_error: Mutex<Option<String>>,
    started: Instant,
    requests: AtomicU64,
    distance_requests: AtomicU64,
    batch_requests: AtomicU64,
    batch_pairs: AtomicU64,
    client_errors: AtomicU64,
    load_shed: AtomicU64,
    reload_requests: AtomicU64,
    reloads: AtomicU64,
    reload_failures: AtomicU64,
}

impl AppState {
    /// Wraps an in-process-built `oracle` for serving, with an LRU result
    /// cache of `cache_capacity` entries and no default reload source.
    pub fn new(oracle: DistanceOracle, cache_capacity: usize) -> AppState {
        let info = SnapshotInfo::in_process(&oracle, "in-process");
        AppState::with_info(oracle, info, cache_capacity, None)
    }

    /// [`AppState::new`] with an explicit artifact identity and a default
    /// snapshot path for `POST /reload` / SIGHUP.
    pub fn with_info(
        oracle: DistanceOracle,
        info: SnapshotInfo,
        cache_capacity: usize,
        reload_path: Option<PathBuf>,
    ) -> AppState {
        let cache_capacity = cache_capacity.max(1);
        let handle = ReloadHandle::new(Generation::new(oracle, info, cache_capacity));
        AppState::from_serving(Serving::Mono { handle, reload_path }, cache_capacity)
    }

    /// Router-mode state over a loaded shard set (slot `i` = shard `i`).
    /// The set is re-validated here ([`validate_set`]), so an inconsistent
    /// or mis-slotted set can never start serving.
    ///
    /// # Errors
    ///
    /// Everything [`validate_set`] rejects.
    pub fn with_shards(shards: Vec<LoadedShard>) -> Result<AppState, OracleError> {
        // Validate by reference — cloning the set (each slice carries the
        // replicated column matrix) would double peak memory at startup.
        let refs: Vec<&cc_oracle::OracleShard> = shards.iter().map(|l| &l.shard).collect();
        let plan = validate_set(&refs)?;
        let mut handles = Vec::with_capacity(shards.len());
        let mut paths = Vec::with_capacity(shards.len());
        for loaded in shards {
            handles.push(ReloadHandle::new(ShardGeneration::new(loaded.shard, loaded.info)));
            paths.push(Some(loaded.path));
        }
        let tier = ShardTier { plan, handles, paths };
        Ok(AppState::from_serving(Serving::Sharded(tier), 1))
    }

    /// Router-mode state over in-process shard slices (no backing files),
    /// for tests and benchmarks that partition an oracle directly.
    ///
    /// # Errors
    ///
    /// Everything [`validate_set`] rejects.
    pub fn with_in_process_shards(
        shards: Vec<cc_oracle::OracleShard>,
    ) -> Result<AppState, OracleError> {
        let plan = validate_set(&shards)?;
        let mut handles = Vec::with_capacity(shards.len());
        let mut paths = Vec::with_capacity(shards.len());
        for shard in shards {
            let info = SnapshotInfo::in_process_shard(&shard, "in-process");
            handles.push(ReloadHandle::new(ShardGeneration::new(shard, info)));
            paths.push(None);
        }
        Ok(AppState::from_serving(Serving::Sharded(ShardTier { plan, handles, paths }), 1))
    }

    fn from_serving(serving: Serving, cache_capacity: usize) -> AppState {
        AppState {
            serving,
            cache_capacity,
            reload_lock: Mutex::new(()),
            last_reload_error: Mutex::new(None),
            started: Instant::now(),
            requests: AtomicU64::new(0),
            distance_requests: AtomicU64::new(0),
            batch_requests: AtomicU64::new(0),
            batch_pairs: AtomicU64::new(0),
            client_errors: AtomicU64::new(0),
            load_shed: AtomicU64::new(0),
            reload_requests: AtomicU64::new(0),
            reloads: AtomicU64::new(0),
            reload_failures: AtomicU64::new(0),
        }
    }

    /// True when this state routes over a shard set.
    pub fn is_sharded(&self) -> bool {
        matches!(self.serving, Serving::Sharded(_))
    }

    /// The generation serving right now (artifact + cache + identity). The
    /// clone is an `Arc` refcount bump; holders keep the artifact alive
    /// across a concurrent reload.
    ///
    /// # Panics
    ///
    /// Panics in router mode, which has no monolithic generation — use
    /// [`AppState::shard_generations`] there.
    pub fn generation(&self) -> Arc<Generation> {
        match &self.serving {
            Serving::Mono { handle, .. } => handle.current(),
            Serving::Sharded(_) => panic!("router mode serves shards, not one generation"),
        }
    }

    /// The per-shard generations serving right now, in index order (empty
    /// in monolithic mode).
    pub fn shard_generations(&self) -> Vec<Arc<ShardGeneration>> {
        match &self.serving {
            Serving::Mono { .. } => Vec::new(),
            Serving::Sharded(tier) => tier.generations(),
        }
    }

    /// Successful hot-reload swaps so far (one per shard swapped in router
    /// mode).
    pub fn reloads(&self) -> u64 {
        self.reloads.load(Ordering::Relaxed)
    }

    /// Reload attempts rejected by validation (the old artifact kept
    /// serving each time).
    pub fn reload_failures(&self) -> u64 {
        self.reload_failures.load(Ordering::Relaxed)
    }

    fn record_reload_failure(&self, msg: String) -> String {
        self.reload_failures.fetch_add(1, Ordering::Relaxed);
        *self.last_reload_error.lock().expect("reload error lock") = Some(msg.clone());
        msg
    }

    fn record_reload_success(&self) -> u64 {
        let swaps = self.reloads.fetch_add(1, Ordering::Relaxed) + 1;
        *self.last_reload_error.lock().expect("reload error lock") = None;
        swaps
    }

    /// Loads + validates the **monolithic** snapshot at `path` and, only
    /// if it is fully valid, swaps it in atomically. On any failure the
    /// serving generation is untouched and the error is recorded for
    /// `/stats`.
    ///
    /// The load happens on the calling thread without blocking the request
    /// path: queries keep cloning the old generation until the one-pointer
    /// swap.
    ///
    /// # Errors
    ///
    /// The human-readable reason the snapshot was rejected (I/O, magic,
    /// version, checksum, structure), or that this server runs in router
    /// mode (reload a shard instead).
    pub fn reload_from(&self, path: &Path) -> Result<ReloadOutcome, String> {
        let _serialized = self.reload_lock.lock().expect("reload lock poisoned");
        let Serving::Mono { handle, .. } = &self.serving else {
            return Err(self.record_reload_failure(
                "this server routes a shard set: reload one shard with /reload?shard=i".to_owned(),
            ));
        };
        match source::load_snapshot(path) {
            Ok(loaded) => {
                let n = loaded.oracle.n();
                let info = loaded.info.clone();
                handle.swap(Generation::new(loaded.oracle, loaded.info, self.cache_capacity));
                Ok(ReloadOutcome { info, n, reloads: self.record_reload_success() })
            }
            Err(e) => {
                Err(self
                    .record_reload_failure(format!("reload from {} rejected: {e}", path.display())))
            }
        }
    }

    /// Reloads shard `index` from `path` (router mode): the file must be a
    /// valid per-shard snapshot declaring exactly this slot and the tier's
    /// shard count and `n`; the swap is atomic and every other shard keeps
    /// serving untouched. A new set id is allowed — that is how a rolling
    /// rollout moves the set to a new artifact generation one shard at a
    /// time (`/stats` reports `set_uniform` so the roll's progress is
    /// observable).
    ///
    /// # Errors
    ///
    /// The human-readable rejection reason; the old shard keeps serving.
    pub fn reload_shard_from(&self, index: usize, path: &Path) -> Result<ReloadOutcome, String> {
        let _serialized = self.reload_lock.lock().expect("reload lock poisoned");
        let Serving::Sharded(tier) = &self.serving else {
            return Err(self.record_reload_failure(
                "this server is monolithic: /reload takes no shard parameter".to_owned(),
            ));
        };
        let count = tier.handles.len();
        if index >= count {
            return Err(
                self.record_reload_failure(format!("shard index {index} outside 0..{count}"))
            );
        }
        match source::load_shard(path, index, count) {
            Ok(loaded) if loaded.shard.n() != tier.plan.n() => {
                Err(self.record_reload_failure(format!(
                    "reload of shard {index} from {} rejected: n = {} but the serving set \
                     has n = {} (a sharded artifact cannot change n shard-by-shard)",
                    path.display(),
                    loaded.shard.n(),
                    tier.plan.n()
                )))
            }
            Ok(loaded) => {
                let info = loaded.info.clone();
                let n = loaded.shard.n();
                tier.handles[index].swap(ShardGeneration::new(loaded.shard, loaded.info));
                Ok(ReloadOutcome { info, n, reloads: self.record_reload_success() })
            }
            Err(e) => Err(self.record_reload_failure(format!(
                "reload of shard {index} from {} rejected: {e}",
                path.display()
            ))),
        }
    }

    /// [`AppState::reload_from`] against the configured default source;
    /// this is what SIGHUP triggers in the `cc-serve` binary. In router
    /// mode this reloads **every** shard from its own snapshot file,
    /// validating each before any is swapped (all-or-nothing).
    ///
    /// # Errors
    ///
    /// As [`AppState::reload_from`], plus when no default source is
    /// configured.
    pub fn reload_default(&self) -> Result<ReloadOutcome, String> {
        match &self.serving {
            Serving::Mono { reload_path, .. } => match reload_path.clone() {
                Some(path) => self.reload_from(&path),
                None => Err(self.record_reload_failure(
                    "no reload source configured: start with --snapshot or \
                     pass an explicit path"
                        .to_owned(),
                )),
            },
            Serving::Sharded(_) => self.reload_all_shards(),
        }
    }

    /// Reloads every shard from its default path, all-or-nothing: the full
    /// replacement set is loaded and validated as one consistent set
    /// before the first swap, so a half-written rollout can never leave
    /// the tier mixed by accident.
    ///
    /// # Errors
    ///
    /// The first rejection reason; nothing was swapped.
    pub fn reload_all_shards(&self) -> Result<ReloadOutcome, String> {
        let _serialized = self.reload_lock.lock().expect("reload lock poisoned");
        let Serving::Sharded(tier) = &self.serving else {
            return Err(self.record_reload_failure(
                "this server is monolithic: use /reload without shard semantics".to_owned(),
            ));
        };
        let mut paths = Vec::with_capacity(tier.paths.len());
        for (i, path) in tier.paths.iter().enumerate() {
            match path {
                Some(p) => paths.push(p.clone()),
                None => {
                    return Err(self.record_reload_failure(format!(
                        "shard {i} has no snapshot file to reload from \
                         (served from an in-process partition)"
                    )))
                }
            }
        }
        match source::load_shard_set(&paths) {
            Ok(loaded) if loaded[0].shard.n() != tier.plan.n() => {
                Err(self.record_reload_failure(format!(
                    "full-set reload rejected: n = {} but the serving set has n = {} \
                     (restart to change the graph size)",
                    loaded[0].shard.n(),
                    tier.plan.n()
                )))
            }
            Ok(loaded) => {
                let mut swaps = 0;
                let info = loaded[0].info.clone();
                let n = loaded[0].shard.n();
                for (handle, shard) in tier.handles.iter().zip(loaded) {
                    handle.swap(ShardGeneration::new(shard.shard, shard.info));
                    swaps = self.record_reload_success();
                }
                Ok(ReloadOutcome { info, n, reloads: swaps })
            }
            Err(e) => Err(self.record_reload_failure(format!("full-set reload rejected: {e}"))),
        }
    }

    /// Total requests routed so far (any endpoint, any outcome).
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Records a 4xx produced below the router (protocol parse errors).
    pub fn count_protocol_error(&self) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.client_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a connection shed with `503` at the acceptor (queue full),
    /// so `/stats` stays honest under the exact overload it diagnoses.
    pub fn count_load_shed(&self) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.load_shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Routes one request and maintains the counters.
    pub fn handle(&self, req: &Request) -> Response {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let resp = self.route(req);
        if (400..500).contains(&resp.status) {
            self.client_errors.fetch_add(1, Ordering::Relaxed);
        }
        resp
    }

    fn route(&self, req: &Request) -> Response {
        match (req.method.as_str(), req.path.as_str()) {
            ("GET", "/healthz") => Response::text(200, "ok\n"),
            ("GET", "/distance") => self.distance(req),
            ("POST", "/batch") => self.batch(req),
            ("POST", "/reload") => self.reload(req),
            ("GET", "/stats") => self.stats(),
            ("GET", "/artifact") => self.artifact(),
            (_, "/healthz" | "/distance" | "/batch" | "/stats" | "/artifact" | "/reload") => {
                Response::error_json(405, format!("method {} not allowed here", req.method))
            }
            _ => Response::error_json(404, format!("no route for '{}'", req.path)),
        }
    }

    fn try_query(&self, u: usize, v: usize) -> Result<Dist, OracleError> {
        match &self.serving {
            Serving::Mono { handle, .. } => handle.current().cached().try_query(u, v),
            Serving::Sharded(tier) => tier.try_query(u, v),
        }
    }

    fn try_query_batch(&self, pairs: &[(usize, usize)]) -> Result<Vec<Dist>, OracleError> {
        match &self.serving {
            Serving::Mono { handle, .. } => handle.current().cached().try_query_batch(pairs),
            Serving::Sharded(tier) => tier.try_query_batch(pairs),
        }
    }

    /// `GET /distance?u=&v=` — one pair, through the cached oracle
    /// (monolithic) or the two owning shards (router).
    fn distance(&self, req: &Request) -> Response {
        self.distance_requests.fetch_add(1, Ordering::Relaxed);
        let (u, v) = match (parse_id(req, "u"), parse_id(req, "v")) {
            (Ok(u), Ok(v)) => (u, v),
            (Err(resp), _) | (_, Err(resp)) => return resp,
        };
        match self.try_query(u, v) {
            Ok(d) => Response::json(
                200,
                format!(
                    "{{\"u\":{u},\"v\":{v},\"distance\":{},\"connected\":{}}}",
                    dist_json(d),
                    d.is_finite()
                ),
            ),
            // QueryOutOfRange is the only query error today; any future
            // variant is still a client-input problem by construction here.
            Err(e) => Response::error_json(400, e.to_string()),
        }
    }

    /// `POST /batch` — newline-separated `u v` (or `u,v`) pairs.
    fn batch(&self, req: &Request) -> Response {
        self.batch_requests.fetch_add(1, Ordering::Relaxed);
        let Ok(text) = std::str::from_utf8(&req.body) else {
            return Response::error_json(400, "batch body must be UTF-8");
        };
        let mut pairs: Vec<(usize, usize)> = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let mut ids =
                line.split(|c: char| c == ',' || c.is_whitespace()).filter(|t| !t.is_empty());
            let pair = match (ids.next(), ids.next(), ids.next()) {
                (Some(a), Some(b), None) => a.parse().ok().zip(b.parse().ok()),
                _ => None,
            };
            match pair {
                Some(p) => pairs.push(p),
                None => {
                    return Response::error_json(
                        400,
                        format!("line {}: expected 'u v', got '{line}'", lineno + 1),
                    )
                }
            }
        }
        self.batch_pairs.fetch_add(pairs.len() as u64, Ordering::Relaxed);
        match self.try_query_batch(&pairs) {
            Ok(answers) => {
                let mut body = String::with_capacity(16 + answers.len() * 8);
                body.push_str("{\"count\":");
                body.push_str(&answers.len().to_string());
                body.push_str(",\"distances\":[");
                for (i, d) in answers.iter().enumerate() {
                    if i > 0 {
                        body.push(',');
                    }
                    body.push_str(&dist_json(*d));
                }
                body.push_str("]}");
                Response::json(200, body)
            }
            Err(e) => Response::error_json(400, e.to_string()),
        }
    }

    /// `POST /reload[?path=...][&shard=i]` — load, validate, and atomically
    /// swap in a new snapshot. Monolithic mode swaps the whole artifact;
    /// router mode swaps shard `i` (or, with no `shard` parameter, rolls
    /// the full set from each shard's own file). A rejected snapshot
    /// answers `400` and leaves the old generation(s) serving.
    fn reload(&self, req: &Request) -> Response {
        self.reload_requests.fetch_add(1, Ordering::Relaxed);
        match &self.serving {
            Serving::Mono { .. } => {
                if req.param("shard").is_some() {
                    return Response::error_json(
                        400,
                        "this server is monolithic: /reload takes no 'shard' parameter",
                    );
                }
                let outcome = match req.param("path") {
                    Some(p) if !p.is_empty() => self.reload_from(Path::new(p)),
                    _ => self.reload_default(),
                };
                match outcome {
                    Ok(outcome) => Response::json(
                        200,
                        format!(
                            "{{\"reloaded\":true,\"snapshot\":{},\"n\":{},\"reloads\":{}}}",
                            snapshot_json(&outcome.info),
                            outcome.n,
                            outcome.reloads,
                        ),
                    ),
                    // The serving process is healthy and still answering on
                    // the old artifact — the *request* failed: 4xx, not 5xx.
                    Err(msg) => Response::error_json(400, msg),
                }
            }
            Serving::Sharded(tier) => match req.param("shard") {
                Some(raw) => {
                    let Ok(index) = raw.parse::<usize>() else {
                        return Response::error_json(
                            400,
                            format!("parameter 'shard' must be a shard index, got '{raw}'"),
                        );
                    };
                    // Bounds-check before resolving the path: an
                    // out-of-range index must name the real problem (and
                    // land in reload_failures for monitoring), not claim a
                    // missing default path.
                    if index >= tier.handles.len() {
                        return Response::error_json(
                            400,
                            self.record_reload_failure(format!(
                                "shard index {index} outside 0..{}",
                                tier.handles.len()
                            )),
                        );
                    }
                    let path = match req.param("path") {
                        Some(p) if !p.is_empty() => PathBuf::from(p),
                        _ => match tier.paths[index].clone() {
                            Some(p) => p,
                            None => {
                                return Response::error_json(
                                    400,
                                    format!(
                                        "shard {index} has no default snapshot file; \
                                         pass /reload?shard={index}&path=FILE"
                                    ),
                                )
                            }
                        },
                    };
                    match self.reload_shard_from(index, &path) {
                        Ok(outcome) => Response::json(
                            200,
                            format!(
                                "{{\"reloaded\":true,\"shard\":{index},\"snapshot\":{},\
                                 \"reloads\":{}}}",
                                snapshot_json(&outcome.info),
                                outcome.reloads,
                            ),
                        ),
                        Err(msg) => Response::error_json(400, msg),
                    }
                }
                None => match self.reload_all_shards() {
                    Ok(outcome) => Response::json(
                        200,
                        format!(
                            "{{\"reloaded\":true,\"shards\":{},\"reloads\":{}}}",
                            tier.handles.len(),
                            outcome.reloads,
                        ),
                    ),
                    Err(msg) => Response::error_json(400, msg),
                },
            },
        }
    }

    /// `GET /stats` — request counters plus the per-tier serving state:
    /// cache effectiveness and the active snapshot (monolithic), or the
    /// per-shard build ids and whether the set is uniform (router).
    fn stats(&self) -> Response {
        let common = format!(
            "\"requests\":{},\"distance_requests\":{},\"batch_requests\":{},\
             \"batch_pairs\":{},\"client_errors\":{},\"load_shed\":{},\
             \"uptime_secs\":{:.3}",
            self.requests.load(Ordering::Relaxed),
            self.distance_requests.load(Ordering::Relaxed),
            self.batch_requests.load(Ordering::Relaxed),
            self.batch_pairs.load(Ordering::Relaxed),
            self.client_errors.load(Ordering::Relaxed),
            self.load_shed.load(Ordering::Relaxed),
            self.started.elapsed().as_secs_f64(),
        );
        let reload_block = format!(
            "\"reload_requests\":{},\"reloads\":{},\"reload_failures\":{},\
             \"last_reload_error\":{}",
            self.reload_requests.load(Ordering::Relaxed),
            self.reloads(),
            self.reload_failures(),
            self.last_reload_error
                .lock()
                .expect("reload error lock")
                .as_ref()
                .map_or("null".to_owned(), |e| format!("\"{}\"", json_escape(e))),
        );
        match &self.serving {
            Serving::Mono { handle, .. } => {
                let generation = handle.current();
                let cache = generation.cached().stats();
                Response::json(
                    200,
                    format!(
                        "{{{common},\"mode\":\"mono\",\"snapshot\":{},{reload_block},\
                         \"cache\":{{\"hits\":{},\"misses\":{},\"hit_rate\":{:.4},\
                         \"len\":{},\"capacity\":{}}}}}",
                        snapshot_json(generation.info()),
                        cache.hits,
                        cache.misses,
                        cache.hit_rate(),
                        cache.len,
                        cache.capacity,
                    ),
                )
            }
            Serving::Sharded(tier) => {
                let generations = tier.generations();
                let set_uniform =
                    generations.windows(2).all(|w| w[0].shard().set_id() == w[1].shard().set_id());
                let shards: Vec<String> = generations
                    .iter()
                    .map(|g| {
                        format!(
                            "{{\"index\":{},\"set_build_id\":\"{:016x}\",\"snapshot\":{}}}",
                            g.shard().index(),
                            g.shard().set_id(),
                            snapshot_json(g.info()),
                        )
                    })
                    .collect();
                Response::json(
                    200,
                    format!(
                        "{{{common},\"mode\":\"router\",\"shard_count\":{},\
                         \"set_uniform\":{set_uniform},\"shards\":[{}],{reload_block}}}",
                        generations.len(),
                        shards.join(","),
                    ),
                )
            }
        }
    }

    /// `GET /artifact` — what is being served, where it came from, and its
    /// guarantee; per-shard identities in router mode.
    fn artifact(&self) -> Response {
        match &self.serving {
            Serving::Mono { handle, .. } => {
                let generation = handle.current();
                let o = generation.oracle();
                Response::json(
                    200,
                    format!(
                        "{{\"mode\":\"mono\",\"n\":{},\"k\":{},\"epsilon\":{},\"landmarks\":{},\
                         \"artifact_bytes\":{},\"stretch_bound\":{},\"build_rounds\":{},\
                         \"seed\":{},\"snapshot\":{},\"reloads\":{}}}",
                        o.n(),
                        o.k(),
                        o.epsilon(),
                        o.landmarks().len(),
                        o.artifact_bytes(),
                        o.stretch_bound(),
                        o.build_rounds(),
                        o.seed(),
                        snapshot_json(generation.info()),
                        self.reloads(),
                    ),
                )
            }
            Serving::Sharded(tier) => {
                let generations = tier.generations();
                let first = generations[0].shard();
                let total_bytes: usize =
                    generations.iter().map(|g| g.shard().artifact_bytes()).sum();
                let shards: Vec<String> = generations
                    .iter()
                    .map(|g| {
                        let s = g.shard();
                        format!(
                            "{{\"index\":{},\"owned_start\":{},\"owned_len\":{},\
                             \"artifact_bytes\":{},\"set_build_id\":\"{:016x}\",\
                             \"snapshot\":{}}}",
                            s.index(),
                            s.owned().start,
                            s.owned().len(),
                            s.artifact_bytes(),
                            s.set_id(),
                            snapshot_json(g.info()),
                        )
                    })
                    .collect();
                Response::json(
                    200,
                    format!(
                        "{{\"mode\":\"router\",\"n\":{},\"k\":{},\"epsilon\":{},\
                         \"landmarks\":{},\"shard_count\":{},\"artifact_bytes\":{},\
                         \"stretch_bound\":{},\"shards\":[{}],\"reloads\":{}}}",
                        first.n(),
                        first.k(),
                        first.epsilon(),
                        first.landmarks().len(),
                        generations.len(),
                        total_bytes,
                        first.stretch_bound(),
                        shards.join(","),
                        self.reloads(),
                    ),
                )
            }
        }
    }
}

/// Renders a [`SnapshotInfo`] as a JSON object.
fn snapshot_json(info: &SnapshotInfo) -> String {
    format!(
        "{{\"version\":{},\"build_id\":\"{}\",\"created_unix_secs\":{},\"source\":\"{}\"}}",
        info.version,
        json_escape(&info.build_id),
        info.created_unix_secs,
        json_escape(&info.source),
    )
}

fn dist_json(d: Dist) -> String {
    d.value().map_or_else(|| "null".to_owned(), |x| x.to_string())
}

/// Parses a node-id query parameter, mapping every failure mode to a `400`
/// that names the parameter.
fn parse_id(req: &Request, name: &str) -> Result<usize, Response> {
    let raw = req
        .param(name)
        .ok_or_else(|| Response::error_json(400, format!("missing query parameter '{name}'")))?;
    raw.parse().map_err(|_| {
        Response::error_json(400, format!("parameter '{name}' must be a node id, got '{raw}'"))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_clique::Clique;
    use cc_graph::generators;
    use cc_oracle::{OracleBuilder, ShardedArtifact};

    fn oracle(n: usize, seed: u64) -> DistanceOracle {
        let g = generators::gnp_weighted(n, 0.2, 20, seed).unwrap();
        let mut clique = Clique::new(n);
        OracleBuilder::new().seed(seed).build(&mut clique, &g).unwrap()
    }

    fn state() -> AppState {
        AppState::new(oracle(24, 9), 256)
    }

    fn sharded_state(n: usize, seed: u64, count: usize) -> (DistanceOracle, AppState) {
        let o = oracle(n, seed);
        let shards = ShardedArtifact::partition(&o, count).unwrap().into_shards();
        (o, AppState::with_in_process_shards(shards).unwrap())
    }

    fn get(path: &str, query: &[(&str, &str)]) -> Request {
        Request {
            method: "GET".into(),
            path: path.into(),
            query: query.iter().map(|&(k, v)| (k.to_owned(), v.to_owned())).collect(),
            body: Vec::new(),
            keep_alive: true,
        }
    }

    fn post(path: &str, body: &[u8]) -> Request {
        Request {
            method: "POST".into(),
            path: path.into(),
            query: Vec::new(),
            body: body.to_vec(),
            keep_alive: true,
        }
    }

    fn body_str(resp: &Response) -> &str {
        std::str::from_utf8(&resp.body).unwrap()
    }

    #[test]
    fn distance_answers_match_the_oracle() {
        let s = state();
        let resp = s.handle(&get("/distance", &[("u", "0"), ("v", "5")]));
        assert_eq!(resp.status, 200);
        let expected = s.generation().oracle().query(0, 5).value().unwrap();
        assert!(
            body_str(&resp).contains(&format!("\"distance\":{expected}")),
            "body: {}",
            body_str(&resp)
        );
        assert!(body_str(&resp).contains("\"connected\":true"));
    }

    #[test]
    fn out_of_range_ids_are_400_not_panic() {
        let s = state();
        let resp = s.handle(&get("/distance", &[("u", "0"), ("v", "24")]));
        assert_eq!(resp.status, 400);
        assert!(body_str(&resp).contains("outside 0..24"), "body: {}", body_str(&resp));
        // The server keeps serving afterwards.
        assert_eq!(s.handle(&get("/healthz", &[])).status, 200);
    }

    #[test]
    fn malformed_ids_and_missing_params_are_400() {
        let s = state();
        for query in [
            &[("u", "zero"), ("v", "1")][..],
            &[("u", "0"), ("v", "-3")][..],
            &[("u", "0")][..],
            &[][..],
            &[("u", "0"), ("v", "1e9")][..],
        ] {
            let resp = s.handle(&get("/distance", query));
            assert_eq!(resp.status, 400, "query {query:?} must be rejected");
        }
    }

    #[test]
    fn garbage_paths_are_404_and_wrong_methods_405() {
        let s = state();
        assert_eq!(s.handle(&get("/nope", &[])).status, 404);
        assert_eq!(s.handle(&get("/../etc/passwd", &[])).status, 404);
        assert_eq!(s.handle(&post("/distance", b"")).status, 405);
        assert_eq!(s.handle(&get("/batch", &[])).status, 405);
    }

    #[test]
    fn batch_routes_through_query_batch_and_validates_lines() {
        let s = state();
        let resp = s.handle(&post("/batch", b"0 1\n2,3\n\n  4   5  \n"));
        assert_eq!(resp.status, 200, "body: {}", body_str(&resp));
        let expected = s.generation().oracle().query_batch(&[(0, 1), (2, 3), (4, 5)]);
        let distances: Vec<String> =
            expected.iter().map(|d| d.value().map_or("null".into(), |x| x.to_string())).collect();
        assert_eq!(
            body_str(&resp),
            format!("{{\"count\":3,\"distances\":[{}]}}", distances.join(","))
        );

        assert_eq!(s.handle(&post("/batch", b"0 1\nfive 6\n")).status, 400);
        assert_eq!(s.handle(&post("/batch", b"0 1 2\n")).status, 400);
        assert_eq!(s.handle(&post("/batch", b"0 99\n")).status, 400, "out-of-range pair");
        assert_eq!(s.handle(&post("/batch", &[0xff, 0xfe])).status, 400, "non-UTF-8 body");
    }

    #[test]
    fn stats_and_artifact_report_the_serving_state() {
        let s = state();
        s.handle(&get("/distance", &[("u", "1"), ("v", "2")]));
        s.handle(&get("/distance", &[("u", "1"), ("v", "2")]));
        s.handle(&get("/distance", &[("u", "99"), ("v", "2")]));
        let stats = s.handle(&get("/stats", &[]));
        assert_eq!(stats.status, 200);
        let body = body_str(&stats).to_owned();
        assert!(body.contains("\"requests\":4"), "body: {body}");
        assert!(body.contains("\"distance_requests\":3"), "body: {body}");
        assert!(body.contains("\"client_errors\":1"), "body: {body}");
        assert!(body.contains("\"mode\":\"mono\""), "body: {body}");
        assert!(body.contains("\"hits\":1"), "body: {body}");
        assert!(body.contains("\"misses\":1"), "body: {body}");

        let artifact = s.handle(&get("/artifact", &[]));
        assert_eq!(artifact.status, 200);
        let body = body_str(&artifact).to_owned();
        for key in ["\"n\":24", "\"k\":", "\"epsilon\":", "\"landmarks\":", "\"artifact_bytes\":"] {
            assert!(body.contains(key), "missing {key} in {body}");
        }
        assert!(body.contains("\"stretch_bound\":3.75"), "body: {body}");
        // The active snapshot's identity is reported on both endpoints.
        let expected_id = s.generation().info().build_id.clone();
        for text in [&body, &body_str(&s.handle(&get("/stats", &[]))).to_owned()] {
            assert!(text.contains(&format!("\"build_id\":\"{expected_id}\"")), "body: {text}");
            assert!(text.contains("\"version\":2"), "body: {text}");
            assert!(text.contains("\"source\":\"in-process\""), "body: {text}");
        }
    }

    fn temp_snapshot_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("cc-serve-handler-tests").join(name);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn reload_swaps_the_artifact_and_reports_the_new_identity() {
        let s = state();
        let before = s.generation().info().build_id.clone();

        // A different graph (different seed) at a temp path.
        let next = oracle(24, 77);
        let path = temp_snapshot_dir("swap").join("next.snap");
        std::fs::write(&path, cc_oracle::serde::to_bytes(&next)).unwrap();

        let req = Request {
            method: "POST".into(),
            path: "/reload".into(),
            query: vec![("path".to_owned(), path.display().to_string())],
            body: Vec::new(),
            keep_alive: true,
        };
        let resp = s.handle(&req);
        assert_eq!(resp.status, 200, "body: {}", body_str(&resp));
        assert!(body_str(&resp).contains("\"reloaded\":true"));
        let after = s.generation();
        assert_ne!(after.info().build_id, before, "artifact identity must change");
        assert_eq!(after.info().source, path.display().to_string());
        assert_eq!(s.reloads(), 1);
        // Served answers now come from the new artifact.
        let resp = s.handle(&get("/distance", &[("u", "0"), ("v", "5")]));
        let want = next.query(0, 5).value().unwrap();
        assert!(body_str(&resp).contains(&format!("\"distance\":{want}")));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn failed_reload_is_400_keeps_old_artifact_and_surfaces_in_stats() {
        let s = state();
        let before = s.generation().info().build_id.clone();
        let answer_before = s.generation().oracle().query(1, 2);

        let path = temp_snapshot_dir("corrupt").join("bad.snap");
        std::fs::write(&path, b"these are not oracle bytes").unwrap();
        let req = Request {
            method: "POST".into(),
            path: "/reload".into(),
            query: vec![("path".to_owned(), path.display().to_string())],
            body: Vec::new(),
            keep_alive: true,
        };
        let resp = s.handle(&req);
        assert_eq!(resp.status, 400, "body: {}", body_str(&resp));

        // Old generation untouched, error visible in /stats.
        assert_eq!(s.generation().info().build_id, before);
        assert_eq!(s.generation().oracle().query(1, 2), answer_before);
        assert_eq!((s.reloads(), s.reload_failures()), (0, 1));
        let stats = body_str(&s.handle(&get("/stats", &[]))).to_owned();
        assert!(stats.contains("\"reload_failures\":1"), "stats: {stats}");
        assert!(stats.contains("\"last_reload_error\":\"reload from"), "stats: {stats}");

        // A later successful reload clears the recorded error.
        let same = oracle(24, 9);
        std::fs::write(&path, cc_oracle::serde::to_bytes(&same)).unwrap();
        let resp = s.handle(&req);
        assert_eq!(resp.status, 200, "body: {}", body_str(&resp));
        let stats = body_str(&s.handle(&get("/stats", &[]))).to_owned();
        assert!(stats.contains("\"last_reload_error\":null"), "stats: {stats}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reload_without_a_source_is_a_400_with_guidance() {
        let s = state();
        let resp = s.handle(&post("/reload", b""));
        assert_eq!(resp.status, 400);
        assert!(body_str(&resp).contains("no reload source"), "body: {}", body_str(&resp));
        assert_eq!(s.handle(&get("/reload", &[])).status, 405, "GET /reload is not allowed");
    }

    #[test]
    fn sharded_distance_and_batch_answer_bit_identically_to_the_monolith() {
        let (mono, s) = sharded_state(25, 3, 3);
        assert!(s.is_sharded());
        for (u, v) in [(0usize, 24usize), (24, 0), (5, 5), (0, 8), (9, 17), (12, 13)] {
            let resp = s.handle(&get("/distance", &[("u", &u.to_string()), ("v", &v.to_string())]));
            assert_eq!(resp.status, 200, "body: {}", body_str(&resp));
            let want = mono.query(u, v).value().map_or("null".to_owned(), |x| x.to_string());
            assert!(
                body_str(&resp).contains(&format!("\"distance\":{want}")),
                "pair ({u},{v}): body {}",
                body_str(&resp)
            );
        }
        // A batch mixing same-shard and cross-shard pairs.
        let resp = s.handle(&post("/batch", b"0 1\n0 24\n20 4\n12 12\n"));
        assert_eq!(resp.status, 200, "body: {}", body_str(&resp));
        let want: Vec<String> = mono
            .query_batch(&[(0, 1), (0, 24), (20, 4), (12, 12)])
            .iter()
            .map(|d| d.value().map_or("null".into(), |x| x.to_string()))
            .collect();
        assert_eq!(body_str(&resp), format!("{{\"count\":4,\"distances\":[{}]}}", want.join(",")));
        // Out-of-range pairs are 400s through the router too.
        assert_eq!(s.handle(&get("/distance", &[("u", "0"), ("v", "25")])).status, 400);
        assert_eq!(s.handle(&post("/batch", b"0 25\n")).status, 400);
    }

    #[test]
    fn sharded_stats_and_artifact_report_per_shard_identities() {
        let (mono, s) = sharded_state(25, 3, 3);
        let stats = body_str(&s.handle(&get("/stats", &[]))).to_owned();
        assert!(stats.contains("\"mode\":\"router\""), "stats: {stats}");
        assert!(stats.contains("\"shard_count\":3"), "stats: {stats}");
        assert!(stats.contains("\"set_uniform\":true"), "stats: {stats}");
        assert!(stats.contains("\"index\":2"), "stats: {stats}");
        let set_id = format!("{:016x}", cc_oracle::serde::payload_checksum(&mono));
        assert!(stats.contains(&set_id), "stats must carry the set id: {stats}");

        let artifact = body_str(&s.handle(&get("/artifact", &[]))).to_owned();
        assert!(artifact.contains("\"mode\":\"router\""), "artifact: {artifact}");
        assert!(artifact.contains("\"n\":25"), "artifact: {artifact}");
        assert!(artifact.contains("\"owned_start\":0"), "artifact: {artifact}");
        assert!(artifact.contains("\"owned_len\":9"), "artifact: {artifact}");
        // Per-shard build ids are all distinct (different slices).
        let ids: Vec<&str> = artifact.split("\"build_id\":\"").skip(1).collect();
        assert_eq!(ids.len(), 3, "artifact: {artifact}");
        assert_ne!(ids[0][..16], ids[1][..16], "artifact: {artifact}");
    }

    #[test]
    fn sharded_reload_swaps_one_shard_and_rejects_bad_requests() {
        let (mono, s) = sharded_state(25, 3, 3);
        let dir = temp_snapshot_dir("shard-reload");
        let paths = source::write_shard_snapshots(&mono, 3, &dir).unwrap();

        // Reload shard 1 from an explicit path: only its generation moves.
        let before: Vec<String> =
            s.shard_generations().iter().map(|g| g.info().source.clone()).collect();
        let req = Request {
            method: "POST".into(),
            path: "/reload".into(),
            query: vec![
                ("shard".to_owned(), "1".to_owned()),
                ("path".to_owned(), paths[1].display().to_string()),
            ],
            body: Vec::new(),
            keep_alive: true,
        };
        let resp = s.handle(&req);
        assert_eq!(resp.status, 200, "body: {}", body_str(&resp));
        assert!(body_str(&resp).contains("\"shard\":1"));
        let after: Vec<String> =
            s.shard_generations().iter().map(|g| g.info().source.clone()).collect();
        assert_eq!(after[0], before[0]);
        assert_ne!(after[1], before[1]);
        assert_eq!(after[2], before[2]);
        assert_eq!(s.reloads(), 1);

        // Shard 0's file into slot 2: index mismatch, 400, nothing swapped.
        let req = Request {
            method: "POST".into(),
            path: "/reload".into(),
            query: vec![
                ("shard".to_owned(), "2".to_owned()),
                ("path".to_owned(), paths[0].display().to_string()),
            ],
            body: Vec::new(),
            keep_alive: true,
        };
        let resp = s.handle(&req);
        assert_eq!(resp.status, 400, "body: {}", body_str(&resp));
        assert!(body_str(&resp).contains("declares index 0"), "body: {}", body_str(&resp));
        assert_eq!(s.reload_failures(), 1);

        // Out-of-range shard index and garbage index are 400s.
        for bad in ["9", "x"] {
            let req = Request {
                method: "POST".into(),
                path: "/reload".into(),
                query: vec![("shard".to_owned(), bad.to_owned())],
                body: Vec::new(),
                keep_alive: true,
            };
            assert_eq!(s.handle(&req).status, 400, "shard='{bad}' must be rejected");
        }

        // Queries still answer identically to the monolith afterwards.
        for (u, v) in [(0usize, 24usize), (10, 3)] {
            let resp = s.handle(&get("/distance", &[("u", &u.to_string()), ("v", &v.to_string())]));
            let want = mono.query(u, v).value().unwrap();
            assert!(body_str(&resp).contains(&format!("\"distance\":{want}")));
        }
        for p in paths {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn mono_reload_rejects_shard_parameter_and_vice_versa() {
        let s = state();
        let req = Request {
            method: "POST".into(),
            path: "/reload".into(),
            query: vec![("shard".to_owned(), "0".to_owned())],
            body: Vec::new(),
            keep_alive: true,
        };
        let resp = s.handle(&req);
        assert_eq!(resp.status, 400);
        assert!(body_str(&resp).contains("no 'shard' parameter"), "body: {}", body_str(&resp));

        // In-process sharded state has no files: a bare /reload explains.
        let (_, sharded) = sharded_state(25, 3, 2);
        let resp = sharded.handle(&post("/reload", b""));
        assert_eq!(resp.status, 400);
        assert!(body_str(&resp).contains("no snapshot file"), "body: {}", body_str(&resp));
    }
}
