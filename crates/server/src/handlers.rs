//! Routing and endpoint handlers: pure functions from a parsed [`Request`]
//! to a [`Response`], so every route is unit-testable without a socket.
//!
//! All id validation goes through the oracle's **fallible** query API
//! (`try_query` / `try_query_batch`): a malformed or out-of-range request is
//! a `400` at the edge, never a panic inside the serving process.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use cc_matrix::Dist;
use cc_oracle::{CachingOracle, DistanceOracle};

use crate::http::{Request, Response};

/// Shared per-server state: the cached oracle plus request counters.
pub struct AppState {
    cached: CachingOracle,
    started: Instant,
    requests: AtomicU64,
    distance_requests: AtomicU64,
    batch_requests: AtomicU64,
    batch_pairs: AtomicU64,
    client_errors: AtomicU64,
    load_shed: AtomicU64,
}

impl AppState {
    /// Wraps `oracle` for serving, with an LRU result cache of
    /// `cache_capacity` entries.
    pub fn new(oracle: DistanceOracle, cache_capacity: usize) -> AppState {
        AppState {
            cached: CachingOracle::new(oracle, cache_capacity.max(1)),
            started: Instant::now(),
            requests: AtomicU64::new(0),
            distance_requests: AtomicU64::new(0),
            batch_requests: AtomicU64::new(0),
            batch_pairs: AtomicU64::new(0),
            client_errors: AtomicU64::new(0),
            load_shed: AtomicU64::new(0),
        }
    }

    /// The served artifact.
    pub fn oracle(&self) -> &DistanceOracle {
        self.cached.oracle()
    }

    /// Total requests routed so far (any endpoint, any outcome).
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Records a 4xx produced below the router (protocol parse errors).
    pub fn count_protocol_error(&self) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.client_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a connection shed with `503` at the acceptor (queue full),
    /// so `/stats` stays honest under the exact overload it diagnoses.
    pub fn count_load_shed(&self) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.load_shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Routes one request and maintains the counters.
    pub fn handle(&self, req: &Request) -> Response {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let resp = self.route(req);
        if (400..500).contains(&resp.status) {
            self.client_errors.fetch_add(1, Ordering::Relaxed);
        }
        resp
    }

    fn route(&self, req: &Request) -> Response {
        match (req.method.as_str(), req.path.as_str()) {
            ("GET", "/healthz") => Response::text(200, "ok\n"),
            ("GET", "/distance") => self.distance(req),
            ("POST", "/batch") => self.batch(req),
            ("GET", "/stats") => self.stats(),
            ("GET", "/artifact") => self.artifact(),
            (_, "/healthz" | "/distance" | "/batch" | "/stats" | "/artifact") => {
                Response::error_json(405, format!("method {} not allowed here", req.method))
            }
            _ => Response::error_json(404, format!("no route for '{}'", req.path)),
        }
    }

    /// `GET /distance?u=&v=` — one pair through the cached oracle.
    fn distance(&self, req: &Request) -> Response {
        self.distance_requests.fetch_add(1, Ordering::Relaxed);
        let (u, v) = match (parse_id(req, "u"), parse_id(req, "v")) {
            (Ok(u), Ok(v)) => (u, v),
            (Err(resp), _) | (_, Err(resp)) => return resp,
        };
        match self.cached.try_query(u, v) {
            Ok(d) => Response::json(
                200,
                format!(
                    "{{\"u\":{u},\"v\":{v},\"distance\":{},\"connected\":{}}}",
                    dist_json(d),
                    d.is_finite()
                ),
            ),
            // QueryOutOfRange is the only query error today; any future
            // variant is still a client-input problem by construction here.
            Err(e) => Response::error_json(400, e.to_string()),
        }
    }

    /// `POST /batch` — newline-separated `u v` (or `u,v`) pairs, answered
    /// through the sharded batch path.
    fn batch(&self, req: &Request) -> Response {
        self.batch_requests.fetch_add(1, Ordering::Relaxed);
        let Ok(text) = std::str::from_utf8(&req.body) else {
            return Response::error_json(400, "batch body must be UTF-8");
        };
        let mut pairs: Vec<(usize, usize)> = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let mut ids =
                line.split(|c: char| c == ',' || c.is_whitespace()).filter(|t| !t.is_empty());
            let pair = match (ids.next(), ids.next(), ids.next()) {
                (Some(a), Some(b), None) => a.parse().ok().zip(b.parse().ok()),
                _ => None,
            };
            match pair {
                Some(p) => pairs.push(p),
                None => {
                    return Response::error_json(
                        400,
                        format!("line {}: expected 'u v', got '{line}'", lineno + 1),
                    )
                }
            }
        }
        self.batch_pairs.fetch_add(pairs.len() as u64, Ordering::Relaxed);
        match self.cached.try_query_batch(&pairs) {
            Ok(answers) => {
                let mut body = String::with_capacity(16 + answers.len() * 8);
                body.push_str("{\"count\":");
                body.push_str(&answers.len().to_string());
                body.push_str(",\"distances\":[");
                for (i, d) in answers.iter().enumerate() {
                    if i > 0 {
                        body.push(',');
                    }
                    body.push_str(&dist_json(*d));
                }
                body.push_str("]}");
                Response::json(200, body)
            }
            Err(e) => Response::error_json(400, e.to_string()),
        }
    }

    /// `GET /stats` — cache effectiveness and request counters.
    fn stats(&self) -> Response {
        let cache = self.cached.stats();
        Response::json(
            200,
            format!(
                "{{\"requests\":{},\"distance_requests\":{},\"batch_requests\":{},\
                 \"batch_pairs\":{},\"client_errors\":{},\"load_shed\":{},\
                 \"uptime_secs\":{:.3},\
                 \"cache\":{{\"hits\":{},\"misses\":{},\"hit_rate\":{:.4},\
                 \"len\":{},\"capacity\":{}}}}}",
                self.requests.load(Ordering::Relaxed),
                self.distance_requests.load(Ordering::Relaxed),
                self.batch_requests.load(Ordering::Relaxed),
                self.batch_pairs.load(Ordering::Relaxed),
                self.client_errors.load(Ordering::Relaxed),
                self.load_shed.load(Ordering::Relaxed),
                self.started.elapsed().as_secs_f64(),
                cache.hits,
                cache.misses,
                cache.hit_rate(),
                cache.len,
                cache.capacity,
            ),
        )
    }

    /// `GET /artifact` — what is being served and its guarantee.
    fn artifact(&self) -> Response {
        let o = self.oracle();
        Response::json(
            200,
            format!(
                "{{\"n\":{},\"k\":{},\"epsilon\":{},\"landmarks\":{},\
                 \"artifact_bytes\":{},\"stretch_bound\":{},\"build_rounds\":{},\"seed\":{}}}",
                o.n(),
                o.k(),
                o.epsilon(),
                o.landmarks().len(),
                o.artifact_bytes(),
                o.stretch_bound(),
                o.build_rounds(),
                o.seed(),
            ),
        )
    }
}

fn dist_json(d: Dist) -> String {
    d.value().map_or_else(|| "null".to_owned(), |x| x.to_string())
}

/// Parses a node-id query parameter, mapping every failure mode to a `400`
/// that names the parameter.
fn parse_id(req: &Request, name: &str) -> Result<usize, Response> {
    let raw = req
        .param(name)
        .ok_or_else(|| Response::error_json(400, format!("missing query parameter '{name}'")))?;
    raw.parse().map_err(|_| {
        Response::error_json(400, format!("parameter '{name}' must be a node id, got '{raw}'"))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_clique::Clique;
    use cc_graph::generators;
    use cc_oracle::OracleBuilder;

    fn state() -> AppState {
        let g = generators::gnp_weighted(24, 0.2, 20, 9).unwrap();
        let mut clique = Clique::new(24);
        let oracle = OracleBuilder::new().seed(9).build(&mut clique, &g).unwrap();
        AppState::new(oracle, 256)
    }

    fn get(path: &str, query: &[(&str, &str)]) -> Request {
        Request {
            method: "GET".into(),
            path: path.into(),
            query: query.iter().map(|&(k, v)| (k.to_owned(), v.to_owned())).collect(),
            body: Vec::new(),
            keep_alive: true,
        }
    }

    fn post(path: &str, body: &[u8]) -> Request {
        Request {
            method: "POST".into(),
            path: path.into(),
            query: Vec::new(),
            body: body.to_vec(),
            keep_alive: true,
        }
    }

    fn body_str(resp: &Response) -> &str {
        std::str::from_utf8(&resp.body).unwrap()
    }

    #[test]
    fn distance_answers_match_the_oracle() {
        let s = state();
        let resp = s.handle(&get("/distance", &[("u", "0"), ("v", "5")]));
        assert_eq!(resp.status, 200);
        let expected = s.oracle().query(0, 5).value().unwrap();
        assert!(
            body_str(&resp).contains(&format!("\"distance\":{expected}")),
            "body: {}",
            body_str(&resp)
        );
        assert!(body_str(&resp).contains("\"connected\":true"));
    }

    #[test]
    fn out_of_range_ids_are_400_not_panic() {
        let s = state();
        let resp = s.handle(&get("/distance", &[("u", "0"), ("v", "24")]));
        assert_eq!(resp.status, 400);
        assert!(body_str(&resp).contains("outside 0..24"), "body: {}", body_str(&resp));
        // The server keeps serving afterwards.
        assert_eq!(s.handle(&get("/healthz", &[])).status, 200);
    }

    #[test]
    fn malformed_ids_and_missing_params_are_400() {
        let s = state();
        for query in [
            &[("u", "zero"), ("v", "1")][..],
            &[("u", "0"), ("v", "-3")][..],
            &[("u", "0")][..],
            &[][..],
            &[("u", "0"), ("v", "1e9")][..],
        ] {
            let resp = s.handle(&get("/distance", query));
            assert_eq!(resp.status, 400, "query {query:?} must be rejected");
        }
    }

    #[test]
    fn garbage_paths_are_404_and_wrong_methods_405() {
        let s = state();
        assert_eq!(s.handle(&get("/nope", &[])).status, 404);
        assert_eq!(s.handle(&get("/../etc/passwd", &[])).status, 404);
        assert_eq!(s.handle(&post("/distance", b"")).status, 405);
        assert_eq!(s.handle(&get("/batch", &[])).status, 405);
    }

    #[test]
    fn batch_routes_through_query_batch_and_validates_lines() {
        let s = state();
        let resp = s.handle(&post("/batch", b"0 1\n2,3\n\n  4   5  \n"));
        assert_eq!(resp.status, 200, "body: {}", body_str(&resp));
        let expected = s.oracle().query_batch(&[(0, 1), (2, 3), (4, 5)]);
        let distances: Vec<String> =
            expected.iter().map(|d| d.value().map_or("null".into(), |x| x.to_string())).collect();
        assert_eq!(
            body_str(&resp),
            format!("{{\"count\":3,\"distances\":[{}]}}", distances.join(","))
        );

        assert_eq!(s.handle(&post("/batch", b"0 1\nfive 6\n")).status, 400);
        assert_eq!(s.handle(&post("/batch", b"0 1 2\n")).status, 400);
        assert_eq!(s.handle(&post("/batch", b"0 99\n")).status, 400, "out-of-range pair");
        assert_eq!(s.handle(&post("/batch", &[0xff, 0xfe])).status, 400, "non-UTF-8 body");
    }

    #[test]
    fn stats_and_artifact_report_the_serving_state() {
        let s = state();
        s.handle(&get("/distance", &[("u", "1"), ("v", "2")]));
        s.handle(&get("/distance", &[("u", "1"), ("v", "2")]));
        s.handle(&get("/distance", &[("u", "99"), ("v", "2")]));
        let stats = s.handle(&get("/stats", &[]));
        assert_eq!(stats.status, 200);
        let body = body_str(&stats).to_owned();
        assert!(body.contains("\"requests\":4"), "body: {body}");
        assert!(body.contains("\"distance_requests\":3"), "body: {body}");
        assert!(body.contains("\"client_errors\":1"), "body: {body}");
        assert!(body.contains("\"hits\":1"), "body: {body}");
        assert!(body.contains("\"misses\":1"), "body: {body}");

        let artifact = s.handle(&get("/artifact", &[]));
        assert_eq!(artifact.status, 200);
        let body = body_str(&artifact).to_owned();
        for key in ["\"n\":24", "\"k\":", "\"epsilon\":", "\"landmarks\":", "\"artifact_bytes\":"] {
            assert!(body.contains(key), "missing {key} in {body}");
        }
        assert!(body.contains("\"stretch_bound\":3.75"), "body: {body}");
    }
}
