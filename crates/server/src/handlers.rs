//! Routing and endpoint handlers: pure functions from a parsed [`Request`]
//! to a [`Response`], so every route is unit-testable without a socket.
//!
//! All id validation goes through the oracle's **fallible** query API
//! (`try_query` / `try_query_batch`): a malformed or out-of-range request is
//! a `400` at the edge, never a panic inside the serving process.
//!
//! The served artifact lives behind a [`ReloadHandle`]: every request
//! clones the current [`Generation`] (an `Arc` refcount bump) and answers
//! entirely on that clone, so `POST /reload` can validate and swap in a
//! new snapshot while traffic is in flight — old requests finish on the
//! old artifact, new requests see the new one, and a reload that fails
//! validation changes nothing except the error surfaced in `/stats`.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use cc_matrix::Dist;
use cc_oracle::DistanceOracle;

use crate::http::{json_escape, Request, Response};
use crate::reload::{Generation, ReloadHandle, SnapshotInfo};
use crate::source;

/// What a successful reload installed, captured atomically with the swap —
/// a response built from this cannot mix in state from a concurrent later
/// reload.
#[derive(Debug, Clone)]
pub struct ReloadOutcome {
    /// Identity of the artifact that was swapped in.
    pub info: SnapshotInfo,
    /// Node count of the artifact that was swapped in.
    pub n: usize,
    /// Successful-reload count as of this swap (this reload included).
    pub reloads: u64,
}

/// Shared per-server state: the hot-swappable serving generation plus
/// request counters.
pub struct AppState {
    handle: ReloadHandle,
    cache_capacity: usize,
    reload_path: Option<PathBuf>,
    allow_legacy: bool,
    /// Serializes load+swap so overlapping reloads apply in a definite
    /// order; never held by the request path.
    reload_lock: Mutex<()>,
    last_reload_error: Mutex<Option<String>>,
    started: Instant,
    requests: AtomicU64,
    distance_requests: AtomicU64,
    batch_requests: AtomicU64,
    batch_pairs: AtomicU64,
    client_errors: AtomicU64,
    load_shed: AtomicU64,
    reload_requests: AtomicU64,
    reloads: AtomicU64,
    reload_failures: AtomicU64,
}

impl AppState {
    /// Wraps an in-process-built `oracle` for serving, with an LRU result
    /// cache of `cache_capacity` entries and no default reload source.
    pub fn new(oracle: DistanceOracle, cache_capacity: usize) -> AppState {
        let info = SnapshotInfo::in_process(&oracle, "in-process");
        AppState::with_info(oracle, info, cache_capacity, None, false)
    }

    /// [`AppState::new`] with an explicit artifact identity, a default
    /// snapshot path for `POST /reload` / SIGHUP, and the legacy-format
    /// policy.
    pub fn with_info(
        oracle: DistanceOracle,
        info: SnapshotInfo,
        cache_capacity: usize,
        reload_path: Option<PathBuf>,
        allow_legacy: bool,
    ) -> AppState {
        let cache_capacity = cache_capacity.max(1);
        AppState {
            handle: ReloadHandle::new(Generation::new(oracle, info, cache_capacity)),
            cache_capacity,
            reload_path,
            allow_legacy,
            reload_lock: Mutex::new(()),
            last_reload_error: Mutex::new(None),
            started: Instant::now(),
            requests: AtomicU64::new(0),
            distance_requests: AtomicU64::new(0),
            batch_requests: AtomicU64::new(0),
            batch_pairs: AtomicU64::new(0),
            client_errors: AtomicU64::new(0),
            load_shed: AtomicU64::new(0),
            reload_requests: AtomicU64::new(0),
            reloads: AtomicU64::new(0),
            reload_failures: AtomicU64::new(0),
        }
    }

    /// The generation serving right now (artifact + cache + identity). The
    /// clone is an `Arc` refcount bump; holders keep the artifact alive
    /// across a concurrent reload.
    pub fn generation(&self) -> Arc<Generation> {
        self.handle.current()
    }

    /// Successful hot reloads so far.
    pub fn reloads(&self) -> u64 {
        self.reloads.load(Ordering::Relaxed)
    }

    /// Reload attempts rejected by validation (the old artifact kept
    /// serving each time).
    pub fn reload_failures(&self) -> u64 {
        self.reload_failures.load(Ordering::Relaxed)
    }

    /// Loads + validates the snapshot at `path` and, only if it is fully
    /// valid, swaps it in atomically. On any failure the serving
    /// generation is untouched and the error is recorded for `/stats`.
    ///
    /// The load happens on the calling thread without blocking the request
    /// path: queries keep cloning the old generation until the one-pointer
    /// swap.
    ///
    /// # Errors
    ///
    /// The human-readable reason the snapshot was rejected (I/O, magic,
    /// version, checksum, structure).
    pub fn reload_from(&self, path: &Path) -> Result<ReloadOutcome, String> {
        let _serialized = self.reload_lock.lock().expect("reload lock poisoned");
        match source::load_snapshot(path, self.allow_legacy) {
            Ok(loaded) => {
                let outcome = ReloadOutcome {
                    info: loaded.info.clone(),
                    n: loaded.oracle.n(),
                    reloads: self.reloads.fetch_add(1, Ordering::Relaxed) + 1,
                };
                self.handle.swap(Generation::new(loaded.oracle, loaded.info, self.cache_capacity));
                *self.last_reload_error.lock().expect("reload error lock") = None;
                Ok(outcome)
            }
            Err(e) => {
                let msg = format!("reload from {} rejected: {e}", path.display());
                self.reload_failures.fetch_add(1, Ordering::Relaxed);
                *self.last_reload_error.lock().expect("reload error lock") = Some(msg.clone());
                Err(msg)
            }
        }
    }

    /// [`AppState::reload_from`] against the configured default path; this
    /// is what SIGHUP triggers in the `cc-serve` binary.
    ///
    /// # Errors
    ///
    /// As [`AppState::reload_from`], plus when no default path is
    /// configured.
    pub fn reload_default(&self) -> Result<ReloadOutcome, String> {
        match self.reload_path.clone() {
            Some(path) => self.reload_from(&path),
            None => {
                let msg = "no reload source configured: start with --snapshot or \
                           pass an explicit path"
                    .to_owned();
                self.reload_failures.fetch_add(1, Ordering::Relaxed);
                *self.last_reload_error.lock().expect("reload error lock") = Some(msg.clone());
                Err(msg)
            }
        }
    }

    /// Total requests routed so far (any endpoint, any outcome).
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Records a 4xx produced below the router (protocol parse errors).
    pub fn count_protocol_error(&self) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.client_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a connection shed with `503` at the acceptor (queue full),
    /// so `/stats` stays honest under the exact overload it diagnoses.
    pub fn count_load_shed(&self) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.load_shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Routes one request and maintains the counters.
    pub fn handle(&self, req: &Request) -> Response {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let resp = self.route(req);
        if (400..500).contains(&resp.status) {
            self.client_errors.fetch_add(1, Ordering::Relaxed);
        }
        resp
    }

    fn route(&self, req: &Request) -> Response {
        match (req.method.as_str(), req.path.as_str()) {
            ("GET", "/healthz") => Response::text(200, "ok\n"),
            ("GET", "/distance") => self.distance(req),
            ("POST", "/batch") => self.batch(req),
            ("POST", "/reload") => self.reload(req),
            ("GET", "/stats") => self.stats(),
            ("GET", "/artifact") => self.artifact(),
            (_, "/healthz" | "/distance" | "/batch" | "/stats" | "/artifact" | "/reload") => {
                Response::error_json(405, format!("method {} not allowed here", req.method))
            }
            _ => Response::error_json(404, format!("no route for '{}'", req.path)),
        }
    }

    /// `GET /distance?u=&v=` — one pair through the cached oracle.
    fn distance(&self, req: &Request) -> Response {
        self.distance_requests.fetch_add(1, Ordering::Relaxed);
        let (u, v) = match (parse_id(req, "u"), parse_id(req, "v")) {
            (Ok(u), Ok(v)) => (u, v),
            (Err(resp), _) | (_, Err(resp)) => return resp,
        };
        match self.generation().cached().try_query(u, v) {
            Ok(d) => Response::json(
                200,
                format!(
                    "{{\"u\":{u},\"v\":{v},\"distance\":{},\"connected\":{}}}",
                    dist_json(d),
                    d.is_finite()
                ),
            ),
            // QueryOutOfRange is the only query error today; any future
            // variant is still a client-input problem by construction here.
            Err(e) => Response::error_json(400, e.to_string()),
        }
    }

    /// `POST /batch` — newline-separated `u v` (or `u,v`) pairs, answered
    /// through the sharded batch path.
    fn batch(&self, req: &Request) -> Response {
        self.batch_requests.fetch_add(1, Ordering::Relaxed);
        let Ok(text) = std::str::from_utf8(&req.body) else {
            return Response::error_json(400, "batch body must be UTF-8");
        };
        let mut pairs: Vec<(usize, usize)> = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let mut ids =
                line.split(|c: char| c == ',' || c.is_whitespace()).filter(|t| !t.is_empty());
            let pair = match (ids.next(), ids.next(), ids.next()) {
                (Some(a), Some(b), None) => a.parse().ok().zip(b.parse().ok()),
                _ => None,
            };
            match pair {
                Some(p) => pairs.push(p),
                None => {
                    return Response::error_json(
                        400,
                        format!("line {}: expected 'u v', got '{line}'", lineno + 1),
                    )
                }
            }
        }
        self.batch_pairs.fetch_add(pairs.len() as u64, Ordering::Relaxed);
        match self.generation().cached().try_query_batch(&pairs) {
            Ok(answers) => {
                let mut body = String::with_capacity(16 + answers.len() * 8);
                body.push_str("{\"count\":");
                body.push_str(&answers.len().to_string());
                body.push_str(",\"distances\":[");
                for (i, d) in answers.iter().enumerate() {
                    if i > 0 {
                        body.push(',');
                    }
                    body.push_str(&dist_json(*d));
                }
                body.push_str("]}");
                Response::json(200, body)
            }
            Err(e) => Response::error_json(400, e.to_string()),
        }
    }

    /// `POST /reload[?path=...]` — load, validate, and atomically swap in a
    /// new snapshot. A rejected snapshot answers `400` and leaves the old
    /// artifact serving (the error also shows up in `/stats`).
    fn reload(&self, req: &Request) -> Response {
        self.reload_requests.fetch_add(1, Ordering::Relaxed);
        let outcome = match req.param("path") {
            Some(p) if !p.is_empty() => self.reload_from(Path::new(p)),
            _ => self.reload_default(),
        };
        match outcome {
            Ok(outcome) => Response::json(
                200,
                format!(
                    "{{\"reloaded\":true,\"snapshot\":{},\"n\":{},\"reloads\":{}}}",
                    snapshot_json(&outcome.info),
                    outcome.n,
                    outcome.reloads,
                ),
            ),
            // The serving process is healthy and still answering on the old
            // artifact — the *request* failed, so this is a 4xx, not a 5xx.
            Err(msg) => Response::error_json(400, msg),
        }
    }

    /// `GET /stats` — cache effectiveness, request counters, and the
    /// identity + reload history of the active snapshot.
    fn stats(&self) -> Response {
        let generation = self.generation();
        let cache = generation.cached().stats();
        let last_error = self
            .last_reload_error
            .lock()
            .expect("reload error lock")
            .as_ref()
            .map_or("null".to_owned(), |e| format!("\"{}\"", json_escape(e)));
        Response::json(
            200,
            format!(
                "{{\"requests\":{},\"distance_requests\":{},\"batch_requests\":{},\
                 \"batch_pairs\":{},\"client_errors\":{},\"load_shed\":{},\
                 \"uptime_secs\":{:.3},\
                 \"snapshot\":{},\
                 \"reload_requests\":{},\
                 \"reloads\":{},\"reload_failures\":{},\"last_reload_error\":{last_error},\
                 \"cache\":{{\"hits\":{},\"misses\":{},\"hit_rate\":{:.4},\
                 \"len\":{},\"capacity\":{}}}}}",
                self.requests.load(Ordering::Relaxed),
                self.distance_requests.load(Ordering::Relaxed),
                self.batch_requests.load(Ordering::Relaxed),
                self.batch_pairs.load(Ordering::Relaxed),
                self.client_errors.load(Ordering::Relaxed),
                self.load_shed.load(Ordering::Relaxed),
                self.started.elapsed().as_secs_f64(),
                snapshot_json(generation.info()),
                self.reload_requests.load(Ordering::Relaxed),
                self.reloads(),
                self.reload_failures(),
                cache.hits,
                cache.misses,
                cache.hit_rate(),
                cache.len,
                cache.capacity,
            ),
        )
    }

    /// `GET /artifact` — what is being served, where it came from, and its
    /// guarantee.
    fn artifact(&self) -> Response {
        let generation = self.generation();
        let o = generation.oracle();
        Response::json(
            200,
            format!(
                "{{\"n\":{},\"k\":{},\"epsilon\":{},\"landmarks\":{},\
                 \"artifact_bytes\":{},\"stretch_bound\":{},\"build_rounds\":{},\"seed\":{},\
                 \"snapshot\":{},\"reloads\":{}}}",
                o.n(),
                o.k(),
                o.epsilon(),
                o.landmarks().len(),
                o.artifact_bytes(),
                o.stretch_bound(),
                o.build_rounds(),
                o.seed(),
                snapshot_json(generation.info()),
                self.reloads(),
            ),
        )
    }
}

/// Renders a [`SnapshotInfo`] as a JSON object.
fn snapshot_json(info: &SnapshotInfo) -> String {
    format!(
        "{{\"version\":{},\"build_id\":\"{}\",\"created_unix_secs\":{},\"source\":\"{}\"}}",
        info.version,
        json_escape(&info.build_id),
        info.created_unix_secs,
        json_escape(&info.source),
    )
}

fn dist_json(d: Dist) -> String {
    d.value().map_or_else(|| "null".to_owned(), |x| x.to_string())
}

/// Parses a node-id query parameter, mapping every failure mode to a `400`
/// that names the parameter.
fn parse_id(req: &Request, name: &str) -> Result<usize, Response> {
    let raw = req
        .param(name)
        .ok_or_else(|| Response::error_json(400, format!("missing query parameter '{name}'")))?;
    raw.parse().map_err(|_| {
        Response::error_json(400, format!("parameter '{name}' must be a node id, got '{raw}'"))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_clique::Clique;
    use cc_graph::generators;
    use cc_oracle::OracleBuilder;

    fn state() -> AppState {
        let g = generators::gnp_weighted(24, 0.2, 20, 9).unwrap();
        let mut clique = Clique::new(24);
        let oracle = OracleBuilder::new().seed(9).build(&mut clique, &g).unwrap();
        AppState::new(oracle, 256)
    }

    fn get(path: &str, query: &[(&str, &str)]) -> Request {
        Request {
            method: "GET".into(),
            path: path.into(),
            query: query.iter().map(|&(k, v)| (k.to_owned(), v.to_owned())).collect(),
            body: Vec::new(),
            keep_alive: true,
        }
    }

    fn post(path: &str, body: &[u8]) -> Request {
        Request {
            method: "POST".into(),
            path: path.into(),
            query: Vec::new(),
            body: body.to_vec(),
            keep_alive: true,
        }
    }

    fn body_str(resp: &Response) -> &str {
        std::str::from_utf8(&resp.body).unwrap()
    }

    #[test]
    fn distance_answers_match_the_oracle() {
        let s = state();
        let resp = s.handle(&get("/distance", &[("u", "0"), ("v", "5")]));
        assert_eq!(resp.status, 200);
        let expected = s.generation().oracle().query(0, 5).value().unwrap();
        assert!(
            body_str(&resp).contains(&format!("\"distance\":{expected}")),
            "body: {}",
            body_str(&resp)
        );
        assert!(body_str(&resp).contains("\"connected\":true"));
    }

    #[test]
    fn out_of_range_ids_are_400_not_panic() {
        let s = state();
        let resp = s.handle(&get("/distance", &[("u", "0"), ("v", "24")]));
        assert_eq!(resp.status, 400);
        assert!(body_str(&resp).contains("outside 0..24"), "body: {}", body_str(&resp));
        // The server keeps serving afterwards.
        assert_eq!(s.handle(&get("/healthz", &[])).status, 200);
    }

    #[test]
    fn malformed_ids_and_missing_params_are_400() {
        let s = state();
        for query in [
            &[("u", "zero"), ("v", "1")][..],
            &[("u", "0"), ("v", "-3")][..],
            &[("u", "0")][..],
            &[][..],
            &[("u", "0"), ("v", "1e9")][..],
        ] {
            let resp = s.handle(&get("/distance", query));
            assert_eq!(resp.status, 400, "query {query:?} must be rejected");
        }
    }

    #[test]
    fn garbage_paths_are_404_and_wrong_methods_405() {
        let s = state();
        assert_eq!(s.handle(&get("/nope", &[])).status, 404);
        assert_eq!(s.handle(&get("/../etc/passwd", &[])).status, 404);
        assert_eq!(s.handle(&post("/distance", b"")).status, 405);
        assert_eq!(s.handle(&get("/batch", &[])).status, 405);
    }

    #[test]
    fn batch_routes_through_query_batch_and_validates_lines() {
        let s = state();
        let resp = s.handle(&post("/batch", b"0 1\n2,3\n\n  4   5  \n"));
        assert_eq!(resp.status, 200, "body: {}", body_str(&resp));
        let expected = s.generation().oracle().query_batch(&[(0, 1), (2, 3), (4, 5)]);
        let distances: Vec<String> =
            expected.iter().map(|d| d.value().map_or("null".into(), |x| x.to_string())).collect();
        assert_eq!(
            body_str(&resp),
            format!("{{\"count\":3,\"distances\":[{}]}}", distances.join(","))
        );

        assert_eq!(s.handle(&post("/batch", b"0 1\nfive 6\n")).status, 400);
        assert_eq!(s.handle(&post("/batch", b"0 1 2\n")).status, 400);
        assert_eq!(s.handle(&post("/batch", b"0 99\n")).status, 400, "out-of-range pair");
        assert_eq!(s.handle(&post("/batch", &[0xff, 0xfe])).status, 400, "non-UTF-8 body");
    }

    #[test]
    fn stats_and_artifact_report_the_serving_state() {
        let s = state();
        s.handle(&get("/distance", &[("u", "1"), ("v", "2")]));
        s.handle(&get("/distance", &[("u", "1"), ("v", "2")]));
        s.handle(&get("/distance", &[("u", "99"), ("v", "2")]));
        let stats = s.handle(&get("/stats", &[]));
        assert_eq!(stats.status, 200);
        let body = body_str(&stats).to_owned();
        assert!(body.contains("\"requests\":4"), "body: {body}");
        assert!(body.contains("\"distance_requests\":3"), "body: {body}");
        assert!(body.contains("\"client_errors\":1"), "body: {body}");
        assert!(body.contains("\"hits\":1"), "body: {body}");
        assert!(body.contains("\"misses\":1"), "body: {body}");

        let artifact = s.handle(&get("/artifact", &[]));
        assert_eq!(artifact.status, 200);
        let body = body_str(&artifact).to_owned();
        for key in ["\"n\":24", "\"k\":", "\"epsilon\":", "\"landmarks\":", "\"artifact_bytes\":"] {
            assert!(body.contains(key), "missing {key} in {body}");
        }
        assert!(body.contains("\"stretch_bound\":3.75"), "body: {body}");
        // The active snapshot's identity is reported on both endpoints.
        let expected_id = s.generation().info().build_id.clone();
        for text in [&body, &body_str(&s.handle(&get("/stats", &[]))).to_owned()] {
            assert!(text.contains(&format!("\"build_id\":\"{expected_id}\"")), "body: {text}");
            assert!(text.contains("\"version\":2"), "body: {text}");
            assert!(text.contains("\"source\":\"in-process\""), "body: {text}");
        }
    }

    fn temp_snapshot_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("cc-serve-handler-tests").join(name);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn reload_swaps_the_artifact_and_reports_the_new_identity() {
        let s = state();
        let before = s.generation().info().build_id.clone();

        // A different graph (different seed) at a temp path.
        let g = generators::gnp_weighted(24, 0.2, 20, 77).unwrap();
        let mut clique = Clique::new(24);
        let next = OracleBuilder::new().seed(77).build(&mut clique, &g).unwrap();
        let path = temp_snapshot_dir("swap").join("next.snap");
        std::fs::write(&path, cc_oracle::serde::to_bytes(&next)).unwrap();

        let req = Request {
            method: "POST".into(),
            path: "/reload".into(),
            query: vec![("path".to_owned(), path.display().to_string())],
            body: Vec::new(),
            keep_alive: true,
        };
        let resp = s.handle(&req);
        assert_eq!(resp.status, 200, "body: {}", body_str(&resp));
        assert!(body_str(&resp).contains("\"reloaded\":true"));
        let after = s.generation();
        assert_ne!(after.info().build_id, before, "artifact identity must change");
        assert_eq!(after.info().source, path.display().to_string());
        assert_eq!(s.reloads(), 1);
        // Served answers now come from the new artifact.
        let resp = s.handle(&get("/distance", &[("u", "0"), ("v", "5")]));
        let want = next.query(0, 5).value().unwrap();
        assert!(body_str(&resp).contains(&format!("\"distance\":{want}")));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn failed_reload_is_400_keeps_old_artifact_and_surfaces_in_stats() {
        let s = state();
        let before = s.generation().info().build_id.clone();
        let answer_before = s.generation().oracle().query(1, 2);

        let path = temp_snapshot_dir("corrupt").join("bad.snap");
        std::fs::write(&path, b"these are not oracle bytes").unwrap();
        let req = Request {
            method: "POST".into(),
            path: "/reload".into(),
            query: vec![("path".to_owned(), path.display().to_string())],
            body: Vec::new(),
            keep_alive: true,
        };
        let resp = s.handle(&req);
        assert_eq!(resp.status, 400, "body: {}", body_str(&resp));

        // Old generation untouched, error visible in /stats.
        assert_eq!(s.generation().info().build_id, before);
        assert_eq!(s.generation().oracle().query(1, 2), answer_before);
        assert_eq!((s.reloads(), s.reload_failures()), (0, 1));
        let stats = body_str(&s.handle(&get("/stats", &[]))).to_owned();
        assert!(stats.contains("\"reload_failures\":1"), "stats: {stats}");
        assert!(stats.contains("\"last_reload_error\":\"reload from"), "stats: {stats}");

        // A later successful reload clears the recorded error.
        let g = generators::gnp_weighted(24, 0.2, 20, 9).unwrap();
        let mut clique = Clique::new(24);
        let same = OracleBuilder::new().seed(9).build(&mut clique, &g).unwrap();
        std::fs::write(&path, cc_oracle::serde::to_bytes(&same)).unwrap();
        let resp = s.handle(&req);
        assert_eq!(resp.status, 200, "body: {}", body_str(&resp));
        let stats = body_str(&s.handle(&get("/stats", &[]))).to_owned();
        assert!(stats.contains("\"last_reload_error\":null"), "stats: {stats}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reload_without_a_source_is_a_400_with_guidance() {
        let s = state();
        let resp = s.handle(&post("/reload", b""));
        assert_eq!(resp.status, 400);
        assert!(body_str(&resp).contains("no reload source"), "body: {}", body_str(&resp));
        assert_eq!(s.handle(&get("/reload", &[])).status, 405, "GET /reload is not allowed");
    }
}
