//! Atomic hot-swap of the served artifact: a [`ReloadHandle`] lets the
//! request path keep answering on the current snapshot while a new one is
//! loaded, validated, and swapped in — with zero dropped requests.
//!
//! The build image has no `arc-swap` crate, so the handle is an
//! `RwLock<Arc<Generation>>` used as a pointer cell: readers take the read
//! lock only long enough to clone the `Arc` (a refcount bump, never held
//! across a query), and a swap takes the write lock only to replace the
//! pointer. In-flight requests that already cloned the old generation
//! finish on the old artifact; its memory is freed when the last clone
//! drops.

use std::sync::{Arc, RwLock};

use cc_oracle::serde::{ShardHeader, SnapshotHeader};
use cc_oracle::shard::OracleShard;
use cc_oracle::{CachingOracle, DistanceOracle};

/// Identity of a serving artifact, as reported by `/stats` and
/// `/artifact`: snapshot format version, build id (payload checksum), when
/// the snapshot was written, and where it came from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotInfo {
    /// Snapshot format version the artifact was loaded from (the current
    /// `serde::SNAPSHOT_VERSION` for in-process builds).
    pub version: u32,
    /// Stable artifact identity: the payload checksum as 16 hex digits.
    /// Identical artifacts share a build id; any payload difference
    /// changes it.
    pub build_id: String,
    /// Unix timestamp (seconds) the snapshot was written; `0` when unknown
    /// (in-process builds that never touched disk).
    pub created_unix_secs: u64,
    /// Where the artifact came from: a snapshot path, or `"demo"` /
    /// `"in-process"` for built-not-loaded oracles.
    pub source: String,
}

impl SnapshotInfo {
    /// Info for an artifact loaded from a versioned snapshot at `source`.
    pub fn from_header(header: &SnapshotHeader, source: impl Into<String>) -> SnapshotInfo {
        SnapshotInfo {
            version: header.version,
            build_id: header.build_id(),
            created_unix_secs: header.created_unix_secs,
            source: source.into(),
        }
    }

    /// Info synthesized for an oracle built in-process (never snapshotted):
    /// current format version, build id computed from the payload.
    pub fn in_process(oracle: &DistanceOracle, source: impl Into<String>) -> SnapshotInfo {
        SnapshotInfo {
            version: cc_oracle::serde::SNAPSHOT_VERSION,
            build_id: format!("{:016x}", cc_oracle::serde::payload_checksum(oracle)),
            created_unix_secs: 0,
            source: source.into(),
        }
    }

    /// Info for one shard loaded from a per-shard snapshot at `source`.
    /// `build_id` is the shard file's own checksum (distinct per slice);
    /// the set-wide identity is in [`ShardGeneration`]'s header.
    pub fn from_shard_header(header: &ShardHeader, source: impl Into<String>) -> SnapshotInfo {
        SnapshotInfo {
            version: header.version,
            build_id: header.build_id(),
            created_unix_secs: header.created_unix_secs,
            source: source.into(),
        }
    }

    /// Info synthesized for a shard partitioned in-process (never
    /// snapshotted).
    pub fn in_process_shard(shard: &OracleShard, source: impl Into<String>) -> SnapshotInfo {
        let bytes = cc_oracle::serde::to_shard_bytes_created_at(shard, 0);
        let header = cc_oracle::serde::peek_shard_header(&bytes).expect("self-written shard bytes");
        SnapshotInfo::from_shard_header(&header, source)
    }
}

/// One immutable serving generation: an oracle behind its result cache,
/// plus the identity of the snapshot it came from. A reload builds a fresh
/// `Generation` (with an empty cache — answers from the old artifact must
/// not leak into the new one) and swaps it in whole.
pub struct Generation {
    cached: CachingOracle,
    info: SnapshotInfo,
}

impl Generation {
    /// Wraps `oracle` for serving with a fresh cache of `cache_capacity`
    /// entries.
    pub fn new(oracle: DistanceOracle, info: SnapshotInfo, cache_capacity: usize) -> Generation {
        Generation { cached: CachingOracle::new(oracle, cache_capacity.max(1)), info }
    }

    /// The artifact this generation serves.
    pub fn oracle(&self) -> &DistanceOracle {
        self.cached.oracle()
    }

    /// The cache-fronted query interface.
    pub fn cached(&self) -> &CachingOracle {
        &self.cached
    }

    /// Identity of the snapshot this generation was loaded from.
    pub fn info(&self) -> &SnapshotInfo {
        &self.info
    }
}

/// One immutable serving generation of a **single shard** in router mode:
/// the slice plus the identity of the per-shard snapshot it came from.
/// Each shard of the set lives behind its own [`ReloadHandle`], so a
/// rolling rollout swaps one slice at a time while the others keep
/// serving.
pub struct ShardGeneration {
    shard: OracleShard,
    info: SnapshotInfo,
}

impl ShardGeneration {
    /// Wraps one loaded shard for serving.
    pub fn new(shard: OracleShard, info: SnapshotInfo) -> ShardGeneration {
        ShardGeneration { shard, info }
    }

    /// The slice this generation serves.
    pub fn shard(&self) -> &OracleShard {
        &self.shard
    }

    /// Identity of the per-shard snapshot this generation was loaded from.
    pub fn info(&self) -> &SnapshotInfo {
        &self.info
    }
}

/// The swap point between the request path and reloads.
///
/// Generic over the generation type: the monolithic tier stores a
/// [`Generation`] (the default), the router tier keeps one
/// `ReloadHandle<ShardGeneration>` **per shard** so a rolling rollout
/// swaps one slice at a time.
///
/// # Example
///
/// ```
/// use cc_server::{Generation, ReloadHandle, SnapshotInfo};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let old = cc_server::source::build_demo(16, 1, 0.25)?;
/// let new = cc_server::source::build_demo(16, 2, 0.25)?;
///
/// let handle = ReloadHandle::new(Generation::new(
///     old,
///     SnapshotInfo::in_process(&cc_server::source::build_demo(16, 1, 0.25)?, "demo"),
///     1024,
/// ));
///
/// // The request path clones the current generation (a refcount bump)...
/// let serving = handle.current();
/// let before = serving.oracle().query(0, 15);
///
/// // ...a reload swaps in a validated replacement atomically...
/// let info = SnapshotInfo::in_process(&new, "demo-2");
/// handle.swap(Generation::new(new, info, 1024));
///
/// // ...and the clone taken before the swap still answers on the old
/// // artifact, so an in-flight request never sees a half-swapped state.
/// assert_eq!(serving.oracle().query(0, 15), before);
/// assert_eq!(handle.current().info().source, "demo-2");
/// # Ok(())
/// # }
/// ```
pub struct ReloadHandle<T = Generation> {
    current: RwLock<Arc<T>>,
}

impl<T> ReloadHandle<T> {
    /// Starts with `initial` as the serving generation.
    pub fn new(initial: T) -> ReloadHandle<T> {
        ReloadHandle { current: RwLock::new(Arc::new(initial)) }
    }

    /// The generation serving right now. The read lock is held only for
    /// the `Arc` clone, so this never blocks behind a load — only behind
    /// the pointer swap itself, which is a few instructions.
    pub fn current(&self) -> Arc<T> {
        Arc::clone(&self.current.read().expect("reload handle poisoned"))
    }

    /// Atomically replaces the serving generation, returning the previous
    /// one. Callers must fully load **and validate** the new artifact
    /// before calling this; in-flight requests holding the old `Arc`
    /// finish on the old artifact.
    pub fn swap(&self, next: T) -> Arc<T> {
        let mut slot = self.current.write().expect("reload handle poisoned");
        std::mem::replace(&mut *slot, Arc::new(next))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::build_demo;

    #[test]
    fn swap_is_atomic_and_old_readers_finish_on_the_old_artifact() {
        let a = build_demo(20, 3, 0.5).unwrap();
        let b = build_demo(20, 4, 0.5).unwrap();
        let a_answers: Vec<_> = (0..20).map(|v| a.query(0, v)).collect();
        let b_answers: Vec<_> = (0..20).map(|v| b.query(0, v)).collect();

        let handle =
            ReloadHandle::new(Generation::new(a.clone(), SnapshotInfo::in_process(&a, "a"), 64));
        let held = handle.current();
        let prev = handle.swap(Generation::new(b.clone(), SnapshotInfo::in_process(&b, "b"), 64));
        assert_eq!(prev.info().source, "a");

        // The pre-swap clone still serves A; fresh clones serve B.
        for v in 0..20 {
            assert_eq!(held.oracle().query(0, v), a_answers[v]);
            assert_eq!(handle.current().oracle().query(0, v), b_answers[v]);
        }
    }

    #[test]
    fn concurrent_readers_always_see_a_complete_generation() {
        let a = build_demo(16, 5, 0.5).unwrap();
        let b = build_demo(16, 6, 0.5).unwrap();
        let a_ans: Vec<_> = (0..16).map(|v| a.query(3, v)).collect();
        let b_ans: Vec<_> = (0..16).map(|v| b.query(3, v)).collect();
        let handle =
            ReloadHandle::new(Generation::new(a.clone(), SnapshotInfo::in_process(&a, "a"), 64));

        std::thread::scope(|scope| {
            for _ in 0..4 {
                let handle = &handle;
                let (a_ans, b_ans) = (&a_ans, &b_ans);
                scope.spawn(move || {
                    for _ in 0..2_000 {
                        let generation = handle.current();
                        let src = generation.info().source.clone();
                        // Every answer from one clone must be internally
                        // consistent with exactly that generation.
                        for v in 0..16 {
                            let d = generation.cached().query(3, v);
                            let want = if src == "a" { a_ans[v] } else { b_ans[v] };
                            assert_eq!(d, want, "generation {src} answered inconsistently");
                        }
                    }
                });
            }
            let handle = &handle;
            scope.spawn(move || {
                for i in 0..50 {
                    let (oracle, name) =
                        if i % 2 == 0 { (b.clone(), "b") } else { (a.clone(), "a") };
                    let info = SnapshotInfo::in_process(&oracle, name);
                    handle.swap(Generation::new(oracle, info, 64));
                }
            });
        });
    }

    #[test]
    fn snapshot_info_variants_describe_their_origin() {
        let oracle = build_demo(12, 9, 0.5).unwrap();
        let bytes = cc_oracle::serde::to_bytes_created_at(&oracle, 1_753_000_000);
        let header = cc_oracle::serde::peek_header(&bytes).unwrap();

        let from_file = SnapshotInfo::from_header(&header, "/tmp/x.snap");
        assert_eq!(from_file.version, cc_oracle::serde::SNAPSHOT_VERSION);
        assert_eq!(from_file.created_unix_secs, 1_753_000_000);
        assert_eq!(from_file.source, "/tmp/x.snap");

        let built = SnapshotInfo::in_process(&oracle, "demo");
        // Same artifact ⇒ same build id, regardless of how it arrived.
        assert_eq!(built.build_id, from_file.build_id);
        assert_eq!(built.created_unix_secs, 0);

        // A shard's info carries the shard file's own id: distinct from the
        // monolithic build id, stable across loads of the same slice.
        let shards = cc_oracle::ShardedArtifact::partition(&oracle, 2).unwrap().into_shards();
        let shard_bytes = cc_oracle::serde::to_shard_bytes_created_at(&shards[0], 7);
        let shard_header = cc_oracle::serde::peek_shard_header(&shard_bytes).unwrap();
        let from_shard = SnapshotInfo::from_shard_header(&shard_header, "/tmp/s0.snap");
        assert_eq!(from_shard.version, cc_oracle::serde::SNAPSHOT_VERSION);
        assert_ne!(from_shard.build_id, from_file.build_id);
        assert_eq!(from_shard.build_id, SnapshotInfo::in_process_shard(&shards[0], "x").build_id);
        assert_eq!(shard_header.set_build_id(), from_file.build_id);
    }

    #[test]
    fn shard_generations_swap_independently() {
        let oracle = build_demo(20, 3, 0.5).unwrap();
        let shards = cc_oracle::ShardedArtifact::partition(&oracle, 2).unwrap().into_shards();
        let handles: Vec<ReloadHandle<ShardGeneration>> = shards
            .iter()
            .map(|s| {
                ReloadHandle::new(ShardGeneration::new(
                    s.clone(),
                    SnapshotInfo::in_process_shard(s, "set-a"),
                ))
            })
            .collect();

        let held = handles[0].current();
        handles[0].swap(ShardGeneration::new(
            shards[0].clone(),
            SnapshotInfo::in_process_shard(&shards[0], "set-b"),
        ));
        // The pre-swap clone still names the old source; shard 1 untouched.
        assert_eq!(held.info().source, "set-a");
        assert_eq!(handles[0].current().info().source, "set-b");
        assert_eq!(handles[1].current().info().source, "set-a");
        assert_eq!(handles[1].current().shard().index(), 1);
    }
}
