//! Atomic hot-swap of the served artifact: a [`ReloadHandle`] lets the
//! request path keep answering on the current snapshot while a new one is
//! loaded, validated, and swapped in — with zero dropped requests.
//!
//! A [`Generation`] is one immutable serving unit: **any**
//! [`QueryBackend`] (a monolithic oracle, a shard router — erased to
//! `Box<dyn QueryBackend>` by the server) behind its own
//! [`CachingOracle`], plus the identity of the snapshot(s) it came from.
//! Because the cache wraps the backend generically, the router tier gets
//! the same result cache the monolith always had, and a swap replaces
//! backend + cache as one unit — answers from an old artifact can never
//! leak into a new generation. What *does* carry over is heat:
//! [`Generation::warmed_from`] replays the hottest keys of the outgoing
//! cache against the **new** backend, so the hit rate doesn't fall off a
//! cliff at every reload.
//!
//! The build image has no `arc-swap` crate, so the handle is an
//! `RwLock<Arc<Generation>>` used as a pointer cell: readers take the read
//! lock only long enough to clone the `Arc` (a refcount bump, never held
//! across a query), and a swap takes the write lock only to replace the
//! pointer. In-flight requests that already cloned the old generation
//! finish on the old artifact; its memory is freed when the last clone
//! drops.

use std::sync::{Arc, PoisonError, RwLock};
use std::time::Instant;

use cc_oracle::serde::{ShardHeader, SnapshotHeader};
use cc_oracle::shard::OracleShard;
use cc_oracle::{BackendDescriptor, CachingOracle, DistanceOracle, QueryBackend};
use cc_telemetry::Histogram;

/// Identity of a serving artifact, as reported by `/stats` and
/// `/artifact`: snapshot format version, build id (payload checksum), when
/// the snapshot was written, and where it came from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotInfo {
    /// Snapshot format version the artifact was loaded from (the current
    /// `serde::SNAPSHOT_VERSION` for in-process builds).
    pub version: u32,
    /// Stable artifact identity: the payload checksum as 16 hex digits.
    /// Identical artifacts share a build id; any payload difference
    /// changes it.
    pub build_id: String,
    /// Unix timestamp (seconds) the snapshot was written; `0` when unknown
    /// (in-process builds that never touched disk).
    pub created_unix_secs: u64,
    /// Where the artifact came from: a snapshot path, or `"demo"` /
    /// `"in-process"` for built-not-loaded oracles.
    pub source: String,
}

impl SnapshotInfo {
    /// Info for an artifact loaded from a versioned snapshot at `source`.
    pub fn from_header(header: &SnapshotHeader, source: impl Into<String>) -> SnapshotInfo {
        SnapshotInfo {
            version: header.version,
            build_id: header.build_id(),
            created_unix_secs: header.created_unix_secs,
            source: source.into(),
        }
    }

    /// Info synthesized for an oracle built in-process (never snapshotted):
    /// current format version, build id computed from the payload.
    pub fn in_process(oracle: &DistanceOracle, source: impl Into<String>) -> SnapshotInfo {
        SnapshotInfo {
            version: cc_oracle::serde::SNAPSHOT_VERSION,
            build_id: format!("{:016x}", cc_oracle::serde::payload_checksum(oracle)),
            created_unix_secs: 0,
            source: source.into(),
        }
    }

    /// Info for one shard loaded from a per-shard snapshot at `source`.
    /// `build_id` is the shard file's own checksum (distinct per slice);
    /// the set-wide identity is the shard's set id.
    pub fn from_shard_header(header: &ShardHeader, source: impl Into<String>) -> SnapshotInfo {
        SnapshotInfo {
            version: header.version,
            build_id: header.build_id(),
            created_unix_secs: header.created_unix_secs,
            source: source.into(),
        }
    }

    /// Info synthesized for a shard partitioned in-process (never
    /// snapshotted).
    pub fn in_process_shard(shard: &OracleShard, source: impl Into<String>) -> SnapshotInfo {
        let bytes = cc_oracle::serde::to_shard_bytes_created_at(shard, 0);
        // cc-lint: allow(no_panic) -- bytes come from to_shard_bytes one line up; a parse failure is a serde bug, not an input condition
        let header = cc_oracle::serde::peek_shard_header(&bytes).expect("self-written shard bytes");
        SnapshotInfo::from_shard_header(&header, source)
    }
}

/// How many of the outgoing cache's hottest keys a reload replays into the
/// incoming generation's cache (see [`Generation::warmed_from`]).
pub const WARM_KEYS: usize = 1024;

/// One immutable serving generation: a [`QueryBackend`] behind its result
/// cache, plus the identity of the snapshot(s) it came from. A reload
/// builds a fresh `Generation` and swaps it in whole; the cache starts
/// empty (answers from the old artifact must not leak into the new one)
/// but can be pre-warmed with [`Generation::warmed_from`].
///
/// Generic over the backend type; the server erases to the default
/// `Box<dyn QueryBackend>`, tests often use a concrete
/// [`DistanceOracle`].
pub struct Generation<B: QueryBackend = Box<dyn QueryBackend>> {
    cached: CachingOracle<B>,
    info: SnapshotInfo,
    shards: Vec<Arc<OracleShard>>,
    shard_infos: Vec<SnapshotInfo>,
    warmed_keys: u64,
}

impl<B: QueryBackend> Generation<B> {
    /// Wraps `backend` for serving with a fresh cache of `cache_capacity`
    /// entries (`0` disables caching).
    pub fn new(backend: B, info: SnapshotInfo, cache_capacity: usize) -> Generation<B> {
        Generation {
            cached: CachingOracle::new(backend, cache_capacity),
            info,
            shards: Vec::new(),
            shard_infos: Vec::new(),
            warmed_keys: 0,
        }
    }

    /// [`Generation::new`] for a sharded backend, carrying the shared
    /// slices (so a single-shard reload can rebuild the router without
    /// deep copies) and their per-file identities.
    pub fn with_shards(
        backend: B,
        info: SnapshotInfo,
        shards: Vec<Arc<OracleShard>>,
        shard_infos: Vec<SnapshotInfo>,
        cache_capacity: usize,
    ) -> Generation<B> {
        Generation {
            cached: CachingOracle::new(backend, cache_capacity),
            info,
            shards,
            shard_infos,
            warmed_keys: 0,
        }
    }

    /// Replays up to `limit` of `donor`'s hottest cached pairs into this
    /// generation's cache, **recomputed on this generation's backend** (a
    /// warm-up can never leak a stale answer), and records the count for
    /// `/stats`. Call between loading the new generation and swapping it
    /// in.
    pub fn warmed_from<D: QueryBackend>(mut self, donor: &Generation<D>, limit: usize) -> Self {
        let keys = donor.cached.hottest_keys(limit);
        self.warmed_keys = self.cached.warm(&keys) as u64;
        self
    }

    /// The cache-fronted query interface — the one the request path uses.
    pub fn cached(&self) -> &CachingOracle<B> {
        &self.cached
    }

    /// The backend behind the cache.
    pub fn backend(&self) -> &B {
        self.cached.inner()
    }

    /// Number of nodes this generation serves.
    pub fn n(&self) -> usize {
        self.cached.n()
    }

    /// What this generation serves (mode, build parameters, shard layout,
    /// cache counters) — [`QueryBackend::descriptor`] through the cache.
    pub fn descriptor(&self) -> BackendDescriptor {
        self.cached.descriptor()
    }

    /// Identity of the snapshot this generation was loaded from (for a
    /// shard set: the set-level identity).
    pub fn info(&self) -> &SnapshotInfo {
        &self.info
    }

    /// The shared slices of a sharded generation, in slot order; empty for
    /// a monolith.
    pub fn shards(&self) -> &[Arc<OracleShard>] {
        &self.shards
    }

    /// Per-slice snapshot identities, parallel to [`Generation::shards`].
    pub fn shard_infos(&self) -> &[SnapshotInfo] {
        &self.shard_infos
    }

    /// True when this generation routes a shard set.
    pub fn is_sharded(&self) -> bool {
        !self.shards.is_empty()
    }

    /// How many cache entries [`Generation::warmed_from`] replayed into
    /// this generation.
    pub fn warmed_keys(&self) -> u64 {
        self.warmed_keys
    }
}

impl Generation<Box<dyn QueryBackend>> {
    /// Wraps a [`crate::source::LoadedBackend`] — the output of
    /// [`crate::source::BackendSpec::load`] — for serving.
    pub fn from_loaded(loaded: crate::source::LoadedBackend, cache_capacity: usize) -> Generation {
        Generation {
            cached: CachingOracle::new(loaded.backend, cache_capacity),
            info: loaded.info,
            shards: loaded.shards,
            shard_infos: loaded.shard_infos,
            warmed_keys: 0,
        }
    }
}

/// The swap point between the request path and reloads.
///
/// Generic over the generation's backend type: the server stores the
/// default `Generation` (over `Box<dyn QueryBackend>`), so one handle
/// serves every tier — monolith, router, cached or not.
///
/// # Example
///
/// ```
/// use cc_server::{Generation, ReloadHandle, SnapshotInfo};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let old = cc_server::source::build_demo(16, 1, 0.25)?;
/// let new = cc_server::source::build_demo(16, 2, 0.25)?;
/// let old_info = SnapshotInfo::in_process(&old, "demo");
/// let new_info = SnapshotInfo::in_process(&new, "demo-2");
///
/// let handle = ReloadHandle::new(Generation::new(old, old_info, 1024));
///
/// // The request path clones the current generation (a refcount bump)...
/// let serving = handle.current();
/// let before = serving.cached().try_query(0, 15)?;
///
/// // ...a reload swaps in a validated replacement atomically...
/// handle.swap(Generation::new(new, new_info, 1024));
///
/// // ...and the clone taken before the swap still answers on the old
/// // artifact, so an in-flight request never sees a half-swapped state.
/// assert_eq!(serving.cached().try_query(0, 15)?, before);
/// assert_eq!(handle.current().info().source, "demo-2");
/// # Ok(())
/// # }
/// ```
pub struct ReloadHandle<T = Generation> {
    current: RwLock<Arc<T>>,
    duration: Option<Arc<Histogram>>,
}

impl<T> ReloadHandle<T> {
    /// Starts with `initial` as the serving generation.
    pub fn new(initial: T) -> ReloadHandle<T> {
        ReloadHandle { current: RwLock::new(Arc::new(initial)), duration: None }
    }

    /// Sets the histogram [`swap_timed`](Self::swap_timed) records reload
    /// durations (nanoseconds) into — `cc_reload_duration_ns` when the
    /// server wires it up.
    pub fn set_duration_histogram(&mut self, duration: Arc<Histogram>) {
        self.duration = Some(duration);
    }

    /// The generation serving right now. The read lock is held only for
    /// the `Arc` clone, so this never blocks behind a load — only behind
    /// the pointer swap itself, which is a few instructions.
    pub fn current(&self) -> Arc<T> {
        Arc::clone(&self.current.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// Atomically replaces the serving generation, returning the previous
    /// one. Callers must fully load **and validate** the new artifact
    /// before calling this; in-flight requests holding the old `Arc`
    /// finish on the old artifact.
    pub fn swap(&self, next: T) -> Arc<T> {
        let mut slot = self.current.write().unwrap_or_else(PoisonError::into_inner);
        std::mem::replace(&mut *slot, Arc::new(next))
    }

    /// [`swap`](Self::swap), charging the whole reload — `started` should
    /// be taken before the load/validate/warm work, so the recorded
    /// duration covers load → validate → warm → swap — to the histogram
    /// set by [`set_duration_histogram`](Self::set_duration_histogram).
    pub fn swap_timed(&self, next: T, started: Instant) -> Arc<T> {
        let prev = self.swap(next);
        if let Some(duration) = &self.duration {
            duration.record(started.elapsed().as_nanos() as u64);
        }
        prev
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::build_demo;

    #[test]
    fn swap_is_atomic_and_old_readers_finish_on_the_old_artifact() {
        let a = build_demo(20, 3, 0.5).unwrap();
        let b = build_demo(20, 4, 0.5).unwrap();
        let a_answers: Vec<_> = (0..20).map(|v| a.try_query(0, v).unwrap()).collect();
        let b_answers: Vec<_> = (0..20).map(|v| b.try_query(0, v).unwrap()).collect();

        let handle =
            ReloadHandle::new(Generation::new(a.clone(), SnapshotInfo::in_process(&a, "a"), 64));
        let held = handle.current();
        let prev = handle.swap(Generation::new(b.clone(), SnapshotInfo::in_process(&b, "b"), 64));
        assert_eq!(prev.info().source, "a");

        // The pre-swap clone still serves A; fresh clones serve B.
        for v in 0..20 {
            assert_eq!(held.cached().try_query(0, v).unwrap(), a_answers[v]);
            assert_eq!(handle.current().cached().try_query(0, v).unwrap(), b_answers[v]);
        }
    }

    #[test]
    fn concurrent_readers_always_see_a_complete_generation() {
        let a = build_demo(16, 5, 0.5).unwrap();
        let b = build_demo(16, 6, 0.5).unwrap();
        let a_ans: Vec<_> = (0..16).map(|v| a.try_query(3, v).unwrap()).collect();
        let b_ans: Vec<_> = (0..16).map(|v| b.try_query(3, v).unwrap()).collect();
        let handle =
            ReloadHandle::new(Generation::new(a.clone(), SnapshotInfo::in_process(&a, "a"), 64));

        std::thread::scope(|scope| {
            for _ in 0..4 {
                let handle = &handle;
                let (a_ans, b_ans) = (&a_ans, &b_ans);
                scope.spawn(move || {
                    for _ in 0..2_000 {
                        let generation = handle.current();
                        let src = generation.info().source.clone();
                        // Every answer from one clone must be internally
                        // consistent with exactly that generation.
                        for v in 0..16 {
                            let d = generation.cached().try_query(3, v).unwrap();
                            let want = if src == "a" { a_ans[v] } else { b_ans[v] };
                            assert_eq!(d, want, "generation {src} answered inconsistently");
                        }
                    }
                });
            }
            let handle = &handle;
            scope.spawn(move || {
                for i in 0..50 {
                    let (oracle, name) =
                        if i % 2 == 0 { (b.clone(), "b") } else { (a.clone(), "a") };
                    let info = SnapshotInfo::in_process(&oracle, name);
                    handle.swap(Generation::new(oracle, info, 64));
                }
            });
        });
    }

    #[test]
    fn swap_timed_charges_the_reload_histogram() {
        let registry = cc_telemetry::Registry::new();
        let hist = registry.histogram("cc_reload_duration_ns", &[]);
        let a = build_demo(12, 3, 0.5).unwrap();
        let b = build_demo(12, 4, 0.5).unwrap();
        let mut handle =
            ReloadHandle::new(Generation::new(a.clone(), SnapshotInfo::in_process(&a, "a"), 64));
        handle.set_duration_histogram(Arc::clone(&hist));

        let started = Instant::now();
        let next = Generation::new(b.clone(), SnapshotInfo::in_process(&b, "b"), 64);
        let prev = handle.swap_timed(next, started);
        assert_eq!(prev.info().source, "a");
        assert_eq!(handle.current().info().source, "b");
        assert_eq!(hist.snapshot().count(), 1, "one reload, one recording");
    }

    #[test]
    fn snapshot_info_variants_describe_their_origin() {
        let oracle = build_demo(12, 9, 0.5).unwrap();
        let bytes = cc_oracle::serde::to_bytes_created_at(&oracle, 1_753_000_000);
        let header = cc_oracle::serde::peek_header(&bytes).unwrap();

        let from_file = SnapshotInfo::from_header(&header, "/tmp/x.snap");
        assert_eq!(from_file.version, cc_oracle::serde::SNAPSHOT_VERSION);
        assert_eq!(from_file.created_unix_secs, 1_753_000_000);
        assert_eq!(from_file.source, "/tmp/x.snap");

        let built = SnapshotInfo::in_process(&oracle, "demo");
        // Same artifact ⇒ same build id, regardless of how it arrived.
        assert_eq!(built.build_id, from_file.build_id);
        assert_eq!(built.created_unix_secs, 0);

        // A shard's info carries the shard file's own id: distinct from the
        // monolithic build id, stable across loads of the same slice.
        let shards = cc_oracle::ShardedArtifact::partition(&oracle, 2).unwrap().into_shards();
        let shard_bytes = cc_oracle::serde::to_shard_bytes_created_at(&shards[0], 7);
        let shard_header = cc_oracle::serde::peek_shard_header(&shard_bytes).unwrap();
        let from_shard = SnapshotInfo::from_shard_header(&shard_header, "/tmp/s0.snap");
        assert_eq!(from_shard.version, cc_oracle::serde::SNAPSHOT_VERSION);
        assert_ne!(from_shard.build_id, from_file.build_id);
        assert_eq!(from_shard.build_id, SnapshotInfo::in_process_shard(&shards[0], "x").build_id);
        assert_eq!(shard_header.set_build_id(), from_file.build_id);
    }

    #[test]
    fn generations_wrap_any_backend_and_describe_it() {
        let oracle = build_demo(20, 3, 0.5).unwrap();
        let info = SnapshotInfo::in_process(&oracle, "demo");

        // A concrete monolithic generation...
        let mono = Generation::new(oracle.clone(), info, 64);
        assert_eq!(mono.descriptor().mode, "mono");
        assert!(!mono.is_sharded());
        assert_eq!(mono.n(), 20);

        // ...and an erased sharded one through the same type.
        let shards = cc_oracle::ShardedArtifact::partition(&oracle, 2).unwrap().into_shards();
        let infos: Vec<SnapshotInfo> =
            shards.iter().map(|s| SnapshotInfo::in_process_shard(s, "in-process")).collect();
        let loaded = crate::source::LoadedBackend::sharded(shards, infos, "in-process").unwrap();
        let routed = Generation::from_loaded(loaded, 64);
        assert_eq!(routed.descriptor().mode, "router");
        assert!(routed.is_sharded());
        assert_eq!(routed.shards().len(), 2);
        assert_eq!(routed.shard_infos().len(), 2);
        for v in 0..20 {
            assert_eq!(
                routed.cached().try_query(0, v).unwrap(),
                mono.cached().try_query(0, v).unwrap()
            );
        }
        // The router generation's cache works: the loop above asked (0, 0)
        // then distinct pairs; re-ask one and the hit counter moves.
        let hits_before = routed.descriptor().cache.unwrap().hits;
        routed.cached().try_query(0, 5).unwrap();
        assert!(routed.descriptor().cache.unwrap().hits > hits_before);
    }

    #[test]
    fn warmed_from_replays_the_donor_heat_onto_the_new_backend() {
        let a = build_demo(24, 3, 0.5).unwrap();
        let b = build_demo(24, 4, 0.5).unwrap();
        let old = Generation::new(a.clone(), SnapshotInfo::in_process(&a, "a"), 512);
        let hot: Vec<(usize, usize)> = (0..10).map(|i| (i, (i * 5 + 1) % 24)).collect();
        for &(u, v) in &hot {
            old.cached().try_query(u, v).unwrap();
        }

        let fresh = Generation::new(b.clone(), SnapshotInfo::in_process(&b, "b"), 512)
            .warmed_from(&old, WARM_KEYS);
        assert_eq!(fresh.warmed_keys(), old.descriptor().cache.unwrap().len as u64);
        // The warmed entries answer with B's values (recomputed, never
        // copied from A) and hit without missing.
        let misses_before = fresh.descriptor().cache.unwrap().misses;
        for &(u, v) in &hot {
            assert_eq!(fresh.cached().try_query(u, v).unwrap(), b.try_query(u, v).unwrap());
        }
        assert_eq!(fresh.descriptor().cache.unwrap().misses, misses_before);

        // A donor larger than the target: out-of-range keys are skipped.
        let big = build_demo(40, 5, 0.5).unwrap();
        let big_gen = Generation::new(big.clone(), SnapshotInfo::in_process(&big, "big"), 512);
        big_gen.cached().try_query(30, 39).unwrap();
        big_gen.cached().try_query(0, 1).unwrap();
        let small = Generation::new(a.clone(), SnapshotInfo::in_process(&a, "a"), 512)
            .warmed_from(&big_gen, WARM_KEYS);
        assert_eq!(small.warmed_keys(), 1, "only the in-range key is warmable");
    }
}
