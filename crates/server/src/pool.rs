//! A bounded worker thread-pool: fixed worker count, bounded job queue,
//! non-blocking submission, graceful shutdown.
//!
//! This is the seam where an async runtime plugs in later: the acceptor
//! hands connections to [`WorkerPool::try_submit`] and sheds load when the
//! queue is full, exactly the contract an executor would satisfy.

use std::sync::mpsc::{self, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use cc_telemetry::Gauge;

/// Why a job was not accepted.
#[derive(Debug)]
pub enum SubmitError<T> {
    /// The queue is at capacity; the job is handed back for load-shedding.
    Full(T),
    /// The pool has shut down.
    Closed(T),
}

/// A fixed-size pool of worker threads draining a bounded job queue.
pub struct WorkerPool<T> {
    tx: Option<SyncSender<T>>,
    workers: Vec<JoinHandle<()>>,
    depth: Option<Gauge>,
}

impl<T: Send + 'static> WorkerPool<T> {
    /// Spawns `workers` threads that run `handler` on every submitted job.
    /// At most `backlog` jobs wait in the queue; submission never blocks.
    pub fn new<F>(name: &str, workers: usize, backlog: usize, handler: F) -> WorkerPool<T>
    where
        F: Fn(T) + Send + Sync + 'static,
    {
        Self::build(name, workers, backlog, None, handler)
    }

    /// Like [`new`](Self::new), but tracks the number of queued (accepted
    /// but not yet dequeued) jobs in `depth` — incremented on a successful
    /// [`try_submit`](Self::try_submit), decremented when a worker picks
    /// the job up.
    pub fn with_queue_gauge<F>(
        name: &str,
        workers: usize,
        backlog: usize,
        depth: Gauge,
        handler: F,
    ) -> WorkerPool<T>
    where
        F: Fn(T) + Send + Sync + 'static,
    {
        Self::build(name, workers, backlog, Some(depth), handler)
    }

    fn build<F>(
        name: &str,
        workers: usize,
        backlog: usize,
        depth: Option<Gauge>,
        handler: F,
    ) -> WorkerPool<T>
    where
        F: Fn(T) + Send + Sync + 'static,
    {
        let (tx, rx): (SyncSender<T>, Receiver<T>) = mpsc::sync_channel(backlog.max(1));
        // std's Receiver is single-consumer; a mutex turns it into a shared
        // work queue (held only for the duration of one `recv`).
        let rx = Arc::new(Mutex::new(rx));
        let handler = Arc::new(handler);
        let workers = (0..workers.max(1))
            .map(|i| {
                let rx = Arc::clone(&rx);
                let handler = Arc::clone(&handler);
                let depth = depth.clone();
                std::thread::Builder::new()
                    .name(format!("{name}-{i}"))
                    .spawn(move || loop {
                        // Take the lock only to dequeue, then release it
                        // before running the (possibly long) handler.
                        let job = match rx.lock() {
                            Ok(guard) => guard.recv(),
                            Err(_) => break,
                        };
                        match job {
                            Ok(job) => {
                                if let Some(depth) = &depth {
                                    depth.dec();
                                }
                                handler(job);
                            }
                            Err(_) => break, // all senders dropped: shutdown
                        }
                    })
                    // cc-lint: allow(no_panic) -- worker spawn happens once at pool construction, before any request is accepted; failing to spawn is fatal by design
                    .expect("spawn worker thread")
            })
            .collect();
        WorkerPool { tx: Some(tx), workers, depth }
    }

    /// Enqueues `job` without blocking.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Full`] when the queue is at capacity (the caller
    /// sheds the load) and [`SubmitError::Closed`] after shutdown; both
    /// return the job.
    pub fn try_submit(&self, job: T) -> Result<(), SubmitError<T>> {
        match &self.tx {
            None => Err(SubmitError::Closed(job)),
            Some(tx) => {
                // Count the job before handing it over: a worker may
                // dequeue (and decrement) the instant `try_send` returns,
                // and incrementing afterwards would let the gauge read -1.
                if let Some(depth) = &self.depth {
                    depth.inc();
                }
                match tx.try_send(job) {
                    Ok(()) => Ok(()),
                    Err(e) => {
                        if let Some(depth) = &self.depth {
                            depth.dec();
                        }
                        match e {
                            TrySendError::Full(job) => Err(SubmitError::Full(job)),
                            TrySendError::Disconnected(job) => Err(SubmitError::Closed(job)),
                        }
                    }
                }
            }
        }
    }

    /// Stops accepting jobs, drains the queue, and joins every worker.
    pub fn shutdown(&mut self) {
        self.tx = None; // closes the channel; workers exit after the drain
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl<T> Drop for WorkerPool<T> {
    fn drop(&mut self) {
        self.tx = None;
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::Duration;

    #[test]
    fn every_submitted_job_runs_and_shutdown_joins() {
        let done = Arc::new(AtomicU64::new(0));
        let mut pool = {
            let done = Arc::clone(&done);
            WorkerPool::new("t", 4, 16, move |x: u64| {
                done.fetch_add(x, Ordering::Relaxed);
            })
        };
        let mut submitted = 0u64;
        for i in 0..100u64 {
            // The queue is bounded, so retry until accepted.
            let mut job = i;
            loop {
                match pool.try_submit(job) {
                    Ok(()) => break,
                    Err(SubmitError::Full(j)) => {
                        job = j;
                        std::thread::sleep(Duration::from_micros(50));
                    }
                    Err(SubmitError::Closed(_)) => panic!("pool closed early"),
                }
            }
            submitted += i;
        }
        pool.shutdown();
        assert_eq!(done.load(Ordering::Relaxed), submitted);
        // Submissions after shutdown are rejected, not lost silently.
        assert!(matches!(pool.try_submit(1), Err(SubmitError::Closed(1))));
    }

    #[test]
    fn full_queue_sheds_instead_of_blocking() {
        let gate = Arc::new(Mutex::new(()));
        let held = gate.lock().unwrap();
        let pool = {
            let gate = Arc::clone(&gate);
            WorkerPool::new("t", 1, 1, move |_x: u64| {
                let _guard = gate.lock();
            })
        };
        // First job occupies the worker (blocked on the gate), second fills
        // the queue; the third must be shed immediately.
        pool.try_submit(1).unwrap();
        // Wait for the worker to actually pick up job 1.
        let t = std::time::Instant::now();
        loop {
            if pool.try_submit(2).is_ok() {
                break;
            }
            assert!(t.elapsed() < Duration::from_secs(5), "worker never started");
            std::thread::sleep(Duration::from_micros(100));
        }
        let mut shed = false;
        let t = std::time::Instant::now();
        while t.elapsed() < Duration::from_secs(5) {
            match pool.try_submit(3) {
                Err(SubmitError::Full(3)) => {
                    shed = true;
                    break;
                }
                Ok(()) => continue, // queue had room again; keep pressing
                Err(e) => panic!("unexpected {e:?}"),
            }
        }
        assert!(shed, "a full bounded queue must shed load");
        drop(held);
    }

    #[test]
    fn queue_gauge_tracks_pending_jobs() {
        let registry = cc_telemetry::Registry::new();
        let depth = registry.gauge("pool_queue_depth", &[]);
        let gate = Arc::new(Mutex::new(()));
        let held = gate.lock().unwrap();
        let mut pool = {
            let gate = Arc::clone(&gate);
            WorkerPool::with_queue_gauge("t", 1, 4, depth.clone(), move |_x: u64| {
                let _guard = gate.lock();
            })
        };
        pool.try_submit(1).unwrap();
        // Wait for the lone worker to dequeue job 1 (and block on the gate).
        let t = std::time::Instant::now();
        while depth.get() > 0.0 {
            assert!(t.elapsed() < Duration::from_secs(5), "worker never dequeued");
            std::thread::sleep(Duration::from_micros(100));
        }
        // Jobs 2 and 3 sit in the queue while the worker holds the gate.
        pool.try_submit(2).unwrap();
        pool.try_submit(3).unwrap();
        assert_eq!(depth.get(), 2.0);
        drop(held);
        pool.shutdown();
        assert_eq!(depth.get(), 0.0, "a drained queue reads zero");
    }
}
