//! The epoll transport: one reactor thread owns the listener and every
//! idle keep-alive connection, and only *ready* sockets are handed to the
//! worker pool.
//!
//! This inverts the poll transport's cost model. There, a worker is pinned
//! to a connection for its whole life, so idle keep-alive peers occupy the
//! bounded pool and new accepts wait on a 500 µs sleep-poll. Here the
//! kernel tells us which sockets have bytes: accepts happen the moment a
//! SYN lands, idle connections cost one parked map entry, and the pool's
//! workers only ever run with a request already buffered. The handler,
//! HTTP, and pool layers are untouched — the reactor is purely a smarter
//! front end on the same [`WorkerPool`] seam.
//!
//! Flow: `epoll_wait` → ready listener? accept a burst, park each new
//! connection → ready connection? unregister it and submit to the pool →
//! worker serves every pipelined request ([`serve_ready`]) and sends the
//! still-open connection back over a channel, waking the reactor to
//! re-park it. Connections idle past the read timeout are swept. Shutdown
//! ([`crate::ServerHandle::shutdown`]) wakes the reactor via its
//! [`cc_reactor::Waker`]; it drops parked connections and joins the pool.

use std::net::TcpListener;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

use cc_reactor::Poller;

use crate::handlers::AppState;
use crate::ServerConfig;

/// Token under which the listening socket is registered; connection tokens
/// start above it and are never reused for the listener.
pub(crate) const LISTENER_TOKEN: u64 = 0;

#[cfg(unix)]
mod imp {
    use super::{AppState, Poller, ServerConfig, TcpListener, LISTENER_TOKEN};
    use std::collections::HashMap;
    use std::io;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{mpsc, Arc, Mutex};
    use std::time::{Duration, Instant};

    use crate::pool::{SubmitError, WorkerPool};
    use crate::server::{
        classify_accept_error, serve_ready, shed, AcceptBackoff, AcceptErrorClass, Conn,
    };
    use cc_reactor::Event;

    /// Upper bound on one `epoll_wait`, so the shutdown flag and the idle
    /// sweep are checked regularly even on a silent server.
    const MAX_WAIT: Duration = Duration::from_millis(500);

    struct Parked {
        conn: Conn,
        deadline: Instant,
    }

    /// What `accept_burst` left the listener in.
    enum AcceptOutcome {
        /// Drained to `WouldBlock`; the listener stays registered.
        Drained,
        /// Kernel out of resources (EMFILE & co): the listener was
        /// deregistered so level-triggered epoll stops re-firing it; the
        /// reactor re-registers it once the deadline passes. The reactor
        /// thread itself never sleeps — parked connections keep serving
        /// while accepts are deferred.
        Deferred(Instant),
        /// Fatal accept error: the listener is retired for good (parked
        /// connections still serve).
        Retired,
    }

    pub(super) fn reactor_loop(
        listener: &TcpListener,
        config: &ServerConfig,
        state: &Arc<AppState>,
        shutdown: &Arc<AtomicBool>,
        poller: &Poller,
    ) {
        let waker = poller.waker();
        // Workers return still-open connections on this channel; `Sender`
        // is not `Sync`, hence the mutex (uncontended in practice — sends
        // are short and the reactor never holds it).
        let (done_tx, done_rx) = mpsc::channel::<Conn>();
        let done_tx = Arc::new(Mutex::new(done_tx));

        // The pool owns the connection handlers; dropping it at the end of
        // this function drains the queue and joins the workers.
        let pool: WorkerPool<Conn> = {
            let state = Arc::clone(state);
            let shutdown = Arc::clone(shutdown);
            let max_body = config.max_body_bytes;
            let read_timeout = config.read_timeout;
            let done_tx = Arc::clone(&done_tx);
            let depth = state.registry().gauge("cc_pool_queue_depth", &[]);
            WorkerPool::with_queue_gauge(
                "cc-serve-worker",
                config.workers,
                config.backlog,
                depth,
                move |conn| {
                    if let Some(conn) = serve_ready(&state, conn, max_body, read_timeout, &shutdown)
                    {
                        if shutdown.load(Ordering::Acquire) {
                            return; // shutting down: close instead of re-parking
                        }
                        let sent = done_tx.lock().map(|tx| tx.send(conn).is_ok()).unwrap_or(false);
                        if sent {
                            waker.wake();
                        }
                    }
                },
            )
        };

        let idle = config.read_timeout;
        let mut parked: HashMap<u64, Parked> = HashMap::new();
        let mut next_token: u64 = LISTENER_TOKEN + 1;
        let mut events: Vec<Event> = Vec::new();
        let mut backoff = AcceptBackoff::new();
        let mut accepting = true;
        // While `Some`, the listener is deregistered (overload backoff);
        // the deadline is folded into the wait timeout below so deferral
        // never blocks the reactor thread itself.
        let mut resume_accept_at: Option<Instant> = None;

        while !shutdown.load(Ordering::Acquire) {
            if let Some(at) = resume_accept_at {
                if Instant::now() >= at {
                    resume_accept_at = None;
                    use std::os::fd::AsRawFd;
                    if poller.add(listener.as_raw_fd(), LISTENER_TOKEN).is_err() {
                        eprintln!("cc-serve: could not re-register listener, no longer accepting");
                        accepting = false;
                    }
                }
            }
            let next_deadline = parked.values().map(|p| p.deadline).chain(resume_accept_at).min();
            let timeout = next_deadline
                .map_or(MAX_WAIT, |d| d.saturating_duration_since(Instant::now()).min(MAX_WAIT));
            events.clear();
            if poller.wait(&mut events, Some(timeout)).is_err() {
                // epoll itself failed; nothing event-driven can continue.
                eprintln!("cc-serve: reactor wait failed, stopping transport");
                break;
            }
            for ev in &events {
                if ev.token == LISTENER_TOKEN {
                    if accepting {
                        match accept_burst(
                            listener,
                            config,
                            state,
                            poller,
                            &mut parked,
                            &mut next_token,
                            &mut backoff,
                        ) {
                            AcceptOutcome::Drained => {}
                            AcceptOutcome::Deferred(at) => resume_accept_at = Some(at),
                            AcceptOutcome::Retired => accepting = false,
                        }
                    }
                } else if let Some(p) = parked.remove(&ev.token) {
                    let _ = poller.delete(p.conn.fd());
                    // Dispatch even when `closed` was flagged: RDHUP can
                    // arrive together with the final request bytes
                    // (half-close); the worker sees EOF after serving them.
                    match pool.try_submit(p.conn) {
                        Ok(()) => {}
                        Err(SubmitError::Full(mut conn) | SubmitError::Closed(mut conn)) => {
                            shed(state, &mut conn.writer);
                        }
                    }
                }
            }
            // Re-park connections the workers finished with. Tokens are
            // per-parking, not per-connection: a fresh one each time keeps
            // stale events (already-removed tokens) harmless.
            while let Ok(conn) = done_rx.try_recv() {
                let token = next_token;
                next_token += 1;
                park(poller, &mut parked, conn, token, Instant::now() + idle);
            }
            // Idle sweep: cut loose keep-alive peers past the read timeout,
            // exactly like the poll transport's per-socket read timeout.
            let now = Instant::now();
            let expired: Vec<u64> =
                parked.iter().filter(|(_, p)| p.deadline <= now).map(|(token, _)| *token).collect();
            for token in expired {
                if let Some(p) = parked.remove(&token) {
                    let _ = poller.delete(p.conn.fd());
                }
            }
        }

        // Shutdown: parked peers are dropped (idle by definition), the pool
        // drains and joins, then anything workers returned meanwhile drops.
        for (_, p) in parked.drain() {
            let _ = poller.delete(p.conn.fd());
        }
        drop(pool);
        while done_rx.try_recv().is_ok() {}
    }

    /// Registers a connection for readiness and remembers its deadline; a
    /// registration failure just closes the connection.
    fn park(
        poller: &Poller,
        parked: &mut HashMap<u64, Parked>,
        conn: Conn,
        token: u64,
        deadline: Instant,
    ) {
        if poller.add(conn.fd(), token).is_ok() {
            parked.insert(token, Parked { conn, deadline });
        }
    }

    /// Accepts until the listener would block. See [`AcceptOutcome`] for
    /// the three ways out; on overload and on fatal errors the listener is
    /// deregistered here, never slept on.
    fn accept_burst(
        listener: &TcpListener,
        config: &ServerConfig,
        state: &AppState,
        poller: &Poller,
        parked: &mut HashMap<u64, Parked>,
        next_token: &mut u64,
        backoff: &mut AcceptBackoff,
    ) -> AcceptOutcome {
        loop {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    backoff.reset();
                    // The listener is non-blocking; the connection is
                    // served blocking by whichever worker gets it.
                    if stream.set_nonblocking(false).is_err() {
                        continue;
                    }
                    if let Ok(conn) = Conn::new(stream, config.read_timeout) {
                        let token = *next_token;
                        *next_token += 1;
                        // Fresh connections are parked, not dispatched: the
                        // first bytes are typically an RTT away, and level-
                        // triggered epoll fires immediately if they beat us.
                        park(poller, parked, conn, token, Instant::now() + config.read_timeout);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return AcceptOutcome::Drained,
                Err(e) => {
                    state.count_accept_error();
                    match classify_accept_error(&e) {
                        AcceptErrorClass::Transient => {}
                        AcceptErrorClass::Overload => {
                            // Accepting is pointless while the kernel is out
                            // of resources, but sleeping here would stall
                            // every parked connection. Deregister the
                            // listener (level-triggered epoll would re-fire
                            // it instantly otherwise) and let the reactor
                            // re-register it after the backoff deadline.
                            use std::os::fd::AsRawFd;
                            let _ = poller.delete(listener.as_raw_fd());
                            return AcceptOutcome::Deferred(Instant::now() + backoff.next());
                        }
                        AcceptErrorClass::Fatal => {
                            eprintln!("cc-serve: fatal accept error, no longer accepting: {e}");
                            use std::os::fd::AsRawFd;
                            let _ = poller.delete(listener.as_raw_fd());
                            return AcceptOutcome::Retired;
                        }
                    }
                }
            }
        }
    }
}

/// Runs the epoll transport until shutdown. See the module docs for the
/// event flow; the portable poll loop is `crate::server`'s `accept_loop`.
#[cfg(unix)]
pub(crate) fn reactor_loop(
    listener: &TcpListener,
    config: &ServerConfig,
    state: &Arc<AppState>,
    shutdown: &Arc<AtomicBool>,
    poller: &Poller,
) {
    imp::reactor_loop(listener, config, state, shutdown, poller);
}

/// Off-unix stand-in. Unreachable in practice — transport resolution never
/// yields a poller here — but if it somehow runs, serve via the poll loop
/// rather than going dark.
#[cfg(not(unix))]
pub(crate) fn reactor_loop(
    listener: &TcpListener,
    config: &ServerConfig,
    state: &Arc<AppState>,
    shutdown: &Arc<AtomicBool>,
    _poller: &Poller,
) {
    crate::server::accept_loop(listener, config, state, shutdown);
}
