//! Router-tier end-to-end over a real TCP socket: three per-shard
//! snapshots served by `Server::start_sharded`, checked against Dijkstra
//! ground truth and the monolithic oracle, hammered while a single shard
//! hot-reloads (zero non-200s), and startup / reload failure modes pinned
//! down (a broken shard set never serves; a failed shard reload keeps the
//! old generation).

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};

use cc_clique::Clique;
use cc_graph::{generators, reference, Graph};
use cc_oracle::shard::combine;
use cc_oracle::{serde, DistanceOracle, OracleBuilder, ShardedArtifact};
use cc_server::{BlockingClient, Server, ServerConfig, ServerHandle};

const N: usize = 30;
const SHARDS: usize = 3;

fn build_oracle(seed: u64) -> (Graph, DistanceOracle) {
    let g = generators::gnp_weighted(N, 0.15, 30, seed).unwrap();
    let mut clique = Clique::new(N);
    let oracle = OracleBuilder::new().seed(seed).build(&mut clique, &g).unwrap();
    (g, oracle)
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("cc-serve-router-e2e").join(name);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Writes `oracle`'s shard set into `dir` and starts a router over it.
fn start_router(
    oracle: &DistanceOracle,
    dir: &std::path::Path,
    workers: usize,
) -> (Vec<PathBuf>, ServerHandle) {
    let paths = cc_server::source::write_shard_snapshots(oracle, SHARDS, dir).unwrap();
    let loaded = cc_server::source::load_shard_set(&paths).unwrap();
    let config = ServerConfig::default().with_addr("127.0.0.1:0").with_workers(workers);
    let handle = Server::start_sharded(&config, loaded).expect("router start");
    (paths, handle)
}

/// Extracts `"distance":<number|null>` from a `/distance` response body.
fn parse_distance(body: &[u8]) -> Option<u64> {
    let text = std::str::from_utf8(body).expect("utf-8 body");
    let rest = text.split_once("\"distance\":").expect("distance key").1;
    let token: String = rest
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == 'n' || *c == 'u' || *c == 'l')
        .collect();
    if token.starts_with("null") {
        None
    } else {
        Some(token.parse().expect("numeric distance"))
    }
}

#[test]
fn cross_shard_distance_and_mixed_batch_match_monolith_and_dijkstra() {
    let (g, oracle) = build_oracle(11);
    let (paths, handle) = start_router(&oracle, &temp_dir("verify"), 4);
    let mut client = BlockingClient::connect(handle.addr()).unwrap();
    let bound = oracle.stretch_bound();

    // Every pair over the wire: bit-identical to the monolith, and sound
    // against Dijkstra ground truth. With 3 shards over 30 nodes this
    // covers same-shard, adjacent-shard, and far-shard pairs.
    for u in 0..N {
        let exact = reference::dijkstra(&g, u);
        for v in (0..N).step_by(3) {
            let (status, body) = client.get(&format!("/distance?u={u}&v={v}")).unwrap();
            assert_eq!(status, 200);
            let served = parse_distance(&body);
            assert_eq!(served, oracle.try_query(u, v).unwrap().value(), "pair ({u},{v})");
            let d = exact[v].expect("gnp(30, 0.15) is connected");
            let est = served.expect("connected pair must be finite over the wire");
            assert!(est >= d, "underestimate over the wire: {est} < {d}");
            assert!(
                est as f64 <= bound * d as f64 + 1e-9,
                "stretch violated over the wire: {est} > {bound} * {d}"
            );
        }
    }

    // A batch deliberately mixing same-shard and cross-shard pairs.
    let pairs: Vec<(usize, usize)> = (0..60).map(|i| (i % N, (i * 17 + 7) % N)).collect();
    let body: String = pairs.iter().map(|&(u, v)| format!("{u} {v}\n")).collect();
    let (status, resp) = client.post("/batch", body.as_bytes()).unwrap();
    assert_eq!(status, 200);
    let want: Vec<String> = oracle
        .try_query_batch(&pairs)
        .unwrap()
        .iter()
        .map(|d| d.value().map_or("null".into(), |x| x.to_string()))
        .collect();
    assert_eq!(
        String::from_utf8(resp).unwrap(),
        format!("{{\"count\":60,\"distances\":[{}]}}", want.join(","))
    );

    // Router /stats and /artifact identify the tier and the set.
    let (_, stats) = client.get("/stats").unwrap();
    let stats = String::from_utf8(stats).unwrap();
    assert!(stats.contains("\"mode\":\"router\""), "stats: {stats}");
    assert!(stats.contains("\"shard_count\":3"), "stats: {stats}");
    assert!(stats.contains("\"set_uniform\":true"), "stats: {stats}");
    let set_id = format!("{:016x}", serde::payload_checksum(&oracle));
    assert!(stats.contains(&set_id), "stats must carry the set id: {stats}");
    let (_, artifact) = client.get("/artifact").unwrap();
    let artifact = String::from_utf8(artifact).unwrap();
    assert!(artifact.contains(&format!("\"n\":{N}")), "artifact: {artifact}");
    assert!(artifact.contains("\"owned_start\":20"), "artifact: {artifact}");

    // Out-of-range and malformed requests are clean 400s through the tier.
    assert_eq!(client.get(&format!("/distance?u=0&v={N}")).unwrap().0, 400);
    assert_eq!(client.post("/batch", b"0 nope\n").unwrap().0, 400);

    for p in paths {
        std::fs::remove_file(p).ok();
    }
    handle.shutdown();
}

/// The acceptance scenario: concurrent `/distance` traffic while shard 1
/// alternates between two artifact generations through `/reload?shard=1`.
/// Zero non-200s; pairs not touching shard 1 keep answering exactly the
/// base artifact; pairs touching shard 1 answer one of the two valid
/// combinations (never a blend of anything else).
#[test]
fn traffic_survives_single_shard_reloads_with_zero_errors() {
    let (_, a) = build_oracle(21);
    let (_, b) = build_oracle(47);
    let dir = temp_dir("rolling");
    let (paths, handle) = start_router(&a, &dir, 8);
    let addr = handle.addr();

    // Shard 1's replacement slice from artifact B, at a separate path.
    let b_shards = ShardedArtifact::partition(&b, SHARDS).unwrap().into_shards();
    let b1_path = dir.join("b-shard-1.snap");
    std::fs::write(&b1_path, serde::to_shard_bytes(&b_shards[1])).unwrap();
    let a_shards = ShardedArtifact::partition(&a, SHARDS).unwrap().into_shards();

    // Probe pairs: (u, v), both the untouched-shards kind and the
    // shard-1-crossing kind, with every acceptable answer precomputed.
    let plan = a_shards[0].plan();
    let pairs: Vec<(usize, usize)> = (0..N).map(|i| (i, (i * 13 + 5) % N)).collect();
    let acceptable: Vec<Vec<Option<u64>>> = pairs
        .iter()
        .map(|&(u, v)| {
            if u == v {
                return vec![Some(0)];
            }
            let (ou, ov) = (plan.owner(u), plan.owner(v));
            // Only shard 1 ever swaps, so a half owned by any other shard
            // always comes from set A; a half owned by shard 1 may come
            // from A or B — and the two halves are fetched independently,
            // so for a pair entirely inside shard 1 a swap can land
            // between the fetches (every mix is acceptable).
            let near_options: Vec<_> =
                if ou == 1 { vec![&a_shards[1], &b_shards[1]] } else { vec![&a_shards[ou]] };
            let far_options: Vec<_> =
                if ov == 1 { vec![&a_shards[1], &b_shards[1]] } else { vec![&a_shards[ov]] };
            let mut answers = Vec::new();
            for near in &near_options {
                for far in &far_options {
                    answers.push(combine(near.half_query(u, v), far.half_query(v, u)).value());
                }
            }
            answers
        })
        .collect();

    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        for t in 0..6usize {
            let (stop, pairs, acceptable) = (&stop, &pairs, &acceptable);
            scope.spawn(move || {
                let mut client = BlockingClient::connect(addr).unwrap();
                let mut i = t;
                while !stop.load(Ordering::Relaxed) {
                    let at = i % pairs.len();
                    let (u, v) = pairs[at];
                    let (status, body) = client.get(&format!("/distance?u={u}&v={v}")).unwrap();
                    assert_eq!(status, 200, "no request may fail during a shard reload");
                    let served = parse_distance(&body);
                    assert!(
                        acceptable[at].contains(&served),
                        "pair ({u},{v}) answered {served:?}, expected one of {:?}",
                        acceptable[at]
                    );
                    i += 1;
                }
            });
        }

        // The reloader: roll shard 1 back and forth between sets A and B.
        let reloads = 8usize;
        let mut reload_client = BlockingClient::connect(addr).unwrap();
        for round in 0..reloads {
            let path = if round % 2 == 0 { &b1_path } else { &paths[1] };
            let (status, body) = reload_client
                .post(&format!("/reload?shard=1&path={}", path.display()), b"")
                .unwrap();
            assert_eq!(
                status,
                200,
                "shard reload {round} failed: {}",
                String::from_utf8_lossy(&body)
            );
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
        stop.store(true, Ordering::Relaxed);

        // After an odd number of B-swaps... round 7 reloaded A1, so the
        // set is uniform again; the history is on the books.
        let (_, stats) = reload_client.get("/stats").unwrap();
        let stats = String::from_utf8(stats).unwrap();
        assert!(stats.contains(&format!("\"reloads\":{reloads}")), "stats: {stats}");
        assert!(stats.contains("\"reload_failures\":0"), "stats: {stats}");
        assert!(stats.contains("\"set_uniform\":true"), "stats: {stats}");
    });

    // While B's slice was in, /stats must have been able to say the set
    // was mixed: swap B1 in once more and check.
    let mut client = BlockingClient::connect(addr).unwrap();
    let (status, _) =
        client.post(&format!("/reload?shard=1&path={}", b1_path.display()), b"").unwrap();
    assert_eq!(status, 200);
    let (_, stats) = client.get("/stats").unwrap();
    let stats = String::from_utf8(stats).unwrap();
    assert!(stats.contains("\"set_uniform\":false"), "stats: {stats}");

    for p in paths {
        std::fs::remove_file(p).ok();
    }
    std::fs::remove_file(&b1_path).ok();
    handle.shutdown();
}

#[test]
fn broken_shard_sets_are_clean_startup_errors_never_a_serving_process() {
    let (_, oracle) = build_oracle(5);
    let dir = temp_dir("startup");
    let paths = cc_server::source::write_shard_snapshots(&oracle, SHARDS, &dir).unwrap();

    // A missing shard file.
    let missing = vec![paths[0].clone(), dir.join("gone.snap"), paths[2].clone()];
    let err = cc_server::source::load_shard_set(&missing).unwrap_err().to_string();
    assert!(err.contains("gone.snap"), "error must name the file: {err}");

    // A corrupt shard file (bit flip in the payload).
    let corrupt_path = dir.join("corrupt.snap");
    let mut bytes = std::fs::read(&paths[1]).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x20;
    std::fs::write(&corrupt_path, &bytes).unwrap();
    let corrupt = vec![paths[0].clone(), corrupt_path.clone(), paths[2].clone()];
    let err = cc_server::source::load_shard_set(&corrupt).unwrap_err().to_string();
    assert!(err.contains("checksum"), "error must name the checksum: {err}");

    // Shard files in the wrong order.
    let swapped = vec![paths[1].clone(), paths[0].clone(), paths[2].clone()];
    let err = cc_server::source::load_shard_set(&swapped).unwrap_err().to_string();
    assert!(err.contains("declares index"), "error must name the slot: {err}");

    // An incomplete set.
    assert!(cc_server::source::load_shard_set(&paths[..2]).is_err());

    // Server::start_sharded re-validates and refuses a mixed set (shards
    // individually valid, but from two different artifact generations):
    // an Err before the socket ever accepts, never a serving process.
    let (_, other) = build_oracle(6);
    let other_dir = temp_dir("startup-other");
    let other_paths = cc_server::source::write_shard_snapshots(&other, SHARDS, &other_dir).unwrap();
    let mut mixed = Vec::new();
    for (i, path) in [&paths[0], &other_paths[1], &paths[2]].iter().enumerate() {
        mixed.push(cc_server::source::load_shard(path, i, SHARDS).unwrap());
    }
    let err = match Server::start_sharded(&ServerConfig::default().with_addr("127.0.0.1:0"), mixed)
    {
        Err(e) => e,
        Ok(_) => panic!("mixed set must not start"),
    };
    assert!(err.to_string().contains("set id"), "error must name the field: {err}");

    for p in paths.into_iter().chain(other_paths) {
        std::fs::remove_file(p).ok();
    }
    std::fs::remove_file(corrupt_path).ok();
}

#[test]
fn failed_shard_reload_keeps_the_old_generation_serving() {
    let (_, oracle) = build_oracle(33);
    let dir = temp_dir("failed-reload");
    let (paths, handle) = start_router(&oracle, &dir, 4);
    let mut client = BlockingClient::connect(handle.addr()).unwrap();

    let want: Vec<Option<u64>> = (0..N).map(|v| oracle.try_query(0, v).unwrap().value()).collect();
    let check_serving = |client: &mut BlockingClient| {
        for (v, expect) in want.iter().enumerate() {
            let (status, body) = client.get(&format!("/distance?u=0&v={v}")).unwrap();
            assert_eq!(status, 200);
            assert_eq!(parse_distance(&body), *expect, "old set must keep serving");
        }
    };

    // 1. Corrupt bytes at shard 2's own path, then reload it.
    let clean = std::fs::read(&paths[2]).unwrap();
    let mut corrupt = clean.clone();
    let mid = corrupt.len() / 2;
    corrupt[mid] ^= 0x10;
    std::fs::write(&paths[2], &corrupt).unwrap();
    let (status, body) = client.post("/reload?shard=2", b"").unwrap();
    assert_eq!(status, 400, "body: {}", String::from_utf8_lossy(&body));
    check_serving(&mut client);

    // 2. Shard 0's file offered for slot 2.
    let (status, body) =
        client.post(&format!("/reload?shard=2&path={}", paths[0].display()), b"").unwrap();
    assert_eq!(status, 400);
    assert!(
        String::from_utf8_lossy(&body).contains("declares index 0"),
        "body: {}",
        String::from_utf8_lossy(&body)
    );
    check_serving(&mut client);

    // 3. A different-n artifact's shard for slot 2.
    let small = {
        let g = generators::gnp_weighted(12, 0.3, 30, 9).unwrap();
        let mut clique = Clique::new(12);
        OracleBuilder::new().seed(9).build(&mut clique, &g).unwrap()
    };
    let small_shards = ShardedArtifact::partition(&small, SHARDS).unwrap().into_shards();
    let small_path = dir.join("small-2.snap");
    std::fs::write(&small_path, serde::to_shard_bytes(&small_shards[2])).unwrap();
    let (status, body) =
        client.post(&format!("/reload?shard=2&path={}", small_path.display()), b"").unwrap();
    assert_eq!(status, 400);
    assert!(
        String::from_utf8_lossy(&body).contains("cannot change n"),
        "body: {}",
        String::from_utf8_lossy(&body)
    );
    check_serving(&mut client);

    // 4. A full-set reload with one broken file swaps nothing.
    let (status, _) = client.post("/reload", b"").unwrap();
    assert_eq!(status, 400, "shard 2's file on disk is still corrupt");
    check_serving(&mut client);

    // All four failures on the books, still zero successful swaps.
    let (_, stats) = client.get("/stats").unwrap();
    let stats = String::from_utf8(stats).unwrap();
    assert!(stats.contains("\"reloads\":0"), "stats: {stats}");
    assert!(stats.contains("\"reload_failures\":4"), "stats: {stats}");
    assert!(!stats.contains("\"last_reload_error\":null"), "stats: {stats}");

    // Repair the file: the next bare /reload rolls the full set cleanly.
    std::fs::write(&paths[2], &clean).unwrap();
    let (status, body) = client.post("/reload", b"").unwrap();
    assert_eq!(status, 200, "body: {}", String::from_utf8_lossy(&body));
    assert!(String::from_utf8_lossy(&body).contains("\"shards\":3"));
    check_serving(&mut client);
    let (_, stats) = client.get("/stats").unwrap();
    let stats = String::from_utf8(stats).unwrap();
    assert!(stats.contains(&format!("\"reloads\":{SHARDS}")), "stats: {stats}");
    assert!(stats.contains("\"last_reload_error\":null"), "stats: {stats}");

    for p in paths {
        std::fs::remove_file(p).ok();
    }
    std::fs::remove_file(small_path).ok();
    handle.shutdown();
}
