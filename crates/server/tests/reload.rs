//! Hot-reload end-to-end over a real socket: `/distance` traffic hammers
//! the server while `/reload` swaps versioned snapshots underneath it.
//! Every response must be a `200` whose answer is consistent with one of
//! the two artifacts (never a blend, never a 5xx, never a dropped
//! request), and a rejected snapshot must leave the old artifact serving.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};

use cc_clique::Clique;
use cc_graph::generators;
use cc_oracle::{serde, DistanceOracle, OracleBuilder};
use cc_server::{BlockingClient, Server, ServerConfig, ServerHandle};

fn build_oracle(n: usize, seed: u64) -> DistanceOracle {
    let g = generators::gnp_weighted(n, 0.15, 30, seed).unwrap();
    let mut clique = Clique::new(n);
    OracleBuilder::new().seed(seed).build(&mut clique, &g).unwrap()
}

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("cc-serve-reload-e2e");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// Starts a server on the snapshot file at `path` with `path` as the
/// default reload source.
///
/// A keep-alive connection pins a worker for its lifetime, so the worker
/// count must exceed the maximum concurrent connections any test opens (6
/// hammer clients + 1 reloader) — otherwise the reloader can queue behind
/// hammer clients that only stop when the reloader finishes.
fn start_on_snapshot(path: &Path) -> ServerHandle {
    let loaded = cc_server::source::load_snapshot(path).unwrap();
    let config =
        ServerConfig::default().with_addr("127.0.0.1:0").with_workers(8).with_reload_path(path);
    Server::start_with_info(&config, loaded.oracle, loaded.info).expect("server start")
}

/// Extracts `"distance":<number|null>` from a `/distance` response body.
fn parse_distance(body: &[u8]) -> Option<u64> {
    let text = std::str::from_utf8(body).expect("utf-8 body");
    let rest = text.split_once("\"distance\":").expect("distance key").1;
    let token: String = rest
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == 'n' || *c == 'u' || *c == 'l')
        .collect();
    if token.starts_with("null") {
        None
    } else {
        Some(token.parse().expect("numeric distance"))
    }
}

/// The acceptance scenario: concurrent `/distance` clients while snapshots
/// A and B alternate through `/reload`. Zero non-200s; every answer equals
/// A's or B's; `/stats` and `/artifact` track the active build id.
#[test]
fn distance_traffic_survives_reloads_with_zero_errors_and_consistent_answers() {
    let n = 32;
    let a = build_oracle(n, 11);
    let b = build_oracle(n, 47);
    let a_id = format!("{:016x}", serde::payload_checksum(&a));
    let b_id = format!("{:016x}", serde::payload_checksum(&b));
    assert_ne!(a_id, b_id, "the two artifacts must be distinguishable");

    let path = temp_path("swap-under-load.snap");
    std::fs::write(&path, serde::to_bytes(&a)).unwrap();
    let handle = start_on_snapshot(&path);
    let addr = handle.addr();

    let pairs: Vec<(usize, usize)> = (0..n).map(|i| (i, (i * 13 + 5) % n)).collect();
    let a_ans: Vec<_> = pairs.iter().map(|&(u, v)| a.try_query(u, v).unwrap().value()).collect();
    let b_ans: Vec<_> = pairs.iter().map(|&(u, v)| b.try_query(u, v).unwrap().value()).collect();

    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        // 6 hammering clients.
        for t in 0..6usize {
            let (stop, pairs, a_ans, b_ans) = (&stop, &pairs, &a_ans, &b_ans);
            scope.spawn(move || {
                let mut client = BlockingClient::connect(addr).unwrap();
                let mut i = t; // offset each client into the pair stream
                while !stop.load(Ordering::Relaxed) {
                    let at = i % pairs.len();
                    let (u, v) = pairs[at];
                    let (status, body) = client.get(&format!("/distance?u={u}&v={v}")).unwrap();
                    assert_eq!(status, 200, "no request may fail during a reload");
                    let served = parse_distance(&body);
                    assert!(
                        served == a_ans[at] || served == b_ans[at],
                        "pair ({u},{v}) answered {served:?}, which is neither \
                         artifact A's {:?} nor artifact B's {:?}",
                        a_ans[at],
                        b_ans[at],
                    );
                    i += 1;
                }
            });
        }

        // The reloader: alternate B, A, B, ... through POST /reload.
        let reloads = 8usize;
        let mut reload_client = BlockingClient::connect(addr).unwrap();
        for round in 0..reloads {
            let next = if round % 2 == 0 { &b } else { &a };
            std::fs::write(&path, serde::to_bytes(next)).unwrap();
            let (status, body) = reload_client.post("/reload", b"").unwrap();
            assert_eq!(status, 200, "reload {round} failed: {}", String::from_utf8_lossy(&body));
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
        stop.store(true, Ordering::Relaxed);

        // After the final reload (even rounds wrote B... last round index 7
        // wrote A), the reported identity must match the file on disk.
        let (status, body) = reload_client.get("/artifact").unwrap();
        assert_eq!(status, 200);
        let text = String::from_utf8(body).unwrap();
        assert!(text.contains(&format!("\"build_id\":\"{a_id}\"")), "artifact: {text}");
        assert!(text.contains(&format!("\"reloads\":{reloads}")), "artifact: {text}");

        let (_, stats) = reload_client.get("/stats").unwrap();
        let stats = String::from_utf8(stats).unwrap();
        assert!(stats.contains(&format!("\"reloads\":{reloads}")), "stats: {stats}");
        assert!(stats.contains("\"reload_failures\":0"), "stats: {stats}");
        assert!(stats.contains("\"last_reload_error\":null"), "stats: {stats}");
    });

    std::fs::remove_file(&path).ok();
    handle.shutdown();
}

#[test]
fn corrupt_and_mismatched_version_snapshots_are_rejected_old_artifact_keeps_serving() {
    let n = 24;
    let a = build_oracle(n, 5);
    let path = temp_path("reject.snap");
    std::fs::write(&path, serde::to_bytes(&a)).unwrap();
    let handle = start_on_snapshot(&path);
    let mut client = BlockingClient::connect(handle.addr()).unwrap();

    let want_answers: Vec<_> = (0..n).map(|v| a.try_query(0, v).unwrap().value()).collect();
    let check_still_serving_a = |client: &mut BlockingClient| {
        for (v, want) in want_answers.iter().enumerate() {
            let (status, body) = client.get(&format!("/distance?u=0&v={v}")).unwrap();
            assert_eq!(status, 200);
            assert_eq!(parse_distance(&body), *want, "old artifact must keep serving");
        }
    };

    // 1. Payload corruption (checksum failure).
    let mut corrupt = serde::to_bytes(&a);
    let mid = corrupt.len() / 2;
    corrupt[mid] ^= 0x40;
    std::fs::write(&path, &corrupt).unwrap();
    let (status, body) = client.post("/reload", b"").unwrap();
    assert_eq!(status, 400);
    assert!(
        String::from_utf8_lossy(&body).contains("checksum"),
        "error must name the checksum: {}",
        String::from_utf8_lossy(&body)
    );
    check_still_serving_a(&mut client);

    // 2. Version from a different format generation.
    let mut wrong_version = serde::to_bytes(&a);
    wrong_version[4..8].copy_from_slice(&99u32.to_le_bytes());
    std::fs::write(&path, &wrong_version).unwrap();
    let (status, body) = client.post("/reload", b"").unwrap();
    assert_eq!(status, 400);
    assert!(
        String::from_utf8_lossy(&body).contains("version 99"),
        "error must name the version: {}",
        String::from_utf8_lossy(&body)
    );
    check_still_serving_a(&mut client);

    // 3. Legacy (v1) bytes: the reader was removed, the magic is enough to
    // reject with the dedicated error.
    let mut legacy = b"CCO1".to_vec();
    legacy.extend_from_slice(&1u32.to_le_bytes());
    legacy.extend_from_slice(&[0u8; 56]);
    std::fs::write(&path, &legacy).unwrap();
    let (status, body) = client.post("/reload", b"").unwrap();
    assert_eq!(status, 400);
    assert!(
        String::from_utf8_lossy(&body).contains("legacy"),
        "error must say legacy: {}",
        String::from_utf8_lossy(&body)
    );
    check_still_serving_a(&mut client);

    // 3b. A per-shard snapshot where the monolith is expected: rejected
    // with the shard-specific guidance, old artifact untouched.
    let shard_bytes = serde::to_shard_bytes(
        &cc_oracle::ShardedArtifact::partition(&a, 2).unwrap().into_shards()[0],
    );
    std::fs::write(&path, &shard_bytes).unwrap();
    let (status, body) = client.post("/reload", b"").unwrap();
    assert_eq!(status, 400);
    assert!(
        String::from_utf8_lossy(&body).contains("per-shard"),
        "error must say shard: {}",
        String::from_utf8_lossy(&body)
    );
    check_still_serving_a(&mut client);

    // 4. Missing file.
    std::fs::remove_file(&path).ok();
    let (status, _) = client.post("/reload", b"").unwrap();
    assert_eq!(status, 400);
    check_still_serving_a(&mut client);

    // All five failures are on the books; zero successes.
    let (_, stats) = client.get("/stats").unwrap();
    let stats = String::from_utf8(stats).unwrap();
    assert!(stats.contains("\"reloads\":0"), "stats: {stats}");
    assert!(stats.contains("\"reload_failures\":5"), "stats: {stats}");
    assert!(!stats.contains("\"last_reload_error\":null"), "stats: {stats}");

    handle.shutdown();
}

#[test]
fn reload_can_change_graph_size() {
    // Serving a 24-node artifact, hot-swap to a 40-node one: the whole
    // point of reload is picking up a rebuilt (possibly larger) graph.
    let small = build_oracle(24, 2);
    let big = build_oracle(40, 3);
    let path = temp_path("grow.snap");
    std::fs::write(&path, serde::to_bytes(&small)).unwrap();

    let handle = start_on_snapshot(&path);
    let mut client = BlockingClient::connect(handle.addr()).unwrap();

    // Node 30 is out of range on the small artifact...
    let (status, _) = client.get("/distance?u=0&v=30").unwrap();
    assert_eq!(status, 400);

    // ...swap in the big artifact...
    std::fs::write(&path, serde::to_bytes(&big)).unwrap();
    let (status, body) = client.post("/reload", b"").unwrap();
    assert_eq!(status, 200, "reload: {}", String::from_utf8_lossy(&body));

    // ...and the same query now answers from the 40-node artifact.
    let (status, body) = client.get("/distance?u=0&v=30").unwrap();
    assert_eq!(status, 200);
    assert_eq!(parse_distance(&body), big.try_query(0, 30).unwrap().value());

    std::fs::remove_file(&path).ok();
    handle.shutdown();
}

/// An explicit `/reload?path=...` targets a file other than the default
/// reload source.
#[test]
fn reload_with_explicit_path_overrides_the_default() {
    let a = build_oracle(20, 7);
    let b = build_oracle(20, 8);
    let default_path = temp_path("default.snap");
    let other_path = temp_path("other.snap");
    std::fs::write(&default_path, serde::to_bytes(&a)).unwrap();
    std::fs::write(&other_path, serde::to_bytes(&b)).unwrap();

    let handle = start_on_snapshot(&default_path);
    let mut client = BlockingClient::connect(handle.addr()).unwrap();
    let (status, body) =
        client.post(&format!("/reload?path={}", other_path.display()), b"").unwrap();
    assert_eq!(status, 200, "body: {}", String::from_utf8_lossy(&body));
    let b_id = format!("{:016x}", serde::payload_checksum(&b));
    assert!(
        String::from_utf8_lossy(&body).contains(&b_id),
        "reload response must carry the new build id: {}",
        String::from_utf8_lossy(&body)
    );
    for v in 0..20 {
        let (status, resp) = client.get(&format!("/distance?u=1&v={v}")).unwrap();
        assert_eq!(status, 200);
        assert_eq!(parse_distance(&resp), b.try_query(1, v).unwrap().value());
    }

    std::fs::remove_file(&default_path).ok();
    std::fs::remove_file(&other_path).ok();
    handle.shutdown();
}
