//! Transport-level end-to-end tests: the epoll reactor versus the
//! portable poll loop over real TCP sockets. Both transports must be
//! indistinguishable to clients (same answers, same framing); the reactor
//! must additionally multiplex more live connections than it has workers,
//! which the poll transport (one worker pinned per connection) cannot.

use std::time::{Duration, Instant};

use cc_clique::Clique;
use cc_graph::{generators, Graph};
use cc_oracle::{DistanceOracle, OracleBuilder};
use cc_server::{frame, BlockingClient, Server, ServerConfig, ServerHandle, Transport};

fn build_oracle(n: usize, seed: u64) -> (Graph, DistanceOracle) {
    let g = generators::gnp_weighted(n, 0.15, 30, seed).unwrap();
    let mut clique = Clique::new(n);
    let oracle = OracleBuilder::new().seed(seed).build(&mut clique, &g).unwrap();
    (g, oracle)
}

fn start(oracle: DistanceOracle, config: ServerConfig) -> ServerHandle {
    Server::start(&config.with_addr("127.0.0.1:0"), oracle).expect("server start")
}

/// The label `/stats` must report when `Transport::Auto` resolves.
fn auto_label() -> &'static str {
    if cfg!(target_os = "linux") {
        "epoll"
    } else {
        "poll"
    }
}

#[test]
fn both_transports_serve_byte_identical_answers_and_report_their_label() {
    let (_g, oracle) = build_oracle(30, 17);
    let auto = start(oracle.clone(), ServerConfig::default().with_transport(Transport::Auto));
    let poll = start(oracle, ServerConfig::default().with_transport(Transport::Poll));
    let mut on_auto = BlockingClient::connect(auto.addr()).unwrap();
    let mut on_poll = BlockingClient::connect(poll.addr()).unwrap();

    // Text plane: byte-identical /distance responses.
    for (u, v) in [(0u32, 29u32), (5, 5), (12, 3), (0, 1000)] {
        let target = format!("/distance?u={u}&v={v}");
        let a = on_auto.get(&target).unwrap();
        let p = on_poll.get(&target).unwrap();
        assert_eq!(a, p, "transports disagree on {target}");
    }

    // Binary plane: byte-identical /batch frames.
    let pairs: Vec<(u32, u32)> = (0..30).map(|u| (u, (u * 7 + 1) % 30)).collect();
    let req = frame::encode_request(&pairs);
    let a = on_auto.post_with_content_type("/batch", frame::CONTENT_TYPE, &req).unwrap();
    let p = on_poll.post_with_content_type("/batch", frame::CONTENT_TYPE, &req).unwrap();
    assert_eq!(a.0, 200);
    assert_eq!(a, p, "binary batch frames must match across transports");
    assert_eq!(frame::decode_response(&a.1).unwrap().len(), pairs.len());

    // /stats reports the transport actually running.
    let (_, stats) = on_auto.get("/stats").unwrap();
    let stats = String::from_utf8(stats).unwrap();
    assert!(
        stats.contains(&format!("\"transport\":\"{}\"", auto_label())),
        "auto must resolve to {}: {stats}",
        auto_label()
    );
    let (_, stats) = on_poll.get("/stats").unwrap();
    assert!(String::from_utf8(stats).unwrap().contains("\"transport\":\"poll\""));

    auto.shutdown();
    poll.shutdown();
}

#[test]
fn explicit_epoll_is_honoured_or_rejected_per_platform() {
    let (_g, oracle) = build_oracle(16, 3);
    let config = ServerConfig::default().with_addr("127.0.0.1:0").with_transport(Transport::Epoll);
    match Server::start(&config, oracle) {
        Ok(handle) => {
            if !cfg!(target_os = "linux") {
                panic!("explicit epoll must fail off-Linux");
            }
            let mut client = BlockingClient::connect(handle.addr()).unwrap();
            let (status, body) = client.get("/stats").unwrap();
            assert_eq!(status, 200);
            assert!(String::from_utf8(body).unwrap().contains("\"transport\":\"epoll\""));
            handle.shutdown();
        }
        Err(e) => {
            if cfg!(target_os = "linux") {
                panic!("epoll must work on Linux: {e}");
            }
        }
    }
}

/// The reactor's reason to exist: many live keep-alive connections served
/// by a handful of workers. Under the poll transport each of these
/// connections would pin a worker for its lifetime, so 24 concurrent
/// keep-alive clients against 2 workers could never all get answers.
#[test]
fn reactor_multiplexes_more_connections_than_workers() {
    if !cfg!(target_os = "linux") {
        return; // Auto resolves to the poll transport: the premise is gone.
    }
    let n = 24;
    let (_g, oracle) = build_oracle(n, 29);
    let expected = oracle.clone();
    let handle =
        start(oracle, ServerConfig::default().with_workers(2).with_transport(Transport::Auto));

    // Connect everything first: all clients are parked simultaneously.
    let mut clients: Vec<BlockingClient> =
        (0..n).map(|_| BlockingClient::connect(handle.addr()).unwrap()).collect();

    // Several rounds over every client, interleaved, on 2 workers.
    for round in 0..3 {
        for (i, client) in clients.iter_mut().enumerate() {
            let (u, v) = (i, (i + round + 1) % n);
            let (status, body) = client.get(&format!("/distance?u={u}&v={v}")).unwrap();
            assert_eq!(status, 200, "client {i} round {round}");
            let want = expected.try_query(u, v).unwrap().value();
            let text = String::from_utf8(body).unwrap();
            match want {
                Some(d) => assert!(text.contains(&format!("\"distance\":{d}")), "{text}"),
                None => assert!(text.contains("\"distance\":null"), "{text}"),
            }
        }
    }
    handle.shutdown();
}

/// HEAD must answer like GET minus the body *without desyncing keep-alive
/// framing*: a GET on the same connection right after a HEAD only works if
/// the server really omitted the body it declared in `Content-Length`.
#[test]
fn head_keeps_framing_and_the_connection_in_sync() {
    let (_g, oracle) = build_oracle(16, 7);
    let handle = start(oracle, ServerConfig::default());
    let mut client = BlockingClient::connect(handle.addr()).unwrap();

    let (get_status, get_body) = client.get("/healthz").unwrap();
    let (head_status, declared) = client.head("/healthz").unwrap();
    assert_eq!(head_status, get_status);
    assert_eq!(declared, get_body.len(), "HEAD must declare GET's Content-Length");

    // The very next exchange on the same socket parses cleanly: no stray
    // body bytes followed the HEAD response.
    let (status, body) = client.get("/artifact").unwrap();
    assert_eq!(status, 200);
    assert!(!body.is_empty());
    handle.shutdown();
}

/// Shutdown with idle parked connections must not wait out the read
/// timeout: the waker interrupts the reactor, which drops parked peers.
#[test]
fn shutdown_is_prompt_with_parked_connections() {
    let (_g, oracle) = build_oracle(16, 13);
    let handle = start(oracle, ServerConfig::default().with_read_timeout(Duration::from_secs(30)));
    let mut clients: Vec<BlockingClient> =
        (0..4).map(|_| BlockingClient::connect(handle.addr()).unwrap()).collect();
    for (i, client) in clients.iter_mut().enumerate() {
        let (status, _) = client.get(&format!("/distance?u={i}&v={}", i + 1)).unwrap();
        assert_eq!(status, 200);
    }
    // All four connections are now idle (parked, under the reactor).
    let started = Instant::now();
    handle.shutdown();
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "shutdown must not wait for the 30s read timeout"
    );
}
