//! End-to-end tests over a real TCP socket: a `Server` serving a built
//! oracle, exercised with the blocking client, checked against Dijkstra
//! ground truth and against abuse (bad ids, garbage paths, oversized
//! bodies, parallel clients).

use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

use cc_clique::Clique;
use cc_graph::{generators, reference, Graph};
use cc_oracle::{DistanceOracle, OracleBuilder};
use cc_server::{BlockingClient, Server, ServerConfig, ServerHandle};

fn build_oracle(n: usize, seed: u64) -> (Graph, DistanceOracle) {
    let g = generators::gnp_weighted(n, 0.15, 30, seed).unwrap();
    let mut clique = Clique::new(n);
    let oracle = OracleBuilder::new().seed(seed).build(&mut clique, &g).unwrap();
    (g, oracle)
}

fn start(oracle: DistanceOracle, config: ServerConfig) -> ServerHandle {
    Server::start(&config.with_addr("127.0.0.1:0"), oracle).expect("server start")
}

/// Extracts `"distance":<number|null>` from a `/distance` response body.
fn parse_distance(body: &[u8]) -> Option<u64> {
    let text = std::str::from_utf8(body).expect("utf-8 body");
    let rest = text.split_once("\"distance\":").expect("distance key").1;
    let token: String = rest
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == 'n' || *c == 'u' || *c == 'l')
        .collect();
    if token.starts_with("null") {
        None
    } else {
        Some(token.parse().expect("numeric distance"))
    }
}

#[test]
fn distance_over_a_real_socket_matches_dijkstra_ground_truth() {
    let n = 40;
    let (g, oracle) = build_oracle(n, 11);
    let expected_oracle = oracle.clone();
    let bound = oracle.stretch_bound();
    let handle = start(oracle, ServerConfig::default());
    let mut client = BlockingClient::connect(handle.addr()).unwrap();

    for u in 0..n {
        let exact = reference::dijkstra(&g, u);
        for v in (0..n).step_by(3) {
            let (status, body) = client.get(&format!("/distance?u={u}&v={v}")).unwrap();
            assert_eq!(status, 200);
            let served = parse_distance(&body);
            // Identical to the in-process oracle...
            assert_eq!(served, expected_oracle.try_query(u, v).unwrap().value(), "pair ({u},{v})");
            // ...and sound + within the stretch bound of the ground truth.
            let d = exact[v].expect("gnp(40, 0.15) is connected");
            let est = served.expect("connected pair must be finite over the wire");
            assert!(est >= d, "underestimate over the wire: {est} < {d}");
            assert!(
                est as f64 <= bound * d as f64 + 1e-9,
                "stretch violated over the wire: {est} > {bound} * {d}"
            );
        }
    }
    handle.shutdown();
}

#[test]
fn batch_endpoint_matches_query_batch() {
    let (_, oracle) = build_oracle(32, 5);
    let expected = oracle.clone();
    let handle = start(oracle, ServerConfig::default());
    let mut client = BlockingClient::connect(handle.addr()).unwrap();

    let pairs: Vec<(usize, usize)> = (0..64).map(|i| (i % 32, (i * 11 + 3) % 32)).collect();
    let body: String = pairs.iter().map(|&(u, v)| format!("{u} {v}\n")).collect();
    let (status, resp) = client.post("/batch", body.as_bytes()).unwrap();
    assert_eq!(status, 200);
    let want: Vec<String> = expected
        .try_query_batch(&pairs)
        .unwrap()
        .iter()
        .map(|d| d.value().map_or("null".into(), |x| x.to_string()))
        .collect();
    assert_eq!(
        String::from_utf8(resp).unwrap(),
        format!("{{\"count\":64,\"distances\":[{}]}}", want.join(","))
    );
    handle.shutdown();
}

#[test]
fn edge_validation_out_of_range_garbage_and_oversized_bodies() {
    let (_, oracle) = build_oracle(24, 2);
    let config =
        ServerConfig::default().with_max_body_bytes(256).with_read_timeout(Duration::from_secs(2));
    let handle = start(oracle, config);
    let mut client = BlockingClient::connect(handle.addr()).unwrap();

    // Out-of-range ids: 400 with the offending range named, no panic.
    let (status, body) = client.get("/distance?u=0&v=9999").unwrap();
    assert_eq!(status, 400);
    assert!(String::from_utf8(body).unwrap().contains("outside 0..24"));

    // Garbage ids and paths on the same keep-alive connection.
    assert_eq!(client.get("/distance?u=zero&v=1").unwrap().0, 400);
    assert_eq!(client.get("/distance").unwrap().0, 400);
    assert_eq!(client.get("/no/such/route").unwrap().0, 404);
    assert_eq!(client.post("/batch", b"1 2\nbogus\n").unwrap().0, 400);

    // Oversized body: 413, connection closed, server stays up.
    let (status, _) = client.post("/batch", &vec![b'1'; 1024]).unwrap();
    assert_eq!(status, 413);
    let mut fresh = BlockingClient::connect(handle.addr()).unwrap();
    assert_eq!(fresh.get("/healthz").unwrap().0, 200);

    // Raw protocol garbage: answered (or dropped) without killing serving.
    let mut raw = TcpStream::connect(handle.addr()).unwrap();
    raw.write_all(b"\x00\x01\x02 utterly not http\r\n\r\n").unwrap();
    drop(raw);
    let mut again = BlockingClient::connect(handle.addr()).unwrap();
    assert_eq!(again.get("/healthz").unwrap().0, 200);

    handle.shutdown();
}

#[test]
fn stats_healthz_and_artifact_round_trip_over_the_wire() {
    let (_, oracle) = build_oracle(24, 8);
    let (n, landmarks) = (oracle.n(), oracle.landmarks().len());
    let handle = start(oracle, ServerConfig::default());
    let mut client = BlockingClient::connect(handle.addr()).unwrap();

    let (status, body) = client.get("/healthz").unwrap();
    assert_eq!((status, body.as_slice()), (200, &b"ok\n"[..]));

    client.get("/distance?u=0&v=1").unwrap();
    client.get("/distance?u=0&v=1").unwrap();
    let (status, body) = client.get("/stats").unwrap();
    assert_eq!(status, 200);
    let text = String::from_utf8(body).unwrap();
    assert!(text.contains("\"distance_requests\":2"), "stats: {text}");
    assert!(text.contains("\"hits\":1"), "stats: {text}");

    let (status, body) = client.get("/artifact").unwrap();
    assert_eq!(status, 200);
    let text = String::from_utf8(body).unwrap();
    assert!(text.contains(&format!("\"n\":{n}")), "artifact: {text}");
    assert!(text.contains(&format!("\"landmarks\":{landmarks}")), "artifact: {text}");
    assert!(text.contains("\"stretch_bound\":3.75"), "artifact: {text}");
    handle.shutdown();
}

#[test]
fn concurrent_clients_all_get_consistent_answers() {
    let (_, oracle) = build_oracle(32, 13);
    let expected = oracle.clone();
    let handle = start(oracle, ServerConfig::default().with_workers(4));
    let addr = handle.addr();

    std::thread::scope(|scope| {
        for t in 0..8usize {
            let expected = &expected;
            scope.spawn(move || {
                let mut client = BlockingClient::connect(addr).unwrap();
                for i in 0..50 {
                    let (u, v) = ((i * 7 + t) % 32, (i * 13 + 2 * t) % 32);
                    let (status, body) = client.get(&format!("/distance?u={u}&v={v}")).unwrap();
                    assert_eq!(status, 200);
                    assert_eq!(parse_distance(&body), expected.try_query(u, v).unwrap().value());
                }
            });
        }
    });
    assert!(handle.state().requests() >= 400);
    handle.shutdown();
}

#[test]
fn snapshot_loaded_server_serves_identically_to_the_builder() {
    let (_, oracle) = build_oracle(28, 21);
    let dir = std::env::temp_dir().join("cc-serve-e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("e2e-oracle.snap");
    cc_server::source::write_snapshot(&oracle, &path).unwrap();
    let reloaded = cc_server::source::load_snapshot(&path).unwrap().oracle;
    std::fs::remove_file(&path).ok();

    let handle = start(reloaded, ServerConfig::default());
    let mut client = BlockingClient::connect(handle.addr()).unwrap();
    for u in (0..28).step_by(5) {
        for v in (0..28).step_by(3) {
            let (status, body) = client.get(&format!("/distance?u={u}&v={v}")).unwrap();
            assert_eq!(status, 200);
            assert_eq!(
                parse_distance(&body),
                oracle.try_query(u, v).unwrap().value(),
                "pair ({u},{v})"
            );
        }
    }
    handle.shutdown();
}
