//! End-to-end tests for `GET /metrics` over a real TCP socket: the
//! exposition format is lint-clean (every `# TYPE` precedes its series,
//! histogram buckets cumulative and `le`-sorted), the catalog covers the
//! serving stack, and the server's self-reported `/distance` p50 agrees
//! with a latency measurement taken from outside the process.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Instant;

use cc_clique::Clique;
use cc_graph::generators;
use cc_oracle::{DistanceOracle, OracleBuilder};
use cc_server::{BlockingClient, Server, ServerConfig, ServerHandle};

fn build_oracle(n: usize, seed: u64) -> DistanceOracle {
    let g = generators::gnp_weighted(n, 0.15, 30, seed).unwrap();
    let mut clique = Clique::new(n);
    OracleBuilder::new().seed(seed).build(&mut clique, &g).unwrap()
}

fn start(oracle: DistanceOracle, config: ServerConfig) -> ServerHandle {
    Server::start(&config.with_addr("127.0.0.1:0"), oracle).expect("server start")
}

fn fetch_metrics(client: &mut BlockingClient) -> String {
    let (status, body) = client.get("/metrics").unwrap();
    assert_eq!(status, 200);
    String::from_utf8(body).unwrap()
}

/// The value of the series whose name (including its label set) is
/// exactly `series`.
fn series_value(text: &str, series: &str) -> f64 {
    let line = text
        .lines()
        .find(|l| l.strip_prefix(series).is_some_and(|rest| rest.starts_with(' ')))
        .unwrap_or_else(|| panic!("series {series} missing from:\n{text}"));
    line.rsplit(' ').next().unwrap().parse().expect("numeric sample")
}

/// The family name of a sample line: everything before `{` or ` `, with a
/// histogram suffix stripped.
fn family_of(line: &str) -> &str {
    let name = &line[..line.find(['{', ' ']).unwrap_or(line.len())];
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(stripped) = name.strip_suffix(suffix) {
            return stripped;
        }
    }
    name
}

/// Exposition-format lint: every sample's family is declared by a
/// preceding `# TYPE` line, and every histogram's buckets are `le`-sorted,
/// cumulative, and end with an `+Inf` bucket equal to `_count`.
fn lint_exposition(text: &str) {
    // (family, type) pairs in the order their TYPE lines appear.
    let mut typed: Vec<(&str, &str)> = Vec::new();
    // Per (family, non-le labels): the buckets seen so far, in file order.
    let mut buckets: Vec<(String, Vec<(f64, f64)>)> = Vec::new();
    let mut counts: Vec<(String, f64)> = Vec::new();

    for line in text.lines().filter(|l| !l.is_empty()) {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let (family, ty) = rest.split_once(' ').expect("TYPE line has a type");
            assert!(typed.iter().all(|(f, _)| *f != family), "duplicate TYPE for {family}");
            typed.push((family, ty));
            continue;
        }
        if line.starts_with('#') {
            continue; // HELP or comment
        }
        let family = family_of(line);
        let declared = typed.iter().find(|(f, _)| *f == family);
        let (_, ty) = declared.unwrap_or_else(|| panic!("series before its # TYPE: {line}"));
        let value: f64 = match line.rsplit(' ').next().unwrap() {
            "+Inf" => f64::INFINITY,
            v => v.parse().unwrap_or_else(|_| panic!("bad sample value in: {line}")),
        };

        if *ty == "histogram" {
            let name = &line[..line.find(['{', ' ']).unwrap_or(line.len())];
            if name.ends_with("_bucket") {
                let labels = &line[line.find('{').unwrap()..line.rfind('}').unwrap() + 1];
                let le_start = labels.find("le=\"").expect("bucket without le label");
                let le_text = &labels[le_start + 4..];
                let le_text = &le_text[..le_text.find('"').unwrap()];
                let le = if le_text == "+Inf" { f64::INFINITY } else { le_text.parse().unwrap() };
                // Key the series by family + labels with `le` stripped, in
                // the same shape a `_count` line carries them.
                let rest = format!(
                    "{}{}",
                    &labels[..le_start],
                    &labels[le_start + 4 + le_text.len() + 1..]
                )
                .replace(",}", "}");
                let key = format!("{family}{}", if rest == "{}" { "" } else { &rest });
                match buckets.iter_mut().find(|(k, _)| *k == key) {
                    Some((_, seen)) => seen.push((le, value)),
                    None => buckets.push((key, vec![(le, value)])),
                }
            } else if name.ends_with("_count") {
                let labels = line.find('{').map_or("", |i| &line[i..line.rfind('}').unwrap() + 1]);
                counts.push((format!("{family}{labels}"), value));
            }
        }
    }

    assert!(!typed.is_empty(), "no TYPE lines at all");
    assert!(!buckets.is_empty(), "no histogram buckets at all");
    for (key, seen) in &buckets {
        for pair in seen.windows(2) {
            assert!(pair[0].0 < pair[1].0, "{key}: le out of order ({pair:?})");
            assert!(pair[0].1 <= pair[1].1, "{key}: buckets not cumulative ({pair:?})");
        }
        let (last_le, last_cum) = *seen.last().unwrap();
        assert_eq!(last_le, f64::INFINITY, "{key}: missing +Inf bucket");
        let (_, count) = counts
            .iter()
            .find(|(k, _)| k == key)
            .unwrap_or_else(|| panic!("{key}: histogram without a _count series"));
        assert_eq!(last_cum, *count, "{key}: +Inf bucket != _count");
    }
}

#[test]
fn metrics_exposition_is_lint_clean_and_covers_the_serving_stack() {
    let oracle = build_oracle(30, 9);
    let handle = start(oracle, ServerConfig::default());
    let mut client = BlockingClient::connect(handle.addr()).unwrap();

    // Traffic across the endpoint classes: hits, misses, a client error,
    // a batch, and a failed reload.
    client.get("/distance?u=0&v=1").unwrap();
    client.get("/distance?u=0&v=1").unwrap();
    assert_eq!(client.get("/distance?u=0&v=999").unwrap().0, 400);
    assert_eq!(client.post("/batch", b"0 1\n2 3\n").unwrap().0, 200);
    // No reload source is configured, so this lands in reload_failures
    // (and, being a 4xx, in client_errors too).
    assert_eq!(client.post("/reload", b"").unwrap().0, 400);

    let text = fetch_metrics(&mut client);
    lint_exposition(&text);

    // The catalog the CI smoke job (and any scrape config) relies on.
    // (6 = the five traffic requests plus the /metrics request itself,
    // counted before routing.)
    assert_eq!(series_value(&text, "cc_requests_total"), 6.0);
    assert_eq!(series_value(&text, "cc_endpoint_requests_total{endpoint=\"distance\"}"), 3.0);
    assert_eq!(series_value(&text, "cc_endpoint_requests_total{endpoint=\"batch\"}"), 1.0);
    assert_eq!(series_value(&text, "cc_endpoint_requests_total{endpoint=\"reload\"}"), 1.0);
    assert_eq!(series_value(&text, "cc_batch_pairs_total"), 2.0);
    assert_eq!(series_value(&text, "cc_client_errors_total"), 2.0);
    assert_eq!(series_value(&text, "cc_reload_failures_total"), 1.0);
    // (0,1) twice via /distance (miss, hit) then again inside the batch
    // (hit), plus the batch's (2,3) miss.
    assert_eq!(series_value(&text, "cc_cache_hits"), 2.0);
    assert_eq!(series_value(&text, "cc_cache_misses"), 2.0);
    assert!((series_value(&text, "cc_cache_hit_rate") - 0.5).abs() < 1e-4);
    assert_eq!(series_value(&text, "cc_pool_queue_depth"), 0.0);
    assert_eq!(series_value(&text, "cc_request_duration_ns_count{endpoint=\"distance\"}"), 3.0);
    assert!(series_value(&text, "cc_request_duration_ns_sum{endpoint=\"distance\"}") > 0.0);
    assert!(text.contains("cc_reload_duration_ns_bucket"), "reload histogram family missing");
    handle.shutdown();
}

#[test]
fn metrics_content_type_is_prometheus_text_exposition() {
    let oracle = build_oracle(20, 4);
    let handle = start(oracle, ServerConfig::default());

    // The BlockingClient discards headers, so speak raw HTTP here.
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    stream
        .write_all(b"GET /metrics HTTP/1.1\r\nHost: cc-serve\r\nConnection: close\r\n\r\n")
        .unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    let headers = raw.split("\r\n\r\n").next().unwrap();
    assert!(headers.starts_with("HTTP/1.1 200"), "status line: {headers}");
    assert!(
        headers.to_ascii_lowercase().contains("content-type: text/plain; version=0.0.4"),
        "missing exposition content type in:\n{headers}"
    );
    handle.shutdown();
}

/// The self-reported `/distance` p50 must be within 2× of what a client
/// outside the process measures for the same requests.
///
/// The direction is guaranteed, not probabilistic: the server's clock
/// starts at the first buffered byte of a request and stops after the
/// response flush, so each server-side duration is a sub-interval of the
/// client-side duration for that request, and the histogram's reported
/// quantile (a log₂ bucket upper bound) is < 2× the true server-side
/// value. Flakiness here means the instrumentation regressed.
#[test]
fn self_reported_p50_is_within_2x_of_externally_measured_p50() {
    let oracle = build_oracle(40, 17);
    let handle = start(oracle, ServerConfig::default());
    let mut client = BlockingClient::connect(handle.addr()).unwrap();

    const REQUESTS: usize = 300;
    let mut external_ns: Vec<u64> = Vec::with_capacity(REQUESTS);
    for i in 0..REQUESTS {
        let (u, v) = (i % 40, (i * 7 + 1) % 40);
        let started = Instant::now();
        let (status, _) = client.get(&format!("/distance?u={u}&v={v}")).unwrap();
        external_ns.push(u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX));
        assert_eq!(status, 200);
    }
    external_ns.sort_unstable();
    let external_p50 = external_ns[REQUESTS / 2];

    let text = fetch_metrics(&mut client);
    let count = series_value(&text, "cc_request_duration_ns_count{endpoint=\"distance\"}");
    assert_eq!(count, REQUESTS as f64, "every request must be recorded exactly once");

    // Reconstruct the p50 the way a scraper would: the first bucket whose
    // cumulative count reaches half the total.
    let mut server_p50 = f64::INFINITY;
    for line in text.lines() {
        let Some(rest) =
            line.strip_prefix("cc_request_duration_ns_bucket{endpoint=\"distance\",le=\"")
        else {
            continue;
        };
        let (le_text, rest) = rest.split_once('"').unwrap();
        let cumulative: f64 = rest.trim_start_matches('}').trim().parse().unwrap();
        if cumulative >= count / 2.0 {
            server_p50 = if le_text == "+Inf" { f64::INFINITY } else { le_text.parse().unwrap() };
            break;
        }
    }
    assert!(server_p50.is_finite(), "no bucket reached the median in:\n{text}");
    assert!(server_p50 > 0.0, "a served request cannot take zero time");
    assert!(
        server_p50 <= 2.0 * external_p50 as f64,
        "self-reported p50 {server_p50}ns exceeds 2x the external p50 {external_p50}ns"
    );
    handle.shutdown();
}
