//! # `cc-hopset`: deterministic hopsets in the Congested Clique — Theorem 25
//!
//! A **(β, ε)-hopset** `H` of a weighted graph `G` is an edge set such that
//! `β`-hop distances in `G ∪ H` approximate true distances within `1 + ε`:
//!
//! ```text
//! d_G(u,v) ≤ d^β_{G∪H}(u,v) ≤ (1+ε)·d_G(u,v)
//! ```
//!
//! Hopsets turn the hop-bounded source detection of
//! [`cc_distance::source_detection_all`] into a *global* distance tool: run
//! it for `d = β` hops on `G ∪ H` and get `(1+ε)`-approximate distances.
//!
//! This crate implements the paper's variant (§4) of the Elkin–Neiman
//! construction \[24\] (itself based on the Thorup–Zwick emulators):
//!
//! 1. every node computes its `k = Θ(√(n log n))` nearest nodes
//!    (**Theorem 18**) and a hitting set `A₁` of the `N_k(v)` with
//!    `|A₁| = O(√n)` (**Lemma 4**);
//! 2. every `v ∉ A₁` adds its **bunch** `B(v) = {u ∈ N_k(v) :
//!    d(v,u) < d(v, A₁)} ∪ {p(v)}` with exact weights — the edge set `H⁰`,
//!    `O(n^{3/2} log n)` edges in total (Claim 21);
//! 3. for `ℓ = 1..log n`, nodes of `A₁` learn their `4β`-hop distances to
//!    `A₁` in `G ∪ H^{ℓ-1}` (**Theorem 19**) and add the corresponding
//!    `A₁ × A₁` edges, yielding a `(β, ε·ℓ, 2^ℓ)`-hopset `H^ℓ` (Lemma 24).
//!
//! Unlike prior constructions whose round complexity grows with the hopset
//! *size*, everything here runs in `O(log² n / ε)` rounds (Claim 22): the
//! paper's headline structural insight.
//!
//! Unsafe code is forbidden (`#![forbid(unsafe_code)]`), as across the
//! whole workspace.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Distributed algorithms index many parallel per-node vectors by NodeId;
// iterator zips would obscure which node each access belongs to.
#![allow(clippy::needless_range_loop)]

use cc_clique::Clique;
use cc_distance::{hitting_set, k_nearest, source_detection_all, DistanceError, HittingSet};
use cc_graph::Graph;

/// Tuning knobs for the hopset construction.
///
/// The defaults follow the paper's parameters (`β = Θ(log n/ε)`,
/// `exploration = 4β` hops, `log n` levels). The overrides exist for the
/// ablation experiments: theory constants are astronomically conservative
/// at benchmarkable `n`, and the experiments quantify how far `β` and the
/// exploration radius can be cut while the measured stretch stays within
/// `1 + ε` (see EXPERIMENTS.md, E7).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HopsetConfig {
    /// Target stretch `ε` (`0 < ε`); the hopset guarantees `(1+ε)`.
    pub epsilon: f64,
    /// Seed for the Lemma 4 hitting set.
    pub seed: u64,
    /// Override for the hop bound `β` (default `⌈3·log₂ n / ε⌉`, capped at
    /// `n`).
    pub beta: Option<usize>,
    /// Override for the per-level exploration radius (default
    /// `min(4β, n)` hops).
    pub exploration_hops: Option<usize>,
    /// Override for the number of levels (default `⌈log₂ n⌉`).
    pub levels: Option<usize>,
}

impl HopsetConfig {
    /// Paper-faithful defaults for a given `ε`.
    pub fn new(epsilon: f64) -> Self {
        HopsetConfig { epsilon, seed: 0x5eed, beta: None, exploration_hops: None, levels: None }
    }

    /// Resolves the config against a concrete graph size: the ball size of
    /// step 1, the hop bound `β`, the per-level exploration radius, and the
    /// level count, with every default/override/collapse rule applied.
    ///
    /// This is the **single source of truth** for the schedule — both the
    /// clique construction ([`build_hopset`]) and `cc-oracle`'s direct
    /// builder resolve their parameters here, so the two paths cannot
    /// drift. Assumes `ε > 0` (callers validate before resolving).
    pub fn schedule(&self, n: usize) -> HopsetSchedule {
        let log_n = (n.max(2) as f64).log2();
        let k = (((n as f64).sqrt() * log_n).ceil() as usize).clamp(1, n);
        let beta = self
            .beta
            .unwrap_or(((3.0 * log_n / self.epsilon).ceil() as usize).max(2))
            .min(n)
            .max(2.min(n));
        let mut exploration = self.exploration_hops.unwrap_or((4 * beta).min(n)).clamp(1, n);
        // The iterative schedule costs (log n)·4β hop-steps. Whenever that
        // budget reaches n, a *single* level with exploration n is both
        // cheaper and stronger (it learns the exact A1-to-A1 distances); the
        // theory schedule only pays off once n ≫ 4β·log n — the asymptotic
        // regime.
        let theory_levels = (log_n.ceil() as usize).max(1);
        let default_levels = if theory_levels.saturating_mul(exploration) >= n {
            if self.exploration_hops.is_none() {
                exploration = n;
            }
            1
        } else {
            theory_levels
        };
        let levels = self.levels.unwrap_or(default_levels).max(1);
        HopsetSchedule { k, beta, exploration, levels }
    }
}

/// A [`HopsetConfig`] resolved against a concrete `n`: the actual
/// parameters a construction will run with (see [`HopsetConfig::schedule`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HopsetSchedule {
    /// Ball size for step 1's `k`-nearest computation.
    pub k: usize,
    /// The hop bound `β` for which the `(1+ε)` guarantee is claimed.
    pub beta: usize,
    /// Per-level exploration radius, in hops.
    pub exploration: usize,
    /// Number of iterative levels.
    pub levels: usize,
}

/// A constructed `(β, ε)`-hopset, together with the artefacts the
/// shortest-path algorithms reuse.
#[derive(Debug, Clone)]
pub struct Hopset {
    /// The hopset edges `(u, v, w)`.
    pub edges: Vec<(usize, usize, u64)>,
    /// The hop bound `β` for which the `(1+ε)` guarantee is claimed.
    pub beta: usize,
    /// The stretch parameter `ε`.
    pub epsilon: f64,
    /// The hitting set `A₁` (reused by MSSP/APSP as a landmark set).
    pub a1: HittingSet,
    /// Number of bunch edges (`H⁰`) among [`Hopset::edges`].
    pub bunch_edges: usize,
}

impl Hopset {
    /// `G ∪ H`: the input graph with the hopset edges added (lighter weight
    /// wins on duplicates).
    ///
    /// # Panics
    ///
    /// Panics if the hopset references nodes outside the graph (impossible
    /// for a hopset built on the same graph).
    pub fn union_with(&self, graph: &Graph) -> Graph {
        graph
            .union_edges(self.edges.iter().copied())
            .expect("hopset edges are valid for the graph they were built on")
    }

    /// Sequentially measures the worst-case stretch
    /// `max_{u,v} d^β_{G∪H}(u,v) / d_G(u,v)` over connected pairs — the
    /// quantity Theorem 25 bounds by `1 + ε`. Used by tests and E7.
    pub fn measure_stretch(&self, graph: &Graph) -> f64 {
        let union = self.union_with(graph);
        let mut worst: f64 = 1.0;
        for v in 0..graph.n() {
            let exact = cc_graph::reference::dijkstra(graph, v);
            let hop = cc_graph::reference::hop_bounded(&union, v, self.beta);
            for u in 0..graph.n() {
                if let (Some(d), Some(h)) = (exact[u], hop[u]) {
                    if d > 0 {
                        worst = worst.max(h as f64 / d as f64);
                    }
                } else if exact[u].is_some() && u != v {
                    // Reachable in G but not within β hops in G ∪ H:
                    // infinite stretch.
                    return f64::INFINITY;
                }
            }
        }
        worst
    }
}

/// **Theorem 25**: builds a `(β, ε)`-hopset with `O(n^{3/2} log n)` edges
/// and `β = O(log n / ε)` in `O(log² n / ε)` rounds.
///
/// # Errors
///
/// * [`DistanceError::InvalidParameter`] if `ε ≤ 0` or graph/clique sizes
///   mismatch;
/// * [`DistanceError::Matmul`] if a multiplication subroutine fails.
///
/// # Example
///
/// ```
/// use cc_clique::Clique;
/// use cc_graph::generators;
/// use cc_hopset::{build_hopset, HopsetConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let g = generators::gnp_weighted(32, 0.1, 20, 1)?;
/// let mut clique = Clique::new(32);
/// let hopset = build_hopset(&mut clique, &g, HopsetConfig::new(0.5))?;
/// assert!(hopset.measure_stretch(&g) <= 1.5);
/// # Ok(())
/// # }
/// ```
pub fn build_hopset(
    clique: &mut Clique,
    graph: &Graph,
    config: HopsetConfig,
) -> Result<Hopset, DistanceError> {
    let n = clique.n();
    if graph.n() != n {
        return Err(DistanceError::InvalidParameter {
            what: format!("graph has {} nodes but clique has {n}", graph.n()),
        });
    }
    if !config.epsilon.is_finite() || config.epsilon <= 0.0 {
        return Err(DistanceError::InvalidParameter {
            what: "hopset needs epsilon > 0".to_owned(),
        });
    }
    let HopsetSchedule { k, beta, exploration, levels } = config.schedule(n);

    clique.with_phase("hopset", |clique| {
        // Step 1: k-nearest + hitting set A1.
        let near = k_nearest(clique, graph, k)?;
        let sets: Vec<Vec<usize>> =
            near.iter().map(|row| row.iter().map(|(c, _)| c as usize).collect()).collect();
        let a1 = hitting_set(clique, &sets, k, config.seed)?;

        // Step 2: bunches B(v) with exact weights (already known locally
        // from the k-nearest output) — the edge set H0.
        let mut union = graph.clone();
        let mut edges: Vec<(usize, usize, u64)> = Vec::new();
        let add_edge = |union: &mut Graph, edges: &mut Vec<_>, u: usize, v: usize, w: u64| {
            if u != v {
                let better = union.weight(u, v).is_none_or(|old| w < old);
                if better {
                    union.add_edge(u, v, w).expect("valid nodes");
                    edges.push((u, v, w));
                }
            }
        };
        for v in 0..n {
            if a1.contains(v) {
                continue;
            }
            let Some((p, pd)) = a1.closest_in_row(&near[v]) else {
                continue; // isolated node: empty bunch
            };
            for (u, a) in near[v].iter() {
                let u = u as usize;
                // Bunch: strictly closer than A1, plus p(v) itself.
                if *a < pd || u == p {
                    add_edge(&mut union, &mut edges, v, u, a.dist);
                }
            }
        }
        let bunch_edges = edges.len();

        // Step 3: iterative levels — A1-to-A1 edges from bounded
        // explorations in G ∪ H^{l-1}.
        for level in 0..levels {
            let rows = clique.with_phase(&format!("level{level}"), |clique| {
                source_detection_all(clique, &union, &a1.members, exploration)
            })?;
            for &v in &a1.members {
                for (u, a) in rows[v].iter() {
                    let u = u as usize;
                    if a1.contains(u) && u != v {
                        add_edge(&mut union, &mut edges, v, u, a.dist);
                    }
                }
            }
        }

        Ok(Hopset { edges, beta, epsilon: config.epsilon, a1, bunch_edges })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_graph::generators;

    fn check_graph(g: &Graph, epsilon: f64) -> Hopset {
        let mut clique = Clique::new(g.n());
        let h = build_hopset(&mut clique, g, HopsetConfig::new(epsilon)).unwrap();
        let stretch = h.measure_stretch(g);
        assert!(
            stretch <= 1.0 + epsilon + 1e-9,
            "stretch {stretch} exceeds 1+{epsilon} on {} nodes",
            g.n()
        );
        h
    }

    #[test]
    fn path_graph_hopset_shortcuts_long_paths() {
        let g = generators::path(32).unwrap();
        let h = check_graph(&g, 0.5);
        // A path has diameter 31 >> beta, so real shortcuts are required.
        assert!(!h.edges.is_empty());
    }

    #[test]
    fn weighted_gnp_hopset_meets_stretch() {
        let g = generators::gnp_weighted(32, 0.1, 50, 3).unwrap();
        check_graph(&g, 0.5);
    }

    #[test]
    fn weighted_grid_hopset_meets_stretch() {
        let g = generators::grid_weighted(6, 5, 20, 4).unwrap();
        check_graph(&g, 0.3);
    }

    #[test]
    fn cliques_with_bridges_hopset_meets_stretch() {
        let g = generators::cliques_with_bridges(6, 5, 9).unwrap();
        check_graph(&g, 0.5);
    }

    #[test]
    fn hopset_size_within_claim21_bound() {
        let g = generators::gnp_weighted(64, 0.08, 30, 5).unwrap();
        let mut clique = Clique::new(64);
        let h = build_hopset(&mut clique, &g, HopsetConfig::new(0.5)).unwrap();
        // Claim 21: O(n^{3/2} log n) edges; check with a generous constant.
        let n = 64f64;
        let bound = (4.0 * n.powf(1.5) * n.log2()) as usize;
        assert!(h.edges.len() <= bound, "{} edges > bound {bound}", h.edges.len());
        assert!(h.bunch_edges <= h.edges.len());
    }

    #[test]
    fn disconnected_graphs_are_handled() {
        let g = Graph::from_edges(16, (0..7).map(|v| (v, v + 1, 2))).unwrap();
        let mut clique = Clique::new(16);
        let h = build_hopset(&mut clique, &g, HopsetConfig::new(0.5)).unwrap();
        assert!(h.measure_stretch(&g).is_finite());
    }

    #[test]
    fn beta_override_trades_stretch_for_rounds() {
        let g = generators::path(32).unwrap();
        let mut c_small = Clique::new(32);
        let mut cfg = HopsetConfig::new(0.5);
        cfg.beta = Some(4);
        cfg.exploration_hops = Some(8);
        cfg.levels = Some(1);
        let h_small = build_hopset(&mut c_small, &g, cfg).unwrap();
        let mut c_big = Clique::new(32);
        let h_big = build_hopset(&mut c_big, &g, HopsetConfig::new(0.5)).unwrap();
        assert!(c_small.rounds() < c_big.rounds());
        // The small config claims beta=4; its stretch may be worse but must
        // still be finite if exploration found the shortcuts.
        let _ = h_small.measure_stretch(&g);
        assert!(h_big.measure_stretch(&g) <= 1.5 + 1e-9);
    }

    #[test]
    fn rejects_bad_parameters() {
        let g = generators::path(8).unwrap();
        let mut clique = Clique::new(8);
        assert!(build_hopset(&mut clique, &g, HopsetConfig::new(0.0)).is_err());
        let mut clique = Clique::new(16);
        assert!(build_hopset(&mut clique, &g, HopsetConfig::new(0.5)).is_err());
    }

    #[test]
    fn schedule_collapses_to_one_exact_level_at_small_n() {
        // At every benchmarkable n the level budget covers the graph, so
        // the schedule collapses to a single exploration-n level...
        let s = HopsetConfig::new(0.25).schedule(512);
        assert_eq!((s.levels, s.exploration, s.beta), (1, 512, 108));
        // ...while the asymptotic regime keeps the theory schedule.
        let big = HopsetConfig::new(0.25).schedule(100_000);
        assert!(big.levels > 1, "large n should use the iterative schedule");
        assert!(big.exploration < 100_000);
        // Overrides pass through untouched (modulo clamping).
        let mut cfg = HopsetConfig::new(0.5);
        cfg.beta = Some(4);
        cfg.exploration_hops = Some(8);
        cfg.levels = Some(3);
        let s = cfg.schedule(64);
        assert_eq!((s.beta, s.exploration, s.levels), (4, 8, 3));
    }
}
