//! Offline shim for the [`rand`](https://docs.rs/rand/0.8) crate.
//!
//! The build environment has no network access to crates.io, so this local
//! crate provides exactly the API subset the workspace uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], and [`Rng::{gen_range, gen_bool}`](Rng).
//!
//! The generator is xoshiro256++ seeded via SplitMix64 — deterministic in the
//! seed (which is all the workspace's seeded generators and tests rely on),
//! statistically strong enough for workload generation, and **not** a
//! cryptographic RNG. The stream differs from upstream `StdRng` (ChaCha12),
//! so seeds produce different (but still deterministic) draws than a
//! crates.io build would.
//!
//! Unsafe code is forbidden (`#![forbid(unsafe_code)]`), as across the
//! whole workspace.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Standard-use RNGs.
pub mod rngs {
    /// The workspace's standard seeded RNG (xoshiro256++ under the hood).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }
}

use rngs::StdRng;

impl StdRng {
    fn next_u64(&mut self) -> u64 {
        // xoshiro256++ step.
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Seeding interface (the `seed_from_u64` subset).
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s =
            [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)];
        StdRng { s }
    }
}

/// A type that can be sampled uniformly from a range (the subset of
/// `rand::distributions::uniform` the workspace needs).
pub trait SampleUniform: Copy {
    /// Uniform sample in `[lo, hi]` (inclusive).
    fn sample_inclusive(rng: &mut StdRng, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive(rng: &mut StdRng, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "empty sampling range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1) as u128;
                if span == 0 {
                    // Full u128 span is impossible for <= 64-bit types except
                    // the degenerate full-u64 case; fall back to raw bits.
                    return rng.next_u64() as $t;
                }
                let draw = ((rng.next_u64() as u128) % span) as $t;
                lo.wrapping_add(draw)
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A range argument accepted by [`Rng::gen_range`].
pub trait SampleRange {
    /// The sampled type.
    type Output;
    /// Draws one uniform sample.
    fn sample(&self, rng: &mut StdRng) -> Self::Output;
}

impl<T: SampleUniform + PartialOrd + num_step::Dec> SampleRange for Range<T> {
    type Output = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        assert!(self.start < self.end, "gen_range on empty range");
        T::sample_inclusive(rng, self.start, self.end.dec())
    }
}

impl<T: SampleUniform + PartialOrd> SampleRange for RangeInclusive<T> {
    type Output = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        assert!(self.start() <= self.end(), "gen_range on empty range");
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

mod num_step {
    /// Decrement by one (for converting `..end` to an inclusive bound).
    pub trait Dec {
        fn dec(self) -> Self;
    }
    macro_rules! impl_dec {
        ($($t:ty),*) => {$(impl Dec for $t { fn dec(self) -> Self { self - 1 } })*};
    }
    impl_dec!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

/// The sampling interface (the `gen_range`/`gen_bool` subset).
pub trait Rng {
    /// A uniform sample from `range`.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output;
    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool;
}

impl Rng for StdRng {
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool needs 0 <= p <= 1");
        // 53 random bits -> uniform f64 in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let xs: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..1000)).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..1000)).collect();
        assert_eq!(xs, ys);
        let mut c = StdRng::seed_from_u64(8);
        let zs: Vec<u64> = (0..8).map(|_| c.gen_range(0u64..1000)).collect();
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..10);
            assert!((3..10).contains(&x));
            let y = rng.gen_range(5u64..=5);
            assert_eq!(y, 5);
            let z = rng.gen_range(-4i64..4);
            assert!((-4..4).contains(&z));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
