//! The case loop: deterministic per-test RNG, `PROPTEST_CASES` override,
//! and failure reporting with the case index.

/// Default number of cases per property (upstream defaults to 256; the
/// distributed-simulator properties here are comparatively expensive).
pub const DEFAULT_CASES: u32 = 64;

/// Per-block configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: DEFAULT_CASES }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic RNG handed to strategies (SplitMix64 stream).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator whose stream is a pure function of `seed`.
    pub fn seeded(seed: u64) -> TestRng {
        TestRng { state: seed ^ 0x6a09_e667_f3bc_c908 }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        self.next_u64() % bound
    }
}

fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Runs `body` for the default number of cases, handing each case a
/// deterministic RNG derived from the test name and the case index.
pub fn run(test_name: &str, body: impl FnMut(&mut TestRng)) {
    run_config(ProptestConfig::default(), test_name, body);
}

/// [`run`] with an explicit configuration; the `PROPTEST_CASES` environment
/// variable overrides both.
pub fn run_config(config: ProptestConfig, test_name: &str, mut body: impl FnMut(&mut TestRng)) {
    let cases: u32 =
        std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(config.cases);
    let base = fnv1a(test_name);
    for case in 0..cases {
        let mut rng = TestRng::seeded(base.wrapping_add(case as u64));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut rng)));
        if let Err(panic) = result {
            eprintln!(
                "proptest shim: property `{test_name}` failed at case {case}/{cases} \
                 (rerun is deterministic; no shrinking in the offline shim)"
            );
            std::panic::resume_unwind(panic);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::seeded(1);
        let mut b = TestRng::seeded(1);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn run_executes_all_cases() {
        let mut count = 0;
        run("counter", |_| count += 1);
        assert!(count >= 1);
    }

    #[test]
    #[should_panic]
    fn failures_propagate() {
        run("boom", |_| panic!("expected"));
    }
}
