//! Offline shim for the [`proptest`](https://docs.rs/proptest) crate.
//!
//! The build environment has no network access to crates.io, so this local
//! crate implements the API subset the workspace's property tests use:
//!
//! * the [`proptest!`] macro (generate inputs, run the body many times);
//! * [`Strategy`](strategy::Strategy) for integer ranges, tuples,
//!   [`Just`](strategy::Just), `prop_map`, and [`prop::collection::vec`];
//! * [`prop_oneof!`] with weights;
//! * `prop_assert!` / `prop_assert_eq!` (plain panicking asserts here).
//!
//! Differences from upstream: no shrinking (a failing case prints its seed
//! and case index instead), and the default case count is 64 (override with
//! the `PROPTEST_CASES` environment variable). Inputs are drawn from a
//! deterministic per-test RNG so failures reproduce across runs.
//!
//! Unsafe code is forbidden (`#![forbid(unsafe_code)]`), as across the
//! whole workspace.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod strategy;
pub mod test_runner;

/// Collection strategies and re-exports, mirroring `proptest::prelude::prop`.
pub mod prop {
    /// Collection strategies (`vec`).
    pub mod collection {
        pub use crate::strategy::collection_vec as vec;
        pub use crate::strategy::SizeRange;
    }
}

/// The common imports: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Weighted choice between strategies producing the same value type:
/// `prop_oneof![3 => a, 1 => b]` (unweighted arms default to weight 1).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Union::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Union::boxed($strat))),+
        ])
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that draws inputs and runs the body for every case.
/// An optional leading `#![proptest_config(ProptestConfig::with_cases(n))]`
/// overrides the case count for the whole block.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)+) => {
        $crate::__proptest_impl! { config = ($config); $($rest)+ }
    };
    ($($rest:tt)+) => {
        $crate::__proptest_impl! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)+
        }
    };
}

/// Implementation detail of [`proptest!`]; do not invoke directly.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr; $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::test_runner::run_config($config, stringify!($name), |__proptest_rng| {
                    $(let $arg = $crate::strategy::Strategy::new_value(&($strat), __proptest_rng);)+
                    $body
                });
            }
        )+
    };
}
