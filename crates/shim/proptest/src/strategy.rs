//! Strategies: how test inputs are generated.

use std::ops::Range;

use crate::test_runner::TestRng;

/// A generator of test values. Unlike upstream there is no value tree /
/// shrinking: a strategy simply draws a value per case.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy on empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

/// Admissible collection sizes: an exact size or a half-open range.
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    max_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> SizeRange {
        SizeRange { min: exact, max_exclusive: exact + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange { min: r.start, max_exclusive: r.end }
    }
}

/// A `Vec` of values drawn from `element`, with a length in `size`
/// (`prop::collection::vec`).
pub fn collection_vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// The strategy returned by [`collection_vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max_exclusive - self.size.min) as u64;
        let len = self.size.min + if span == 0 { 0 } else { rng.below(span) as usize };
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}

/// Weighted union of same-valued strategies (`prop_oneof!`).
pub struct Union<V> {
    arms: Vec<(u32, Box<dyn Strategy<Value = V>>)>,
    total: u64,
}

impl<V> Union<V> {
    /// Builds a union; weights must not all be zero.
    pub fn new(arms: Vec<(u32, Box<dyn Strategy<Value = V>>)>) -> Union<V> {
        let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! needs a positive total weight");
        Union { arms, total }
    }

    /// Boxes a strategy arm (used by the `prop_oneof!` macro).
    pub fn boxed<S: Strategy<Value = V> + 'static>(s: S) -> Box<dyn Strategy<Value = V>> {
        Box::new(s)
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn new_value(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.below(self.total);
        for (weight, strat) in &self.arms {
            if pick < *weight as u64 {
                return strat.new_value(rng);
            }
            pick -= *weight as u64;
        }
        unreachable!("weighted pick out of range")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_and_tuples_stay_in_bounds() {
        let mut rng = TestRng::seeded(3);
        for _ in 0..200 {
            let (a, b) = (0usize..5, 10u64..20).new_value(&mut rng);
            assert!(a < 5);
            assert!((10..20).contains(&b));
        }
    }

    #[test]
    fn vec_respects_size_range() {
        let mut rng = TestRng::seeded(4);
        let s = collection_vec(0u32..10, 2..6);
        for _ in 0..100 {
            let v = s.new_value(&mut rng);
            assert!((2..6).contains(&v.len()));
        }
        let exact = collection_vec(0u32..10, 4usize);
        assert_eq!(exact.new_value(&mut rng).len(), 4);
    }

    #[test]
    fn map_and_just_compose() {
        let mut rng = TestRng::seeded(5);
        let s = (1u64..4).prop_map(|x| x * 100);
        let v = s.new_value(&mut rng);
        assert!(v == 100 || v == 200 || v == 300);
        assert_eq!(Just(7i32).new_value(&mut rng), 7);
    }

    #[test]
    fn union_picks_every_arm_eventually() {
        let mut rng = TestRng::seeded(6);
        let u = Union::new(vec![(3, Union::boxed(Just(1i32))), (1, Union::boxed(Just(2i32)))]);
        let draws: Vec<i32> = (0..200).map(|_| u.new_value(&mut rng)).collect();
        assert!(draws.contains(&1));
        assert!(draws.contains(&2));
    }
}
