//! Offline shim for the [`criterion`](https://docs.rs/criterion) crate.
//!
//! The build environment has no network access to crates.io, so this local
//! crate implements the benchmark API subset the workspace uses:
//! [`Criterion::bench_function`], [`Bencher::iter`], the
//! `criterion_group!`/`criterion_main!` macros, and the
//! `sample_size`/`warm_up_time`/`measurement_time` configuration knobs.
//!
//! Measurement model: each sample times a batch of iterations sized so a
//! batch lasts roughly a millisecond, and per-iteration times are reported
//! as mean / p50 / p99 over the samples. No statistical regression analysis,
//! plots, or saved baselines — this is a timing harness, not a statistics
//! suite. `cargo bench` output remains human-readable one-liners.
//!
//! Unsafe code is forbidden (`#![forbid(unsafe_code)]`), as across the
//! whole workspace.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Summary of one benchmark: per-iteration latencies in nanoseconds.
#[derive(Debug, Clone, Copy)]
pub struct Summary {
    /// Mean per-iteration time, ns.
    pub mean_ns: f64,
    /// Median per-iteration time, ns.
    pub p50_ns: f64,
    /// 99th-percentile per-iteration time, ns.
    pub p99_ns: f64,
    /// Total iterations measured.
    pub iterations: u64,
}

/// The benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            warm_up_time: Duration::from_millis(500),
            measurement_time: Duration::from_secs(3),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Time spent running the closure untimed before sampling.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Target total time across all samples.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Runs one benchmark and prints its summary.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            summary: None,
        };
        f(&mut bencher);
        match bencher.summary {
            Some(s) => println!(
                "{id:<44} mean {:>12} p50 {:>12} p99 {:>12} ({} iters)",
                fmt_ns(s.mean_ns),
                fmt_ns(s.p50_ns),
                fmt_ns(s.p99_ns),
                s.iterations
            ),
            None => println!("{id:<44} (no measurement: Bencher::iter never called)"),
        }
        self
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the code to
/// measure.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    summary: Option<Summary>,
}

impl Bencher {
    /// Measures `routine`, recording per-iteration latency over
    /// `sample_size` samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run untimed until the warm-up budget is spent, measuring
        // a rough per-iteration cost to size batches.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warm_up_time || warm_iters == 0 {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_nanos().max(1) / warm_iters.max(1) as u128;
        // Batch so one sample lasts ~1ms (min 1 iteration), and the whole
        // measurement fits the time budget.
        let batch = (1_000_000 / per_iter.max(1)).clamp(1, 1_000_000) as u64;
        let budget = self.measurement_time;
        let started = Instant::now();
        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.sample_size);
        let mut total_iters = 0u64;
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = t.elapsed().as_nanos() as f64;
            samples_ns.push(elapsed / batch as f64);
            total_iters += batch;
            if started.elapsed() > budget && samples_ns.len() >= 10 {
                break;
            }
        }
        samples_ns.sort_by(|a, b| a.total_cmp(b));
        let mean = samples_ns.iter().sum::<f64>() / samples_ns.len() as f64;
        let pct = |q: f64| samples_ns[((samples_ns.len() - 1) as f64 * q) as usize];
        self.summary = Some(Summary {
            mean_ns: mean,
            p50_ns: pct(0.50),
            p99_ns: pct(0.99),
            iterations: total_iters,
        });
    }

    /// The summary of the last [`Bencher::iter`] call, if any (shim
    /// extension used by benches that export machine-readable artifacts).
    pub fn summary(&self) -> Option<Summary> {
        self.summary
    }
}

/// Declares a benchmark group. Supports both the positional form
/// `criterion_group!(name, target, ...)` and the configured form with
/// `name = ...; config = ...; targets = ...`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_produces_summary() {
        let mut c = Criterion::default()
            .sample_size(10)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(10));
        let mut captured = None;
        c.bench_function("noop", |b| {
            b.iter(|| 1 + 1);
            captured = b.summary();
        });
        let s = captured.expect("summary");
        assert!(s.mean_ns > 0.0);
        assert!(s.p99_ns >= s.p50_ns);
        assert!(s.iterations > 0);
    }
}
