//! Property-based tests for the partition lemmas and the distributed
//! multiplication pipelines on arbitrary inputs.

use cc_clique::Clique;
use cc_matmul::partition::{
    balanced_partition, consecutive_partition, doubly_balanced_partition, range_weight,
};
use cc_matmul::{dense_multiply, sparse_multiply};
use cc_matrix::{Dist, Entry, MinPlus, SparseMatrix};
use proptest::prelude::*;

fn arb_weights(max_len: usize) -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(0u64..100, 0..max_len)
}

fn arb_matrix(n: usize, max_entries: usize) -> impl Strategy<Value = SparseMatrix<Dist>> {
    prop::collection::vec((0..n as u32, 0..n as u32, 1u64..1000), 0..max_entries).prop_map(
        move |entries| {
            SparseMatrix::from_entries::<MinPlus>(
                n,
                entries.into_iter().map(|(r, c, w)| Entry::new(r, c, Dist::fin(w))),
            )
        },
    )
}

proptest! {
    #[test]
    fn lemma5_bounds_hold_for_arbitrary_weights(weights in arb_weights(64), k in 1usize..10) {
        let groups = balanced_partition(&weights, k);
        prop_assert_eq!(groups.len(), k);
        let total: u64 = weights.iter().sum();
        let max_w = weights.iter().copied().max().unwrap_or(0);
        let mut seen = vec![false; weights.len()];
        for g in &groups {
            let w: u64 = g.iter().map(|&i| weights[i]).sum();
            prop_assert!(w <= total / k as u64 + max_w);
            prop_assert!(g.len() <= weights.len().div_ceil(k));
            for &i in g {
                prop_assert!(!seen[i]);
                seen[i] = true;
            }
        }
        prop_assert!(seen.into_iter().all(|b| b));
    }

    #[test]
    fn lemma6_bounds_hold_for_arbitrary_weights(weights in arb_weights(64), k in 1usize..10) {
        let parts = consecutive_partition(&weights, k);
        prop_assert_eq!(parts.len(), k);
        let total: u64 = weights.iter().sum();
        let max_w = weights.iter().copied().max().unwrap_or(0);
        let mut next = 0usize;
        for r in &parts {
            prop_assert_eq!(r.start, next.min(weights.len()));
            next = r.end;
            prop_assert!(range_weight(&weights, r) <= total / k as u64 + max_w);
        }
        prop_assert_eq!(next, weights.len());
    }

    #[test]
    fn lemma7_bounds_hold_for_arbitrary_weight_pairs(
        pairs in prop::collection::vec((0u64..50, 0u64..50), 0..64),
        k in 1usize..8,
    ) {
        let w1: Vec<u64> = pairs.iter().map(|p| p.0).collect();
        let w2: Vec<u64> = pairs.iter().map(|p| p.1).collect();
        let parts = doubly_balanced_partition(&w1, &w2, k);
        let (t1, t2): (u64, u64) = (w1.iter().sum(), w2.iter().sum());
        let (m1, m2) = (
            w1.iter().copied().max().unwrap_or(0),
            w2.iter().copied().max().unwrap_or(0),
        );
        let mut next = 0usize;
        for r in &parts {
            prop_assert_eq!(r.start, next);
            next = r.end;
            prop_assert!(range_weight(&w1, r) <= 2 * (t1 / k as u64 + m1));
            prop_assert!(range_weight(&w2, r) <= 2 * (t2 / k as u64 + m2));
        }
        prop_assert_eq!(next, pairs.len());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn sparse_and_dense_multiply_agree(
        s in arb_matrix(10, 40),
        t in arb_matrix(10, 40),
    ) {
        let t_cols = t.transpose();
        let mut c1 = Clique::new(10);
        let sparse =
            sparse_multiply::<MinPlus>(&mut c1, s.rows(), t_cols.rows(), 10).unwrap();
        let mut c2 = Clique::new(10);
        let dense = dense_multiply::<MinPlus>(&mut c2, s.rows(), t_cols.rows()).unwrap();
        prop_assert_eq!(sparse, dense);
    }

    #[test]
    fn multiply_respects_any_valid_density_hint(
        s in arb_matrix(8, 30),
        t in arb_matrix(8, 30),
        extra in 0usize..4,
    ) {
        // Any hint >= the true density must give the exact product.
        let expected = s.multiply::<MinPlus>(&t);
        let hint = (expected.density() + extra).min(8);
        let t_cols = t.transpose();
        let mut clique = Clique::new(8);
        let rows = sparse_multiply::<MinPlus>(&mut clique, s.rows(), t_cols.rows(), hint).unwrap();
        prop_assert_eq!(SparseMatrix::from_rows(rows), expected);
    }
}
