use std::error::Error;
use std::fmt;

use cc_clique::CliqueError;

/// Errors raised by the distributed matrix-multiplication algorithms.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MatmulError {
    /// A simulator primitive failed (malformed communication — a bug in the
    /// calling code, not a data-dependent condition).
    Clique(CliqueError),
    /// The operands (or the clique) disagree on the dimension `n`.
    DimensionMismatch {
        /// Rows supplied for `S`.
        s_rows: usize,
        /// Columns supplied for `T`.
        t_cols: usize,
        /// Clique size.
        n: usize,
    },
    /// The caller's promised output density `ρ̂` was smaller than the real
    /// output density, so the balancing of Lemma 12 cannot place all
    /// duplicate subtasks. Retry with a larger hint (or use the
    /// doubling wrapper).
    DensityHintTooSmall {
        /// The hint that proved too small.
        hint: usize,
    },
}

impl fmt::Display for MatmulError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatmulError::Clique(e) => write!(f, "clique primitive failed: {e}"),
            MatmulError::DimensionMismatch { s_rows, t_cols, n } => write!(
                f,
                "dimension mismatch: S has {s_rows} rows, T has {t_cols} columns, clique has {n} nodes"
            ),
            MatmulError::DensityHintTooSmall { hint } => {
                write!(f, "output density hint {hint} is smaller than the true output density")
            }
        }
    }
}

impl Error for MatmulError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            MatmulError::Clique(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CliqueError> for MatmulError {
    fn from(e: CliqueError) -> Self {
        MatmulError::Clique(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = MatmulError::from(CliqueError::EmptyClique);
        assert!(e.to_string().contains("clique"));
        assert!(Error::source(&e).is_some());
        let e = MatmulError::DensityHintTooSmall { hint: 4 };
        assert!(e.to_string().contains('4'));
    }
}
