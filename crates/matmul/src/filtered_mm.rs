//! Matrix multiplication with on-the-fly output sparsification —
//! **Theorem 14**.
//!
//! Computes the ρ-filtered product `P̄` (each output row truncated to its
//! `ρ` smallest entries by `(value, column)` order) in
//! `O((ρS·ρT·ρ)^{1/3}/n^{2/3} + log W)` rounds. The crux: the intermediate
//! slice matrices `P_k` can be dense, so before summation each group
//! `B_{ik}` (the `a` nodes producing rows `C^S_i` of slice `P_k`) runs a
//! **distributed binary search** over the value space to find, per row, the
//! cutoff below which exactly `ρ` entries survive (Lemma 15). Everything
//! above the cutoff is discarded, the survivors are re-balanced inside the
//! group (Lemma 16), summed like in Theorem 8, and the final rows filtered
//! once more locally.
//!
//! The search runs over *combined ordinals* `ordinal(value)·n + column`, so
//! it directly finds the `(value, column)` cutoff pair — the paper's
//! lexicographic cutoff `(r, s)` — in one search instead of a value search
//! plus a tie-resolution query.

use std::collections::HashMap;

use cc_clique::{Clique, Envelope, NodeId, Payload};
use cc_matrix::{Entry, OrderedSemiring, Searchable, SparseRow};

use crate::cube::{CubePartition, CubeShape, Sigma, TaskAssignment};
use crate::deliver::{deliver_subtask_inputs, local_product};
use crate::sum::sum_intermediates;
use crate::{layout, MatmulError};

/// A combined `(value, column)` ordinal on the wire. The value is an
/// `O(log n)`-bit semiring element and the column an index, so the pair is
/// one message word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Ord128(u128);

impl Payload for Ord128 {
    fn words(&self) -> usize {
        1
    }
}

fn combined<E: Searchable>(val: &E, col: u32, n: usize) -> u128 {
    val.to_ordinal() * (n as u128) + col as u128
}

/// State of one per-row binary search, held by its coordinator.
#[derive(Debug)]
struct Search {
    /// Invariant: count(≤ lo) < ρ ≤ count(≤ hi).
    lo: u128,
    hi: u128,
    /// Group members that reported entries for this row.
    contributors: Vec<NodeId>,
    resolved: bool,
}

/// **Theorem 14**: the ρ-filtered product `P̄` of `S ⋆ T`.
///
/// Input layout: node `v` holds row `v` of `S` and column `v` of `T`;
/// output: node `v` holds row `v` of `P̄` (at most `rho` entries, the
/// smallest of row `v` of `S·T` by `(value, column)` order).
///
/// Rounds: `O((ρS·ρT·ρ)^{1/3}/n^{2/3} + log W)` where `W` is the size of
/// the value space (for min-plus with `poly(n)` weights, `log W = O(log n)`).
///
/// # Errors
///
/// * [`MatmulError::DimensionMismatch`] if operands don't match the clique;
/// * [`MatmulError::Clique`] on malformed communication (internal bug).
///
/// # Example
///
/// ```
/// use cc_clique::Clique;
/// use cc_matmul::filtered_multiply;
/// use cc_matrix::{Dist, MinPlus, SparseMatrix};
///
/// # fn main() -> Result<(), cc_matmul::MatmulError> {
/// // Star graph: the square is dense, but we only want each node's 2
/// // nearest neighbours.
/// let n = 8;
/// let mut w = SparseMatrix::<Dist>::identity::<MinPlus>(n);
/// for v in 1..n {
///     w.set_in::<MinPlus>(0, v, Dist::fin(v as u64));
///     w.set_in::<MinPlus>(v, 0, Dist::fin(v as u64));
/// }
/// let mut clique = Clique::new(n);
/// let t_cols = w.transpose();
/// let p = filtered_multiply::<MinPlus>(&mut clique, w.rows(), t_cols.rows(), 2)?;
/// assert!(p.iter().all(|row| row.nnz() <= 2));
/// # Ok(())
/// # }
/// ```
pub fn filtered_multiply<SR>(
    clique: &mut Clique,
    s_rows: &[SparseRow<SR::Elem>],
    t_cols: &[SparseRow<SR::Elem>],
    rho: usize,
) -> Result<Vec<SparseRow<SR::Elem>>, MatmulError>
where
    SR: OrderedSemiring,
    SR::Elem: Searchable,
{
    let n = clique.n();
    if s_rows.len() != n || t_cols.len() != n {
        return Err(MatmulError::DimensionMismatch {
            s_rows: s_rows.len(),
            t_cols: t_cols.len(),
            n,
        });
    }
    let rho = rho.clamp(1, n);
    clique.with_phase("filtered_mm", |clique| {
        // Lemma 9 partition, shaped for output density ρ.
        let (s_counts, _, rho_s) = layout::broadcast_counts(clique, s_rows)?;
        let (t_counts, _, rho_t) = layout::broadcast_counts(clique, t_cols)?;
        let shape = CubeShape::choose(n, rho_s, rho_t, rho);
        let cube = CubePartition::build::<SR>(clique, shape, s_rows, t_cols, &s_counts, &t_counts)?;

        // σ1 delivery + local slice products.
        let sigma1 = TaskAssignment::new(&cube, cube.sigma1());
        let inputs = deliver_subtask_inputs::<SR>(clique, &cube, s_rows, t_cols, &sigma1)?;
        let mut products: Vec<Vec<Entry<SR::Elem>>> =
            inputs.iter().map(local_product::<SR>).collect();

        // Lemma 15: per-row cutoffs via lockstep distributed binary search.
        let cutoffs = row_cutoffs::<SR>(clique, &cube, &products, rho)?;
        for (v, product) in products.iter_mut().enumerate() {
            product.retain(|e| match cutoffs[v].get(&e.row) {
                Some(&cut) => combined(&e.val, e.col, n) <= cut,
                None => true,
            });
        }

        // Lemma 16: balance survivors inside each group B_ik.
        let weights: Vec<u64> = products.iter().map(|p| p.len() as u64).collect();
        let weights = clique.with_phase("weights", |cl| cl.all_broadcast(weights))?;
        let c_eff = cube.c_eff();
        let mut sigma_vec: Sigma = vec![None; n];
        let mut helper_chunk = vec![0usize; n];
        for i in 0..cube.shape.b {
            let alpha_i = (cube.row_blocks[i].len() * cube.shape.b).div_ceil(n).max(1);
            let chunk = (rho * alpha_i * c_eff).max(1);
            for k in 0..cube.shape.c {
                let members = cube.group_bik(i, k);
                let mut pool = members.iter().copied();
                for &v in &members {
                    let extra = weights[v] as usize / chunk;
                    let triple = cube.triple_of(v).expect("members have triples");
                    for _ in 0..extra {
                        // Lemma 16 proves the group pool always suffices.
                        let helper =
                            pool.next().ok_or(MatmulError::DensityHintTooSmall { hint: rho })?;
                        sigma_vec[helper] = Some(triple);
                    }
                }
                for &v in &members {
                    helper_chunk[v] = chunk;
                }
            }
        }
        let sigma = TaskAssignment::new(&cube, sigma_vec);
        let dup_inputs = deliver_subtask_inputs::<SR>(clique, &cube, s_rows, t_cols, &sigma)?;

        // Responsibility split, like Lemma 12 but with group-local chunks.
        let mut intermediates: Vec<Vec<Entry<SR::Elem>>> = vec![Vec::new(); n];
        for v in 0..cube.shape.subtasks() {
            let (i, j, k) = cube.triple_of(v).expect("subtask nodes have triples");
            let chunk = helper_chunk[v].max(1);
            // A node may be both σ1 owner and helper of the same task; it
            // then takes two parts (cf. Lemma 12 step 3), so duplicates stay.
            let mut owners = vec![v];
            owners.extend(sigma.nodes_for(&cube, i, j, k).iter().copied());
            owners.sort_unstable();
            let len = products[v].len();
            let parts = len.div_ceil(chunk);
            debug_assert!(parts <= owners.len(), "Lemma 16 guarantees enough owners");
            for (o, owner) in owners.iter().enumerate().take(parts) {
                let lo = o * chunk;
                let hi = ((o + 1) * chunk).min(len);
                if *owner == v {
                    intermediates[*owner].extend_from_slice(&products[v][lo..hi]);
                } else {
                    // Helper: recompute + filter locally (it holds the
                    // inputs via the σ delivery and the cutoffs via the
                    // group broadcast).
                    let mut prod = local_product::<SR>(&dup_inputs[*owner]);
                    prod.retain(|e| match cutoffs[*owner].get(&e.row) {
                        Some(&cut) => combined(&e.val, e.col, n) <= cut,
                        None => true,
                    });
                    intermediates[*owner].extend_from_slice(&prod[lo..hi]);
                }
            }
        }

        // Theorem 8's summation, then the final local filter.
        let mut rows = sum_intermediates::<SR>(clique, intermediates)?;
        for row in &mut rows {
            row.filter_smallest::<SR>(rho);
        }
        Ok(rows)
    })
}

/// Lemma 15: for every group `B_{ik}` and row, finds the `(value, column)`
/// cutoff such that exactly `ρ` entries of that row of `P_k` survive (or
/// no cutoff if the row already has at most `ρ` entries). Afterwards,
/// **every member of the group** knows the cutoffs of all the group's rows.
///
/// Returns, per node, a map `row → combined cutoff ordinal`.
fn row_cutoffs<SR>(
    clique: &mut Clique,
    cube: &CubePartition,
    products: &[Vec<Entry<SR::Elem>>],
    rho: usize,
) -> Result<Vec<HashMap<u32, u128>>, MatmulError>
where
    SR: OrderedSemiring,
    SR::Elem: Searchable,
{
    let n = clique.n();
    let a = cube.shape.a;

    // Per node: sorted combined ordinals per row (for O(log) counting).
    let row_ordinals: Vec<HashMap<u32, Vec<u128>>> = products
        .iter()
        .map(|entries| {
            let mut map: HashMap<u32, Vec<u128>> = HashMap::new();
            for e in entries {
                map.entry(e.row).or_default().push(combined(&e.val, e.col, n));
            }
            for v in map.values_mut() {
                v.sort_unstable();
            }
            map
        })
        .collect();

    // Coordinator of row-index t within group (i,k) is member t mod a.
    let coordinator_of = |i: usize, k: usize, row: u32| -> NodeId {
        let t =
            cube.row_blocks[i].binary_search(&(row as usize)).expect("row belongs to its block");
        cube.group_bik(i, k)[t % a]
    };

    clique.with_phase("cutoff_search", |clique| {
        // Init: members report (row, count, min, max) to coordinators.
        let mut init_msgs = Vec::new();
        for v in 0..cube.shape.subtasks() {
            let (i, _j, k) = cube.triple_of(v).expect("subtask nodes have triples");
            for (&row, ords) in &row_ordinals[v] {
                let coord = coordinator_of(i, k, row);
                init_msgs.push(Envelope::new(
                    v,
                    coord,
                    (
                        row,
                        ords.len() as u64,
                        Ord128(*ords.first().expect("nonempty")),
                        Ord128(*ords.last().expect("nonempty")),
                    ),
                ));
            }
        }
        let inboxes = clique.route(init_msgs)?;

        // Coordinators set up searches.
        let mut searches: Vec<HashMap<u32, Search>> = (0..n).map(|_| HashMap::new()).collect();
        for (coord, inbox) in inboxes.into_iter().enumerate() {
            for env in inbox {
                let (row, cnt, min_o, max_o) = env.payload;
                let s = searches[coord].entry(row).or_insert(Search {
                    lo: u128::MAX,
                    hi: 0,
                    contributors: Vec::new(),
                    resolved: false,
                });
                s.contributors.push(env.src);
                s.lo = s.lo.min(min_o.0.saturating_sub(1));
                s.hi = s.hi.max(max_o.0);
                // Stash counts in a side channel: reuse `resolved` later;
                // accumulate totals separately below.
                s.contributors.sort_unstable();
                let _ = cnt;
            }
        }
        // Recompute totals (needs a second pass because Search has no field).
        let mut totals: Vec<HashMap<u32, u64>> = vec![HashMap::new(); n];
        for (v, map) in row_ordinals.iter().enumerate() {
            if let Some((i, _j, k)) = cube.triple_of(v) {
                for (&row, ords) in map {
                    let coord = coordinator_of(i, k, row);
                    *totals[coord].entry(row).or_default() += ords.len() as u64;
                }
            }
        }
        for (coord, map) in searches.iter_mut().enumerate() {
            map.retain(|row, s| {
                if totals[coord][row] <= rho as u64 {
                    false // at most ρ entries: keep-all, no cutoff needed
                } else {
                    s.resolved = false;
                    true
                }
            });
        }

        // Lockstep binary search: one (query, reply) route pair per step.
        loop {
            let mut queries = Vec::new();
            for (coord, map) in searches.iter().enumerate() {
                for (&row, s) in map {
                    if !s.resolved && s.hi > s.lo + 1 {
                        let mid = s.lo + (s.hi - s.lo) / 2;
                        for &m in &s.contributors {
                            queries.push(Envelope::new(coord, m, (row, Ord128(mid))));
                        }
                    }
                }
            }
            if queries.is_empty() {
                break;
            }
            let inboxes = clique.route(queries)?;
            let mut replies = Vec::new();
            for (member, inbox) in inboxes.into_iter().enumerate() {
                for env in inbox {
                    let (row, mid) = env.payload;
                    let cnt = row_ordinals[member]
                        .get(&row)
                        .map_or(0, |ords| ords.partition_point(|&o| o <= mid.0) as u64);
                    replies.push(Envelope::new(member, env.src, (row, cnt)));
                }
            }
            let inboxes = clique.route(replies)?;
            for (coord, inbox) in inboxes.into_iter().enumerate() {
                let mut sums: HashMap<u32, u64> = HashMap::new();
                for env in inbox {
                    *sums.entry(env.payload.0).or_default() += env.payload.1;
                }
                for (row, cnt) in sums {
                    let s = searches[coord].get_mut(&row).expect("reply matches search");
                    let mid = s.lo + (s.hi - s.lo) / 2;
                    if cnt >= rho as u64 {
                        s.hi = mid;
                    } else {
                        s.lo = mid;
                    }
                    if s.hi <= s.lo + 1 {
                        s.resolved = true;
                    }
                }
            }
        }

        // Broadcast cutoffs to every member of each group.
        let mut cutoff_msgs = Vec::new();
        for (coord, map) in searches.iter().enumerate() {
            if map.is_empty() {
                continue;
            }
            let (i, _j, k) = cube.triple_of(coord).expect("coordinators have triples");
            for (&row, s) in map {
                for m in cube.group_bik(i, k) {
                    cutoff_msgs.push(Envelope::new(coord, m, (row, Ord128(s.hi))));
                }
            }
        }
        let inboxes = clique.route(cutoff_msgs)?;
        let mut cutoffs: Vec<HashMap<u32, u128>> = vec![HashMap::new(); n];
        for (member, inbox) in inboxes.into_iter().enumerate() {
            for env in inbox {
                cutoffs[member].insert(env.payload.0, env.payload.1 .0);
            }
        }
        Ok(cutoffs)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_matrix::{AugDist, AugMinPlus, Dist, MinPlus, SparseMatrix};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_matrix(n: usize, nnz: usize, seed: u64) -> SparseMatrix<Dist> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut m = SparseMatrix::zeros(n);
        for _ in 0..nnz {
            let r = rng.gen_range(0..n);
            let c = rng.gen_range(0..n);
            m.set_in::<MinPlus>(r, c, Dist::fin(rng.gen_range(1..1000)));
        }
        m
    }

    fn check_filtered(n: usize, s: &SparseMatrix<Dist>, t: &SparseMatrix<Dist>, rho: usize) {
        let mut clique = Clique::new(n);
        let t_cols = t.transpose();
        let rows = filtered_multiply::<MinPlus>(&mut clique, s.rows(), t_cols.rows(), rho).unwrap();
        let expected = s.multiply::<MinPlus>(t).filtered::<MinPlus>(rho);
        assert_eq!(SparseMatrix::from_rows(rows), expected);
    }

    #[test]
    fn matches_filtered_reference_on_random() {
        let n = 16;
        let s = random_matrix(n, 60, 1);
        let t = random_matrix(n, 60, 2);
        for rho in [1, 2, 4, 8] {
            check_filtered(n, &s, &t, rho);
        }
    }

    #[test]
    fn star_square_filtered_stays_sparse_and_exact() {
        let n = 16;
        let mut w = SparseMatrix::<Dist>::identity::<MinPlus>(n);
        for v in 1..n {
            w.set_in::<MinPlus>(0, v, Dist::fin(v as u64));
            w.set_in::<MinPlus>(v, 0, Dist::fin(v as u64));
        }
        check_filtered(n, &w, &w, 3);
    }

    #[test]
    fn dense_inputs_filtered_output() {
        let n = 12;
        let s = random_matrix(n, n * n, 3);
        let t = random_matrix(n, n * n, 4);
        check_filtered(n, &s, &t, 2);
    }

    #[test]
    fn value_ties_break_by_column() {
        // All products equal: the filter must keep the lowest columns.
        let n = 8;
        let mut s = SparseMatrix::<Dist>::zeros(n);
        let mut t = SparseMatrix::<Dist>::zeros(n);
        for v in 0..n {
            s.set_in::<MinPlus>(0, v, Dist::fin(1));
            for c in 0..n {
                t.set_in::<MinPlus>(v, c, Dist::fin(1));
            }
        }
        let mut clique = Clique::new(n);
        let t_cols = t.transpose();
        let rows = filtered_multiply::<MinPlus>(&mut clique, s.rows(), t_cols.rows(), 3).unwrap();
        let kept: Vec<u32> = rows[0].iter().map(|(c, _)| c).collect();
        assert_eq!(kept, vec![0, 1, 2]);
    }

    #[test]
    fn augmented_semiring_filtered_square() {
        // Path graph over the augmented semiring: 2-nearest of each node.
        let n = 10;
        let mut w = SparseMatrix::<AugDist>::identity::<AugMinPlus>(n);
        for v in 0..n - 1 {
            w.set_in::<AugMinPlus>(v, v + 1, AugDist::fin(1, 1));
            w.set_in::<AugMinPlus>(v + 1, v, AugDist::fin(1, 1));
        }
        let mut clique = Clique::new(n);
        let t_cols = w.transpose();
        let rows =
            filtered_multiply::<AugMinPlus>(&mut clique, w.rows(), t_cols.rows(), 3).unwrap();
        let expected = w.multiply::<AugMinPlus>(&w).filtered::<AugMinPlus>(3);
        assert_eq!(SparseMatrix::from_rows(rows), expected);
    }

    #[test]
    fn search_cost_is_logarithmic_not_linear() {
        let n = 32;
        let s = random_matrix(n, 4 * n, 5);
        let t = random_matrix(n, 4 * n, 6);
        let mut clique = Clique::new(n);
        let t_cols = t.transpose();
        filtered_multiply::<MinPlus>(&mut clique, s.rows(), t_cols.rows(), 4).unwrap();
        // log W for 1000-bounded weights and n=32 is ~15 bits plus column
        // bits; the whole multiply should stay well under ~200 rounds and
        // nowhere near n^2.
        assert!(clique.rounds() < 250, "got {} rounds", clique.rounds());
    }
}
