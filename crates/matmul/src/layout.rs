//! Distributed matrix layout helpers.
//!
//! The input convention throughout the workspace follows the paper (§2.1):
//! for a product `P = S ⋆ T` on an `n`-node clique, **node `v` holds row `v`
//! of `S` and column `v` of `T`**, and learns row `v` of `P`. A distributed
//! matrix is simply a `Vec<SparseRow<E>>` of length `n`, indexed by owner;
//! whether the slices are rows or columns is part of the call convention.

use cc_clique::{Clique, Envelope};
use cc_matrix::{Entry, Semiring, SparseRow};

use crate::MatmulError;

/// Transposes a distributed matrix: from node `v` holding slice `v` (say,
/// row `v`, entries keyed by column) to node `v` holding the opposite slice
/// (column `v`, entries keyed by row).
///
/// One routing step: entry `(r, c)` travels from node `r` to node `c`. Every
/// node sends at most `n` words (its slice) and receives at most `n` words
/// (the opposite slice), so this is `O(1)` rounds.
///
/// # Errors
///
/// Returns [`MatmulError::Clique`] if an entry addresses a node outside the
/// clique (i.e. the matrix is bigger than the clique).
pub fn transpose_exchange<S: Semiring>(
    clique: &mut Clique,
    slices: &[SparseRow<S::Elem>],
) -> Result<Vec<SparseRow<S::Elem>>, MatmulError> {
    let msgs = slices
        .iter()
        .enumerate()
        .flat_map(|(v, row)| {
            row.iter().map(move |(c, val)| Envelope::new(v, c as usize, (v as u32, val.clone())))
        })
        .collect();
    let inboxes = clique.with_phase("transpose", |c| c.route(msgs))?;
    Ok(inboxes
        .into_iter()
        .map(|inbox| {
            SparseRow::from_entries::<S>(
                inbox.into_iter().map(|e| (e.payload.0, e.payload.1)).collect(),
            )
        })
        .collect())
}

/// Broadcasts every node's slice size; returns `(per-node counts, total,
/// density ρ)`. One all-to-all broadcast round.
///
/// # Errors
///
/// Returns [`MatmulError::Clique`] if `slices.len()` differs from the clique
/// size.
pub fn broadcast_counts<E: Clone + PartialEq>(
    clique: &mut Clique,
    slices: &[SparseRow<E>],
) -> Result<(Vec<u64>, u64, usize), MatmulError> {
    let counts: Vec<u64> = slices.iter().map(|r| r.nnz() as u64).collect();
    let counts = clique.with_phase("counts", |c| c.all_broadcast(counts))?;
    let total: u64 = counts.iter().sum();
    let n = clique.n() as u64;
    let rho = total.div_ceil(n).max(1) as usize;
    Ok((counts, total, rho))
}

/// Converts per-node sparse slices into a flat entry list with global
/// coordinates, interpreting slice `v` as **row** `v`.
pub fn rows_to_entries<E: Clone + PartialEq>(rows: &[SparseRow<E>]) -> Vec<Entry<E>> {
    rows.iter()
        .enumerate()
        .flat_map(|(r, row)| row.iter().map(move |(c, v)| Entry::new(r as u32, c, v.clone())))
        .collect()
}

/// Converts per-node sparse slices into a flat entry list with global
/// coordinates, interpreting slice `v` as **column** `v`.
pub fn cols_to_entries<E: Clone + PartialEq>(cols: &[SparseRow<E>]) -> Vec<Entry<E>> {
    cols.iter()
        .enumerate()
        .flat_map(|(c, col)| col.iter().map(move |(r, v)| Entry::new(r, c as u32, v.clone())))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_matrix::{Dist, MinPlus, SparseMatrix};

    fn sample() -> SparseMatrix<Dist> {
        let mut m = SparseMatrix::zeros(4);
        m.set(0, 1, Dist::fin(1));
        m.set(0, 3, Dist::fin(2));
        m.set(2, 1, Dist::fin(3));
        m.set(3, 0, Dist::fin(4));
        m
    }

    #[test]
    fn transpose_exchange_matches_local_transpose() {
        let m = sample();
        let mut clique = Clique::new(4);
        let cols = transpose_exchange::<MinPlus>(&mut clique, m.rows()).unwrap();
        let expected = m.transpose();
        assert_eq!(cols, expected.rows());
        assert_eq!(clique.rounds(), 1);
    }

    #[test]
    fn broadcast_counts_reports_density() {
        let m = sample();
        let mut clique = Clique::new(4);
        let (counts, total, rho) = broadcast_counts(&mut clique, m.rows()).unwrap();
        assert_eq!(counts, vec![2, 0, 1, 1]);
        assert_eq!(total, 4);
        assert_eq!(rho, 1);
        assert_eq!(clique.rounds(), 1);
    }

    #[test]
    fn entry_conversions_roundtrip() {
        let m = sample();
        let entries = rows_to_entries(m.rows());
        assert_eq!(entries.len(), m.nnz());
        let rebuilt = SparseMatrix::from_entries::<MinPlus>(4, entries);
        assert_eq!(rebuilt, m);

        let t = m.transpose();
        let entries = cols_to_entries(t.rows());
        let rebuilt = SparseMatrix::from_entries::<MinPlus>(4, entries);
        assert_eq!(rebuilt, m);
    }
}
