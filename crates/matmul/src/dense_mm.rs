//! The classical 3D dense semiring multiplication ([CKK+15], cited by the
//! paper as the `O(n^{1/3})`-round baseline).
//!
//! Uniform cube partition `a = b ≈ n^{1/3}`, `c = n/(a·b)`: every node
//! receives two `~n^{2/3} × n^{2/3}` blocks (`n^{4/3}` words ⇒ `n^{1/3}`
//! rounds), multiplies locally, and the block products are summed with the
//! same balanced summation as the sparse algorithm.

use cc_clique::Clique;
use cc_matrix::{Semiring, SparseRow};

use crate::cube::{CubePartition, CubeShape, TaskAssignment};
use crate::deliver::{deliver_subtask_inputs, local_product};
use crate::sum::sum_intermediates;
use crate::MatmulError;

/// Computes `P = S ⋆ T` with the dense 3D algorithm: `Θ(n^{1/3})` rounds
/// regardless of sparsity. The baseline against which Theorem 8's
/// output-sensitive algorithm is measured.
///
/// Input/output layout matches [`crate::sparse_multiply`].
///
/// # Errors
///
/// * [`MatmulError::DimensionMismatch`] if operands don't match the clique;
/// * [`MatmulError::Clique`] on malformed communication (internal bug).
///
/// # Example
///
/// ```
/// use cc_clique::Clique;
/// use cc_matmul::dense_multiply;
/// use cc_matrix::{Dist, MinPlus, SparseMatrix};
///
/// # fn main() -> Result<(), cc_matmul::MatmulError> {
/// let mut w = SparseMatrix::<Dist>::identity::<MinPlus>(8);
/// w.set_in::<MinPlus>(0, 1, Dist::fin(2));
/// w.set_in::<MinPlus>(1, 2, Dist::fin(3));
/// let mut clique = Clique::new(8);
/// let t_cols = w.transpose();
/// let p = dense_multiply::<MinPlus>(&mut clique, w.rows(), t_cols.rows())?;
/// assert_eq!(p[0].get(2), Some(&Dist::fin(5)));
/// # Ok(())
/// # }
/// ```
pub fn dense_multiply<SR: Semiring>(
    clique: &mut Clique,
    s_rows: &[SparseRow<SR::Elem>],
    t_cols: &[SparseRow<SR::Elem>],
) -> Result<Vec<SparseRow<SR::Elem>>, MatmulError> {
    let n = clique.n();
    if s_rows.len() != n || t_cols.len() != n {
        return Err(MatmulError::DimensionMismatch {
            s_rows: s_rows.len(),
            t_cols: t_cols.len(),
            n,
        });
    }
    clique.with_phase("dense_mm", |clique| {
        let cube = CubePartition::uniform(n, CubeShape::uniform(n));
        let sigma1 = TaskAssignment::new(&cube, cube.sigma1());
        let inputs = deliver_subtask_inputs::<SR>(clique, &cube, s_rows, t_cols, &sigma1)?;
        let intermediates: Vec<_> = inputs.iter().map(local_product::<SR>).collect();
        sum_intermediates::<SR>(clique, intermediates)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_matrix::{Dist, MinPlus, SparseMatrix};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_dense(n: usize, fill: f64, seed: u64) -> SparseMatrix<Dist> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut m = SparseMatrix::zeros(n);
        for r in 0..n {
            for c in 0..n {
                if rng.gen_bool(fill) {
                    m.set_in::<MinPlus>(r, c, Dist::fin(rng.gen_range(1..100)));
                }
            }
        }
        m
    }

    #[test]
    fn matches_reference_on_dense_random() {
        let n = 27;
        let s = random_dense(n, 0.6, 1);
        let t = random_dense(n, 0.6, 2);
        let mut clique = Clique::new(n);
        let t_cols = t.transpose();
        let rows = dense_multiply::<MinPlus>(&mut clique, s.rows(), t_cols.rows()).unwrap();
        assert_eq!(SparseMatrix::from_rows(rows), s.multiply::<MinPlus>(&t));
    }

    #[test]
    fn matches_reference_on_sparse_too() {
        let n = 16;
        let s = random_dense(n, 0.05, 3);
        let t = random_dense(n, 0.05, 4);
        let mut clique = Clique::new(n);
        let t_cols = t.transpose();
        let rows = dense_multiply::<MinPlus>(&mut clique, s.rows(), t_cols.rows()).unwrap();
        assert_eq!(SparseMatrix::from_rows(rows), s.multiply::<MinPlus>(&t));
    }

    #[test]
    fn rounds_scale_like_cube_root_times_n_words() {
        // For fully dense inputs the dominant load is n^{4/3} words per
        // node; rounds should be well above O(1) but far below n.
        let n = 64;
        let s = random_dense(n, 1.0, 5);
        let t = random_dense(n, 1.0, 6);
        let mut clique = Clique::new(n);
        let t_cols = t.transpose();
        dense_multiply::<MinPlus>(&mut clique, s.rows(), t_cols.rows()).unwrap();
        let r = clique.rounds();
        assert!(r > 4, "dense multiply too cheap: {r}");
        assert!(r < n as u64, "dense multiply too expensive: {r}");
    }
}
