//! Delivering subtask inputs: Lemma 10 (balancing) + Lemma 11 (intermediate
//! products).
//!
//! For an assignment `σ` of nodes to subtasks, every assigned node must
//! learn its submatrices `S[C^S_i, C^{ij}_k]` and `T[C^{ij}_k, C^T_j]`.
//! Entries are *duplicated* (an `S` entry is needed by one subtask per
//! column block), so senders are first re-balanced by total duplication
//! weight (Lemma 10: Lenzen sort by weight + round-robin deal, the
//! constructive Lemma 5) and then fan the entries out. With the Lemma 9
//! partition, every node sends and receives `O(ρS·a + n)` words for `S` and
//! `O(ρT·b + n)` for `T`, i.e. `O(ρS·a/n + ρT·b/n + 1)` rounds.

use std::cmp::Ordering;

use cc_clique::{Clique, Envelope, NodeId, Payload};
use cc_matrix::{Entry, Semiring, SparseRow};

use crate::cube::{CubePartition, TaskAssignment};
use crate::MatmulError;

/// The input slices one node needs for its assigned subtask.
#[derive(Debug, Clone)]
pub struct SubtaskInput<E> {
    /// Entries of `S[C^S_i, C^{ij}_k]` in global coordinates.
    pub s_entries: Vec<Entry<E>>,
    /// Entries of `T[C^{ij}_k, C^T_j]` in global coordinates.
    pub t_entries: Vec<Entry<E>>,
}

/// A weighted entry in the Lemma 10 balancing sort. Ordered by *descending*
/// duplication weight (then position, for determinism); the value tags along
/// and does not participate in the order.
#[derive(Debug, Clone)]
struct BalanceItem<E> {
    neg_weight: u64,
    row: u32,
    col: u32,
    val: E,
}

impl<E> BalanceItem<E> {
    fn key(&self) -> (u64, u32, u32) {
        (self.neg_weight, self.row, self.col)
    }
}

impl<E> Default for SubtaskInput<E> {
    fn default() -> Self {
        SubtaskInput { s_entries: Vec::new(), t_entries: Vec::new() }
    }
}

impl<E> PartialEq for BalanceItem<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl<E> Eq for BalanceItem<E> {}
impl<E> PartialOrd for BalanceItem<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for BalanceItem<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        self.key().cmp(&other.key())
    }
}
impl<E: Payload> Payload for BalanceItem<E> {
    fn words(&self) -> usize {
        // Entry plus its O(log n)-bit weight ride in O(1) words.
        self.val.words()
    }
}

/// Balances weighted entries across nodes (Lemma 10) and then fans each
/// entry out to the subtask nodes given by `targets`.
///
/// `per_node[v]` are the entries initially held by node `v`; `targets(r, c)`
/// enumerates the recipients of entry `(r, c)` (its duplication weight is
/// the length of that list).
fn balance_and_fanout<SR: Semiring>(
    clique: &mut Clique,
    per_node: Vec<Vec<Entry<SR::Elem>>>,
    targets: &dyn Fn(u32, u32) -> Vec<NodeId>,
) -> Result<Vec<Vec<Entry<SR::Elem>>>, MatmulError> {
    let n = clique.n();

    // Lemma 10, step 1: global sort by descending duplication weight.
    let items: Vec<Vec<BalanceItem<SR::Elem>>> = per_node
        .into_iter()
        .map(|entries| {
            entries
                .into_iter()
                .map(|e| BalanceItem {
                    neg_weight: u64::MAX - targets(e.row, e.col).len() as u64,
                    row: e.row,
                    col: e.col,
                    val: e.val,
                })
                .collect()
        })
        .collect();
    // Everyone learns the total count, hence the global rank layout.
    let counts: Vec<u64> = items.iter().map(|v| v.len() as u64).collect();
    let counts = clique.with_phase("balance", |cl| cl.all_broadcast(counts))?;
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return Ok(vec![Vec::new(); n]);
    }
    let sorted = clique.with_phase("balance", |cl| cl.sort(items))?;
    let run = (total as usize).div_ceil(n);

    // Lemma 10, step 2: deal rank r to node r mod n (round-robin over the
    // descending-weight order = the constructive Lemma 5 with k = n).
    let mut deal = Vec::with_capacity(total as usize);
    for (holder, batch) in sorted.into_iter().enumerate() {
        for (off, item) in batch.into_iter().enumerate() {
            let rank = holder * run + off;
            deal.push(Envelope::new(holder, rank % n, item));
        }
    }
    let balanced = clique.with_phase("balance", |cl| cl.route(deal))?;

    // Lemma 11: fan every entry out to its subtask nodes.
    let mut fanout = Vec::new();
    for (holder, batch) in balanced.into_iter().enumerate() {
        for env in batch {
            let item = env.payload;
            for dst in targets(item.row, item.col) {
                fanout.push(Envelope::new(
                    holder,
                    dst,
                    Entry::new(item.row, item.col, item.val.clone()),
                ));
            }
        }
    }
    let inboxes = clique.with_phase("fanout", |cl| cl.route(fanout))?;
    Ok(inboxes.into_iter().map(|batch| batch.into_iter().map(|e| e.payload).collect()).collect())
}

/// Lemma 11: every node assigned a subtask by `assignment` learns its
/// `S`-block and `T`-block.
///
/// # Errors
///
/// Returns [`MatmulError::Clique`] on malformed communication.
pub fn deliver_subtask_inputs<SR: Semiring>(
    clique: &mut Clique,
    cube: &CubePartition,
    s_rows: &[SparseRow<SR::Elem>],
    t_cols: &[SparseRow<SR::Elem>],
    assignment: &TaskAssignment,
) -> Result<Vec<SubtaskInput<SR::Elem>>, MatmulError> {
    let n = clique.n();

    // S entries start row-distributed.
    let s_per_node: Vec<Vec<Entry<SR::Elem>>> = s_rows
        .iter()
        .enumerate()
        .map(|(r, row)| row.iter().map(|(c, v)| Entry::new(r as u32, c, v.clone())).collect())
        .collect();
    let s_targets =
        |r: u32, c: u32| -> Vec<NodeId> { cube.s_entry_targets(r, c, assignment).collect() };
    let s_delivered = clique
        .with_phase("deliver_s", |cl| balance_and_fanout::<SR>(cl, s_per_node, &s_targets))?;

    // T entries start column-distributed.
    let t_per_node: Vec<Vec<Entry<SR::Elem>>> = t_cols
        .iter()
        .enumerate()
        .map(|(c, col)| col.iter().map(|(r, v)| Entry::new(r, c as u32, v.clone())).collect())
        .collect();
    let t_targets =
        |r: u32, c: u32| -> Vec<NodeId> { cube.t_entry_targets(r, c, assignment).collect() };
    let t_delivered = clique
        .with_phase("deliver_t", |cl| balance_and_fanout::<SR>(cl, t_per_node, &t_targets))?;

    let mut out: Vec<SubtaskInput<SR::Elem>> = s_delivered
        .into_iter()
        .zip(t_delivered)
        .map(|(s_entries, t_entries)| SubtaskInput { s_entries, t_entries })
        .collect();
    out.resize_with(n, SubtaskInput::default);
    Ok(out)
}

/// Computes a subtask's local product `S_block · T_block`, returning the
/// non-zero entries of the block of `P` in deterministic position order.
pub fn local_product<SR: Semiring>(input: &SubtaskInput<SR::Elem>) -> Vec<Entry<SR::Elem>> {
    use std::collections::BTreeMap;
    // Index T entries by their row (the contraction dimension).
    let mut t_by_row: BTreeMap<u32, Vec<(u32, &SR::Elem)>> = BTreeMap::new();
    for e in &input.t_entries {
        t_by_row.entry(e.row).or_default().push((e.col, &e.val));
    }
    let mut acc: BTreeMap<(u32, u32), SR::Elem> = BTreeMap::new();
    for s in &input.s_entries {
        if let Some(ts) = t_by_row.get(&s.col) {
            for (c, tval) in ts {
                let prod = SR::mul(&s.val, tval);
                acc.entry((s.row, *c)).and_modify(|cur| *cur = SR::add(cur, &prod)).or_insert(prod);
            }
        }
    }
    acc.into_iter()
        .filter(|(_, v)| !SR::is_zero(v))
        .map(|((r, c), v)| Entry::new(r, c, v))
        .collect()
}
