//! The cube partition of Lemma 9: splitting the `V³` product cube into `n`
//! equally-sparse subcubes, one per node.
//!
//! A subcube `C^S_i × C^{ij}_k × C^T_j` corresponds to the subtask of
//! multiplying `S[C^S_i, C^{ij}_k] · T[C^{ij}_k, C^T_j]`. The row blocks
//! `C^S_i` and column blocks `C^T_j` are balanced by Lemma 5 on row/column
//! weights; the middle blocks `C^{ij}_k` are consecutive index ranges
//! balanced *simultaneously* for the relevant slice of `S` and of `T` by
//! Lemma 7.

use std::ops::Range;

use cc_clique::{Clique, Envelope, NodeId};
use cc_matrix::{Semiring, SparseRow};

use crate::partition::{balanced_partition, doubly_balanced_partition};
use crate::{layout, MatmulError};

/// The dimensions `(a, b, c)` of the cube partition: `b` row blocks, `a`
/// column blocks, and `c` middle blocks per `(i, j)` pair, with
/// `a·b·c ≤ n` subtasks (nodes beyond `a·b·c` idle).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CubeShape {
    /// Number of column blocks `C^T_j`.
    pub a: usize,
    /// Number of row blocks `C^S_i`.
    pub b: usize,
    /// Number of middle blocks `C^{ij}_k` per `(i, j)` pair.
    pub c: usize,
}

impl CubeShape {
    /// Chooses the shape minimising the per-node communication load
    ///
    /// ```text
    ///   ρS·n/(b·c)  +  ρT·n/(a·c)  +  ρ̂·c
    /// ```
    ///
    /// over integers `a, b ≥ 1` with `a·b ≤ n` and `c = ⌊n/(a·b)⌋` — the
    /// integer version of the closed-form optimum
    /// `a = (ρT ρ̂ n)^{1/3}/ρS^{2/3}` etc. of §2.1.1 (which attains the
    /// `O((ρS ρT ρ̂)^{1/3}/n^{2/3} + 1)` round bound of Theorem 8).
    pub fn choose(n: usize, rho_s: usize, rho_t: usize, rho_hat: usize) -> CubeShape {
        let mut best = CubeShape { a: 1, b: 1, c: n.max(1) };
        let mut best_cost = f64::INFINITY;
        let nf = n as f64;
        let mut a = 1usize;
        while a <= n {
            let mut b = 1usize;
            while a * b <= n {
                let c = (n / (a * b)).max(1);
                let cost = rho_s as f64 * nf / (b * c) as f64
                    + rho_t as f64 * nf / (a * c) as f64
                    + rho_hat as f64 * c as f64;
                if cost < best_cost {
                    best_cost = cost;
                    best = CubeShape { a, b, c };
                }
                b += 1;
            }
            a += 1;
        }
        best
    }

    /// The uniform shape `a = b ≈ n^{1/3}`, `c = ⌊n/(a·b)⌋` used by the
    /// dense-multiplication baseline.
    pub fn uniform(n: usize) -> CubeShape {
        let mut q = (n as f64).cbrt().round() as usize;
        q = q.max(1);
        while q > 1 && q * q > n {
            q -= 1;
        }
        let c = (n / (q * q)).max(1);
        CubeShape { a: q, b: q, c }
    }

    /// Total number of subtasks `a·b·c`.
    pub fn subtasks(&self) -> usize {
        self.a * self.b * self.c
    }
}

/// A globally-known partition of the product cube `V³` into subcubes
/// (Lemma 9), plus the node ↔ subtask correspondence.
#[derive(Debug, Clone)]
pub struct CubePartition {
    n: usize,
    /// The partition dimensions.
    pub shape: CubeShape,
    /// Row blocks `C^S_i`, `i ∈ [b]` (sorted node lists).
    pub row_blocks: Vec<Vec<usize>>,
    /// Column blocks `C^T_j`, `j ∈ [a]`.
    pub col_blocks: Vec<Vec<usize>>,
    /// For each row `r`: the block index `i` with `r ∈ C^S_i`.
    pub row_block_of: Vec<usize>,
    /// For each column `c`: the block index `j` with `c ∈ C^T_j`.
    pub col_block_of: Vec<usize>,
    /// Middle ranges `C^{ij}_k`, indexed `[i·a + j][k]`; consecutive and
    /// covering `0..n` for every `(i, j)`.
    pub mid_ranges: Vec<Vec<Range<usize>>>,
}

impl CubePartition {
    /// The clique size the partition was built for.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The node responsible for subtask `(i, j, k)` under the canonical
    /// assignment `σ1`.
    pub fn node_for(&self, i: usize, j: usize, k: usize) -> NodeId {
        (i * self.shape.a + j) * self.shape.c + k
    }

    /// The subtask of node `v` under `σ1`, or `None` for idle nodes.
    pub fn triple_of(&self, v: NodeId) -> Option<(usize, usize, usize)> {
        if v >= self.shape.subtasks() {
            return None;
        }
        let k = v % self.shape.c;
        let ij = v / self.shape.c;
        Some((ij / self.shape.a, ij % self.shape.a, k))
    }

    /// The canonical assignment `σ1` as a per-node vector.
    pub fn sigma1(&self) -> Sigma {
        (0..self.n).map(|v| self.triple_of(v)).collect()
    }

    /// The middle block index `k` with `col ∈ C^{ij}_k`.
    ///
    /// # Panics
    ///
    /// Panics if `col ≥ n` (ranges always cover `0..n`).
    pub fn mid_block_of(&self, i: usize, j: usize, col: usize) -> usize {
        let ranges = &self.mid_ranges[i * self.shape.a + j];
        // Ranges are consecutive and cover 0..n: binary search by end point.
        let k = ranges.partition_point(|r| r.end <= col);
        debug_assert!(ranges[k].contains(&col), "mid ranges must cover 0..n");
        k
    }

    /// The group `B_{ik}` of Lemma 15: the `a` nodes handling subtasks
    /// `(i, ·, k)` — together they produce rows `C^S_i` of the slice `P_k`.
    pub fn group_bik(&self, i: usize, k: usize) -> Vec<NodeId> {
        (0..self.shape.a).map(|j| self.node_for(i, j, k)).collect()
    }

    /// `ceil(n/(a·b))` — the effective middle-dimension multiplicity used
    /// for chunk sizing in Lemmas 12 and 16 (equals `c` when `a·b·c = n`).
    pub fn c_eff(&self) -> usize {
        self.n.div_ceil(self.shape.a * self.shape.b).max(1)
    }

    /// A partition with uniform consecutive blocks and **no communication**:
    /// used by the dense baseline, where balancing is unnecessary because
    /// every block is equally dense by construction.
    pub fn uniform(n: usize, shape: CubeShape) -> CubePartition {
        let even = |parts: usize| -> Vec<Range<usize>> {
            let size = n.div_ceil(parts);
            (0..parts).map(|p| (p * size).min(n)..((p + 1) * size).min(n)).collect()
        };
        let row_ranges = even(shape.b);
        let col_ranges = even(shape.a);
        let mid = even(shape.c);
        let to_blocks = |ranges: &[Range<usize>]| -> Vec<Vec<usize>> {
            ranges.iter().map(|r| r.clone().collect()).collect()
        };
        let block_of = |ranges: &[Range<usize>]| -> Vec<usize> {
            let mut out = vec![0; n];
            for (b, r) in ranges.iter().enumerate() {
                for v in r.clone() {
                    out[v] = b;
                }
            }
            out
        };
        CubePartition {
            n,
            shape,
            row_blocks: to_blocks(&row_ranges),
            col_blocks: to_blocks(&col_ranges),
            row_block_of: block_of(&row_ranges),
            col_block_of: block_of(&col_ranges),
            mid_ranges: vec![mid; shape.a * shape.b],
        }
    }

    /// Builds the partition of Lemma 9 on the clique in `O(1)` rounds.
    ///
    /// Inputs: node `v` holds row `v` of `S` (`s_rows[v]`) and column `v` of
    /// `T` (`t_cols[v]`); `s_row_counts` / `t_col_counts` are the
    /// already-broadcast per-slice non-zero counts.
    ///
    /// Steps (all `O(1)` rounds): (1) everyone computes the row/column
    /// blocks from the broadcast counts via Lemma 5; (2) the inputs are
    /// transposed so node `v` holds column `v` of `S` and row `v` of `T`;
    /// (3) node `v` sends each subtask node the non-zero counts of its
    /// slices; (4) each subtask group computes its Lemma 7 middle partition
    /// and broadcasts the block boundaries.
    ///
    /// # Errors
    ///
    /// Returns [`MatmulError::Clique`] on malformed communication (dimension
    /// bugs in the caller).
    pub fn build<S: Semiring>(
        clique: &mut Clique,
        shape: CubeShape,
        s_rows: &[SparseRow<S::Elem>],
        t_cols: &[SparseRow<S::Elem>],
        s_row_counts: &[u64],
        t_col_counts: &[u64],
    ) -> Result<CubePartition, MatmulError> {
        let n = clique.n();
        let CubeShape { a, b, c } = shape;

        // (1) Globally-known row and column blocks (Lemma 5).
        let row_blocks = balanced_partition(s_row_counts, b);
        let col_blocks = balanced_partition(t_col_counts, a);
        let mut row_block_of = vec![0usize; n];
        for (i, block) in row_blocks.iter().enumerate() {
            for &r in block {
                row_block_of[r] = i;
            }
        }
        let mut col_block_of = vec![0usize; n];
        for (j, block) in col_blocks.iter().enumerate() {
            for &cidx in block {
                col_block_of[cidx] = j;
            }
        }

        // (2) Transpose: node v obtains column v of S and row v of T.
        let s_cols = layout::transpose_exchange::<S>(clique, s_rows)?;
        let t_rows = layout::transpose_exchange::<S>(clique, t_cols)?;

        // (3) Per-slice counts to each subtask node: node v sends to node
        // u = (i, j, k) the pair (nz(S[C^S_i, v]), nz(T[v, C^T_j])).
        let mut msgs = Vec::with_capacity(n * shape.subtasks().min(n));
        for v in 0..n {
            let mut cnt_s = vec![0u64; b];
            for (r, _) in s_cols[v].iter() {
                cnt_s[row_block_of[r as usize]] += 1;
            }
            let mut cnt_t = vec![0u64; a];
            for (cidx, _) in t_rows[v].iter() {
                cnt_t[col_block_of[cidx as usize]] += 1;
            }
            for i in 0..b {
                for j in 0..a {
                    for k in 0..c {
                        let u = (i * a + j) * c + k;
                        msgs.push(Envelope::new(v, u, (cnt_s[i], cnt_t[j])));
                    }
                }
            }
        }
        let inboxes = clique.with_phase("cube/slice_counts", |cl| cl.route(msgs))?;

        // (4) Each (i, j) group computes its Lemma 7 partition; the k-th
        // member broadcasts its own block boundary (2 words).
        let mut mid_ranges = vec![Vec::new(); a * b];
        let mut boundary_payload = vec![(u64::MAX, u64::MAX); n];
        for i in 0..b {
            for j in 0..a {
                let leader = (i * a + j) * c; // node (i, j, 0)
                let mut w1 = vec![0u64; n];
                let mut w2 = vec![0u64; n];
                for e in &inboxes[leader] {
                    w1[e.src] = e.payload.0;
                    w2[e.src] = e.payload.1;
                }
                let parts = doubly_balanced_partition(&w1, &w2, c);
                for (k, r) in parts.iter().enumerate() {
                    boundary_payload[leader + k] = (r.start as u64, r.end as u64);
                }
                mid_ranges[i * a + j] = parts;
            }
        }
        clique.with_phase("cube/boundaries", |cl| cl.all_broadcast(boundary_payload))?;

        Ok(CubePartition {
            n,
            shape,
            row_blocks,
            col_blocks,
            row_block_of,
            col_block_of,
            mid_ranges,
        })
    }

    /// All subtask nodes that need `S`-entry `(r, c)` under assignment
    /// `targets_of`: one per column block `j`.
    pub fn s_entry_targets<'a>(
        &'a self,
        r: u32,
        c: u32,
        assigned: &'a TaskAssignment,
    ) -> impl Iterator<Item = NodeId> + 'a {
        let i = self.row_block_of[r as usize];
        (0..self.shape.a).flat_map(move |j| {
            let k = self.mid_block_of(i, j, c as usize);
            assigned.nodes_for(self, i, j, k).iter().copied()
        })
    }

    /// All subtask nodes that need `T`-entry `(r, c)` under `assigned`: one
    /// per row block `i`.
    pub fn t_entry_targets<'a>(
        &'a self,
        r: u32,
        c: u32,
        assigned: &'a TaskAssignment,
    ) -> impl Iterator<Item = NodeId> + 'a {
        let j = self.col_block_of[c as usize];
        (0..self.shape.b).flat_map(move |i| {
            let k = self.mid_block_of(i, j, r as usize);
            assigned.nodes_for(self, i, j, k).iter().copied()
        })
    }
}

/// A per-node subtask assignment vector: `sigma[v]` is the `(i, j, k)`
/// triple node `v` computes, or `None` for idle nodes.
pub type Sigma = Vec<Option<(usize, usize, usize)>>;

/// An assignment `σ : V → subtasks` (Lemma 11): which nodes compute which
/// subtask's product. The canonical `σ1` maps node `v` to its own triple;
/// the balancing steps (Lemmas 12 and 16) construct sparse assignments that
/// duplicate dense subtasks.
#[derive(Debug, Clone)]
pub struct TaskAssignment {
    /// Per node: the assigned subtask, if any.
    pub sigma: Sigma,
    /// Reverse index: subtask linear id → assigned nodes (sorted).
    by_task: Vec<Vec<NodeId>>,
}

impl TaskAssignment {
    /// Builds the reverse index for an assignment vector.
    pub fn new(cube: &CubePartition, sigma: Sigma) -> Self {
        let mut by_task = vec![Vec::new(); cube.shape.subtasks()];
        for (v, t) in sigma.iter().enumerate() {
            if let Some((i, j, k)) = t {
                by_task[(i * cube.shape.a + j) * cube.shape.c + k].push(v);
            }
        }
        TaskAssignment { sigma, by_task }
    }

    /// Nodes assigned to subtask `(i, j, k)`.
    pub fn nodes_for(&self, cube: &CubePartition, i: usize, j: usize, k: usize) -> &[NodeId] {
        &self.by_task[(i * cube.shape.a + j) * cube.shape.c + k]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_matrix::{Dist, MinPlus, SparseMatrix};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn shape_choose_respects_budget() {
        for &(n, rs, rt, rh) in
            &[(16, 1, 1, 1), (64, 8, 8, 8), (64, 1, 64, 8), (128, 128, 128, 128), (7, 3, 2, 5)]
        {
            let s = CubeShape::choose(n, rs, rt, rh);
            assert!(s.a >= 1 && s.b >= 1 && s.c >= 1);
            assert!(s.subtasks() <= n, "shape {s:?} exceeds n={n}");
        }
    }

    #[test]
    fn shape_choose_tracks_density_asymmetry() {
        // Very sparse S, dense T: S-dimension splitting should be coarse
        // (small b) and T-dimension fine (larger a)... by the formulas, a
        // grows with rho_T? a = (rho_T rho_hat n)^{1/3} / rho_S^{2/3}.
        let s = CubeShape::choose(512, 1, 64, 8);
        let t = CubeShape::choose(512, 64, 1, 8);
        // Symmetry: swapping rho_S and rho_T swaps a and b.
        assert_eq!((s.a, s.b), (t.b, t.a));
    }

    #[test]
    fn uniform_shape_is_cubic() {
        let s = CubeShape::uniform(64);
        assert_eq!((s.a, s.b, s.c), (4, 4, 4));
        assert!(CubeShape::uniform(7).subtasks() <= 7);
    }

    #[test]
    fn node_triple_roundtrip() {
        let cube = CubePartition::uniform(64, CubeShape::uniform(64));
        for v in 0..64 {
            let (i, j, k) = cube.triple_of(v).unwrap();
            assert_eq!(cube.node_for(i, j, k), v);
        }
        let cube = CubePartition::uniform(10, CubeShape { a: 2, b: 2, c: 2 });
        assert_eq!(cube.triple_of(8), None);
        assert_eq!(cube.triple_of(9), None);
    }

    fn random_matrix(n: usize, nnz: usize, seed: u64) -> SparseMatrix<Dist> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut m = SparseMatrix::zeros(n);
        for _ in 0..nnz {
            let r = rng.gen_range(0..n);
            let c = rng.gen_range(0..n);
            m.set_in::<MinPlus>(r, c, Dist::fin(rng.gen_range(1..100)));
        }
        m
    }

    #[test]
    fn build_produces_valid_partition_with_balanced_blocks() {
        let n = 32;
        let s = random_matrix(n, 200, 1);
        let t = random_matrix(n, 500, 2);
        let t_cols = t.transpose();
        let mut clique = Clique::new(n);
        let (sc, _, rho_s) = layout::broadcast_counts(&mut clique, s.rows()).unwrap();
        let (tc, _, rho_t) = layout::broadcast_counts(&mut clique, t_cols.rows()).unwrap();
        let shape = CubeShape::choose(n, rho_s, rho_t, 8);
        let cube =
            CubePartition::build::<MinPlus>(&mut clique, shape, s.rows(), t_cols.rows(), &sc, &tc)
                .unwrap();

        // Blocks cover everything exactly once.
        let mut seen = vec![false; n];
        for block in &cube.row_blocks {
            for &r in block {
                assert!(!seen[r]);
                seen[r] = true;
            }
        }
        assert!(seen.iter().all(|&x| x));

        // Mid ranges are consecutive covers of 0..n for every (i, j).
        for i in 0..shape.b {
            for j in 0..shape.a {
                let ranges = &cube.mid_ranges[i * shape.a + j];
                assert_eq!(ranges.len(), shape.c);
                let mut next = 0;
                for r in ranges {
                    assert_eq!(r.start, next);
                    next = r.end;
                }
                assert_eq!(next, n);
                // And every column maps into the right block.
                for col in 0..n {
                    let k = cube.mid_block_of(i, j, col);
                    assert!(ranges[k].contains(&col));
                }
            }
        }

        // Subtask S-blocks satisfy the Lemma 9 sparsity bound
        // O(rho_S * a + n): check the concrete constant-free inequality
        // nz(S[C^S_i, C^{ij}_k]) <= 2(rho_S*n/(b*c') + n/b) + slack from
        // Lemma 7's doubling, against the safe bound 2*(W/c + max) + ...
        // Here we verify the direct Lemma 7 guarantee instead.
        for i in 0..shape.b {
            for j in 0..shape.a {
                let w_total: u64 = (0..n)
                    .map(|col| {
                        s.transpose()
                            .row(col)
                            .iter()
                            .filter(|(r, _)| cube.row_block_of[*r as usize] == i)
                            .count() as u64
                    })
                    .sum();
                let w_max: u64 = cube.row_blocks[i].len() as u64;
                for k in 0..shape.c {
                    let range = &cube.mid_ranges[i * shape.a + j][k];
                    let nz: u64 = range
                        .clone()
                        .map(|col| {
                            s.transpose()
                                .row(col)
                                .iter()
                                .filter(|(r, _)| cube.row_block_of[*r as usize] == i)
                                .count() as u64
                        })
                        .sum();
                    assert!(
                        nz <= 2 * (w_total / shape.c as u64 + w_max),
                        "S block ({i},{j},{k}) too dense: {nz}"
                    );
                }
            }
        }

        // O(1) rounds for the whole build (constant number of primitives).
        assert!(clique.rounds() <= 12, "cube build took {} rounds", clique.rounds());
    }

    #[test]
    fn assignment_reverse_index() {
        let cube = CubePartition::uniform(8, CubeShape { a: 2, b: 2, c: 2 });
        let assigned = TaskAssignment::new(&cube, cube.sigma1());
        for v in 0..8 {
            let (i, j, k) = cube.triple_of(v).unwrap();
            assert_eq!(assigned.nodes_for(&cube, i, j, k), &[v]);
        }
    }
}
