//! # `cc-matmul`: sparse matrix multiplication in the Congested Clique
//!
//! The matrix-multiplication engine of *Fast Approximate Shortest Paths in
//! the Congested Clique* (PODC 2019), §2:
//!
//! * [`sparse_multiply`] — **Theorem 8**: output-sensitive sparse
//!   multiplication over any semiring in
//!   `O((ρS·ρT·ρ̂)^{1/3}/n^{2/3} + 1)` rounds, built from the cube partition
//!   (Lemma 9, [`CubePartition`]), load balancing (Lemma 10), subtask input
//!   delivery (Lemma 11), duplication of dense subtasks (Lemma 12) and
//!   balanced summation (Lemma 13);
//! * [`sparse_multiply_auto`] — the same without knowing the output density
//!   (doubling search, `O(log n)` overhead);
//! * [`filtered_multiply`] — **Theorem 14**: ρ-filtered multiplication,
//!   keeping only the `ρ` smallest entries per output row, in
//!   `O((ρS·ρT·ρ)^{1/3}/n^{2/3} + log W)` rounds via distributed binary
//!   search for per-row cutoffs (Lemma 15) and group-local balancing
//!   (Lemma 16);
//! * [`dense_multiply`] — the classical 3D dense algorithm
//!   (`O(n^{1/3})` rounds for dense inputs), used as the baseline the paper
//!   compares against conceptually.
//!
//! All algorithms run on the [`cc_clique::Clique`] simulator and account
//! every word they move; differential tests check them against
//! [`cc_matrix::SparseMatrix::multiply`].
//!
//! Unsafe code is forbidden (`#![forbid(unsafe_code)]`), as across the
//! whole workspace.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Distributed algorithms index many parallel per-node vectors by NodeId;
// iterator zips would obscure which node each access belongs to.
#![allow(clippy::needless_range_loop)]

mod cube;
mod deliver;
mod dense_mm;
mod error;
mod filtered_mm;
pub mod layout;
pub mod partition;
mod sparse_mm;
mod sum;

pub use cube::{CubePartition, CubeShape, Sigma, TaskAssignment};
pub use dense_mm::dense_multiply;
pub use error::MatmulError;
pub use filtered_mm::filtered_multiply;
pub use sparse_mm::{sparse_multiply, sparse_multiply_auto, AutoProduct};
pub use sum::sum_intermediates;
