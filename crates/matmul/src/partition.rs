//! The deterministic partition lemmas of §1.5 (Lemmas 5, 6 and 7).
//!
//! These are the combinatorial workhorses behind the cube partition
//! (Lemma 9) and the balancing steps (Lemmas 10–12): given item weights,
//! split `[n]` into `k` groups whose total weights are all close to average.
//!
//! All three constructions are deterministic, so every node of the clique
//! computes the *same* partition from the same broadcast weight information —
//! that is what makes the partitions "globally known" in the paper.

use std::ops::Range;

/// Lemma 5 (\[CLT18\]): partition `0..weights.len()` into `k` groups of
/// near-equal cardinality (sizes differ by at most one) such that every
/// group's weight is at most `W/k + max_weight`.
///
/// Construction: sort items by descending weight and deal them round-robin.
/// Group `j` receives ranks `j, j+k, j+2k, …`; each later block's item is no
/// heavier than the average of the previous block, so the tail sums to at
/// most `W/k` and the head item adds at most `max_weight`.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn balanced_partition(weights: &[u64], k: usize) -> Vec<Vec<usize>> {
    assert!(k > 0, "cannot partition into zero groups");
    let mut order: Vec<usize> = (0..weights.len()).collect();
    // Descending weight, ties by index for determinism.
    order.sort_by(|&i, &j| weights[j].cmp(&weights[i]).then(i.cmp(&j)));
    let mut groups = vec![Vec::new(); k];
    for (rank, idx) in order.into_iter().enumerate() {
        groups[rank % k].push(idx);
    }
    for g in &mut groups {
        g.sort_unstable();
    }
    groups
}

/// Lemma 6: partition `0..weights.len()` into at most `k` *consecutive*
/// ranges, each of weight at most `W/k + max_weight`, padded with empty
/// ranges to exactly `k`.
///
/// Construction: scan left to right, closing a range as soon as its weight
/// reaches `W/k` (compared exactly via cross-multiplication to avoid
/// rounding).
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn consecutive_partition(weights: &[u64], k: usize) -> Vec<Range<usize>> {
    assert!(k > 0, "cannot partition into zero groups");
    let n = weights.len();
    let total: u128 = weights.iter().map(|&w| w as u128).sum();
    let mut parts: Vec<Range<usize>> = Vec::with_capacity(k);
    let mut start = 0usize;
    let mut acc: u128 = 0;
    for (i, &w) in weights.iter().enumerate() {
        acc += w as u128;
        // Close the range once acc >= W/k, i.e. acc * k >= W.
        if acc * (k as u128) >= total && parts.len() + 1 < k {
            parts.push(start..i + 1);
            start = i + 1;
            acc = 0;
        }
    }
    parts.push(start..n);
    while parts.len() < k {
        parts.push(n..n);
    }
    parts
}

/// Lemma 7: partition `0..n` into `k` consecutive ranges that are
/// simultaneously balanced for **two** weight vectors: every range has
/// `w1`-weight at most `2(W1/k + max(w1))` and `w2`-weight at most
/// `2(W2/k + max(w2))`.
///
/// Construction: take the Lemma 6 fenceposts of both single-weight
/// partitions, merge them in order, and keep every other fencepost; each
/// resulting range overlaps at most two ranges of either partition.
///
/// # Panics
///
/// Panics if `k == 0` or the weight vectors have different lengths.
pub fn doubly_balanced_partition(w1: &[u64], w2: &[u64], k: usize) -> Vec<Range<usize>> {
    assert!(k > 0, "cannot partition into zero groups");
    assert_eq!(w1.len(), w2.len(), "weight vectors must have equal length");
    let n = w1.len();
    let p1 = consecutive_partition(w1, k);
    let p2 = consecutive_partition(w2, k);
    // Merge the range end points of both partitions in increasing order.
    let mut ends: Vec<usize> = p1.iter().chain(p2.iter()).map(|r| r.end).collect();
    ends.sort_unstable();
    debug_assert_eq!(ends.len(), 2 * k);
    // Every other fencepost: ends[1], ends[3], ... ends[2k-1] (== n).
    let mut parts = Vec::with_capacity(k);
    let mut start = 0usize;
    for j in 0..k {
        let end = ends[2 * j + 1].max(start);
        parts.push(start..end);
        start = end;
    }
    debug_assert_eq!(parts.last().map(|r| r.end), Some(n));
    parts
}

/// Weight of `range` under `weights` (helper shared by tests and callers).
pub fn range_weight(weights: &[u64], range: &Range<usize>) -> u64 {
    weights[range.clone()].iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_lemma5(weights: &[u64], k: usize) {
        let groups = balanced_partition(weights, k);
        assert_eq!(groups.len(), k);
        let total: u64 = weights.iter().sum();
        let max_w = weights.iter().copied().max().unwrap_or(0);
        let mut seen = vec![false; weights.len()];
        let min_size = weights.len() / k;
        for g in &groups {
            assert!(g.len() >= min_size && g.len() <= min_size + 1, "sizes near-equal");
            let w: u64 = g.iter().map(|&i| weights[i]).sum();
            assert!(
                w <= total / k as u64 + max_w,
                "group weight {w} exceeds W/k + max = {}",
                total / k as u64 + max_w
            );
            for &i in g {
                assert!(!seen[i], "duplicate item");
                seen[i] = true;
            }
        }
        assert!(seen.into_iter().all(|b| b), "partition must cover all items");
    }

    #[test]
    fn lemma5_bounds_hold() {
        check_lemma5(&[5, 1, 4, 2, 3, 9, 0, 7], 4);
        check_lemma5(&[1; 16], 4);
        check_lemma5(&[100, 0, 0, 0, 0, 0, 0, 0], 4);
        check_lemma5(&[3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8], 5);
        check_lemma5(&[], 3);
        check_lemma5(&[7], 3);
    }

    fn check_lemma6(weights: &[u64], k: usize) {
        let parts = consecutive_partition(weights, k);
        assert_eq!(parts.len(), k);
        let total: u64 = weights.iter().sum();
        let max_w = weights.iter().copied().max().unwrap_or(0);
        let mut next = 0usize;
        for r in &parts {
            assert_eq!(r.start, next.min(weights.len()));
            assert!(r.end >= r.start);
            next = r.end;
            assert!(
                range_weight(weights, r) <= total / k as u64 + max_w,
                "range {r:?} weight exceeds bound"
            );
        }
        assert_eq!(next, weights.len());
    }

    #[test]
    fn lemma6_bounds_hold() {
        check_lemma6(&[5, 1, 4, 2, 3, 9, 0, 7], 4);
        check_lemma6(&[1; 10], 3);
        check_lemma6(&[0, 0, 10, 0, 0], 2);
        check_lemma6(&[9, 9, 9], 5); // more groups than needed -> empty tails
        check_lemma6(&[], 2);
    }

    fn check_lemma7(w1: &[u64], w2: &[u64], k: usize) {
        let parts = doubly_balanced_partition(w1, w2, k);
        assert_eq!(parts.len(), k);
        let (t1, t2): (u64, u64) = (w1.iter().sum(), w2.iter().sum());
        let (m1, m2) =
            (w1.iter().copied().max().unwrap_or(0), w2.iter().copied().max().unwrap_or(0));
        let mut next = 0usize;
        for r in &parts {
            assert_eq!(r.start, next);
            next = r.end;
            assert!(range_weight(w1, r) <= 2 * (t1 / k as u64 + m1), "w1 bound violated for {r:?}");
            assert!(range_weight(w2, r) <= 2 * (t2 / k as u64 + m2), "w2 bound violated for {r:?}");
        }
        assert_eq!(next, w1.len());
    }

    #[test]
    fn lemma7_bounds_hold() {
        check_lemma7(&[5, 1, 4, 2, 3, 9, 0, 7], &[1, 1, 1, 1, 9, 9, 9, 9], 4);
        check_lemma7(&[1; 12], &[12, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 12], 3);
        check_lemma7(&[0; 6], &[0; 6], 2);
        check_lemma7(&[2, 8, 2, 8, 2, 8, 2, 8], &[8, 2, 8, 2, 8, 2, 8, 2], 4);
    }

    #[test]
    #[should_panic(expected = "zero groups")]
    fn zero_groups_panics() {
        let _ = balanced_partition(&[1, 2], 0);
    }

    #[test]
    fn deterministic_under_ties() {
        let a = balanced_partition(&[1, 1, 1, 1], 2);
        let b = balanced_partition(&[1, 1, 1, 1], 2);
        assert_eq!(a, b);
        assert_eq!(a[0], vec![0, 2]);
        assert_eq!(a[1], vec![1, 3]);
    }
}
