//! Output-sensitive sparse matrix multiplication — **Theorem 8**.
//!
//! Computes `P = S ⋆ T` over an arbitrary semiring in
//! `O((ρS·ρT·ρ̂)^{1/3}/n^{2/3} + 1)` rounds, where `ρ̂` is the (promised)
//! density of the cancellation-free output. Pipeline:
//!
//! 1. cube partition (Lemma 9) — `O(1)` rounds;
//! 2. subtask input delivery with the canonical assignment `σ1`
//!    (Lemmas 10+11) and local products — `O(ρS·a/n + ρT·b/n + 1)` rounds;
//! 3. duplication of dense subtasks (Lemma 12) via a second delivery with
//!    `σ2`, then responsibility splitting — same cost again;
//! 4. balanced summation (Lemma 13) — `O(ρ̂·c/n + 1)` rounds.

use cc_clique::Clique;
use cc_matrix::{Semiring, SparseRow};

use crate::cube::{CubePartition, CubeShape, Sigma, TaskAssignment};
use crate::deliver::{deliver_subtask_inputs, local_product};
use crate::sum::sum_intermediates;
use crate::{layout, MatmulError};

/// Builds the duplication assignment `σ2` of Lemma 12: a subtask whose
/// product has `nz ≥ chunk` entries receives `⌊nz/chunk⌋` helper nodes from
/// the pool `0..n`.
///
/// Returns `Err` if the pool runs out — which happens exactly when the
/// promised output density underestimates the truth.
fn build_sigma2(
    cube: &CubePartition,
    product_sizes: &[u64],
    chunk: u64,
    hint: usize,
) -> Result<Sigma, MatmulError> {
    let n = cube.n();
    let mut sigma2: Sigma = vec![None; n];
    let mut pool = 0usize;
    for v in 0..cube.shape.subtasks() {
        let extra = (product_sizes[v] / chunk) as usize;
        let triple = cube.triple_of(v).expect("subtask nodes have triples");
        for _ in 0..extra {
            if pool >= n {
                return Err(MatmulError::DensityHintTooSmall { hint });
            }
            sigma2[pool] = Some(triple);
            pool += 1;
        }
    }
    Ok(sigma2)
}

/// **Theorem 8**: computes `P = S ⋆ T` on the clique, given that the
/// cancellation-free output density is at most `rho_hat`.
///
/// Input layout: node `v` holds row `v` of `S` (`s_rows[v]`) and column `v`
/// of `T` (`t_cols[v]`); output layout: node `v` holds row `v` of `P`.
///
/// The result is always the exact product — `rho_hat` only drives load
/// balancing. Rounds: `O((ρS·ρT·ρ̂)^{1/3}/n^{2/3} + 1)`.
///
/// # Errors
///
/// * [`MatmulError::DimensionMismatch`] if the operands don't match the
///   clique size;
/// * [`MatmulError::DensityHintTooSmall`] if `rho_hat` is below the true
///   output density and balancing becomes impossible (retry with a doubled
///   hint, or use [`sparse_multiply_auto`]);
/// * [`MatmulError::Clique`] on malformed communication (internal bug).
///
/// # Example
///
/// ```
/// use cc_clique::Clique;
/// use cc_matmul::sparse_multiply;
/// use cc_matrix::{Dist, MinPlus, SparseMatrix};
///
/// # fn main() -> Result<(), cc_matmul::MatmulError> {
/// let mut w = SparseMatrix::<Dist>::identity::<MinPlus>(8);
/// for v in 0..7 {
///     w.set_in::<MinPlus>(v, v + 1, Dist::fin(1));
///     w.set_in::<MinPlus>(v + 1, v, Dist::fin(1));
/// }
/// let mut clique = Clique::new(8);
/// let t_cols = w.transpose(); // column layout for the right operand
/// let p = sparse_multiply::<MinPlus>(&mut clique, w.rows(), t_cols.rows(), 8)?;
/// assert_eq!(p[0].get(2), Some(&Dist::fin(2))); // 2-hop distance
/// # Ok(())
/// # }
/// ```
pub fn sparse_multiply<SR: Semiring>(
    clique: &mut Clique,
    s_rows: &[SparseRow<SR::Elem>],
    t_cols: &[SparseRow<SR::Elem>],
    rho_hat: usize,
) -> Result<Vec<SparseRow<SR::Elem>>, MatmulError> {
    let n = clique.n();
    if s_rows.len() != n || t_cols.len() != n {
        return Err(MatmulError::DimensionMismatch {
            s_rows: s_rows.len(),
            t_cols: t_cols.len(),
            n,
        });
    }
    let rho_hat = rho_hat.clamp(1, n);
    clique.with_phase("sparse_mm", |clique| {
        // Lemma 9: globally known cube partition.
        let (s_counts, _, rho_s) = layout::broadcast_counts(clique, s_rows)?;
        let (t_counts, _, rho_t) = layout::broadcast_counts(clique, t_cols)?;
        let shape = CubeShape::choose(n, rho_s, rho_t, rho_hat);
        let cube = CubePartition::build::<SR>(clique, shape, s_rows, t_cols, &s_counts, &t_counts)?;

        // Lemma 11 with σ1 + local products.
        let sigma1 = TaskAssignment::new(&cube, cube.sigma1());
        let inputs = deliver_subtask_inputs::<SR>(clique, &cube, s_rows, t_cols, &sigma1)?;
        let products: Vec<_> = inputs.iter().map(local_product::<SR>).collect();

        // Lemma 12: duplicate dense subtasks.
        let sizes: Vec<u64> = products.iter().map(|p| p.len() as u64).collect();
        let sizes = clique.with_phase("sizes", |cl| cl.all_broadcast(sizes))?;
        let chunk = (rho_hat * cube.c_eff()).max(1) as u64;
        let sigma2_vec = build_sigma2(&cube, &sizes, chunk, rho_hat)?;
        let sigma2 = TaskAssignment::new(&cube, sigma2_vec);
        let dup_inputs = deliver_subtask_inputs::<SR>(clique, &cube, s_rows, t_cols, &sigma2)?;

        // Responsibility split: owners of subtask v are [v] ++ σ2-helpers
        // (sorted); owner index o takes the o-th chunk of the product.
        let mut intermediates: Vec<Vec<_>> = vec![Vec::new(); n];
        for v in 0..cube.shape.subtasks() {
            let (i, j, k) = cube.triple_of(v).expect("subtask nodes have triples");
            // A node may serve as both the σ1 owner and a σ2 helper of the
            // same task; it then takes two parts (paper, Lemma 12 step 3),
            // so duplicates are kept.
            let mut owners = vec![v];
            owners.extend(sigma2.nodes_for(&cube, i, j, k).iter().copied());
            owners.sort_unstable();
            // Recompute the product once per distinct owner (σ1 owner has it;
            // σ2 owners recomputed it from dup_inputs — same entries).
            let prod_len = sizes[v] as usize;
            let parts = prod_len.div_ceil(chunk as usize);
            debug_assert!(parts <= owners.len(), "Lemma 12 guarantees enough owners");
            for (o, owner) in owners.iter().enumerate().take(parts) {
                let lo = o * chunk as usize;
                let hi = ((o + 1) * chunk as usize).min(prod_len);
                if *owner == v {
                    intermediates[*owner].extend_from_slice(&products[v][lo..hi]);
                } else {
                    // σ2 owner: recompute locally from its delivered inputs.
                    // (Computation is free in the model; entries are already
                    // at the node via the σ2 delivery.)
                    let prod = local_product::<SR>(&dup_inputs[*owner]);
                    intermediates[*owner].extend_from_slice(&prod[lo..hi]);
                }
            }
        }

        // Lemma 13: balanced summation into row owners.
        sum_intermediates::<SR>(clique, intermediates)
    })
}

/// A product computed with an automatically discovered density estimate:
/// the output rows and the estimate that succeeded.
pub type AutoProduct<E> = (Vec<SparseRow<E>>, usize);

/// Theorem 8 without prior knowledge of the output density: runs
/// [`sparse_multiply`] with doubling estimates `ρ̂ = 1, 2, 4, …` until the
/// balancing succeeds, at a multiplicative `O(log n)` round overhead (§2.1).
///
/// Returns the product and the density estimate that succeeded.
///
/// # Errors
///
/// Same as [`sparse_multiply`], except `DensityHintTooSmall` is handled
/// internally.
pub fn sparse_multiply_auto<SR: Semiring>(
    clique: &mut Clique,
    s_rows: &[SparseRow<SR::Elem>],
    t_cols: &[SparseRow<SR::Elem>],
) -> Result<AutoProduct<SR::Elem>, MatmulError> {
    let n = clique.n();
    let mut rho_hat = 1usize;
    loop {
        match sparse_multiply::<SR>(clique, s_rows, t_cols, rho_hat) {
            Ok(rows) => return Ok((rows, rho_hat)),
            Err(MatmulError::DensityHintTooSmall { .. }) if rho_hat < n => {
                rho_hat = (rho_hat * 2).min(n);
            }
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_matrix::{Dist, MinPlus, SparseMatrix};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_matrix(n: usize, nnz: usize, seed: u64) -> SparseMatrix<Dist> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut m = SparseMatrix::zeros(n);
        for _ in 0..nnz {
            let r = rng.gen_range(0..n);
            let c = rng.gen_range(0..n);
            m.set_in::<MinPlus>(r, c, Dist::fin(rng.gen_range(1..1000)));
        }
        m
    }

    fn check_product(n: usize, s: &SparseMatrix<Dist>, t: &SparseMatrix<Dist>, rho_hat: usize) {
        let mut clique = Clique::new(n);
        let t_cols = t.transpose();
        let rows =
            sparse_multiply::<MinPlus>(&mut clique, s.rows(), t_cols.rows(), rho_hat).unwrap();
        let expected = s.multiply::<MinPlus>(t);
        assert_eq!(SparseMatrix::from_rows(rows), expected);
    }

    #[test]
    fn matches_reference_on_random_sparse() {
        let n = 16;
        let s = random_matrix(n, 40, 1);
        let t = random_matrix(n, 40, 2);
        let rho = s.multiply::<MinPlus>(&t).density();
        check_product(n, &s, &t, rho);
    }

    #[test]
    fn matches_reference_on_asymmetric_densities() {
        let n = 24;
        let s = random_matrix(n, 20, 3); // very sparse
        let t = random_matrix(n, 300, 4); // dense
        let rho = s.multiply::<MinPlus>(&t).density();
        check_product(n, &s, &t, rho);
    }

    #[test]
    fn star_square_is_dense_but_correct() {
        // The star graph: sparse input, dense output (the paper's canonical
        // example of why iterated sparse squaring fails).
        let n = 16;
        let mut w = SparseMatrix::<Dist>::identity::<MinPlus>(n);
        for v in 1..n {
            w.set_in::<MinPlus>(0, v, Dist::fin(1));
            w.set_in::<MinPlus>(v, 0, Dist::fin(1));
        }
        check_product(n, &w, &w, n); // output density is ~n
    }

    #[test]
    fn small_hint_errors_then_auto_recovers() {
        let n = 16;
        let mut w = SparseMatrix::<Dist>::identity::<MinPlus>(n);
        for v in 1..n {
            w.set_in::<MinPlus>(0, v, Dist::fin(1));
            w.set_in::<MinPlus>(v, 0, Dist::fin(1));
        }
        let t_cols = w.transpose();
        // With hint 1 the star square (density n) must either still be
        // correct or report the hint as too small — never be wrong.
        let mut clique = Clique::new(n);
        match sparse_multiply::<MinPlus>(&mut clique, w.rows(), t_cols.rows(), 1) {
            Ok(rows) => {
                assert_eq!(SparseMatrix::from_rows(rows), w.multiply::<MinPlus>(&w));
            }
            Err(MatmulError::DensityHintTooSmall { hint: 1 }) => {}
            Err(e) => panic!("unexpected error {e}"),
        }
        let mut clique = Clique::new(n);
        let (rows, used) =
            sparse_multiply_auto::<MinPlus>(&mut clique, w.rows(), t_cols.rows()).unwrap();
        assert_eq!(SparseMatrix::from_rows(rows), w.multiply::<MinPlus>(&w));
        assert!(used >= 1);
    }

    #[test]
    fn identity_times_identity() {
        let n = 8;
        let id = SparseMatrix::<Dist>::identity::<MinPlus>(n);
        check_product(n, &id, &id, 1);
    }

    #[test]
    fn empty_matrices() {
        let n = 8;
        let z = SparseMatrix::<Dist>::zeros(n);
        check_product(n, &z, &z, 1);
    }

    #[test]
    fn rejects_dimension_mismatch() {
        let mut clique = Clique::new(4);
        let m = SparseMatrix::<Dist>::zeros(8);
        let err = sparse_multiply::<MinPlus>(&mut clique, m.rows(), m.rows(), 1).unwrap_err();
        assert!(matches!(err, MatmulError::DimensionMismatch { .. }));
    }

    #[test]
    fn sparse_products_are_round_efficient() {
        // rho_s = rho_t = rho_hat ~ sqrt(n): Theorem 8 predicts O(1) rounds
        // (the (rho^3)^(1/3)/n^(2/3} = sqrt(n)/n^{2/3} < 1 regime).
        let n = 64;
        let s = random_matrix(n, 8 * n, 7);
        let t = random_matrix(n, 8 * n, 8);
        let mut clique = Clique::new(n);
        let t_cols = t.transpose();
        let rows = sparse_multiply::<MinPlus>(
            &mut clique,
            s.rows(),
            t_cols.rows(),
            s.multiply::<MinPlus>(&t).density(),
        )
        .unwrap();
        assert_eq!(SparseMatrix::from_rows(rows), s.multiply::<MinPlus>(&t));
        assert!(
            clique.rounds() < 60,
            "sparse multiply should be O(1)-ish rounds, got {}",
            clique.rounds()
        );
    }
}
