//! Balanced summation of intermediate values (Lemma 13).
//!
//! After the subtask products, every node holds a bounded number of
//! *intermediate values* — partial sums `p_{vWu}` for positions of the
//! output matrix, with each elementary product contributing to exactly one
//! intermediate value. This module accumulates them into the output rows:
//! repeatedly take `n` values per node, globally sort by position (Lenzen
//! sort, `O(1)` rounds), combine equal positions locally, fix the runs that
//! straddle node boundaries, and route the per-row sums to their row owners.
//! With at most `L` values per node this takes `O(L/n + 1)` rounds.

use std::cmp::Ordering;

use cc_clique::{Clique, Envelope, Payload};
use cc_matrix::{Entry, Semiring, SparseRow};

use crate::MatmulError;

/// A positioned intermediate value in the summation sort. Ordered by
/// position key then provenance `(src, seq)` so the global order is total;
/// the value itself does not participate in the order.
#[derive(Debug, Clone)]
struct SumItem<E> {
    key: u64,
    src: u32,
    seq: u32,
    val: E,
}

impl<E> SumItem<E> {
    fn sort_key(&self) -> (u64, u32, u32) {
        (self.key, self.src, self.seq)
    }
}

impl<E> PartialEq for SumItem<E> {
    fn eq(&self, other: &Self) -> bool {
        self.sort_key() == other.sort_key()
    }
}
impl<E> Eq for SumItem<E> {}
impl<E> PartialOrd for SumItem<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for SumItem<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        self.sort_key().cmp(&other.sort_key())
    }
}
impl<E: Payload> Payload for SumItem<E> {
    fn words(&self) -> usize {
        self.val.words()
    }
}

fn pos_key(row: u32, col: u32) -> u64 {
    ((row as u64) << 32) | col as u64
}

/// Accumulates per-node intermediate values into the distributed output
/// matrix (node `r` ends holding output row `r`).
///
/// # Errors
///
/// Returns [`MatmulError::Clique`] on malformed communication.
pub fn sum_intermediates<SR: Semiring>(
    clique: &mut Clique,
    per_node: Vec<Vec<Entry<SR::Elem>>>,
) -> Result<Vec<SparseRow<SR::Elem>>, MatmulError> {
    let n = clique.n();
    let mut queues: Vec<std::collections::VecDeque<SumItem<SR::Elem>>> = per_node
        .into_iter()
        .enumerate()
        .map(|(v, entries)| {
            entries
                .into_iter()
                .enumerate()
                .map(|(seq, e)| SumItem {
                    key: pos_key(e.row, e.col),
                    src: v as u32,
                    seq: seq as u32,
                    val: e.val,
                })
                .collect()
        })
        .collect();

    // Everyone learns the number of repetitions.
    let lens: Vec<u64> = queues.iter().map(|q| q.len() as u64).collect();
    let lens = clique.with_phase("sum", |cl| cl.all_broadcast(lens))?;
    let reps = lens.iter().map(|&l| (l as usize).div_ceil(n)).max().unwrap_or(0);

    let mut out: Vec<SparseRow<SR::Elem>> = vec![SparseRow::new(); n];
    for _rep in 0..reps {
        // Each node contributes up to n values this repetition.
        let batch: Vec<Vec<SumItem<SR::Elem>>> = queues
            .iter_mut()
            .map(|q| {
                let take = q.len().min(n);
                q.drain(..take).collect()
            })
            .collect();

        // (1) Global sort by position.
        let sorted = clique.with_phase("sum", |cl| cl.sort(batch))?;

        // (2) Local combine of equal positions.
        let mut combined: Vec<Vec<(u64, SR::Elem)>> = sorted
            .into_iter()
            .map(|items| {
                let mut acc: Vec<(u64, SR::Elem)> = Vec::with_capacity(items.len());
                for item in items {
                    match acc.last_mut() {
                        Some((k, v)) if *k == item.key => *v = SR::add(v, &item.val),
                        _ => acc.push((item.key, item.val)),
                    }
                }
                acc
            })
            .collect();

        // (3) Boundary fix: positions straddling node boundaries are merged
        // at the smallest-id holder. Broadcast (min, max) keys; an empty
        // holder broadcasts `EMPTY_SPAN` bounds, which no real key equals.
        const EMPTY_SPAN: u64 = u64::MAX;
        let spans: Vec<(u64, u64)> = combined
            .iter()
            .map(|c| {
                if c.is_empty() {
                    (EMPTY_SPAN, EMPTY_SPAN)
                } else {
                    (c.first().expect("nonempty").0, c.last().expect("nonempty").0)
                }
            })
            .collect();
        let spans = clique.with_phase("sum", |cl| cl.all_broadcast(spans))?;
        // The smallest-id holder of key k, as seen from holder v: every
        // earlier holder of k must end with k (global sorted order), so it
        // is the first node whose max equals k — or v itself.
        let owner_of = |key: u64, v: usize| -> usize {
            (0..v).find(|&t| spans[t].1 == key && spans[t].0 != EMPTY_SPAN).unwrap_or(v)
        };
        let mut boundary_msgs = Vec::new();
        for v in 0..n {
            if combined[v].is_empty() {
                continue;
            }
            let min_key = combined[v][0].0;
            let owner = owner_of(min_key, v);
            if owner != v {
                // Every key before ours is <= min_key, so only the first run
                // can be shared; ship its sum to the owner.
                let (k, val) = combined[v].remove(0);
                boundary_msgs.push(Envelope::new(v, owner, (k, val)));
            }
        }
        let inboxes = clique.with_phase("sum", |cl| cl.route(boundary_msgs))?;
        for (v, inbox) in inboxes.into_iter().enumerate() {
            for env in inbox {
                let (k, val) = env.payload;
                match combined[v].iter_mut().find(|(key, _)| *key == k) {
                    Some((_, cur)) => *cur = SR::add(cur, &val),
                    // The owner always holds the key (its max == k).
                    None => combined[v].push((k, val)),
                }
            }
        }

        // (4) Route per-position sums to their row owners.
        let finals: Vec<Envelope<Entry<SR::Elem>>> = combined
            .into_iter()
            .enumerate()
            .flat_map(|(v, items)| {
                items.into_iter().map(move |(k, val)| {
                    let row = (k >> 32) as u32;
                    let col = (k & 0xffff_ffff) as u32;
                    Envelope::new(v, row as usize, Entry::new(row, col, val))
                })
            })
            .collect();
        let inboxes = clique.with_phase("sum", |cl| cl.route(finals))?;
        for (r, inbox) in inboxes.into_iter().enumerate() {
            for env in inbox {
                out[r].accumulate::<SR>(env.payload.col, env.payload.val);
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_matrix::{Dist, MinPlus};

    #[test]
    fn sums_duplicate_positions_across_nodes() {
        let n = 4;
        let mut clique = Clique::new(n);
        // Position (1, 2) has partial values at three nodes; min should win.
        let per_node = vec![
            vec![Entry::new(1, 2, Dist::fin(9)), Entry::new(0, 0, Dist::fin(1))],
            vec![Entry::new(1, 2, Dist::fin(4))],
            vec![Entry::new(1, 2, Dist::fin(7)), Entry::new(3, 3, Dist::fin(2))],
            vec![],
        ];
        let rows = sum_intermediates::<MinPlus>(&mut clique, per_node).unwrap();
        assert_eq!(rows[1].get(2), Some(&Dist::fin(4)));
        assert_eq!(rows[0].get(0), Some(&Dist::fin(1)));
        assert_eq!(rows[3].get(3), Some(&Dist::fin(2)));
        assert_eq!(rows[2].nnz(), 0);
    }

    #[test]
    fn handles_multi_repetition_loads() {
        let n = 4;
        let mut clique = Clique::new(n);
        // Node 0 holds 10 values for the same position: forces 3 repetitions.
        let per_node = vec![
            (0..10).map(|i| Entry::new(2, 1, Dist::fin(20 - i))).collect(),
            vec![],
            vec![],
            vec![Entry::new(2, 1, Dist::fin(5))],
        ];
        let rows = sum_intermediates::<MinPlus>(&mut clique, per_node).unwrap();
        assert_eq!(rows[2].get(1), Some(&Dist::fin(5)));
        let rounds = clique.rounds();
        assert!(rounds >= 3, "expected multiple repetitions, got {rounds} rounds");
    }

    #[test]
    fn empty_input_is_cheap() {
        let mut clique = Clique::new(3);
        let rows = sum_intermediates::<MinPlus>(&mut clique, vec![vec![], vec![], vec![]]).unwrap();
        assert!(rows.iter().all(|r| r.is_empty()));
        assert!(clique.rounds() <= 1);
    }

    #[test]
    fn single_position_spanning_all_nodes() {
        let n = 4;
        let mut clique = Clique::new(n);
        let per_node: Vec<Vec<Entry<Dist>>> =
            (0..n).map(|v| vec![Entry::new(0, 0, Dist::fin(10 + v as u64))]).collect();
        let rows = sum_intermediates::<MinPlus>(&mut clique, per_node).unwrap();
        assert_eq!(rows[0].get(0), Some(&Dist::fin(10)));
        for r in 1..n {
            assert_eq!(rows[r].nnz(), 0);
        }
    }
}
