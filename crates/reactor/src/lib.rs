//! Event-driven transport primitives for the serving tier.
//!
//! Two independent pieces live here, both reused by `cc-serve` today and
//! intended for the future out-of-process `cc-shard` RPC:
//!
//! * [`Poller`] — a thin, safe wrapper over Linux `epoll` plus an
//!   `eventfd`-backed [`Waker`], in the same spirit as the offline shims
//!   under `crates/shim`: exactly the API subset this workspace needs,
//!   written against raw C-library declarations, no external crates. On
//!   non-Linux targets [`Poller::new`] returns
//!   [`std::io::ErrorKind::Unsupported`] so callers can fall back to a
//!   portable poll loop at runtime.
//! * [`frame`] — the length-prefixed binary batch codec (`CCBQ` request /
//!   `CCBR` response frames) that lets `POST /batch` skip decimal
//!   parsing/formatting entirely.
//!
//! Unlike the rest of the workspace this crate cannot forbid `unsafe`
//! outright — readiness notification is a syscall interface. All unsafe
//! code is confined to the private `sys` module and each block is
//! individually annotated; the public surface is safe.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod frame;
mod poller;
#[cfg(target_os = "linux")]
mod sys;

pub use poller::{Event, Poller, Waker, WAKER_TOKEN};
